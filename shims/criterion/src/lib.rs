//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment cannot reach a crates.io registry, so the
//! workspace replaces the registry `criterion` with this path crate. The
//! bench sources keep their criterion spelling (`benchmark_group`,
//! `bench_with_input`, `BenchmarkId`, `criterion_group!`/`criterion_main!`);
//! running them (`cargo bench`) times each closure — one warm-up plus up to
//! `sample_size` (capped at 16) measured iterations — and prints a
//! `name/id: median per-iter` line instead of criterion's statistics and
//! HTML reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark label: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Label with a function name and a parameter, rendered `name/param`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Label from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    report: Option<Duration>,
}

impl Bencher {
    /// Run `f` repeatedly; record the median per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(f());
            times.push(t.elapsed());
        }
        times.sort_unstable();
        let median = times[times.len() / 2];
        self.report = Some(median);
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set the measured-iteration count (capped at 16 to keep runs short).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(1, 16);
        self
    }

    fn run(&mut self, id: BenchmarkId, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.sample_size,
            report: None,
        };
        f(&mut b);
        match b.report {
            Some(median) => println!("{}/{}: {:?}/iter", self.name, id.0, median),
            None => println!("{}/{}: no measurement", self.name, id.0),
        }
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        self.run(id.into(), f);
        self
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        self.run(id.into(), |b| f(b, input));
        self
    }

    /// End the group (report flushing is immediate here, so this is a no-op).
    pub fn finish(self) {}
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        self.benchmark_group("bench").run(id.into(), f);
        self
    }
}

/// Bundle bench functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let input = 21u64;
        group
            .bench_function(BenchmarkId::from_parameter("double"), |b| {
                b.iter(|| black_box(2) * 2)
            })
            .bench_with_input(BenchmarkId::new("times2", input), &input, |b, &x| {
                b.iter(|| x * 2)
            });
        group.finish();
    }

    #[test]
    fn sample_size_is_clamped() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("clamp");
        g.sample_size(10_000);
        g.bench_function("tiny", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
