//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment cannot reach a crates.io registry, so the
//! workspace replaces the registry `proptest` with this path crate. Test
//! modules keep the `proptest! { fn t(x in strategy) { … } }` spelling;
//! each test runs `ProptestConfig::cases` iterations over values drawn from
//! a **fixed per-test seed**, so failures are reproducible run-to-run.
//!
//! Differences from real proptest, by design:
//! * no shrinking — a failing case panics immediately and prints its case
//!   index (the MSF-specific shrinker lives in `msf_core::fuzz`);
//! * `prop_assert!`/`prop_assert_eq!` are plain `assert!`s;
//! * only the strategies the suite uses exist: integer/float ranges,
//!   `any::<T>()`, tuples, `collection::{vec, btree_set}`, `Just`,
//!   `prop_map`, `prop_flat_map`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::prelude::*;

#[doc(hidden)]
pub mod __rt {
    pub use rand::prelude::{Rng, SeedableRng, StdRng};

    /// FNV-1a over the test name: a stable per-test seed.
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Prints the failing case index when the test body panics.
    pub struct CaseGuard(pub u32, pub &'static str);

    impl Drop for CaseGuard {
        fn drop(&mut self) {
            if std::thread::panicking() {
                eprintln!(
                    "proptest (offline shim): test `{}` failed at case index {} — \
                     rerun is deterministic, no shrinking is performed",
                    self.1, self.0
                );
            }
        }
    }
}

/// How many cases each `proptest!` test runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` iterations.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then use it to pick a second-stage strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a "whole domain" strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draw one value from the full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        // Finite floats across magnitudes (MSF weights must be finite).
        let mag = rng.gen_range(-300i32..300);
        let x: f64 = rng.gen();
        (x - 0.5) * 2.0_f64.powi(mag)
    }
}

/// Strategy over a type's whole domain.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A vector whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` targeting a size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// A set whose target size is drawn from `size`; like real proptest, the
    /// result may be smaller when the element domain yields duplicates.
    pub fn btree_set<S>(element: S, size: std::ops::Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let target = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            let mut out = std::collections::BTreeSet::new();
            // Bounded attempts: duplicate-heavy domains give smaller sets.
            for _ in 0..target.saturating_mul(3) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

/// Run `cases` deterministic iterations of property tests.
///
/// Supports the real macro's common form: an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn` items whose
/// arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($items:tt)*) => {
        $crate::__proptest_items!(($cfg) $($items)*);
    };
    ($($items:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($items)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                $crate::__rt::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            let __strats = ($($strat,)+);
            for __case in 0..__cfg.cases {
                let __guard = $crate::__rt::CaseGuard(__case, stringify!($name));
                let ($($pat,)+) = $crate::Strategy::generate(&__strats, &mut __rng);
                $body
                drop(__guard);
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Assertion macro; a plain `assert!` here (no shrinking to report).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assertion macro; a plain `assert_eq!` here.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assertion macro; a plain `assert_ne!` here.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 3u32..17, (a, b) in (0usize..5, 0i64..9)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(a < 5);
            prop_assert!((0..9).contains(&b));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in collection::vec(any::<u32>(), 2..40)) {
            prop_assert!((2..40).contains(&v.len()));
        }

        #[test]
        fn flat_map_threads_values(pair in (2usize..10).prop_flat_map(|n| (Just(n), 0usize..n))) {
            let (n, i) = pair;
            prop_assert!(i < n);
        }
    }

    #[test]
    fn btree_set_respects_target() {
        use super::__rt::{SeedableRng, StdRng};
        let s = collection::btree_set((0u32..4, 0u32..4), 0..30);
        let mut rng = StdRng::seed_from_u64(1);
        let out = super::Strategy::generate(&s, &mut rng);
        assert!(out.len() <= 16, "only 16 distinct pairs exist");
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(super::__rt::seed_for("abc"), super::__rt::seed_for("abc"));
        assert_ne!(super::__rt::seed_for("abc"), super::__rt::seed_for("abd"));
    }
}
