//! Offline stand-in for the subset of `rayon` this workspace uses, now
//! backed by a real persistent work-stealing pool (`msf_pool`).
//!
//! The build environment cannot reach a crates.io registry, so the
//! workspace replaces the registry `rayon` with this path crate. Call sites
//! keep rayon's spelling (`into_par_iter`, `par_iter`, `par_chunks`,
//! `with_min_len`, `rayon::current_num_threads`, `rayon::join`, …) and now
//! get genuine parallelism: terminals recursively halve their input and
//! hand the halves to `msf_pool::join`, which schedules them on persistent
//! workers with chase-lev-style stealing deques.
//!
//! Results are identical to the old sequential facade by construction —
//! `collect` writes each element at its exact final index, `sum` reduces
//! over a fixed split tree, and every `for_each` call site in the workspace
//! is order-independent. Setting `MSF_SEQUENTIAL=1` (or the `sequential`
//! feature of `msf-pool`, or `msf_pool::with_sequential`) restores the
//! exact single-threaded execution order without touching any call site;
//! `MSF_POOL_THREADS` pins the pool width.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod iter;

/// Width of the shared pool (respects `MSF_POOL_THREADS`, else the host's
/// available parallelism). Matches what `join`/`par_iter` actually use.
pub fn current_num_threads() -> usize {
    msf_pool::width()
}

/// Run both closures, potentially in parallel, and return both results.
/// `a` runs on the calling thread while `b` is offered to the pool; under
/// `MSF_SEQUENTIAL=1` this is exactly `(a(), b())`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    msf_pool::join(a, b)
}

/// The glob-import surface mirroring `rayon::prelude`.
pub mod prelude {
    pub use super::iter::{
        FromParallelIterator, IndexedParallelIterator, IntoParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Pin a multi-worker pool before first use so these tests exercise
    /// real parallel drives even on a 1-core host.
    fn pool() {
        msf_pool::force_width(4);
    }

    #[test]
    fn par_chains_behave_like_std() {
        pool();
        let v: Vec<u32> = (0..10u32).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..10u32).map(|x| x * 2).collect::<Vec<_>>());

        let data = [1u32, 2, 3, 4, 5];
        let sums: Vec<u32> = data.par_chunks(2).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![3, 7, 5]);

        let mut out = vec![0u32; 4];
        out.par_iter_mut()
            .enumerate()
            .for_each(|(i, x)| *x = i as u32);
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn tuning_knobs_are_respected() {
        pool();
        let n = 100usize;
        let v: Vec<usize> = (0..n)
            .into_par_iter()
            .with_min_len(8)
            .with_max_len(32)
            .collect();
        assert_eq!(v, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn join_returns_both() {
        pool();
        assert_eq!(super::join(|| 1, || "x"), (1, "x"));
    }

    #[test]
    fn large_collect_is_exact_and_ordered() {
        pool();
        let n = 100_000usize;
        let v: Vec<u64> = (0..n).into_par_iter().map(|i| (i as u64) * 3 + 1).collect();
        assert_eq!(v.len(), n);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, (i as u64) * 3 + 1);
        }
    }

    #[test]
    fn for_each_visits_every_item_once() {
        pool();
        let n = 50_000usize;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        (0..n).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn sum_matches_sequential() {
        pool();
        let n = 200_000usize;
        let par: u64 = (0..n).into_par_iter().map(|i| i as u64).sum();
        assert_eq!(par, (n as u64 - 1) * (n as u64) / 2);
    }

    #[test]
    fn zip_chunks_roundtrip() {
        pool();
        let n = 10_000usize;
        let data: Vec<u64> = (0..n as u64).collect();
        let chunk = 97;
        let totals: Vec<u64> = data.par_chunks(chunk).map(|c| c.iter().sum()).collect();
        let mut out = vec![0u64; n];
        out.par_chunks_mut(chunk)
            .zip(totals.par_iter())
            .for_each(|(block, &t)| {
                for x in block.iter_mut() {
                    *x = t;
                }
            });
        let expect: Vec<u64> = data
            .chunks(chunk)
            .flat_map(|c| {
                let t: u64 = c.iter().sum();
                std::iter::repeat_n(t, c.len())
            })
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn owned_vec_par_iter_consumes_without_leaking_drops() {
        pool();
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Tracked(u32);
        impl Tracked {
            fn new(v: u32) -> Tracked {
                LIVE.fetch_add(1, Ordering::SeqCst);
                Tracked(v)
            }
        }
        impl Clone for Tracked {
            fn clone(&self) -> Tracked {
                Tracked::new(self.0)
            }
        }
        impl Drop for Tracked {
            fn drop(&mut self) {
                LIVE.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let vec: Vec<Tracked> = (0..10_000).map(Tracked::new).collect();
        let doubled: Vec<u32> = vec.into_par_iter().map(|t| t.0 * 2).collect();
        assert_eq!(doubled.len(), 10_000);
        assert_eq!(doubled[1234], 2468);
        assert_eq!(LIVE.load(Ordering::SeqCst), 0, "all elements dropped");
    }

    #[test]
    fn sequential_escape_hatch_matches_pooled_results() {
        pool();
        let n = 30_000usize;
        let pooled: Vec<u64> = (0..n).into_par_iter().map(|i| (i as u64).pow(2)).collect();
        let seq = msf_pool::with_sequential(|| {
            (0..n)
                .into_par_iter()
                .map(|i| (i as u64).pow(2))
                .collect::<Vec<u64>>()
        });
        assert_eq!(pooled, seq);
    }
}
