//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! The build environment cannot reach a crates.io registry, so the
//! workspace replaces the registry `rayon` with this path crate. Call sites
//! keep rayon's spelling (`into_par_iter`, `par_iter`, `par_chunks`,
//! `with_min_len`, `rayon::current_num_threads`, …) but the adapters return
//! plain **sequential** `std` iterators, so every data-parallel chain runs
//! deterministically on the calling thread.
//!
//! Real parallelism in the suite comes from `msf_primitives::team::SmpTeam`
//! (std scoped threads), which the SPMD algorithm skeletons use directly.
//! The `p` in `MsfConfig::threads` controls *logical* decomposition (block
//! ranges, bucket counts) and is honored exactly as before, which is what
//! the thread-count matrix in the test suite exercises. Swapping this shim
//! back for the real crate only changes wall-clock, never results — every
//! call site was already written to be order-independent or to reduce in
//! rank order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Width rayon's global pool would have: the host's available parallelism.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run two closures and return both results. Sequential here.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Iterator adapters mirroring `rayon::iter`.
pub mod iter {
    /// `into_par_iter()` for anything iterable (ranges, `Vec`, …). Returns
    /// the type's ordinary sequential iterator.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Sequential stand-in for rayon's `into_par_iter`.
        #[inline]
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    /// Indexed-iterator tuning knobs, accepted and ignored.
    pub trait IndexedParallelIterator: Iterator + Sized {
        /// No-op: splitting granularity has no meaning sequentially.
        #[inline]
        fn with_min_len(self, _min: usize) -> Self {
            self
        }

        /// No-op: splitting granularity has no meaning sequentially.
        #[inline]
        fn with_max_len(self, _max: usize) -> Self {
            self
        }
    }

    impl<I: Iterator + Sized> IndexedParallelIterator for I {}

    /// `par_iter` / `par_chunks` over shared slices.
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for rayon's `par_iter`.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Sequential stand-in for rayon's `par_chunks`.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        #[inline]
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }

        #[inline]
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// `par_iter_mut` / `par_chunks_mut` over exclusive slices.
    pub trait ParallelSliceMut<T> {
        /// Sequential stand-in for rayon's `par_iter_mut`.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        /// Sequential stand-in for rayon's `par_chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        #[inline]
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }

        #[inline]
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

/// The glob-import surface mirroring `rayon::prelude`.
pub mod prelude {
    pub use super::iter::{
        IndexedParallelIterator, IntoParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chains_behave_like_std() {
        let v: Vec<u32> = (0..10u32).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..10u32).map(|x| x * 2).collect::<Vec<_>>());

        let data = [1u32, 2, 3, 4, 5];
        let sums: Vec<u32> = data.par_chunks(2).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![3, 7, 5]);

        let mut out = vec![0u32; 4];
        out.par_iter_mut()
            .enumerate()
            .for_each(|(i, x)| *x = i as u32);
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn tuning_knobs_are_identity() {
        let n = 100usize;
        let v: Vec<usize> = (0..n)
            .into_par_iter()
            .with_min_len(8)
            .with_max_len(32)
            .collect();
        assert_eq!(v.len(), n);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn join_returns_both() {
        assert_eq!(super::join(|| 1, || "x"), (1, "x"));
    }
}
