//! Parallel iterator framework over `msf_pool`'s fork-join `join`.
//!
//! Mirrors the subset of `rayon::iter` this workspace uses, with rayon's
//! spelling but a deliberately small core: an indexed parallel iterator is
//! anything that knows its exact length, can split itself at an index, and
//! can lower itself to an ordinary sequential iterator at a leaf. Terminals
//! (`for_each`, `collect`, `sum`) recursively halve the iterator down to a
//! grain size and run the leaves through [`msf_pool::join`], so the work
//! lands on the persistent stealing workers.
//!
//! Determinism: `collect` writes every element at its exact final index and
//! `sum` always reduces over the same binary split tree, so results are
//! bit-identical to the sequential facade regardless of scheduling; only
//! side-effect *timing* inside `for_each` closures can vary (all call sites
//! in this workspace are order-independent, and the sequential escape hatch
//! reproduces the exact single-thread order when that ever matters).

use std::marker::PhantomData;
use std::mem::ManuallyDrop;
use std::sync::Arc;

/// Pick the leaf size for a drive: aim for ~8 leaves per worker so thieves
/// always find slack, clamped by the call site's `with_min_len` /
/// `with_max_len` hints.
fn leaf_grain<I: IndexedParallelIterator>(iter: &I) -> usize {
    let len = iter.len().max(1);
    let width = msf_pool::width().max(1);
    let auto = len.div_ceil(width.saturating_mul(8)).max(1);
    let min = iter.min_len_hint().max(1);
    let max = iter.max_len_hint().max(min);
    auto.clamp(min, max)
}

/// True when this chain must run inline on the calling thread: the
/// sequential escape hatch is active or the pool has a single worker.
#[inline]
fn run_inline() -> bool {
    msf_pool::sequential_here() || msf_pool::width() == 1
}

/// An exactly-sized, splittable parallel iterator (the only kind this shim
/// offers, matching how the workspace uses rayon).
pub trait IndexedParallelIterator: Send + Sized {
    /// Element type produced at the leaves.
    type Item: Send;
    /// The sequential iterator a leaf lowers to.
    type Seq: Iterator<Item = Self::Item>;

    /// Exact number of items.
    fn len(&self) -> usize;

    /// True when there are no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split into `[0, index)` and `[index, len)`. `index <= len`.
    fn split_at(self, index: usize) -> (Self, Self);

    /// Lower to a sequential iterator over all remaining items.
    fn into_seq(self) -> Self::Seq;

    /// Smallest leaf this chain should be split into (from `with_min_len`).
    fn min_len_hint(&self) -> usize {
        1
    }

    /// Largest leaf this chain allows (from `with_max_len`).
    fn max_len_hint(&self) -> usize {
        usize::MAX
    }

    // ---- adapters ------------------------------------------------------

    /// Map each item through `f` (shared across splits, like rayon).
    fn map<R, F>(self, f: F) -> Map<Self, F, R>
    where
        F: Fn(Self::Item) -> R + Send + Sync,
        R: Send,
    {
        Map {
            base: self,
            f: Arc::new(f),
            _result: PhantomData,
        }
    }

    /// Pair items positionally with `other` (truncates to the shorter).
    fn zip<B>(self, other: B) -> Zip<Self, B>
    where
        B: IndexedParallelIterator,
    {
        Zip { a: self, b: other }
    }

    /// Attach the global index to each item.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    /// Never split below `min` items per leaf.
    fn with_min_len(self, min: usize) -> Tuned<Self> {
        Tuned {
            base: self,
            min,
            max: usize::MAX,
        }
    }

    /// Never leave more than `max` items in one leaf.
    fn with_max_len(self, max: usize) -> Tuned<Self> {
        Tuned {
            base: self,
            min: 1,
            max,
        }
    }

    // ---- terminals -----------------------------------------------------

    /// Apply `op` to every item, in parallel leaves.
    fn for_each<OP>(self, op: OP)
    where
        OP: Fn(Self::Item) + Send + Sync,
    {
        if run_inline() {
            self.into_seq().for_each(op);
            return;
        }
        let grain = leaf_grain(&self);
        for_each_split(self, grain, &op);
    }

    /// Collect into `C` (only `Vec` is offered, which is all the workspace
    /// uses). Element positions are exact, so the result is identical to
    /// the sequential collect.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Sum all items over a fixed binary reduction tree (deterministic for
    /// non-associative sums too, given a fixed width and hints).
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        if run_inline() {
            return self.into_seq().sum();
        }
        let grain = leaf_grain(&self);
        sum_split(self, grain)
    }
}

fn for_each_split<I, OP>(iter: I, grain: usize, op: &OP)
where
    I: IndexedParallelIterator,
    OP: Fn(I::Item) + Sync,
{
    if iter.len() <= grain {
        iter.into_seq().for_each(op);
        return;
    }
    let mid = iter.len() / 2;
    let (left, right) = iter.split_at(mid);
    msf_pool::join(
        || for_each_split(left, grain, op),
        || for_each_split(right, grain, op),
    );
}

fn sum_split<I, S>(iter: I, grain: usize) -> S
where
    I: IndexedParallelIterator,
    S: Send + std::iter::Sum<I::Item> + std::iter::Sum<S>,
{
    if iter.len() <= grain {
        return iter.into_seq().sum();
    }
    let mid = iter.len() / 2;
    let (left, right) = iter.split_at(mid);
    let (a, b) = msf_pool::join(
        || sum_split::<I, S>(left, grain),
        || sum_split::<I, S>(right, grain),
    );
    std::iter::once(a).chain(std::iter::once(b)).sum()
}

/// Conversion from a parallel iterator, rayon-style.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build `Self` from the items of `iter`.
    fn from_par_iter<I>(iter: I) -> Self
    where
        I: IndexedParallelIterator<Item = T>;
}

/// Shared base pointer for the indexed parallel writes in `collect`.
struct SendPtr<T>(*mut T);

// SAFETY: leaves write disjoint index ranges of a buffer that outlives the
// drive; the pointer itself is just an address.
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I>(iter: I) -> Vec<T>
    where
        I: IndexedParallelIterator<Item = T>,
    {
        if run_inline() {
            return iter.into_seq().collect();
        }
        let len = iter.len();
        let mut out: Vec<T> = Vec::with_capacity(len);
        let grain = leaf_grain(&iter);
        let base = SendPtr(out.as_mut_ptr());
        collect_split(iter, 0, grain, &base);
        // SAFETY: the leaves wrote every index in 0..len exactly once (each
        // leaf covers its disjoint [offset, offset+len) range and asserts
        // its item count). If a leaf panicked, set_len is never reached and
        // the Vec frees its raw capacity without reading the elements —
        // written items leak, which is safe.
        unsafe { out.set_len(len) };
        out
    }
}

fn collect_split<I>(iter: I, offset: usize, grain: usize, base: &SendPtr<I::Item>)
where
    I: IndexedParallelIterator,
{
    let len = iter.len();
    if len <= grain {
        let end = offset + len;
        let mut idx = offset;
        for item in iter.into_seq() {
            assert!(idx < end, "source yielded more items than its len()");
            // SAFETY: idx is inside this leaf's exclusive range, and the
            // destination buffer has capacity for the full drive.
            unsafe { base.0.add(idx).write(item) };
            idx += 1;
        }
        assert_eq!(idx, end, "source yielded fewer items than its len()");
        return;
    }
    let mid = len / 2;
    let (left, right) = iter.split_at(mid);
    msf_pool::join(
        || collect_split(left, offset, grain, base),
        || collect_split(right, offset + mid, grain, base),
    );
}

// ======================================================================
// Sources
// ======================================================================

/// Integer types whose ranges can be parallel-iterated.
pub trait RangeInt: Copy + Send + 'static {
    /// `b - a` as a usize (`a <= b`).
    fn steps_between(a: Self, b: Self) -> usize;
    /// `self + n`.
    fn forward(self, n: usize) -> Self;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl RangeInt for $t {
            #[inline]
            fn steps_between(a: Self, b: Self) -> usize {
                (b - a) as usize
            }
            #[inline]
            fn forward(self, n: usize) -> Self {
                self + n as $t
            }
        }
    )*};
}

range_int!(usize, u32, u64);

/// Parallel iterator over an integer range.
pub struct RangePar<T> {
    start: T,
    end: T,
}

impl<T> IndexedParallelIterator for RangePar<T>
where
    T: RangeInt,
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    type Seq = std::ops::Range<T>;

    fn len(&self) -> usize {
        T::steps_between(self.start, self.end)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        debug_assert!(index <= self.len());
        let mid = self.start.forward(index);
        (
            RangePar {
                start: self.start,
                end: mid,
            },
            RangePar {
                start: mid,
                end: self.end,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.start..self.end
    }
}

/// `into_par_iter()` — rayon's conversion entry point.
pub trait IntoParallelIterator {
    /// The parallel iterator this converts into.
    type Iter: IndexedParallelIterator<Item = Self::Item>;
    /// Its element type.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

macro_rules! range_into_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Iter = RangePar<$t>;
            type Item = $t;
            fn into_par_iter(self) -> RangePar<$t> {
                assert!(self.start <= self.end, "decreasing range");
                RangePar { start: self.start, end: self.end }
            }
        }
    )*};
}

range_into_par!(usize, u32, u64);

/// Parallel iterator over `&[T]`.
pub struct SliceParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> IndexedParallelIterator for SliceParIter<'a, T> {
    type Item = &'a T;
    type Seq = std::slice::Iter<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(index);
        (SliceParIter { slice: l }, SliceParIter { slice: r })
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.iter()
    }
}

/// Parallel iterator over `&mut [T]`.
pub struct SliceParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> IndexedParallelIterator for SliceParIterMut<'a, T> {
    type Item = &'a mut T;
    type Seq = std::slice::IterMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at_mut(index);
        (SliceParIterMut { slice: l }, SliceParIterMut { slice: r })
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.iter_mut()
    }
}

/// Parallel iterator over `chunk_size`-sized pieces of `&[T]`.
pub struct ChunksPar<'a, T> {
    slice: &'a [T],
    chunk: usize,
}

impl<'a, T: Sync> IndexedParallelIterator for ChunksPar<'a, T> {
    type Item = &'a [T];
    type Seq = std::slice::Chunks<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        // `index` counts chunks; convert to elements (last chunk may be
        // short, but a split index is always <= len so this stays in range
        // except exactly at len, clamped here).
        let at = (index * self.chunk).min(self.slice.len());
        let (l, r) = self.slice.split_at(at);
        (
            ChunksPar {
                slice: l,
                chunk: self.chunk,
            },
            ChunksPar {
                slice: r,
                chunk: self.chunk,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.chunks(self.chunk)
    }
}

/// Parallel iterator over `chunk_size`-sized pieces of `&mut [T]`.
pub struct ChunksMutPar<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> IndexedParallelIterator for ChunksMutPar<'a, T> {
    type Item = &'a mut [T];
    type Seq = std::slice::ChunksMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let at = (index * self.chunk).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(at);
        (
            ChunksMutPar {
                slice: l,
                chunk: self.chunk,
            },
            ChunksMutPar {
                slice: r,
                chunk: self.chunk,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.chunks_mut(self.chunk)
    }
}

/// `par_iter` / `par_chunks` over shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over references to the elements.
    fn par_iter(&self) -> SliceParIter<'_, T>;
    /// Parallel iterator over `chunk_size`-sized sub-slices.
    fn par_chunks(&self, chunk_size: usize) -> ChunksPar<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SliceParIter<'_, T> {
        SliceParIter { slice: self }
    }

    fn par_chunks(&self, chunk_size: usize) -> ChunksPar<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ChunksPar {
            slice: self,
            chunk: chunk_size,
        }
    }
}

/// `par_iter_mut` / `par_chunks_mut` over exclusive slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable references to the elements.
    fn par_iter_mut(&mut self) -> SliceParIterMut<'_, T>;
    /// Parallel iterator over `chunk_size`-sized mutable sub-slices.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMutPar<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> SliceParIterMut<'_, T> {
        SliceParIterMut { slice: self }
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMutPar<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ChunksMutPar {
            slice: self,
            chunk: chunk_size,
        }
    }
}

// ---- owned Vec source ------------------------------------------------

/// The raw allocation of a consumed `Vec`, shared by all splits. Dropping
/// it frees the allocation only — element drops are owed by whichever
/// `VecParIter` / `VecSeq` still covers them.
struct RawVec<T> {
    ptr: *mut T,
    cap: usize,
}

// SAFETY: the splits partition 0..len disjointly, so cross-thread access
// to the buffer never aliases; T crosses threads by value (T: Send).
unsafe impl<T: Send> Send for RawVec<T> {}
unsafe impl<T: Send> Sync for RawVec<T> {}

impl<T> Drop for RawVec<T> {
    fn drop(&mut self) {
        // SAFETY: ptr/cap came from Vec::into_parts below; len 0 means no
        // element is dropped here (the iterators own those drops).
        drop(unsafe { Vec::from_raw_parts(self.ptr, 0, self.cap) });
    }
}

/// Parallel iterator owning a `Vec`'s elements (range `[start, end)`).
pub struct VecParIter<T: Send> {
    buf: Arc<RawVec<T>>,
    start: usize,
    end: usize,
}

// SAFETY: disjoint-range ownership of Send elements; see RawVec.
unsafe impl<T: Send> Send for VecParIter<T> {}

impl<T: Send> Drop for VecParIter<T> {
    fn drop(&mut self) {
        // Reached only when a split was abandoned (e.g. a sibling panic):
        // drop the elements this split still owns.
        // SAFETY: this iterator exclusively owns [start, end).
        unsafe {
            std::ptr::slice_from_raw_parts_mut(self.buf.ptr.add(self.start), self.end - self.start)
                .drop_in_place();
        }
    }
}

impl<T: Send> IndexedParallelIterator for VecParIter<T> {
    type Item = T;
    type Seq = VecSeq<T>;

    fn len(&self) -> usize {
        self.end - self.start
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        debug_assert!(index <= self.len());
        let this = ManuallyDrop::new(self);
        // SAFETY: `this` is never dropped, so the Arc is moved out exactly
        // once (plus one fresh clone for the other half).
        let buf = unsafe { std::ptr::read(&this.buf) };
        let buf2 = Arc::clone(&buf);
        let mid = this.start + index;
        (
            VecParIter {
                buf,
                start: this.start,
                end: mid,
            },
            VecParIter {
                buf: buf2,
                start: mid,
                end: this.end,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        let this = ManuallyDrop::new(self);
        // SAFETY: as in split_at — sole move of the Arc out of a forgotten
        // owner.
        let buf = unsafe { std::ptr::read(&this.buf) };
        VecSeq {
            buf,
            cur: this.start,
            end: this.end,
        }
    }
}

/// Sequential leaf iterator for [`VecParIter`]: reads elements out by value.
pub struct VecSeq<T: Send> {
    buf: Arc<RawVec<T>>,
    cur: usize,
    end: usize,
}

// SAFETY: as for VecParIter.
unsafe impl<T: Send> Send for VecSeq<T> {}

impl<T: Send> Iterator for VecSeq<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        if self.cur == self.end {
            return None;
        }
        // SAFETY: [cur, end) is exclusively owned and not yet read; each
        // element is read out exactly once.
        let item = unsafe { self.buf.ptr.add(self.cur).read() };
        self.cur += 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.end - self.cur;
        (n, Some(n))
    }
}

impl<T: Send> Drop for VecSeq<T> {
    fn drop(&mut self) {
        // Drop whatever was not consumed.
        // SAFETY: [cur, end) still holds live, exclusively-owned elements.
        unsafe {
            std::ptr::slice_from_raw_parts_mut(self.buf.ptr.add(self.cur), self.end - self.cur)
                .drop_in_place();
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecParIter<T>;
    type Item = T;

    fn into_par_iter(self) -> VecParIter<T> {
        let mut vec = ManuallyDrop::new(self);
        let (ptr, len, cap) = (vec.as_mut_ptr(), vec.len(), vec.capacity());
        VecParIter {
            buf: Arc::new(RawVec { ptr, cap }),
            start: 0,
            end: len,
        }
    }
}

// ======================================================================
// Adapters
// ======================================================================

/// Mapped parallel iterator (`f` is shared by all splits via `Arc`).
pub struct Map<I, F, R> {
    base: I,
    f: Arc<F>,
    _result: PhantomData<fn() -> R>,
}

impl<I, F, R> IndexedParallelIterator for Map<I, F, R>
where
    I: IndexedParallelIterator,
    F: Fn(I::Item) -> R + Send + Sync,
    R: Send,
{
    type Item = R;
    type Seq = MapSeq<I::Seq, F, R>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            Map {
                base: l,
                f: Arc::clone(&self.f),
                _result: PhantomData,
            },
            Map {
                base: r,
                f: self.f,
                _result: PhantomData,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        MapSeq {
            it: self.base.into_seq(),
            f: self.f,
            _result: PhantomData,
        }
    }

    fn min_len_hint(&self) -> usize {
        self.base.min_len_hint()
    }

    fn max_len_hint(&self) -> usize {
        self.base.max_len_hint()
    }
}

/// Sequential leaf for [`Map`].
pub struct MapSeq<It, F, R> {
    it: It,
    f: Arc<F>,
    _result: PhantomData<fn() -> R>,
}

impl<It, F, R> Iterator for MapSeq<It, F, R>
where
    It: Iterator,
    F: Fn(It::Item) -> R,
{
    type Item = R;

    fn next(&mut self) -> Option<R> {
        self.it.next().map(|item| (self.f)(item))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.it.size_hint()
    }
}

/// Positionally zipped pair of parallel iterators.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> IndexedParallelIterator for Zip<A, B>
where
    A: IndexedParallelIterator,
    B: IndexedParallelIterator,
{
    type Item = (A::Item, B::Item);
    type Seq = std::iter::Zip<A::Seq, B::Seq>;

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(index);
        let (bl, br) = self.b.split_at(index);
        (Zip { a: al, b: bl }, Zip { a: ar, b: br })
    }

    fn into_seq(self) -> Self::Seq {
        self.a.into_seq().zip(self.b.into_seq())
    }

    fn min_len_hint(&self) -> usize {
        self.a.min_len_hint().max(self.b.min_len_hint())
    }

    fn max_len_hint(&self) -> usize {
        self.a.max_len_hint().min(self.b.max_len_hint())
    }
}

/// Globally indexed parallel iterator.
pub struct Enumerate<I> {
    base: I,
    offset: usize,
}

impl<I> IndexedParallelIterator for Enumerate<I>
where
    I: IndexedParallelIterator,
{
    type Item = (usize, I::Item);
    type Seq = EnumerateSeq<I::Seq>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            Enumerate {
                base: l,
                offset: self.offset,
            },
            Enumerate {
                base: r,
                offset: self.offset + index,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        EnumerateSeq {
            it: self.base.into_seq(),
            next: self.offset,
        }
    }

    fn min_len_hint(&self) -> usize {
        self.base.min_len_hint()
    }

    fn max_len_hint(&self) -> usize {
        self.base.max_len_hint()
    }
}

/// Sequential leaf for [`Enumerate`] carrying the split's global offset.
pub struct EnumerateSeq<It> {
    it: It,
    next: usize,
}

impl<It: Iterator> Iterator for EnumerateSeq<It> {
    type Item = (usize, It::Item);

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.it.next()?;
        let idx = self.next;
        self.next += 1;
        Some((idx, item))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.it.size_hint()
    }
}

/// Split-granularity hints (`with_min_len` / `with_max_len`).
pub struct Tuned<I> {
    base: I,
    min: usize,
    max: usize,
}

impl<I> IndexedParallelIterator for Tuned<I>
where
    I: IndexedParallelIterator,
{
    type Item = I::Item;
    type Seq = I::Seq;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            Tuned {
                base: l,
                min: self.min,
                max: self.max,
            },
            Tuned {
                base: r,
                min: self.min,
                max: self.max,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.base.into_seq()
    }

    fn min_len_hint(&self) -> usize {
        self.base.min_len_hint().max(self.min)
    }

    fn max_len_hint(&self) -> usize {
        self.base.max_len_hint().min(self.max)
    }
}
