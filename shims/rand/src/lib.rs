//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment cannot reach a crates.io registry, so the
//! workspace replaces the registry `rand` with this path crate (see the
//! `[workspace.dependencies]` table). It keeps the call-site API — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`,
//! `SliceRandom::{shuffle, choose}`, `rand::prelude::*` — but is backed by
//! xoshiro256** seeded through SplitMix64 instead of ChaCha12. Streams are
//! deterministic per seed and portable across platforms; they are NOT the
//! same streams the real `rand` produces, and nothing here is
//! cryptographically secure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed; equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their "natural" range by [`Rng::gen`]
/// (floats in `[0, 1)`, integers over the full domain, fair bools).
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types samplable uniformly from a half-open `start..end` range by
/// [`Rng::gen_range`].
pub trait UniformSample: Sized {
    /// Draw one value from `start..end` (`start < end`).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start < end, "gen_range called with empty range");
                let span = (end as i128 - start as i128) as u128;
                // Modulo bias is < 2^-64 per draw for the spans this suite
                // uses (all far below 2^64) — irrelevant for test inputs.
                let off = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + off) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: f64, end: f64) -> f64 {
        assert!(start < end, "gen_range called with empty range");
        let u = f64::sample_standard(rng);
        let x = start + u * (end - start);
        // Guard the open upper bound against rounding.
        if x >= end {
            start
        } else {
            x.max(start)
        }
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the type's standard distribution.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range` (half-open).
    #[inline]
    fn gen_range<T: UniformSample>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — fast, 256-bit state, good equidistribution. Replaces
    /// the real crate's ChaCha12-based `StdRng` (different streams, same
    /// determinism guarantees for a fixed seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API compatibility.
    pub type SmallRng = StdRng;
}

/// Sequence-related sampling (`shuffle`, `choose`).
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffle a uniformly chosen `amount`-subset into the front of the
        /// slice; returns `(shuffled, rest)`.
        fn partial_shuffle<R: Rng>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn partial_shuffle<R: Rng>(&mut self, rng: &mut R, amount: usize) -> (&mut [T], &mut [T]) {
            let amount = amount.min(self.len());
            for i in 0..amount {
                let j = rng.gen_range(i..self.len());
                self.swap(i, j);
            }
            self.split_at_mut(amount)
        }
    }
}

/// The glob-import surface mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(y > 0.0 && y < 1.0);
            let z = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn bool_and_choose() {
        let mut rng = StdRng::seed_from_u64(2);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads));
        assert!([1, 2, 3].choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
