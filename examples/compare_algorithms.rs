//! CLI: compare every MSF algorithm on a chosen generator and scale.
//!
//! ```sh
//! cargo run --release --example compare_algorithms -- random 100000 600000
//! cargo run --release --example compare_algorithms -- mesh 1000
//! cargo run --release --example compare_algorithms -- str0 100000
//! cargo run --release --example compare_algorithms -- geometric 100000 6
//! ```

use msf_suite::core::{minimum_spanning_forest, Algorithm, MsfConfig};
use msf_suite::graph::generators::{
    geometric_knn, mesh2d, mesh2d_random, mesh3d_random, random_graph, structured, GeneratorConfig,
    StructuredKind,
};
use msf_suite::graph::EdgeList;

fn usage() -> ! {
    eprintln!(
        "usage: compare_algorithms <kind> [args…]\n\
         kinds: random <n> <m> | mesh <side> | 2d60 <side> | 3d40 <side> |\n\
                geometric <n> <k> | str0|str1|str2|str3 <n>"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = GeneratorConfig::with_seed(2026);
    let arg = |i: usize| -> usize {
        args.get(i)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| usage())
    };
    let (label, g): (String, EdgeList) = match args.first().map(String::as_str) {
        Some("random") => (
            format!("random n={} m={}", arg(1), arg(2)),
            random_graph(&cfg, arg(1), arg(2)),
        ),
        Some("mesh") => (
            format!("mesh {0}x{0}", arg(1)),
            mesh2d(&cfg, arg(1), arg(1)),
        ),
        Some("2d60") => (
            format!("2D60 {0}x{0}", arg(1)),
            mesh2d_random(&cfg, arg(1), arg(1), 0.6),
        ),
        Some("3d40") => (
            format!("3D40 {0}^3", arg(1)),
            mesh3d_random(&cfg, arg(1), arg(1), arg(1), 0.4),
        ),
        Some("geometric") => (
            format!("geometric n={} k={}", arg(1), arg(2)),
            geometric_knn(&cfg, arg(1), arg(2)),
        ),
        Some(s @ ("str0" | "str1" | "str2" | "str3")) => {
            let kind = match s {
                "str0" => StructuredKind::Str0,
                "str1" => StructuredKind::Str1,
                "str2" => StructuredKind::Str2,
                _ => StructuredKind::Str3,
            };
            (format!("{s} n={}", arg(1)), structured(&cfg, kind, arg(1)))
        }
        _ => usage(),
    };

    println!(
        "{label}: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );
    println!(
        "{:<10} {:>10} {:>16} {:>12} {:>8}",
        "algorithm", "wall [s]", "modeled cost", "MSF weight", "trees"
    );
    let mut reference: Option<Vec<u32>> = None;
    for algo in Algorithm::ALL {
        let r = minimum_spanning_forest(&g, algo, &MsfConfig::with_threads(4));
        println!(
            "{:<10} {:>10.4} {:>16} {:>12.2} {:>8}",
            algo.name(),
            r.stats.total_seconds,
            r.stats.modeled_cost,
            r.total_weight,
            r.components
        );
        match &reference {
            None => reference = Some(r.edges),
            Some(expect) => assert_eq!(&r.edges, expect, "{algo} disagrees"),
        }
    }
    println!("all algorithms returned the identical forest ✓");
}
