//! Wireless sensor-network backbone design — one of the paper's motivating
//! applications (coverage problems in ad-hoc sensor networks, multicast
//! trees in high-speed networks).
//!
//! Scenario: sensors are scattered over a unit-square field and can talk to
//! their k nearest neighbors; link cost is transmission energy ~ distance.
//! The minimum spanning forest is the cheapest backbone that connects every
//! sensor cluster; per-cluster statistics tell the operator how many relays
//! each island of coverage needs.
//!
//! ```sh
//! cargo run --release --example network_design
//! ```

use msf_suite::core::{minimum_spanning_forest, verify, Algorithm, MsfConfig};
use msf_suite::graph::generators::{geometric_knn, GeneratorConfig};
use msf_suite::primitives::unionfind::UnionFind;

fn main() {
    let sensors = 20_000;
    let reach = 6; // each sensor reaches its 6 nearest peers (paper's k = 6)
    let g = geometric_knn(&GeneratorConfig::with_seed(7), sensors, reach);
    println!(
        "field: {sensors} sensors, {} candidate links, degree ≥ {reach}",
        g.num_edges()
    );

    // Compute the backbone with the paper's best all-round performer on
    // geometric inputs.
    let cfg = MsfConfig::with_threads(4);
    let backbone = minimum_spanning_forest(&g, Algorithm::BorAlm, &cfg);
    verify::verify_msf(&g, &backbone).expect("backbone is the unique MSF");

    println!(
        "backbone: {} links, total energy {:.3}, {} connected clusters, {:.3}s",
        backbone.edges.len(),
        backbone.total_weight,
        backbone.components,
        backbone.stats.total_seconds
    );

    // Per-cluster relay statistics.
    let mut uf = UnionFind::new(sensors);
    for &id in &backbone.edges {
        let e = g.edge(id);
        uf.union(e.u as usize, e.v as usize);
    }
    let mut cluster_size = std::collections::HashMap::new();
    for v in 0..sensors {
        *cluster_size.entry(uf.find(v)).or_insert(0usize) += 1;
    }
    let mut sizes: Vec<usize> = cluster_size.into_values().collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "largest clusters: {:?}{}",
        &sizes[..sizes.len().min(5)],
        if sizes.len() > 5 { " …" } else { "" }
    );

    // Link-budget report: the heaviest backbone link bounds the radio power
    // every relay must support.
    let max_link = backbone
        .edges
        .iter()
        .map(|&id| g.edge(id).w)
        .fold(0.0f64, f64::max);
    let mean_link = backbone.total_weight / backbone.edges.len() as f64;
    println!("link budget: mean {mean_link:.4}, worst-case {max_link:.4} (unit-square distance)");
}
