//! Tracking the likely spread of a toxin through a contact network — the
//! paper's national-security motivation ("detecting the spread of toxins
//! through populations in the case of biological/chemical warfare",
//! following Chen & Morris's MST-vs-pathfinder visualization work).
//!
//! Scenario: a synthetic population contact network (geometric proximity
//! for neighborhoods + random long-range contacts for travel). Edge weight
//! encodes transmission *resistance* (inverse contact intensity). The MSF
//! is the backbone of most-likely transmission routes; from a known index
//! case, walking the tree in weight order reconstructs the expected
//! infection frontier, and the heaviest backbone edges are the best
//! quarantine cut points.
//!
//! ```sh
//! cargo run --release --example toxin_spread
//! ```

use msf_suite::core::{minimum_spanning_forest, Algorithm, MsfConfig};
use msf_suite::graph::generators::{geometric_knn, random_graph, GeneratorConfig};
use msf_suite::graph::EdgeList;

fn main() {
    let population = 30_000;
    let gen = GeneratorConfig::with_seed(13);

    // Neighborhood contacts: geometric proximity, resistance = distance.
    let local = geometric_knn(&gen, population, 5);
    // Travel contacts: sparse random long-range links with high intensity
    // variance.
    let travel = random_graph(
        &GeneratorConfig::with_seed(gen.seed + 1),
        population,
        population / 4,
    );

    // Union of the two layers (the travel layer may duplicate a local link;
    // keep both — the MSF picks the lower-resistance copy).
    let mut triples: Vec<(u32, u32, f64)> = local.edges().iter().map(|e| (e.u, e.v, e.w)).collect();
    triples.extend(travel.edges().iter().map(|e| (e.u, e.v, 0.2 + e.w)));
    let contacts = EdgeList::from_triples(population, triples);
    println!(
        "contact network: {population} people, {} weighted contacts",
        contacts.num_edges()
    );

    // Most-likely transmission backbone.
    let backbone =
        minimum_spanning_forest(&contacts, Algorithm::MstBc, &MsfConfig::with_threads(4));
    println!(
        "transmission backbone: {} links, {} isolated clusters, {:.3}s (MST-BC)",
        backbone.edges.len(),
        backbone.components,
        backbone.stats.total_seconds
    );

    // Expected spread from an index case: BFS over the backbone, reporting
    // how many people are reachable within increasing resistance budgets.
    let index_case = 0u32;
    let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); population];
    for &id in &backbone.edges {
        let e = contacts.edge(id);
        adj[e.u as usize].push((e.v, e.w));
        adj[e.v as usize].push((e.u, e.w));
    }
    // Dijkstra-style expansion over the tree (path resistance is additive).
    let mut dist = vec![f64::INFINITY; population];
    dist[index_case as usize] = 0.0;
    let mut heap = std::collections::BinaryHeap::new();
    heap.push(std::cmp::Reverse((ordered(0.0), index_case)));
    while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
        let d = f64::from_bits(d);
        if d > dist[v as usize] {
            continue;
        }
        for &(u, w) in &adj[v as usize] {
            let nd = d + w;
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                heap.push(std::cmp::Reverse((ordered(nd), u)));
            }
        }
    }
    for budget in [0.5, 1.0, 2.0, 4.0, 8.0] {
        let reached = dist.iter().filter(|&&d| d <= budget).count();
        println!(
            "  resistance budget {budget:>4}: {reached:>6} people reached ({:.1}%)",
            100.0 * reached as f64 / population as f64
        );
    }

    // Quarantine analysis: the k heaviest backbone links split the most
    // probable transmission routes into k+1 cells.
    let mut by_weight: Vec<u32> = backbone.edges.clone();
    by_weight.sort_unstable_by_key(|&id| std::cmp::Reverse(contacts.edge(id).key()));
    println!("top quarantine cut points (heaviest backbone links):");
    for &id in by_weight.iter().take(5) {
        let e = contacts.edge(id);
        println!("  contact {} — {} (resistance {:.3})", e.u, e.v, e.w);
    }
}

/// f64 → monotone u64 bits for the max-heap workaround (non-negative input).
fn ordered(x: f64) -> u64 {
    x.to_bits()
}
