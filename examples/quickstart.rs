//! Quickstart: generate a sparse random graph, compute its minimum spanning
//! forest with each algorithm family, and verify the results agree.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use msf_suite::core::{best_sequential, minimum_spanning_forest, verify, Algorithm, MsfConfig};
use msf_suite::graph::generators::{random_graph, GeneratorConfig};

fn main() {
    // A random sparse graph: 50K vertices, 300K edges (density 6, the
    // middle of the paper's random-graph range).
    let n = 50_000;
    let m = 300_000;
    let g = random_graph(&GeneratorConfig::with_seed(42), n, m);
    println!(
        "graph: {} vertices, {} edges (m/n = {:.1})",
        n,
        m,
        g.density()
    );

    // The paper's yardstick: the best of three sequential algorithms.
    let (best_name, best) = best_sequential(&g);
    println!(
        "best sequential: {best_name} in {:.3}s, forest weight {:.3}, {} trees",
        best.stats.total_seconds, best.total_weight, best.components
    );

    // Run every parallel algorithm and verify against the unique MSF.
    let cfg = MsfConfig::with_threads(4);
    for algo in Algorithm::PARALLEL {
        let r = minimum_spanning_forest(&g, algo, &cfg);
        verify::verify_msf(&g, &r).expect("verified minimum spanning forest");
        println!(
            "{:8} p={}: {:.3}s wall, modeled cost {:>12}, {} MSF edges",
            algo.name(),
            cfg.threads,
            r.stats.total_seconds,
            r.stats.modeled_cost,
            r.edges.len()
        );
        assert_eq!(
            r.edges, best.edges,
            "all algorithms agree on the unique MSF"
        );
    }
    println!("all parallel algorithms verified against the sequential reference ✓");
}
