//! MST-based image segmentation on a pixel mesh — the paper cites MST
//! methods in medical imaging (phase unwrapping) and computer-vision mesh
//! processing as motivating applications.
//!
//! Scenario: a synthetic image of smooth blobs on a noisy background is
//! turned into the paper's 2D-mesh graph (4-neighborhood); each edge is
//! weighted by the intensity gradient between its pixels. Cutting the `k-1`
//! heaviest MSF edges yields a k-region segmentation (single-linkage
//! clustering), a classic MST application.
//!
//! ```sh
//! cargo run --release --example image_mesh
//! ```

use msf_suite::core::{minimum_spanning_forest, Algorithm, MsfConfig};
use msf_suite::graph::EdgeList;
use msf_suite::primitives::unionfind::UnionFind;

/// Deterministic synthetic image: three Gaussian blobs plus hash noise.
fn synth_image(side: usize) -> Vec<f64> {
    let blobs = [(0.25, 0.30, 0.12), (0.70, 0.60, 0.18), (0.45, 0.80, 0.09)];
    let mut img = vec![0.0f64; side * side];
    for r in 0..side {
        for c in 0..side {
            let (x, y) = (c as f64 / side as f64, r as f64 / side as f64);
            let mut v = 0.0;
            for &(bx, by, s) in &blobs {
                let d2 = (x - bx) * (x - bx) + (y - by) * (y - by);
                v += (-d2 / (2.0 * s * s)).exp();
            }
            // Small deterministic noise so no two gradients tie exactly.
            let h = (r.wrapping_mul(2654435761) ^ c.wrapping_mul(40503)) % 1000;
            img[r * side + c] = v + h as f64 * 1e-5;
        }
    }
    img
}

fn main() {
    let side = 512;
    let img = synth_image(side);

    // Build the 4-neighbor mesh with gradient weights.
    let mut triples = Vec::with_capacity(2 * side * side);
    let id = |r: usize, c: usize| (r * side + c) as u32;
    for r in 0..side {
        for c in 0..side {
            if c + 1 < side {
                triples.push((
                    id(r, c),
                    id(r, c + 1),
                    (img[r * side + c] - img[r * side + c + 1]).abs(),
                ));
            }
            if r + 1 < side {
                triples.push((
                    id(r, c),
                    id(r + 1, c),
                    (img[r * side + c] - img[(r + 1) * side + c]).abs(),
                ));
            }
        }
    }
    let g = EdgeList::from_triples(side * side, triples);
    println!(
        "image mesh: {}x{side} pixels, {} gradient edges",
        side,
        g.num_edges()
    );

    // MSF over the mesh — Bor-ALM is the paper's winner on mesh inputs.
    let msf = minimum_spanning_forest(&g, Algorithm::BorAlm, &MsfConfig::with_threads(4));
    println!(
        "MSF: {} edges, weight {:.3}, {:.3}s",
        msf.edges.len(),
        msf.total_weight,
        msf.stats.total_seconds
    );

    // Single-linkage segmentation: drop the k-1 heaviest forest edges.
    let regions = 4;
    let mut by_weight: Vec<u32> = msf.edges.clone();
    by_weight.sort_unstable_by_key(|&a| g.edge(a).key());
    let keep = &by_weight[..by_weight.len() - (regions - 1)];
    let mut uf = UnionFind::new(side * side);
    for &e in keep {
        let e = g.edge(e);
        uf.union(e.u as usize, e.v as usize);
    }
    // Region statistics.
    let mut counts = std::collections::HashMap::new();
    for v in 0..side * side {
        *counts.entry(uf.find(v)).or_insert(0usize) += 1;
    }
    let mut sizes: Vec<usize> = counts.into_values().collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!("segmentation into {regions} regions, pixel counts: {sizes:?}");
    assert_eq!(sizes.len(), regions);
    assert_eq!(sizes.iter().sum::<usize>(), side * side);
}
