//! # msf-suite
//!
//! Umbrella crate for the reproduction of Bader & Cong, *Fast Shared-Memory
//! Algorithms for Computing the Minimum Spanning Forest of Sparse Graphs*
//! (IPPS 2004). It re-exports the three library crates so examples and
//! downstream users can depend on a single name:
//!
//! * [`primitives`] — SPMD team, parallel sample sort, prefix sums,
//!   connected components, heaps, union–find, arenas, work stealing.
//! * [`graph`] — edge-list / adjacency-array / flexible-adjacency-list graph
//!   representations, the paper's generator suite, and DIMACS-style I/O.
//! * [`core`] — the eight MSF algorithms (Prim, Kruskal, sequential Borůvka,
//!   Bor-EL, Bor-AL, Bor-ALM, Bor-FAL, MST-BC) plus verification and
//!   per-iteration statistics.
//!
//! ```
//! use msf_suite::graph::generators::{random_graph, GeneratorConfig};
//! use msf_suite::core::{minimum_spanning_forest, Algorithm, MsfConfig};
//!
//! let g = random_graph(&GeneratorConfig::with_seed(1), 1_000, 5_000);
//! let msf = minimum_spanning_forest(&g, Algorithm::BorFal, &MsfConfig::default());
//! assert_eq!(msf.edges.len(), 1_000 - msf.components as usize);
//! ```

pub use msf_core as core;
pub use msf_graph as graph;
pub use msf_primitives as primitives;
