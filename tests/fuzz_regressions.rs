//! Regression corpus replay + a quick always-on fuzz campaign.
//!
//! `tests/corpus/` holds DIMACS reproducers in the `c msf-fuzz v1` header
//! format the fuzzer writes for shrunk failures. Replaying them re-runs each
//! recorded algorithm under its exact recorded configuration and demands
//! agreement with the unique MSF plus a passing optimality certificate — so
//! once a bug is fixed, its minimal reproducer keeps guarding the fix.

use msf_suite::core::fuzz::{load_corpus, replay_corpus, run_fuzz, FuzzConfig};

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn committed_corpus_replays_clean() {
    let replayed = replay_corpus(&corpus_dir()).unwrap();
    assert!(
        replayed >= 4,
        "expected the committed reproducers, got {replayed}"
    );
}

#[test]
fn corpus_headers_parse_with_exact_configs() {
    let cases = load_corpus(&corpus_dir()).unwrap();
    // The tie-square case pins the configuration corner that motivated it:
    // MST-BC at odd p with a base size below the vertex count.
    let tie = cases
        .iter()
        .find(|c| c.path.file_name().is_some_and(|f| f == "tie-square.gr"))
        .expect("tie-square.gr is committed");
    assert_eq!(tie.algo, "mst-bc");
    assert_eq!(tie.config.threads, 3);
    assert_eq!(tie.config.base_size, 2);
    assert_eq!(tie.graph.num_vertices(), 4);
    assert_eq!(tie.graph.num_edges(), 4);
    // The parallel-ties case pins the radix compaction path of Bor-EL.
    let ties = cases
        .iter()
        .find(|c| c.path.file_name().is_some_and(|f| f == "parallel-ties.gr"))
        .expect("parallel-ties.gr is committed");
    assert_eq!(ties.algo, "bor-el");
    assert!(ties.config.radix_compact);
}

/// A small deterministic campaign runs on every test invocation: all
/// algorithms, odd thread counts, tie-heavy and disconnected generators.
#[test]
fn quick_campaign_stays_clean() {
    let report = run_fuzz(&FuzzConfig {
        cases: 40,
        seed: 0xBADC_0FFE,
        max_vertices: 64,
        threads: vec![1, 3, 7],
        ..FuzzConfig::default()
    })
    .unwrap();
    assert_eq!(report.cases, 40);
    assert_eq!(report.certified, report.runs, "{:?}", report.failures);
    assert!(report.failures.is_empty(), "{:?}", report.failures);
}
