//! Multi-thread contention stress for the lock-free substrate behind the
//! speed contenders: `atomic::MinSlots` (write-min races) and
//! `connectivity::concurrent::ConcurrentUnionFind` (CAS hooking).
//!
//! Three contracts are held here:
//!
//! * **Determinism under racing.** However the schedule interleaves, the
//!   quiescent slot values equal the sequential minimum, and the union-find
//!   partition equals the sequential union-find's over the same pairs (its
//!   hooked tags always forming a spanning forest of the united pairs).
//! * **Contention is observable.** The `atomic.write_min.cas_retry` and
//!   `unionfind.hook.cas_retry` registry counters must go nonzero when real
//!   threads actually race. A single round of racing is not *guaranteed* to
//!   lose a CAS (the scheduler may never preempt inside the read-CAS
//!   window, especially on few-core hosts), so the tests rerun the workload
//!   until a retry shows up, bounded by a generous cap.
//! * **`MSF_SEQUENTIAL` means sequential.** Under the escape hatch the
//!   primitives take their plain load/compare/store paths: same answers,
//!   exactly zero CAS retries.
//!
//! The metrics registry is process-global, so every test serializes on one
//! mutex and resets the registry before measuring.

use std::sync::Mutex;

use msf_primitives::atomic::{MinSlots, EMPTY};
use msf_primitives::connectivity::concurrent::ConcurrentUnionFind;
use msf_primitives::obs;
use msf_primitives::team::SmpTeam;
use msf_primitives::unionfind::UnionFind;

static METRICS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    METRICS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const P: usize = 8;

/// Read a registry counter, treating "never registered" as zero (lazy
/// counters only register on their first enabled increment).
fn counter(name: &str) -> u64 {
    obs::metrics::snapshot().counter(name).unwrap_or(0)
}

/// Rounds of re-racing before we give up waiting for a lost CAS. Each
/// round is millions of atomic ops; even a single-core host preempts
/// inside the read-CAS window well within this budget.
const MAX_ROUNDS: usize = 60;

/// xorshift64* — deterministic pseudo-random stream, no external RNG.
fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

/// One round of the slot race: `P` ranks hammer one shared slot with the
/// same strictly descending value sequence, so whenever a rank is preempted
/// between its read and its CAS the slot moves underneath it. Returns the
/// quiescent slot value.
fn race_one_slot(iters: u64) -> u64 {
    let slots = MinSlots::new(1);
    SmpTeam::new(P).run(|_ctx| {
        for i in 0..iters {
            // BASE - i: every rank walks the same descending ramp.
            slots.write_min(0, u64::MAX - 1 - i);
        }
    });
    slots.get(0)
}

#[test]
fn racing_write_min_converges_to_the_sequential_min() {
    let _l = lock();
    obs::metrics::set_enabled(true);
    obs::metrics::reset_for_test();

    // Many slots, pseudo-random values: the quiescent state must equal the
    // per-slot sequential minimum no matter how the ranks interleave.
    const SLOTS: usize = 64;
    const ITERS: usize = 20_000;
    let slots = MinSlots::new(SLOTS);
    SmpTeam::new(P).run(|ctx| {
        let mut x = 0x9E3779B97F4A7C15u64.wrapping_mul(ctx.rank as u64 + 1);
        for _ in 0..ITERS {
            x = xorshift(x);
            let slot = (x >> 32) as usize % SLOTS;
            let v = x & 0x00FF_FFFF_FFFF_FFFF; // well below EMPTY
            slots.write_min(slot, v);
        }
    });
    // Recompute the expected minima sequentially from the same streams.
    let mut expect = vec![EMPTY; SLOTS];
    for rank in 0..P {
        let mut x = 0x9E3779B97F4A7C15u64.wrapping_mul(rank as u64 + 1);
        for _ in 0..ITERS {
            x = xorshift(x);
            let slot = (x >> 32) as usize % SLOTS;
            let v = x & 0x00FF_FFFF_FFFF_FFFF;
            expect[slot] = expect[slot].min(v);
        }
    }
    for (s, &e) in expect.iter().enumerate() {
        assert_eq!(slots.get(s), e, "slot {s}");
    }
    obs::metrics::set_enabled(false);
}

#[test]
fn contended_write_min_reports_cas_retries() {
    let _l = lock();
    obs::metrics::set_enabled(true);
    obs::metrics::reset_for_test();

    if msf_pool::sequential_env() {
        // MSF_SEQUENTIAL=1: the team runs inline and the slots take the
        // plain path — the race still converges, with zero retries.
        assert_eq!(race_one_slot(100_000), u64::MAX - 100_000);
        assert_eq!(counter("atomic.write_min.cas_retry"), 0);
        obs::metrics::set_enabled(false);
        return;
    }
    let mut rounds = 0;
    while counter("atomic.write_min.cas_retry") == 0 && rounds < MAX_ROUNDS {
        assert_eq!(race_one_slot(400_000), u64::MAX - 400_000);
        rounds += 1;
    }
    let retries = counter("atomic.write_min.cas_retry");
    obs::metrics::set_enabled(false);
    assert!(
        retries > 0,
        "8 ranks hammered one slot for {rounds} rounds without a single lost CAS"
    );
}

#[test]
fn sequential_escape_hatch_records_zero_retries() {
    let _l = lock();
    obs::metrics::set_enabled(true);
    obs::metrics::reset_for_test();

    msf_primitives::pool::with_sequential(|| {
        assert_eq!(race_one_slot(200_000), u64::MAX - 200_000);
        let uf = ConcurrentUnionFind::new(128);
        SmpTeam::new(P).run(|ctx| {
            let mut x = xorshift(0xDEADBEEF + ctx.rank as u64);
            for i in 0..5_000u32 {
                x = xorshift(x);
                let (u, v) = ((x >> 32) as u32 % 128, x as u32 % 128);
                if u != v {
                    uf.unite(u, v, i % (u32::MAX - 1));
                }
            }
        });
    });
    let wm = counter("atomic.write_min.cas_retry");
    let hook = counter("unionfind.hook.cas_retry");
    obs::metrics::set_enabled(false);
    assert_eq!(wm, 0, "sequential write_min must never lose a CAS");
    assert_eq!(hook, 0, "sequential hooking must never lose a CAS");
}

/// One round of union-find racing over a fixed pseudo-random pair list on
/// a deliberately tiny vertex set (every unite collides with every other).
/// Verifies the partition against the sequential union-find and that the
/// hooked tags form a spanning forest of the united pairs.
fn race_union_find(n: u32, pairs: &[(u32, u32)]) {
    let uf = ConcurrentUnionFind::new(n as usize);
    SmpTeam::new(P).run(|ctx| {
        // Block-partition the pair list over the ranks.
        let r = msf_primitives::block_range(pairs.len(), ctx.p, ctx.rank);
        for i in r {
            let (u, v) = pairs[i];
            uf.unite(u, v, i as u32);
        }
    });
    let mut seq = UnionFind::new(n as usize);
    for &(u, v) in pairs {
        seq.union(u as usize, v as usize);
    }
    for u in 0..n {
        for v in u + 1..n {
            assert_eq!(
                uf.same_set(u, v),
                seq.find(u as usize) == seq.find(v as usize),
                "partition diverged at ({u}, {v})"
            );
        }
    }
    // The hooks array must hold exactly a spanning forest of the pairs:
    // n - components edges, each one joining two distinct trees.
    let components = seq.set_count();
    let hooked = uf.hooked();
    assert_eq!(hooked.len(), n as usize - components);
    let mut check = UnionFind::new(n as usize);
    for &tag in &hooked {
        let (u, v) = pairs[tag as usize];
        assert!(
            check.union(u as usize, v as usize),
            "hooked edge {tag} closes a cycle"
        );
    }
}

#[test]
fn racing_union_find_matches_sequential() {
    let _l = lock();
    const N: u32 = 256;
    let mut pairs = Vec::new();
    let mut x = 0x2545F4914F6CDD1Du64;
    for _ in 0..4_000 {
        x = xorshift(x);
        let (u, v) = ((x >> 32) as u32 % N, x as u32 % N);
        if u != v {
            pairs.push((u, v));
        }
    }
    for _ in 0..8 {
        race_union_find(N, &pairs);
    }
}

/// One round of the hook race: *every* rank walks the same ascending star
/// `(0, v)`. Vertices another rank already absorbed are cheap same-root
/// no-ops, so a trailing rank races through them and rejoins the frontier
/// immediately — whenever the frontier rank is preempted between its find
/// and its CAS on the shared current root, the next rank scheduled claims
/// that root first and the resumed CAS fails. Every rank is therefore
/// contending at the frontier for the whole round, single core or not.
fn race_star(n: u32) {
    let uf = ConcurrentUnionFind::new(n as usize);
    SmpTeam::new(P).run(|_ctx| {
        for v in 1..n {
            uf.unite(0, v, v - 1);
        }
    });
    assert!(uf.same_set(0, n - 1));
    assert_eq!(uf.hooked().len(), n as usize - 1);
}

/// Filter-Kruskal's heavy-edge filter runs `same_set` from every worker at
/// once over a union-find whose unions are quiescent — but the *finds* are
/// not: path halving keeps rewriting parent pointers underneath the other
/// ranks' traversals. Every concurrent answer must equal the sequential
/// partition's, and the racing compaction must leave the partition intact.
#[test]
fn fk_filter_queries_race_path_halving() {
    let _l = lock();
    const N: u32 = 512;
    // Long chains maximize the halving writes a concurrent find can trip
    // over: unite as one path 0-1-2-..., leaving every other vertex out.
    let uf = ConcurrentUnionFind::new(N as usize);
    let mut pairs = Vec::new();
    let mut x = 0x9E3779B97F4A7C15u64;
    for _ in 0..900 {
        x = xorshift(x);
        let (u, v) = ((x >> 32) as u32 % N, x as u32 % N);
        if u != v {
            pairs.push((u, v));
        }
    }
    for (i, &(u, v)) in pairs.iter().enumerate() {
        uf.unite(u, v, i as u32);
    }
    let mut seq = UnionFind::new(N as usize);
    for &(u, v) in &pairs {
        seq.union(u as usize, v as usize);
    }
    // Query edges: the pair list again plus a pseudo-random probe mix, so
    // both connected and cross-component answers are exercised.
    let mut probes = pairs.clone();
    for _ in 0..2_000 {
        x = xorshift(x);
        let (u, v) = ((x >> 32) as u32 % N, x as u32 % N);
        if u != v {
            probes.push((u, v));
        }
    }
    let expect: Vec<bool> = probes
        .iter()
        .map(|&(u, v)| seq.find(u as usize) == seq.find(v as usize))
        .collect();
    for _ in 0..8 {
        SmpTeam::new(P).run(|ctx| {
            // Every rank sweeps the whole probe list (not a block split):
            // maximal overlap means maximal racing between the ranks'
            // path-halving stores.
            let mut order = ctx.rank;
            for _ in 0..probes.len() {
                order = (order + 7) % probes.len();
                let (u, v) = probes[order];
                assert_eq!(
                    uf.same_set(u, v),
                    expect[order],
                    "concurrent same_set({u}, {v}) diverged from the sequential partition"
                );
            }
        });
    }
}

/// End-to-end determinism for the sampling Filter-Kruskal under the forced
/// stress pool: racing heavy-filter sweeps must never perturb the forest.
#[test]
fn filter_kruskal_is_deterministic_under_the_stress_pool() {
    let _l = lock();
    msf_pool::force_width(4);
    let g = msf_graph::generators::assign_weights(
        &msf_graph::generators::random_graph(
            &msf_graph::generators::GeneratorConfig::with_seed(11),
            2_000,
            12_000,
        ),
        msf_graph::generators::WeightScheme::SmallIntegers { range: 6 },
        11,
    );
    let cfg = msf_core::MsfConfig::with_threads(P);
    let reference = msf_core::minimum_spanning_forest(
        &g,
        msf_core::Algorithm::Kruskal,
        &msf_core::MsfConfig::default(),
    );
    for round in 0..8 {
        let r = msf_core::minimum_spanning_forest(&g, msf_core::Algorithm::FilterKruskal, &cfg);
        assert_eq!(
            r.edges, reference.edges,
            "round {round}: Filter-Kruskal forest drifted from Kruskal's"
        );
        assert_eq!(r.total_weight.to_bits(), reference.total_weight.to_bits());
    }
}

#[test]
fn contended_hooking_reports_cas_retries() {
    let _l = lock();
    obs::metrics::set_enabled(true);
    obs::metrics::reset_for_test();

    const N: u32 = 200_000;
    if msf_pool::sequential_env() {
        race_star(N);
        assert_eq!(counter("unionfind.hook.cas_retry"), 0);
        obs::metrics::set_enabled(false);
        return;
    }
    let mut rounds = 0;
    while counter("unionfind.hook.cas_retry") == 0 && rounds < MAX_ROUNDS {
        race_star(N);
        rounds += 1;
    }
    let retries = counter("unionfind.hook.cas_retry");
    obs::metrics::set_enabled(false);
    assert!(
        retries > 0,
        "8 ranks raced an ascending star for {rounds} rounds without a lost hook CAS"
    );
}
