//! Ingestion memory discipline, measured at the allocator.
//!
//! This test binary installs the counting allocator and keeps all its
//! tests behind one lock, so the counters observe exactly one ingestion at
//! a time. Two properties are enforced:
//!
//! 1. The streaming DIMACS parser performs **no per-line heap
//!    allocation**: parsing thousands of lines costs a small constant
//!    number of allocations (the reusable line buffer and the
//!    pre-reserved edge vector), not O(lines).
//! 2. Loading a multi-million-edge R-MAT graph from the binary format
//!    peaks below 2× the in-memory CSR size — the mmap path adds no
//!    hidden copy of the file. (The full ≥10M-edge version is `#[ignore]`d
//!    for CI time; a scaled-down version always runs.)

use std::sync::Mutex;

use msf_graph::binfmt::{self, BinGraph};
use msf_graph::generators::{rmat_to_binary, RmatConfig};
use msf_graph::io;
use msf_graph::soa::csr_bytes;
use msf_primitives::obs::alloc;

#[global_allocator]
static ALLOC: alloc::CountingAllocator = alloc::CountingAllocator;

/// One measurement at a time; the counters are process-global.
static GATE: Mutex<()> = Mutex::new(());

/// Run `f` with counting on and report `(allocations, peak_delta_bytes)`.
/// The counters are process-global and tests share the process, so the
/// peak is measured *relative to the live bytes at entry* (reset_peak sets
/// peak := live, making the baseline cancel), and `f`'s result is dropped
/// before counting stops so its frees are recorded and the live counter
/// stays balanced for the next test.
fn measured(f: impl FnOnce()) -> (u64, u64) {
    let _gate = GATE.lock().unwrap();
    alloc::set_enabled(true);
    alloc::reset_peak();
    let before = alloc::stats();
    f();
    let after = alloc::stats();
    alloc::set_enabled(false);
    let allocs = after.since(&before).allocs;
    let peak_delta = after.peak_bytes.saturating_sub(before.live_bytes);
    (allocs, peak_delta)
}

#[test]
fn dimacs_streaming_makes_no_per_line_allocations() {
    // 40 000 edge lines; far more lines than the allowed allocation budget.
    let n = 20_000u32;
    let m = 40_000u32;
    let mut text = String::with_capacity(m as usize * 24);
    text.push_str(&format!("p sp {n} {m}\n"));
    let mut k = 0u32;
    for i in 0..m {
        let u = (i % (n - 1)) + 1;
        let v = u + 1;
        k = k.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        text.push_str(&format!("a {u} {v} 0.{:07}\n", k % 10_000_000));
    }
    let mut edges = 0;
    let (allocs, _) = measured(|| {
        let g = io::read_dimacs(text.as_bytes()).unwrap();
        edges = g.num_edges();
    });
    assert_eq!(edges, m as usize);
    // Budget: the edge vector (pre-reserved from the declared m), the
    // ByteLines buffer (amortized doubling), and slack for the validate
    // call — nothing proportional to the 40 001 input lines.
    assert!(
        allocs <= 64,
        "streaming parse of {m} lines performed {allocs} allocations"
    );
}

/// Scaled-down always-on version of the acceptance gate: 2M-edge R-MAT
/// from binary, heap peak < 2× the u32 CSR size.
#[test]
fn binary_ingest_peak_is_bounded_by_csr_size() {
    ingest_peak_check(18, 8); // n = 262_144, m = 2_097_152
}

/// The full acceptance gate (≥ 10M edges). ~1.5 GB of traffic; run with
/// `cargo test --release -- --ignored binary_ingest_peak_at_ten_million`.
#[test]
#[ignore = "large: ≥10M-edge ingest; exercised by the CI large job in release"]
fn binary_ingest_peak_at_ten_million_edges() {
    ingest_peak_check(20, 10); // n = 1_048_576, m = 10_485_760
}

fn ingest_peak_check(scale: u32, ef: u64) {
    let cfg = RmatConfig::graph500(scale, ef, 2026);
    let path = std::env::temp_dir().join(format!(
        "msf-ingest-peak-{}-{scale}.msfb",
        std::process::id()
    ));
    // Generation itself is streaming; not part of the measured window.
    rmat_to_binary(&path, cfg).unwrap();
    let n = cfg.num_vertices();
    let m = cfg.num_edges();
    let budget = 2 * csr_bytes::<u32>(n, m);
    let mut mmapped = false;
    let mut edges = 0u64;
    let (_, peak) = measured(|| {
        let bin = BinGraph::open(&path).unwrap();
        let g = bin.to_edge_list().unwrap();
        mmapped = bin.is_mmap();
        edges = g.num_edges() as u64;
    });
    assert!(mmapped, "the mmap path must be active for this gate");
    assert_eq!(edges, m);
    assert!(
        (peak as u128) < budget,
        "ingest peak {peak} bytes exceeds 2x CSR size {budget} (n={n}, m={m})"
    );
    // The binary file itself must also be lean: ids + weights + header.
    let file_len = std::fs::metadata(&path).unwrap().len();
    assert_eq!(file_len, 64 + m * (4 + 4 + 8));
    std::fs::remove_file(&path).ok();
    let _ = binfmt::VERSION;
}
