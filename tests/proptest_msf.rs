//! Property-based integration tests: random graph shapes, weights, and
//! configurations; the MSF invariants must hold for every algorithm.

use proptest::prelude::*;

use msf_suite::core::{minimum_spanning_forest, verify, Algorithm, MsfConfig};
use msf_suite::graph::EdgeList;
use msf_suite::primitives::unionfind::UnionFind;

/// Strategy: a random simple graph as (n, unique edge pairs with weights).
fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (2usize..60).prop_flat_map(|n| {
        let max_m = n * (n - 1) / 2;
        proptest::collection::btree_set((0..n as u32, 0..n as u32), 0..max_m.min(120)).prop_map(
            move |pairs| {
                let triples: Vec<(u32, u32, f64)> = pairs
                    .into_iter()
                    .filter(|&(a, b)| a != b)
                    .map(|(a, b)| (a.min(b), a.max(b)))
                    .collect::<std::collections::BTreeSet<_>>()
                    .into_iter()
                    .enumerate()
                    .map(|(i, (a, b))| (a, b, ((i * 37) % 11) as f64 * 0.5))
                    .collect();
                EdgeList::from_triples(n, triples)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every algorithm returns the unique Kruskal forest AND passes the
    /// Kruskal-independent optimality certificate.
    #[test]
    fn all_algorithms_match_reference(g in arb_graph(), p in 1usize..5) {
        let reference = minimum_spanning_forest(&g, Algorithm::Kruskal, &MsfConfig::default());
        prop_assert!(verify::verify_msf(&g, &reference).is_ok());
        let cfg = MsfConfig { base_size: 4, ..MsfConfig::with_threads(p) };
        for algo in Algorithm::ALL {
            let r = minimum_spanning_forest(&g, algo, &cfg);
            prop_assert_eq!(&r.edges, &reference.edges, "{} at p={}", algo, p);
            if let Err(v) = msf_suite::core::certify::certify_msf_with(&g, &r, p) {
                prop_assert!(false, "{} at p={} fails certification: {}", algo, p, v);
            }
        }
    }

    /// Forest structural invariants, independently recomputed.
    #[test]
    fn forest_invariants(g in arb_graph()) {
        let r = minimum_spanning_forest(&g, Algorithm::BorFal, &MsfConfig::with_threads(3));
        // Acyclic + tree count == component count.
        let mut uf = UnionFind::new(g.num_vertices());
        for &id in &r.edges {
            let e = g.edge(id);
            prop_assert!(uf.union(e.u as usize, e.v as usize), "cycle via edge {}", id);
        }
        let mut components = UnionFind::new(g.num_vertices());
        for e in g.edges() {
            components.union(e.u as usize, e.v as usize);
        }
        prop_assert_eq!(uf.set_count(), components.set_count());
        prop_assert_eq!(r.components as usize, components.set_count());
    }

    /// Cut property spot-check: for every non-forest edge, the path between
    /// its endpoints inside the forest contains no heavier edge (cycle
    /// property of the unique MSF).
    #[test]
    fn cycle_property_holds(g in arb_graph()) {
        let r = minimum_spanning_forest(&g, Algorithm::MstBc, &MsfConfig::with_threads(2));
        let n = g.num_vertices();
        // Build forest adjacency.
        let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        for &id in &r.edges {
            let e = g.edge(id);
            adj[e.u as usize].push((e.v, id));
            adj[e.v as usize].push((e.u, id));
        }
        let in_forest: std::collections::HashSet<u32> = r.edges.iter().copied().collect();
        for e in g.edges() {
            if in_forest.contains(&e.id) {
                continue;
            }
            // BFS path u -> v in the forest.
            let mut prev: Vec<Option<(u32, u32)>> = vec![None; n];
            let mut queue = std::collections::VecDeque::from([e.u]);
            prev[e.u as usize] = Some((e.u, u32::MAX));
            while let Some(x) = queue.pop_front() {
                if x == e.v { break; }
                for &(y, id) in &adj[x as usize] {
                    if prev[y as usize].is_none() {
                        prev[y as usize] = Some((x, id));
                        queue.push_back(y);
                    }
                }
            }
            prop_assert!(prev[e.v as usize].is_some(),
                "non-tree edge endpoints must be connected in the forest");
            // Walk back, checking each path edge is lighter (by total order).
            let mut cur = e.v;
            while cur != e.u {
                let (parent, id) = prev[cur as usize].unwrap();
                let path_edge = g.edge(id);
                prop_assert!(path_edge.key() < e.key(),
                    "path edge {} must beat excluded edge {}", id, e.id);
                cur = parent;
            }
        }
    }

    /// MSF weight is invariant under edge order permutation of the input
    /// (ids change, but the selected *weight multiset* must not).
    #[test]
    fn weight_invariant_under_edge_reordering(g in arb_graph(), seed in 0u64..100) {
        use rand::prelude::*;
        let mut triples: Vec<(u32, u32, f64)> =
            g.edges().iter().map(|e| (e.u, e.v, e.w)).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        triples.shuffle(&mut rng);
        let shuffled = EdgeList::from_triples(g.num_vertices(), triples);

        let a = minimum_spanning_forest(&g, Algorithm::BorAl, &MsfConfig::with_threads(2));
        let b = minimum_spanning_forest(&shuffled, Algorithm::BorAl, &MsfConfig::with_threads(2));
        prop_assert!((a.total_weight - b.total_weight).abs() < 1e-9,
            "weight changed under reordering: {} vs {}", a.total_weight, b.total_weight);
        prop_assert_eq!(a.edges.len(), b.edges.len());
    }
}
