//! End-to-end contract of the observability subsystem (`msf_primitives::obs`):
//! with tracing on, every parallel algorithm emits a well-nested span tree
//! whose per-step END payloads are *exactly* the numbers recorded in
//! `RunStats` — the trace and the stats are two views of one measurement,
//! not two measurements. With tracing off, nothing is recorded at all.
//!
//! Inputs are connected meshes: on a connected graph no algorithm takes the
//! Bor-FAL maturity break, so step spans correspond one-to-one with the
//! iterations pushed onto the stats and the sums can be compared with `==`
//! (the END events carry the exact `modeled_max` / `event_ns(seconds)`
//! values, so there is no float slop anywhere).
//!
//! The obs globals (enable flag, per-thread rings, epoch) are process-wide,
//! so every test here serializes on one mutex and drains the rings before
//! and after its run.

use std::sync::Mutex;

use msf_core::stats::event_ns;
use msf_core::{minimum_spanning_forest, Algorithm, MsfConfig};
use msf_graph::generators::{mesh2d, GeneratorConfig};
use msf_graph::EdgeList;
use msf_primitives::obs;
use obs::{Phase, SpanKind};

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn mesh() -> EdgeList {
    mesh2d(&GeneratorConfig::with_seed(11), 30, 30)
}

/// Run one algorithm with tracing on and return (its trace, its result).
fn traced_run(g: &EdgeList, algo: Algorithm, p: usize) -> (obs::Trace, msf_core::MsfResult) {
    msf_pool::force_width(4);
    obs::set_enabled(true);
    let _ = obs::drain(); // discard events from earlier tests / pool warmup
    let r = minimum_spanning_forest(g, algo, &MsfConfig::with_threads(p));
    let trace = obs::drain();
    obs::set_enabled(false);
    (trace, r)
}

#[test]
fn every_parallel_algorithm_emits_a_well_nested_trace() {
    let _l = lock();
    let g = mesh();
    for algo in Algorithm::PARALLEL {
        let (trace, _) = traced_run(&g, algo, 2);
        assert_eq!(trace.dropped, 0, "{algo}: ring overflow on a small mesh");
        trace
            .validate_nesting()
            .unwrap_or_else(|e| panic!("{algo}: {e}"));
        // Exactly one whole-run span — except SF-Hook, whose filter finish
        // nests inner runs (sample forest + survivors) inside the outer one.
        // At least one span per Borůvka step kind either way (MST-BC also
        // uses the find-min/connect/compact taxonomy for its
        // grow/contract/rebuild phases).
        if algo == Algorithm::SfHook {
            assert!(trace.count(SpanKind::Run, Phase::End) >= 1, "{algo}");
        } else {
            assert_eq!(trace.count(SpanKind::Run, Phase::End), 1, "{algo}");
        }
        if algo == Algorithm::FilterKruskal {
            // Filter-Kruskal has no connect-components phase, and this
            // mesh is below its sequential base-case cutoff — the whole
            // solve is one base-case span. Its recursive trace shape is
            // covered by filter_kruskal_trace_shape_and_reconciliation.
            assert!(trace.count(SpanKind::BaseCase, Phase::End) >= 1, "{algo}");
            continue;
        }
        for kind in [SpanKind::FindMin, SpanKind::Connect, SpanKind::Compact] {
            assert!(
                trace.count(kind, Phase::End) >= 1,
                "{algo}: no {} span",
                kind.name()
            );
        }
    }
}

#[test]
fn step_span_payloads_sum_to_the_iteration_stats() {
    let _l = lock();
    let g = mesh();
    for algo in Algorithm::PARALLEL {
        if algo == Algorithm::SfHook {
            // SF-Hook's filter finish runs nested MSF computations whose
            // iteration spans are deliberately not part of the outer run's
            // stats; the exact span/stats reconciliation below does not
            // apply. Its hook rounds are covered by sf_hook_front_end_
            // rounds_reconcile_with_stats.
            continue;
        }
        if algo == Algorithm::FilterKruskal {
            // Filter-Kruskal records one stats row per recursion *depth*
            // (several spans fold into one row) and emits no iteration
            // spans at all; covered by
            // filter_kruskal_trace_shape_and_reconciliation.
            continue;
        }
        let (trace, r) = traced_run(&g, algo, 2);
        let stats = &r.stats;
        assert!(!stats.iterations.is_empty(), "{algo}");
        // Connected input: no maturity-break probe iteration, so the span
        // count is exactly the iteration count.
        assert_eq!(
            trace.count(SpanKind::Iteration, Phase::End),
            stats.iterations.len(),
            "{algo}"
        );
        for (kind, pick) in [
            (SpanKind::FindMin, 0usize),
            (SpanKind::Connect, 1),
            (SpanKind::Compact, 2),
        ] {
            let (sum_max, sum_ns) = trace.sum_end_args(kind);
            let expect_max: u64 = stats
                .iterations
                .iter()
                .map(|it| [&it.find_min, &it.connect, &it.compact][pick].modeled_max)
                .sum();
            let expect_ns: u64 = stats
                .iterations
                .iter()
                .map(|it| event_ns([&it.find_min, &it.connect, &it.compact][pick].seconds))
                .sum();
            assert_eq!(sum_max, expect_max, "{algo} {} modeled_max", kind.name());
            assert_eq!(sum_ns, expect_ns, "{algo} {} seconds", kind.name());
        }
    }
}

#[test]
fn chrome_export_is_valid_json_with_named_spans() {
    let _l = lock();
    let g = mesh();
    let (trace, _) = traced_run(&g, Algorithm::BorAl, 2);
    let json = trace.chrome_json();
    obs::validate_json(&json).expect("chrome trace must be valid JSON");
    for name in ["find-min", "connect-components", "compact-graph", "run"] {
        assert!(json.contains(&format!("\"name\":\"{name}\"")), "{name}");
    }
    assert!(json.contains("\"traceEvents\""));
    // The text summary names every kind that appeared.
    let summary = trace.summary();
    assert!(summary.contains("find-min"), "{summary}");
}

#[test]
fn sf_hook_front_end_rounds_reconcile_with_stats() {
    let _l = lock();
    let g = mesh();
    let (trace, r) = traced_run(&g, Algorithm::SfHook, 2);
    trace.validate_nesting().expect("nesting");
    let stats = &r.stats;
    // The front-end contributes exactly its hook rounds to the stats...
    assert!(!stats.iterations.is_empty());
    // ...while the trace additionally holds the nested filter/inner-run
    // iterations, so the span count can only be larger.
    assert!(trace.count(SpanKind::Iteration, Phase::End) >= stats.iterations.len());
    // Every hook round recorded all three step breakdowns.
    for it in &stats.iterations {
        for step in [&it.find_min, &it.connect, &it.compact] {
            assert!(step.modeled_max > 0);
            assert!(step.modeled_total >= step.modeled_max);
        }
    }
}

#[test]
fn filter_kruskal_trace_shape_and_reconciliation() {
    let _l = lock();
    // 60×60 mesh: 7080 edges, comfortably above the 2048-edge base-case
    // cutoff, so the pivot recursion actually engages.
    let g = mesh2d(&GeneratorConfig::with_seed(11), 60, 60);
    let (trace, r) = traced_run(&g, Algorithm::FilterKruskal, 2);
    trace.validate_nesting().expect("nesting");
    assert_eq!(trace.count(SpanKind::Run, Phase::End), 1);
    // The recursion's taxonomy: partition → compact-graph, heavy filter →
    // find-min, leaves → base-case. No connect-components phase exists.
    for kind in [SpanKind::Compact, SpanKind::FindMin, SpanKind::BaseCase] {
        assert!(
            trace.count(kind, Phase::End) >= 1,
            "no {} span",
            kind.name()
        );
    }
    assert_eq!(trace.count(SpanKind::Connect, Phase::End), 0);
    // Span modeled_max payloads sum exactly to the per-depth stats rows
    // (several recursion nodes fold into one depth row, so only the
    // integer modeled sums — not the independently rounded per-span
    // nanoseconds — reconcile with `==`).
    let stats = &r.stats;
    assert!(!stats.iterations.is_empty());
    for (kind, pick) in [(SpanKind::FindMin, 0usize), (SpanKind::Compact, 2)] {
        let (sum_max, _) = trace.sum_end_args(kind);
        let expect_max: u64 = stats
            .iterations
            .iter()
            .map(|it| [&it.find_min, &it.connect, &it.compact][pick].modeled_max)
            .sum();
        assert_eq!(sum_max, expect_max, "{} modeled_max", kind.name());
    }
}

#[test]
fn mst_bc_records_team_and_rank_lifecycles() {
    let _l = lock();
    let g = mesh();
    let (trace, _) = traced_run(&g, Algorithm::MstBc, 4);
    trace.validate_nesting().expect("nesting");
    assert!(trace.count(SpanKind::TeamRun, Phase::End) >= 1);
    // Every team run of width 4 contributes 4 rank spans.
    assert!(trace.count(SpanKind::Rank, Phase::End) >= 4);
    // Rank spans land on the executing threads; at least rank 0 runs inline
    // on the caller, the rest on leased team threads — so the trace spans
    // more than one thread.
    assert!(trace.threads.len() > 1, "team ranks must appear per-thread");
}

#[test]
fn disabled_tracing_records_nothing() {
    let _l = lock();
    let g = mesh();
    obs::set_enabled(true);
    let _ = obs::drain();
    obs::set_enabled(false);
    let r = minimum_spanning_forest(&g, Algorithm::BorEl, &MsfConfig::with_threads(2));
    assert!(!r.edges.is_empty());
    obs::set_enabled(true); // drain under the same epoch
    let trace = obs::drain();
    obs::set_enabled(false);
    assert!(
        trace.is_empty(),
        "disabled tracing must write no events, got {}",
        trace.events.len()
    );
}
