//! Contract tests for the sampling profiler (DESIGN.md §16) against real
//! MSF runs: the folded export must speak valid span-kind frames, sample
//! counts must reconcile with wall-clock × rate, and attribution must hold
//! in every execution mode — including the MSF_SEQUENTIAL=1 CI harness,
//! where the whole run executes on the calling thread.
//!
//! The profiler is process-global, so every test serializes on one lock
//! and stops the sampler before releasing it.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use msf_core::{minimum_spanning_forest, Algorithm, MsfConfig};
use msf_graph::generators::{mesh2d, GeneratorConfig};
use msf_graph::EdgeList;
use msf_primitives::obs;

static PROFILER_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    PROFILER_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const KNOWN_FRAMES: &[&str] = &[
    "run",
    "setup",
    "iteration",
    "find-min",
    "connect-components",
    "compact-graph",
    "base-case",
    "team-run",
    "rank",
    "filter",
    "serve",
];

/// Run Filter-Kruskal on a mesh repeatedly until `budget` elapses, so the
/// sampler has real span stacks to catch regardless of host speed.
fn churn(budget: Duration) {
    let g: EdgeList = mesh2d(&GeneratorConfig::with_seed(7), 60, 60);
    let cfg = MsfConfig::with_threads(4);
    let t = Instant::now();
    while t.elapsed() < budget {
        let _ = minimum_spanning_forest(&g, Algorithm::FilterKruskal, &cfg);
    }
}

#[test]
fn folded_output_parses_and_speaks_span_kind_frames() {
    let _l = lock();
    obs::profile::start(997).expect("start profiler");
    churn(Duration::from_millis(300));
    let report = obs::profile::stop();

    assert!(
        report.total_samples() > 0,
        "300ms of MSF churn at 997 Hz must catch at least one sample \
         ({} wakeups, {} dropped)",
        report.wakeups,
        report.dropped
    );
    let folded = report.folded();
    assert!(!folded.is_empty());
    for line in folded.lines() {
        // `<frame>[;<frame>...] <count>` — exactly what flamegraph.pl eats.
        let (stack, count) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("malformed folded line: {line:?}"));
        let count: u64 = count
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric count in folded line: {line:?}"));
        assert!(count > 0, "zero-weight path exported: {line:?}");
        for frame in stack.split(';') {
            assert!(
                KNOWN_FRAMES.contains(&frame),
                "unknown frame {frame:?} in folded line {line:?}"
            );
        }
    }
    // The SVG renders from the same trie; a sampled run must produce rects.
    let svg = report.svg();
    assert!(svg.starts_with("<svg") && svg.contains("<rect"));
}

#[test]
fn sample_counts_reconcile_with_wall_clock_times_rate() {
    let _l = lock();
    const HZ: u64 = 997;
    obs::profile::start(HZ).expect("start profiler");
    let wall = Duration::from_millis(250);
    {
        // One long span on this thread — the sampler should catch it on
        // nearly every wakeup for the whole window.
        let span = obs::span(obs::SpanKind::FindMin, 0, 0);
        std::thread::sleep(wall);
        span.end_with(0, 0);
    }
    let report = obs::profile::stop();

    let expected = HZ as f64 * wall.as_secs_f64();
    let got = report.inclusive_samples(obs::SpanKind::FindMin) as f64;
    // Factor-of-four tolerance: CI hosts oversleep and the sampler sheds
    // ticks under load, but an order-of-magnitude miss means the schedule
    // or the fold is broken.
    assert!(
        got >= expected / 4.0,
        "caught {got} find-min samples where ~{expected:.0} were expected \
         ({} wakeups, {} dropped)",
        report.wakeups,
        report.dropped
    );
    assert!(
        got <= expected * 4.0,
        "caught {got} find-min samples where ~{expected:.0} were expected — \
         the sampler is over-counting"
    );
    // Samples can never outnumber wakeup×thread opportunities.
    assert!(report.total_samples() <= report.wakeups.max(1) * 64);
}

#[test]
fn run_span_attribution_holds_in_every_execution_mode() {
    // Under MSF_SEQUENTIAL=1 the whole algorithm runs on this thread; in
    // parallel mode it fans out to pool workers. Either way every sampled
    // stack must root at a known top-level span and the run span must own
    // samples — attribution cannot silently vanish with the pool.
    let _l = lock();
    obs::profile::start(997).expect("start profiler");
    churn(Duration::from_millis(300));
    let report = obs::profile::stop();

    assert!(
        report.inclusive_samples(obs::SpanKind::Run) > 0,
        "no samples attributed to the run span (total {}, sequential={})",
        report.total_samples(),
        std::env::var("MSF_SEQUENTIAL").is_ok()
    );
    for line in report.folded().lines() {
        let (stack, _) = line.rsplit_once(' ').expect("folded line");
        let root = stack.split(';').next().expect("non-empty stack");
        assert!(
            // Pool workers root at whatever span the stolen task opened
            // (team-run ranks at `rank`, parallel loops inside a phase at
            // that phase) — but the driving thread always roots at `run`.
            KNOWN_FRAMES.contains(&root),
            "unknown root frame {root:?} in {line:?}"
        );
    }
    // The run span must dominate inclusive samples of an MSF-only workload
    // (ties allowed: a phase that holds 100% of the samples matches run).
    let run = report.inclusive_samples(obs::SpanKind::Run);
    let hottest = report.hottest().expect("samples were taken");
    assert!(
        report.inclusive_samples(hottest) == run,
        "hottest frame {:?} has more inclusive samples than the run span",
        hottest.name()
    );
}
