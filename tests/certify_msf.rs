//! Acceptance tests for the Kruskal-independent certification layer: every
//! algorithm's output across the standard generator suite and several thread
//! counts must pass `certify_msf`, and each canonical corruption — swapped
//! edge, dropped edge, heavier parallel substitute — must be rejected with a
//! named certificate violation.

use msf_suite::core::certify::{certify_msf_with, CertificateViolation};
use msf_suite::core::stats::RunStats;
use msf_suite::core::{minimum_spanning_forest, verify, Algorithm, MsfConfig, MsfResult};
use msf_suite::graph::generators::{random_graph, standard_suite, GeneratorConfig};
use msf_suite::graph::pathmax::PathMaxForest;
use msf_suite::graph::transform::overlay;
use msf_suite::graph::{EdgeKey, EdgeList};

/// An `MsfResult` for a claimed edge set, with weight and component count
/// recomputed honestly so only the optimality certificates can object.
fn claimed(g: &EdgeList, mut edges: Vec<u32>) -> MsfResult {
    edges.sort_unstable();
    let total_weight = edges.iter().map(|&id| g.edge(id).w).sum();
    let components = msf_suite::graph::validate::component_count(g) as u32;
    MsfResult {
        edges,
        total_weight,
        components,
        stats: RunStats::default(),
    }
}

/// The headline acceptance matrix: every algorithm × every standard
/// generator × p ∈ {1, 3, 7}, certified purely from the cut and cycle
/// properties — `certify_msf_with` never runs Kruskal or any reference.
#[test]
fn certifies_full_matrix_without_a_reference() {
    for (name, g) in standard_suite(&GeneratorConfig::with_seed(2026), 400) {
        for algo in Algorithm::ALL {
            for p in [1usize, 3, 7] {
                let cfg = MsfConfig {
                    base_size: 16,
                    ..MsfConfig::with_threads(p)
                };
                let r = minimum_spanning_forest(&g, algo, &cfg);
                let cert = certify_msf_with(&g, &r, p)
                    .unwrap_or_else(|e| panic!("{algo} on {name} at p={p}: {e}"));
                assert_eq!(cert.forest_edges, r.edges.len(), "{algo} on {name}");
                assert_eq!(cert.cut_checks, r.edges.len(), "{algo} on {name}");
                assert_eq!(cert.meters.len(), p, "one meter per block");
            }
        }
    }
}

/// Swap one forest edge for a non-forest edge closing the same cycle: the
/// result still spans, weights are honest, but optimality is gone.
#[test]
fn swapped_edge_is_rejected_by_name() {
    let g = random_graph(&GeneratorConfig::with_seed(31), 150, 600);
    let good = minimum_spanning_forest(&g, Algorithm::BorAl, &MsfConfig::with_threads(3));
    let in_forest: std::collections::HashSet<u32> = good.edges.iter().copied().collect();
    let heavy = g
        .edges()
        .iter()
        .filter(|e| !in_forest.contains(&e.id))
        .max_by_key(|e| e.key())
        .expect("dense graph has non-forest edges");
    let forest: Vec<(u32, u32, EdgeKey)> = good
        .edges
        .iter()
        .map(|&id| {
            let e = g.edge(id);
            (e.u, e.v, e.key())
        })
        .collect();
    let on_cycle = PathMaxForest::build(g.num_vertices(), &forest)
        .path_max(heavy.u, heavy.v)
        .expect("endpoints are in one tree");
    let mut edges: Vec<u32> = good
        .edges
        .iter()
        .copied()
        .filter(|&id| id != on_cycle.id)
        .collect();
    edges.push(heavy.id);
    let bad = claimed(&g, edges);
    match certify_msf_with(&g, &bad, 3) {
        Err(CertificateViolation::CycleProperty { non_forest, .. }) => {
            assert_ne!(non_forest, heavy.id, "the swapped-in edge now IS forest")
        }
        Err(CertificateViolation::CutProperty { forest, .. }) => assert_eq!(forest, heavy.id),
        other => panic!("expected a named optimality violation, got {other:?}"),
    }
    // The Kruskal-based verifier and the certificate agree on the verdict.
    assert!(verify::verify_msf(&g, &bad).is_err());
}

/// Drop a forest edge: structure itself breaks (too many trees).
#[test]
fn dropped_edge_is_rejected_by_name() {
    let g = random_graph(&GeneratorConfig::with_seed(32), 100, 400);
    let good = minimum_spanning_forest(&g, Algorithm::BorFal, &MsfConfig::with_threads(3));
    let mut edges = good.edges.clone();
    edges.pop();
    let bad = claimed(&g, edges);
    match certify_msf_with(&g, &bad, 3) {
        Err(CertificateViolation::NotSpanning {
            forest_trees,
            graph_components,
        }) => assert_eq!(forest_trees, graph_components + 1),
        other => panic!("expected NotSpanning, got {other:?}"),
    }
}

/// Replace a forest edge with a strictly heavier parallel twin: spanning
/// structure is intact, so only the optimality certificates can object.
#[test]
fn heavier_substitute_is_rejected_by_name() {
    let base = random_graph(&GeneratorConfig::with_seed(33), 80, 240);
    let m = base.num_edges() as u32;
    let heavy = EdgeList::from_triples(
        base.num_vertices(),
        base.edges().iter().map(|e| (e.u, e.v, e.w + 50.0)),
    );
    let g = overlay(&[&base, &heavy]);
    let good = minimum_spanning_forest(&g, Algorithm::Boruvka, &MsfConfig::default());
    // Overlay keeps layer order, so edge id + m is the heavy twin.
    let victim = good.edges[0];
    let edges: Vec<u32> = good
        .edges
        .iter()
        .map(|&id| if id == victim { id + m } else { id })
        .collect();
    let bad = claimed(&g, edges);
    match certify_msf_with(&g, &bad, 3) {
        Err(CertificateViolation::CycleProperty { non_forest, .. }) => {
            assert_eq!(non_forest, victim, "the dropped light twin flags first")
        }
        Err(CertificateViolation::CutProperty {
            forest,
            lighter_crossing,
            ..
        }) => {
            assert_eq!(forest, victim + m);
            assert_eq!(lighter_crossing, victim);
        }
        other => panic!("expected a named optimality violation, got {other:?}"),
    }
}

/// The two verifiers (Kruskal comparison, self-contained certificate) must
/// agree on correct results end to end — `verify_msf` now enforces this.
#[test]
fn verify_msf_cross_checks_both_verifiers() {
    let g = random_graph(&GeneratorConfig::with_seed(34), 200, 800);
    for algo in [Algorithm::BorEl, Algorithm::MstBc, Algorithm::BorFalFilter] {
        let r = minimum_spanning_forest(&g, algo, &MsfConfig::with_threads(7));
        verify::verify_msf(&g, &r).unwrap_or_else(|e| panic!("{algo}: {e}"));
    }
}
