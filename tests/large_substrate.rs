//! The large-graph substrate, end to end: a graph must produce the
//! bit-identical minimum spanning forest no matter which representation it
//! traveled through (in-memory EdgeList, DIMACS text, msfb binary — narrow
//! or wide ids, mmap or heap backing), and every malformed input in the
//! corpus must be rejected with an error, never a panic or a wrong answer.

use std::io::Cursor;
use std::path::PathBuf;

use msf_core::{minimum_spanning_forest, Algorithm, MsfConfig, MsfResult};
use msf_graph::binfmt::{self, BinGraph};
use msf_graph::generators::{
    powerlaw_graph, random_graph, rmat_graph, GeneratorConfig, PowerLawConfig, RmatConfig,
};
use msf_graph::{io, EdgeList};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("msf-substrate-{}-{name}", std::process::id()))
}

fn fingerprint(r: &MsfResult) -> (Vec<u32>, u64, u32) {
    (r.edges.clone(), r.total_weight.to_bits(), r.components)
}

fn inputs() -> Vec<(&'static str, EdgeList)> {
    let cfg = GeneratorConfig::with_seed(31);
    vec![
        (
            "rmat scale=10 ef=8",
            rmat_graph(RmatConfig::graph500(10, 8, 31)).unwrap(),
        ),
        (
            "powerlaw n=1500 m=6000",
            powerlaw_graph(PowerLawConfig::new(1500, 6000, 31)).unwrap(),
        ),
        ("random n=2000 m=8000", random_graph(&cfg, 2_000, 8_000)),
    ]
}

/// DIMACS → binary → DIMACS → EdgeList: all four views of the same graph
/// give the bit-identical forest for every algorithm in the portfolio.
#[test]
fn forests_are_identical_across_every_representation() {
    for (name, g) in inputs() {
        // Through DIMACS text.
        let mut text = Vec::new();
        io::write_dimacs(&g, &mut text).unwrap();
        let via_dimacs = io::read_dimacs(Cursor::new(&text)).unwrap();
        assert_eq!(via_dimacs, g, "{name}: dimacs roundtrip");

        // Through the binary format, mmap-backed.
        let bin_path = tmp(&format!("{}.msfb", name.replace([' ', '='], "-")));
        binfmt::write_binary(&g, &bin_path).unwrap();
        let bin = BinGraph::open(&bin_path).unwrap();
        let via_bin = bin.to_edge_list().unwrap();
        assert_eq!(via_bin, g, "{name}: binary roundtrip");

        // Through wide (u64) ids.
        let wide_path = tmp(&format!("{}-wide.msfb", name.replace([' ', '='], "-")));
        binfmt::write_stream(
            &wide_path,
            g.num_vertices() as u64,
            true,
            g.edges()
                .iter()
                .map(|e| (u64::from(e.u), u64::from(e.v), e.w)),
        )
        .unwrap();
        let via_wide = BinGraph::open(&wide_path).unwrap().to_edge_list().unwrap();
        assert_eq!(via_wide, g, "{name}: wide binary roundtrip");

        let cfg = MsfConfig::with_threads(2);
        for algo in Algorithm::ALL {
            let reference = fingerprint(&minimum_spanning_forest(&g, algo, &cfg));
            for (how, h) in [
                ("dimacs", &via_dimacs),
                ("binary", &via_bin),
                ("wide binary", &via_wide),
            ] {
                assert_eq!(
                    reference,
                    fingerprint(&minimum_spanning_forest(h, algo, &cfg)),
                    "{name}: {algo} diverged through {how}"
                );
            }
        }
        std::fs::remove_file(&bin_path).ok();
        std::fs::remove_file(&wide_path).ok();
    }
}

/// The heap-backed loader (MSF_NO_MMAP path is env-global, so exercise the
/// equivalent `Bytes::heap_from_file` path indirectly: open the same file
/// twice and compare the materialized lists) and the narrow/wide pair must
/// agree under real pooled execution at several widths.
#[test]
fn narrow_and_wide_forests_agree_on_the_pool_matrix() {
    msf_pool::force_width(4);
    let g = rmat_graph(RmatConfig::graph500(11, 6, 77)).unwrap();
    let narrow_path = tmp("matrix-narrow.msfb");
    let wide_path = tmp("matrix-wide.msfb");
    binfmt::write_binary(&g, &narrow_path).unwrap();
    binfmt::write_stream(
        &wide_path,
        g.num_vertices() as u64,
        true,
        g.edges()
            .iter()
            .map(|e| (u64::from(e.u), u64::from(e.v), e.w)),
    )
    .unwrap();
    let narrow = BinGraph::open(&narrow_path).unwrap();
    let wide = BinGraph::open(&wide_path).unwrap();
    assert!(!narrow.wide() && wide.wide());
    let gn = narrow.to_edge_list().unwrap();
    let gw = wide.to_edge_list().unwrap();
    for p in [1, 2, 4, 8] {
        let cfg = MsfConfig::with_threads(p);
        for algo in Algorithm::PARALLEL {
            assert_eq!(
                fingerprint(&minimum_spanning_forest(&gn, algo, &cfg)),
                fingerprint(&minimum_spanning_forest(&gw, algo, &cfg)),
                "{algo} at p={p}: narrow and wide ids diverged"
            );
        }
    }
    std::fs::remove_file(&narrow_path).ok();
    std::fs::remove_file(&wide_path).ok();
}

/// Every file in tests/corpus/malformed must be rejected by the DIMACS
/// parser with a clean error (no panic), and none of them sniffs as binary.
#[test]
fn malformed_corpus_is_rejected() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/malformed");
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "gr") {
            continue;
        }
        seen += 1;
        assert!(
            !binfmt::is_binary_file(&path).unwrap(),
            "{path:?} must not sniff as binary"
        );
        let file = std::fs::File::open(&path).unwrap();
        let err = io::read_dimacs(std::io::BufReader::new(file))
            .expect_err(&format!("{path:?} must be rejected"));
        let msg = err.to_string();
        assert!(
            msg.contains("byte ") || msg.contains("edge") || msg.contains("line"),
            "{path:?}: error should locate the problem, got: {msg}"
        );
    }
    assert!(seen >= 10, "malformed corpus went missing ({seen} files)");
}

/// A corrupt binary file must never load: flip any header field or payload
/// byte of a valid file and open() has to fail. (Complements the unit
/// tests in msf-graph with a sweep over *every* header byte.)
#[test]
fn corrupting_any_header_byte_is_detected() {
    let g = random_graph(&GeneratorConfig::with_seed(41), 60, 150);
    let path = tmp("header-sweep.msfb");
    binfmt::write_binary(&g, &path).unwrap();
    let good = std::fs::read(&path).unwrap();
    assert!(BinGraph::open(&path).is_ok());
    let mut rejected = 0;
    for byte in 0..64 {
        for bit in [0x01u8, 0x80] {
            let mut bad = good.clone();
            bad[byte] ^= bit;
            std::fs::write(&path, &bad).unwrap();
            if BinGraph::open(&path).is_err() {
                rejected += 1;
            }
        }
    }
    // Not every single-bit header flip is necessarily fatal in principle,
    // but with magic + version + exact-size + checksums + a zeroed
    // reserved field, all of them are for this file.
    assert_eq!(rejected, 128, "some header corruption went undetected");
    std::fs::remove_file(&path).ok();
}

/// METIS ingestion shares the streaming scanner and the validating builder
/// with DIMACS; spot-check its boundary behavior too.
#[test]
fn metis_rejects_structural_violations() {
    let cases: [(&str, f64, &str); 3] = [
        ("4 3 001\n2 5\n1 5\n", 1.0, "truncated"),
        // weight_scale = 0 turns every integer weight infinite — the
        // finiteness gate must hold on this path too.
        ("2 1 001\n2 5\n1 5\n", 0.0, "finite"),
        ("2 1 001\n5 1\n1 1\n", 1.0, "out of range"),
    ];
    for (text, scale, needle) in cases {
        let err = io::read_metis(Cursor::new(text.as_bytes()), scale)
            .expect_err("malformed metis must be rejected");
        assert!(
            err.to_string().contains(needle),
            "expected {needle:?} in: {err}"
        );
    }
}
