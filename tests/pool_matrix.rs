//! Thread-count matrix: pooled execution must be indistinguishable from the
//! sequential escape hatch, for every algorithm, at every processor count.
//!
//! The pool width is pinned to 4 before first touch so the work-stealing
//! scheduler is genuinely active (forks get stolen) even on a 1-core CI
//! host. `msf_pool::with_sequential` then gives an in-process A/B: the same
//! call tree, once inline in deterministic order, once on the pool. The
//! results must be **bit-identical** — same forest edge ids in the same
//! order, same total weight bits, same component count — and every pooled
//! forest must independently pass the cut/cycle certificate.

use msf_core::{certify, fuzz, minimum_spanning_forest, Algorithm, MsfConfig, MsfResult};
use msf_graph::generators::{
    mesh2d, random_graph, structured, GeneratorConfig, StructuredKind, WeightScheme,
};
use msf_graph::EdgeList;

/// The processor counts of the matrix: both boundary values and awkward
/// non-powers-of-two that exceed the pool width.
const MATRIX_P: [usize; 5] = [1, 2, 3, 7, 8];

fn inputs() -> Vec<(String, EdgeList)> {
    let cfg = GeneratorConfig::with_seed(7);
    vec![
        (
            "random n=2000 m=8000".into(),
            random_graph(&cfg, 2_000, 8_000),
        ),
        ("mesh 40x40".into(), mesh2d(&cfg, 40, 40)),
        (
            "str2 n=1500".into(),
            structured(&cfg, StructuredKind::Str2, 1_500),
        ),
        (
            "random small-int weights".into(),
            msf_graph::generators::assign_weights(
                &random_graph(&cfg, 1_000, 5_000),
                WeightScheme::SmallIntegers { range: 8 },
                7,
            ),
        ),
    ]
}

fn fingerprint(r: &MsfResult) -> (Vec<u32>, u64, u32) {
    (r.edges.clone(), r.total_weight.to_bits(), r.components)
}

#[test]
fn pooled_results_are_bit_identical_to_sequential_across_matrix() {
    msf_pool::force_width(4);
    for (name, g) in inputs() {
        for algo in Algorithm::ALL {
            for p in MATRIX_P {
                let cfg = MsfConfig::with_threads(p);
                let seq = msf_pool::with_sequential(|| minimum_spanning_forest(&g, algo, &cfg));
                let pooled = minimum_spanning_forest(&g, algo, &cfg);
                assert_eq!(
                    fingerprint(&seq),
                    fingerprint(&pooled),
                    "{name}: {algo} at p={p} diverged between sequential and pooled execution"
                );
                certify::certify_msf_with(&g, &pooled, p).unwrap_or_else(|v| {
                    panic!("{name}: {algo} at p={p} pooled forest failed certification: {v}")
                });
            }
        }
    }
}

#[test]
fn fuzz_smoke_runs_clean_with_pool_active() {
    msf_pool::force_width(4);
    // Exercises the pooled path by default; under MSF_SEQUENTIAL=1 (the CI
    // escape-hatch job) the same campaign runs inline instead.
    if !msf_pool::sequential_env() {
        assert!(
            !msf_pool::sequential_here(),
            "fuzz smoke must exercise the pooled path"
        );
    }
    let cfg = fuzz::FuzzConfig {
        cases: 25,
        seed: 0xB0DA,
        max_vertices: 64,
        threads: vec![1, 3, 8],
        ..fuzz::FuzzConfig::default()
    };
    let report = fuzz::run_fuzz(&cfg).expect("fuzz campaign IO");
    assert_eq!(report.cases, 25);
    assert!(
        report.failures.is_empty(),
        "pooled fuzz smoke found failures: {:?}",
        report
            .failures
            .iter()
            .map(|f| format!("case {} {} {}", f.case, f.generator, f.algo))
            .collect::<Vec<_>>()
    );
}
