//! Robustness integration tests: weight schemes, vertex relabelings, graph
//! compositions, and representation extremes must never change the forest
//! (beyond what the transformation itself implies).

use msf_suite::core::{minimum_spanning_forest, Algorithm, MsfConfig};
use msf_suite::graph::generators::{
    assign_weights, geometric_knn, random_graph, GeneratorConfig, WeightScheme,
};
use msf_suite::graph::transform::{disjoint_union, overlay, permute_vertices};

const SCHEMES: [WeightScheme; 4] = [
    WeightScheme::Uniform,
    WeightScheme::SmallIntegers { range: 4 },
    WeightScheme::Exponential,
    WeightScheme::Bimodal,
];

/// Every algorithm agrees with Kruskal under every weight distribution —
/// including the heavy-tie small-integer scheme.
#[test]
fn all_algorithms_under_all_weight_schemes() {
    let base = random_graph(&GeneratorConfig::with_seed(42), 400, 1600);
    for scheme in SCHEMES {
        let g = assign_weights(&base, scheme, 7);
        let reference = minimum_spanning_forest(&g, Algorithm::Kruskal, &MsfConfig::default());
        for algo in Algorithm::ALL {
            let r = minimum_spanning_forest(&g, algo, &MsfConfig::with_threads(4));
            assert_eq!(
                r.edges,
                reference.edges,
                "{algo} under {} weights",
                scheme.name()
            );
        }
    }
}

/// Vertex relabeling cannot change the MSF weight (a graph invariant) even
/// though ids and edge choices under ties may differ.
#[test]
fn msf_weight_invariant_under_vertex_permutation() {
    let g = geometric_knn(&GeneratorConfig::with_seed(3), 1_000, 5);
    let h = permute_vertices(&g, 99);
    for algo in [Algorithm::BorFal, Algorithm::MstBc, Algorithm::BorEl] {
        let rg = minimum_spanning_forest(&g, algo, &MsfConfig::with_threads(3));
        let rh = minimum_spanning_forest(&h, algo, &MsfConfig::with_threads(3));
        assert!(
            (rg.total_weight - rh.total_weight).abs() < 1e-9,
            "{algo}: {} vs {}",
            rg.total_weight,
            rh.total_weight
        );
        assert_eq!(rg.components, rh.components, "{algo}");
    }
}

/// The forest of a disjoint union is the union of the parts' forests
/// (weights add; tree counts add).
#[test]
fn disjoint_union_composes_forests() {
    let a = random_graph(&GeneratorConfig::with_seed(1), 200, 700);
    let b = geometric_knn(&GeneratorConfig::with_seed(2), 300, 4);
    let u = disjoint_union(&[&a, &b]);
    let cfg = MsfConfig::with_threads(4);
    let ra = minimum_spanning_forest(&a, Algorithm::BorAl, &cfg);
    let rb = minimum_spanning_forest(&b, Algorithm::BorAl, &cfg);
    let ru = minimum_spanning_forest(&u, Algorithm::BorAl, &cfg);
    assert!(
        (ru.total_weight - (ra.total_weight + rb.total_weight)).abs() < 1e-9,
        "union weight must be the sum of part weights"
    );
    assert_eq!(ru.components, ra.components + rb.components);
    assert_eq!(ru.edges.len(), ra.edges.len() + rb.edges.len());
}

/// Overlaying a graph with a strictly heavier copy of itself must not
/// change the forest weight: every parallel heavy edge is dominated.
#[test]
fn overlay_with_dominated_layer_is_a_noop() {
    let base = random_graph(&GeneratorConfig::with_seed(5), 300, 900);
    let heavy = {
        let triples: Vec<(u32, u32, f64)> = base
            .edges()
            .iter()
            .map(|e| (e.u, e.v, e.w + 100.0))
            .collect();
        msf_suite::graph::EdgeList::from_triples(300, triples)
    };
    let combined = overlay(&[&base, &heavy]);
    let cfg = MsfConfig::with_threads(4);
    let r_base = minimum_spanning_forest(&base, Algorithm::BorFal, &cfg);
    for algo in [
        Algorithm::BorFal,
        Algorithm::BorAl,
        Algorithm::MstBc,
        Algorithm::BorDense,
    ] {
        let r = minimum_spanning_forest(&combined, algo, &cfg);
        assert!(
            (r.total_weight - r_base.total_weight).abs() < 1e-9,
            "{algo}: dominated layer changed the weight"
        );
    }
}

/// Extreme thread counts (p far above n, p = 1) stay correct.
#[test]
fn extreme_thread_counts() {
    let g = random_graph(&GeneratorConfig::with_seed(8), 50, 200);
    let reference = minimum_spanning_forest(&g, Algorithm::Kruskal, &MsfConfig::default());
    for algo in Algorithm::PARALLEL {
        for p in [1usize, 64] {
            let cfg = MsfConfig {
                base_size: 2,
                ..MsfConfig::with_threads(p)
            };
            let r = minimum_spanning_forest(&g, algo, &cfg);
            assert_eq!(r.edges, reference.edges, "{algo} at p={p}");
        }
    }
}

/// Near-empty and tiny graphs across all algorithms.
#[test]
fn degenerate_sizes() {
    use msf_suite::graph::EdgeList;
    let cases = [
        EdgeList::from_triples(0, vec![]),
        EdgeList::from_triples(1, vec![]),
        EdgeList::from_triples(2, vec![]),
        EdgeList::from_triples(2, vec![(0, 1, 0.5)]),
        EdgeList::from_triples(3, vec![(0, 1, 0.5)]),
    ];
    for (i, g) in cases.iter().enumerate() {
        let reference = minimum_spanning_forest(g, Algorithm::Kruskal, &MsfConfig::default());
        for algo in Algorithm::ALL {
            let r = minimum_spanning_forest(g, algo, &MsfConfig::with_threads(3));
            assert_eq!(r.edges, reference.edges, "case {i}, {algo}");
            assert_eq!(r.components, reference.components, "case {i}, {algo}");
        }
    }
}
