//! Absolute telemetry assertions, enabled by the reset/snapshot semantics
//! of the pool counters and the metrics registry.
//!
//! Historically these assertions lived as *deltas* between two snapshots
//! (`after.x >= before.x + k`), because counters are process-global and
//! accumulate whatever earlier tests did — making them order-dependent and
//! racy under the concurrent test harness. This file runs as its own test
//! binary with a single `#[test]`, so after `reset_telemetry_for_test` /
//! `metrics::reset_for_test` the process is quiescent and the assertions
//! can be exact.

use std::sync::Mutex;

use msf_core::{minimum_spanning_forest, Algorithm, MsfConfig};
use msf_graph::generators::{mesh2d, GeneratorConfig};
use msf_primitives::obs;

/// Both tests reset process-global state, so they must not overlap even
/// under the concurrent harness.
static GLOBAL_STATE: Mutex<()> = Mutex::new(());

#[test]
fn reset_then_snapshot_gives_absolute_counters() {
    let _l = GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner());
    msf_pool::force_width(4);
    let g = mesh2d(&GeneratorConfig::with_seed(7), 30, 30);
    let cfg = MsfConfig::with_threads(4);

    // Warm up: start the stealing workers and the team-thread cache. How
    // much telemetry this run generates is history we don't care about.
    let warm = minimum_spanning_forest(&g, Algorithm::BorFal, &cfg);

    // Quiescent now (single test, single binary): zero everything and
    // assert the zero state absolutely.
    msf_pool::reset_telemetry_for_test();
    let zero = msf_pool::pool_stats();
    assert_eq!(zero.width, 4);
    assert_eq!(zero.injector_pushes, 0);
    assert_eq!(zero.injector_pops, 0);
    assert_eq!(zero.team_leases, 0);
    assert_eq!(zero.team_threads_spawned, 0);
    assert_eq!(zero.steal_hits() + zero.steal_misses() + zero.parks(), 0);

    // One run's pool traffic, measured absolutely — no before/after deltas.
    let run = minimum_spanning_forest(&g, Algorithm::BorFal, &cfg);
    assert_eq!(run.edges, warm.edges, "workload must be deterministic");
    let stats = msf_pool::pool_stats();
    assert!(
        stats.injector_pushes + stats.team_leases > 0,
        "a p=4 run must move pool traffic, found none after reset"
    );
    // Leases re-draw from the warm cache; spawns may still race (a thread
    // re-idles only after the run's latch fires), so only leases are exact.
    assert_eq!(
        stats.team_leases % 3,
        0,
        "every team run leases exactly p-1 = 3 ranks, so the total is a multiple"
    );
}

#[test]
fn metrics_registry_resets_to_exact_per_run_counts() {
    let _l = GLOBAL_STATE.lock().unwrap_or_else(|e| e.into_inner());
    msf_pool::force_width(4);
    let g = mesh2d(&GeneratorConfig::with_seed(7), 30, 30);
    let cfg = MsfConfig::with_threads(4);

    obs::metrics::set_enabled(true);
    obs::metrics::reset_for_test();
    let run = minimum_spanning_forest(&g, Algorithm::BorAlm, &cfg);
    let snap = obs::metrics::snapshot();
    obs::metrics::set_enabled(false);

    // One find-min phase per Borůvka iteration: the histogram count is
    // exactly the iteration count of this single run.
    let iters = run.stats.iterations.len() as u64;
    let fm = snap
        .histogram("phase.find-min.wall_ns")
        .expect("find-min wall histogram registered");
    assert_eq!(fm.count, iters, "one find-min record per iteration");
    let compact = snap
        .histogram("phase.compact.wall_ns")
        .expect("compact wall histogram registered");
    assert_eq!(compact.count, iters, "one compact record per iteration");
    // Shrink ratios are recorded from the second iteration on, and a
    // Borůvka iteration at least halves the vertex count.
    let shrink = snap
        .histogram("boruvka.shrink_permille")
        .expect("shrink histogram registered");
    assert_eq!(shrink.count, iters.saturating_sub(1));
    assert!(shrink.max <= 500, "shrink ratio above 500‰: {}", shrink.max);
    // Bor-ALM ran: its arenas must have reported chunks, and everything
    // live was released by the end of the run.
    assert!(snap.counter("arena.chunks").unwrap_or(0) > 0);
    assert_eq!(snap.gauge("arena.live_bytes").map(|(v, _)| v), Some(0));
}
