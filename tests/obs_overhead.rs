//! The observability overhead contract (DESIGN.md §11): with tracing
//! disabled, an instrumented hot path costs one relaxed atomic load and a
//! predictable branch per span — nothing else. These tests hold the
//! subsystem to that contract on the same fingerprint workload
//! `tests/pool_matrix.rs` uses, so a regression that makes the disabled
//! path expensive (an accidental allocation, an env read per call, a
//! thread-local ring touch) fails loudly rather than silently taxing every
//! algorithm.
//!
//! Timing assertions are deliberately loose (their job is to catch
//! orders-of-magnitude regressions, not nanoseconds of noise), and the
//! correctness assertion is exact: tracing on vs off must not change a
//! single output bit.

use std::sync::Mutex;
use std::time::Instant;

use msf_core::{minimum_spanning_forest, Algorithm, MsfConfig, MsfResult};
use msf_graph::generators::{mesh2d, GeneratorConfig};
use msf_graph::EdgeList;
use msf_primitives::obs;

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn mesh() -> EdgeList {
    mesh2d(&GeneratorConfig::with_seed(3), 30, 30)
}

fn fingerprint(r: &MsfResult) -> (Vec<u32>, u64, u32) {
    (r.edges.clone(), r.total_weight.to_bits(), r.components)
}

/// The fingerprint workload: every parallel algorithm once, p = 4.
fn workload(g: &EdgeList) -> Vec<(Vec<u32>, u64, u32)> {
    Algorithm::PARALLEL
        .iter()
        .map(|&a| fingerprint(&minimum_spanning_forest(g, a, &MsfConfig::with_threads(4))))
        .collect()
}

#[test]
fn disabled_span_is_a_single_branch_in_cost() {
    let _l = lock();
    obs::set_enabled(false);
    // Warm the gate so the measured loop sees the steady state.
    assert!(!obs::enabled());
    const CALLS: u64 = 2_000_000;
    let t = Instant::now();
    for i in 0..CALLS {
        let span = obs::span(obs::SpanKind::FindMin, i, 0);
        span.end_with(i, i);
    }
    let per_call = t.elapsed().as_nanos() as f64 / CALLS as f64;
    // A relaxed load + branch is ~1 ns; 200 ns flags a real regression
    // (allocation, env lookup, ring registration) with a 100x margin for
    // slow CI hosts.
    assert!(
        per_call < 200.0,
        "disabled span costs {per_call:.1} ns/call — the disabled path must be one \
         relaxed load and a branch"
    );
}

#[test]
fn tracing_does_not_change_any_output_bit() {
    let _l = lock();
    msf_pool::force_width(4);
    let g = mesh();
    obs::set_enabled(false);
    let plain = workload(&g);
    obs::set_enabled(true);
    let _ = obs::drain();
    let traced = workload(&g);
    let trace = obs::drain();
    obs::set_enabled(false);
    assert!(!trace.is_empty(), "the traced leg must actually record");
    assert_eq!(
        plain, traced,
        "tracing must be observation, not interference"
    );
}

#[test]
fn disabled_metrics_record_is_a_single_branch_in_cost() {
    let _l = lock();
    obs::metrics::set_enabled(false);
    assert!(!obs::metrics::enabled());
    static HIST: obs::metrics::LazyHistogram = obs::metrics::LazyHistogram::new("overhead.hist");
    static CTR: obs::metrics::LazyCounter = obs::metrics::LazyCounter::new("overhead.ctr");
    const CALLS: u64 = 2_000_000;
    let t = Instant::now();
    for i in 0..CALLS {
        HIST.record(i);
        CTR.inc();
    }
    let per_call = t.elapsed().as_nanos() as f64 / (2 * CALLS) as f64;
    // Same contract as the span gate: one relaxed load and a branch.
    assert!(
        per_call < 200.0,
        "disabled metric record costs {per_call:.1} ns/call — the disabled path must \
         be one relaxed load and a branch"
    );
}

#[test]
fn disabled_metrics_cost_is_under_one_percent_of_the_workload() {
    let _l = lock();
    msf_pool::force_width(4);
    let g = mesh();

    // Count the records the workload would make with metrics on: the phase
    // wall-ns histograms and shrink ratios flow through the registry, so
    // the snapshot's total histogram count is the record volume.
    obs::metrics::set_enabled(true);
    obs::metrics::reset_for_test();
    let on = workload(&g);
    let snap = obs::metrics::snapshot();
    let records: u64 = snap.histograms.iter().map(|h| h.count).sum::<u64>()
        + snap.counters.iter().map(|&(_, v)| v.min(1)).sum::<u64>();
    obs::metrics::set_enabled(false);
    assert!(records > 0, "the workload must actually hit the registry");

    // Metrics on vs off must not change a single output bit.
    let off = workload(&g);
    assert_eq!(on, off, "metrics must be observation, not interference");

    // Per-record cost of the disabled gate.
    static HIST: obs::metrics::LazyHistogram = obs::metrics::LazyHistogram::new("overhead.tax");
    const CALLS: u64 = 1_000_000;
    let t = Instant::now();
    for i in 0..CALLS {
        HIST.record(i);
    }
    let per_record = t.elapsed().as_nanos() as f64 / CALLS as f64;

    // Baseline: median of three disabled runs.
    let mut walls: Vec<f64> = (0..3)
        .map(|_| {
            let t = Instant::now();
            let _ = workload(&g);
            t.elapsed().as_nanos() as f64
        })
        .collect();
    walls.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let baseline = walls[1];

    let tax = per_record * records as f64;
    assert!(
        tax < baseline * 0.01,
        "disabled metrics would cost {tax:.0} ns against a {baseline:.0} ns workload \
         ({records} records, {per_record:.1} ns each) — over the 1% budget"
    );
}

#[test]
fn disabled_cas_retry_counters_stay_under_the_one_percent_guard() {
    let _l = lock();
    msf_pool::force_width(4);
    let g = mesh();
    let contenders = [Algorithm::BorWriteMin, Algorithm::SfHook];
    let run_both = |g: &EdgeList| {
        for a in contenders {
            let _ = minimum_spanning_forest(g, a, &MsfConfig::with_threads(4));
        }
    };

    // The retry counters sit inside CAS failure paths, which execute with
    // metrics on or off — so the disabled-path tax is the failure count
    // (measured with metrics on; zero on an uncontended run is fine) times
    // the cost of the disabled gate.
    obs::metrics::set_enabled(true);
    obs::metrics::reset_for_test();
    run_both(&g);
    let snap = obs::metrics::snapshot();
    let retries = snap.counter("atomic.write_min.cas_retry").unwrap_or(0)
        + snap.counter("unionfind.hook.cas_retry").unwrap_or(0);
    obs::metrics::set_enabled(false);

    static CTR: obs::metrics::LazyCounter = obs::metrics::LazyCounter::new("overhead.retry");
    const CALLS: u64 = 1_000_000;
    let t = Instant::now();
    for _ in 0..CALLS {
        CTR.inc();
    }
    let per_inc = t.elapsed().as_nanos() as f64 / CALLS as f64;

    let mut walls: Vec<f64> = (0..3)
        .map(|_| {
            let t = Instant::now();
            run_both(&g);
            t.elapsed().as_nanos() as f64
        })
        .collect();
    walls.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let baseline = walls[1];

    let tax = per_inc * retries as f64;
    assert!(
        tax < baseline * 0.01,
        "disabled cas-retry gates would cost {tax:.0} ns against a {baseline:.0} ns \
         contender run ({retries} retries, {per_inc:.1} ns/inc) — over the 1% budget"
    );
}

#[test]
fn disabled_profiler_cost_is_under_one_percent_of_the_workload() {
    let _l = lock();
    msf_pool::force_width(4);
    let g = mesh();
    assert!(
        !obs::profile::is_running(),
        "this guard measures the profiler's DISABLED path"
    );

    // How many profiler gate checks would this workload make? Exactly one
    // per span begin (the pop side is flag-guarded, not gate-guarded), so
    // the traced event count / 2 is the check volume.
    obs::set_enabled(true);
    let _ = obs::drain();
    let _ = workload(&g);
    let checks = obs::drain().events.len() as f64 / 2.0;
    obs::set_enabled(false);
    assert!(checks > 0.0);

    // Per-span cost with tracing AND profiling both disabled — the loop
    // below pays both gates, so the measurement is an upper bound on the
    // profiler's share.
    const CALLS: u64 = 1_000_000;
    let t = Instant::now();
    for i in 0..CALLS {
        obs::span(obs::SpanKind::FindMin, i, 0).end_with(i, i);
    }
    let per_span = t.elapsed().as_nanos() as f64 / CALLS as f64;

    let mut walls: Vec<f64> = (0..3)
        .map(|_| {
            let t = Instant::now();
            let _ = workload(&g);
            t.elapsed().as_nanos() as f64
        })
        .collect();
    walls.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let baseline = walls[1];

    let tax = per_span * checks;
    assert!(
        tax < baseline * 0.01,
        "disabled profiler gate would cost {tax:.0} ns against a {baseline:.0} ns \
         workload ({checks} checks, {per_span:.1} ns/span) — over the 1% budget"
    );
}

#[test]
fn disabled_instrumentation_cost_is_under_one_percent_of_the_workload() {
    let _l = lock();
    msf_pool::force_width(4);
    let g = mesh();

    // How many events would this workload record? (Run traced once.)
    obs::set_enabled(true);
    let _ = obs::drain();
    let _ = workload(&g);
    let events = obs::drain().events.len() as f64;
    obs::set_enabled(false);
    assert!(events > 0.0);

    // Per-call cost of the disabled gate, measured in situ.
    const CALLS: u64 = 1_000_000;
    let t = Instant::now();
    for i in 0..CALLS {
        obs::span(obs::SpanKind::FindMin, i, 0).end_with(i, i);
    }
    // One span = two gate checks (begin + end), which the loop above pairs.
    let per_span = t.elapsed().as_nanos() as f64 / CALLS as f64;

    // Baseline: median of three disabled runs of the workload.
    let mut walls: Vec<f64> = (0..3)
        .map(|_| {
            let t = Instant::now();
            let _ = workload(&g);
            t.elapsed().as_nanos() as f64
        })
        .collect();
    walls.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let baseline = walls[1];

    // Each recorded event corresponds to one armed gate check; the total
    // disabled-path tax over the whole workload must be noise.
    let tax = per_span * events;
    assert!(
        tax < baseline * 0.01,
        "disabled instrumentation would cost {tax:.0} ns against a {baseline:.0} ns \
         workload ({events} events, {per_span:.1} ns/span) — over the 1% budget"
    );
}
