//! Differential suites for the bandwidth-lean contraction core.
//!
//! Two process-global levers change *how* the contraction pipeline touches
//! memory without being allowed to change *what* it computes:
//!
//! * **fused vs unfused** — `MSF_UNFUSED=1` (here: `fused::with_unfused`)
//!   swaps the single-sweep relabel+filter kernels back to the retained
//!   multi-pass formulation. Every affected algorithm must produce the
//!   bit-identical forest at the exact same modeled cost, because both
//!   paths charge the same analytic formulas and visit edges in the same
//!   order.
//! * **narrowed vs wide** — `MSF_NO_NARROW=1` (here: `wide::with_no_narrow`)
//!   keeps the width-adaptive recursion in `u64` end to end. The modeled
//!   cost counts accesses, not bytes, so it too must match exactly.
//!
//! The matrix mirrors `pool_matrix`: pool width pinned to 4 so the
//! work-stealing scheduler is genuinely active even on a 1-core host,
//! awkward processor counts {1, 2, 3, 7, 8}, and a hostile generator mix
//! (duplicate weights, structured near-worst-cases, power-law skew). The
//! whole file must also pass under `RUST_TEST_THREADS=1` and
//! `MSF_SEQUENTIAL=1` — the CI escape-hatch harnesses.

use msf_core::par::wide::{self, msf_on_soa};
use msf_core::{minimum_spanning_forest, Algorithm, MsfConfig, MsfResult};
use msf_graph::generators::{
    assign_weights, powerlaw_graph, random_graph, structured, GeneratorConfig, PowerLawConfig,
    StructuredKind, WeightScheme,
};
use msf_graph::soa::SoaEdgeList;
use msf_graph::EdgeList;
use msf_primitives::fused;

const MATRIX_P: [usize; 5] = [1, 2, 3, 7, 8];

/// The algorithms whose contraction pipelines route through the fused
/// kernels (directly or via the shared relabel/filter helpers).
const FUSED_ALGOS: [Algorithm; 5] = [
    Algorithm::BorEl,
    Algorithm::MstBc,
    Algorithm::BorWriteMin,
    Algorithm::SfHook,
    Algorithm::FilterKruskal,
];

fn hostile_inputs() -> Vec<(String, EdgeList)> {
    let cfg = GeneratorConfig::with_seed(42);
    vec![
        (
            "random n=3000 m=12000".into(),
            random_graph(&cfg, 3_000, 12_000),
        ),
        (
            "duplicate small-int weights".into(),
            assign_weights(
                &random_graph(&cfg, 1_500, 9_000),
                WeightScheme::SmallIntegers { range: 4 },
                42,
            ),
        ),
        (
            "str1 n=2000".into(),
            structured(&cfg, StructuredKind::Str1, 2_000),
        ),
        (
            "powerlaw n=2000".into(),
            powerlaw_graph(PowerLawConfig::new(2_000, 8_000, 9)).expect("in-memory size"),
        ),
    ]
}

fn fingerprint(r: &MsfResult) -> (Vec<u32>, u64, u32) {
    (r.edges.clone(), r.total_weight.to_bits(), r.components)
}

#[test]
fn fused_and_unfused_are_bit_identical_with_equal_modeled_cost() {
    msf_pool::force_width(4);
    for (name, g) in hostile_inputs() {
        for algo in FUSED_ALGOS {
            for p in MATRIX_P {
                let cfg = MsfConfig::with_threads(p);
                let fused_run =
                    fused::with_unfused(false, || minimum_spanning_forest(&g, algo, &cfg));
                let plain_run =
                    fused::with_unfused(true, || minimum_spanning_forest(&g, algo, &cfg));
                assert_eq!(
                    fingerprint(&fused_run),
                    fingerprint(&plain_run),
                    "{name}: {algo} at p={p} diverged between fused and unfused kernels"
                );
                // MST-BC races threads to tree collisions, so its per-run
                // work split — and hence the modeled cost — is scheduling
                // dependent at p > 1 even within a single mode. Every other
                // contender charges pure functions of the round structure,
                // which the fused rewrite must not perturb.
                if algo != Algorithm::MstBc {
                    assert_eq!(
                        fused_run.stats.modeled_cost, plain_run.stats.modeled_cost,
                        "{name}: {algo} at p={p} modeled cost drifted between modes"
                    );
                }
            }
        }
    }
}

#[test]
fn bor_fal_filter_front_end_is_mode_invariant() {
    // Bor-FAL+filter routes its cycle-property keep-pass through the fused
    // indexed compact; the inner Bor-FAL contraction is untouched by the
    // mode, so forest and modeled cost must both hold.
    msf_pool::force_width(4);
    let g = random_graph(&GeneratorConfig::with_seed(3), 2_000, 10_000);
    for p in MATRIX_P {
        let cfg = MsfConfig::with_threads(p);
        let fused_run = fused::with_unfused(false, || {
            minimum_spanning_forest(&g, Algorithm::BorFalFilter, &cfg)
        });
        let plain_run = fused::with_unfused(true, || {
            minimum_spanning_forest(&g, Algorithm::BorFalFilter, &cfg)
        });
        assert_eq!(
            fingerprint(&fused_run),
            fingerprint(&plain_run),
            "Bor-FAL+filter at p={p} diverged between fused and unfused kernels"
        );
        assert_eq!(
            fused_run.stats.modeled_cost, plain_run.stats.modeled_cost,
            "Bor-FAL+filter at p={p} modeled cost drifted between modes"
        );
    }
}

#[test]
fn narrowed_and_wide_recursions_are_bit_identical() {
    msf_pool::force_width(4);
    for (name, g) in hostile_inputs() {
        let soa = SoaEdgeList::<u64>::from_edge_list(&g).expect("test graphs fit");
        let narrow = SoaEdgeList::<u32>::from_edge_list(&g).expect("test graphs fit");
        let reference: Vec<u64> =
            minimum_spanning_forest(&g, Algorithm::Kruskal, &MsfConfig::default())
                .edges
                .iter()
                .map(|&i| u64::from(i))
                .collect();
        for p in MATRIX_P {
            let cfg = MsfConfig::with_threads(p);
            let narrowed = wide::with_no_narrow(false, || msf_on_soa(&soa, &cfg));
            let stay_wide = wide::with_no_narrow(true, || msf_on_soa(&soa, &cfg));
            let from_narrow_entry = msf_on_soa(&narrow, &cfg);
            assert_eq!(
                narrowed.edges, stay_wide.edges,
                "{name} p={p}: narrowing changed the forest"
            );
            assert_eq!(
                narrowed.total_weight.to_bits(),
                stay_wide.total_weight.to_bits(),
                "{name} p={p}: narrowing changed the weight"
            );
            assert_eq!(
                narrowed.modeled_cost, stay_wide.modeled_cost,
                "{name} p={p}: modeled cost must be width-pure"
            );
            assert_eq!(
                narrowed.edges, from_narrow_entry.edges,
                "{name} p={p}: u64 and u32 entry points disagree"
            );
            assert_eq!(
                narrowed.edges, reference,
                "{name} p={p}: width-adaptive forest is not the unique MSF"
            );
        }
    }
}

#[test]
fn narrowing_composes_with_unfused_kernels() {
    // All four mode combinations must agree: (fused|unfused) × (narrow|wide).
    msf_pool::force_width(4);
    let g = random_graph(&GeneratorConfig::with_seed(77), 2_500, 10_000);
    let soa = SoaEdgeList::<u64>::from_edge_list(&g).expect("fits");
    let cfg = MsfConfig::with_threads(3);
    let mut runs = Vec::new();
    for unfused in [false, true] {
        for no_narrow in [false, true] {
            let r = fused::with_unfused(unfused, || {
                wide::with_no_narrow(no_narrow, || msf_on_soa(&soa, &cfg))
            });
            runs.push((unfused, no_narrow, r));
        }
    }
    let (_, _, first) = &runs[0];
    for (unfused, no_narrow, r) in &runs {
        assert_eq!(
            r.edges, first.edges,
            "unfused={unfused} no_narrow={no_narrow} diverged"
        );
        assert_eq!(
            r.modeled_cost, first.modeled_cost,
            "unfused={unfused} no_narrow={no_narrow}: modeled cost drifted"
        );
    }
}
