//! Cross-crate integration: every algorithm on every generator class must
//! produce the identical (unique) minimum spanning forest.

use msf_suite::core::{minimum_spanning_forest, verify, Algorithm, MsfConfig};
use msf_suite::graph::generators::{standard_suite, GeneratorConfig};

/// The headline invariant: 8 algorithms × 10 generator classes × several
/// thread counts, all byte-identical to the Kruskal reference.
#[test]
fn full_matrix_agreement() {
    let gen = GeneratorConfig::with_seed(2026);
    for (name, g) in standard_suite(&gen, 600) {
        let reference = minimum_spanning_forest(&g, Algorithm::Kruskal, &MsfConfig::default());
        verify::verify_msf(&g, &reference).unwrap_or_else(|e| panic!("{name}: {e}"));
        verify::verify_msf_cycle_property(&g, &reference)
            .unwrap_or_else(|e| panic!("{name} (cycle property): {e}"));
        for algo in Algorithm::ALL {
            for p in [1usize, 3, 7] {
                let cfg = MsfConfig {
                    base_size: 16,
                    ..MsfConfig::with_threads(p)
                };
                let r = minimum_spanning_forest(&g, algo, &cfg);
                assert_eq!(
                    r.edges, reference.edges,
                    "{algo} disagrees with Kruskal on {name} at p={p}"
                );
                assert_eq!(r.components, reference.components, "{algo} on {name}");
                assert!(
                    (r.total_weight - reference.total_weight).abs()
                        <= 1e-9 * reference.total_weight.abs().max(1.0),
                    "{algo} weight drift on {name}"
                );
            }
        }
    }
}

/// Disconnected inputs: the suite solves minimum spanning *forest*, so glue
/// three islands together and check every algorithm finds one tree each.
#[test]
fn disconnected_inputs_yield_forests() {
    use msf_suite::graph::generators::random_graph;
    use msf_suite::graph::EdgeList;

    let gen = GeneratorConfig::with_seed(7);
    let islands: Vec<_> = (0..3)
        .map(|i| random_graph(&GeneratorConfig::with_seed(gen.seed + i), 150, 450))
        .collect();
    // Re-number vertices into one big disconnected graph.
    let mut triples = Vec::new();
    for (i, island) in islands.iter().enumerate() {
        let off = (i * 150) as u32;
        for e in island.edges() {
            triples.push((e.u + off, e.v + off, e.w));
        }
    }
    let g = EdgeList::from_triples(450 + 5, triples); // plus 5 isolated vertices

    let reference = minimum_spanning_forest(&g, Algorithm::Kruskal, &MsfConfig::default());
    let components = msf_suite::graph::validate::component_count(&g) as u32;
    assert!(
        components >= 3 + 5,
        "at least 3 islands + 5 isolated vertices"
    );
    assert_eq!(reference.components, components);
    assert_eq!(reference.edges.len(), 455 - components as usize);
    for algo in Algorithm::ALL {
        let r = minimum_spanning_forest(&g, algo, &MsfConfig::with_threads(4));
        assert_eq!(r.edges, reference.edges, "{algo}");
        verify::verify_msf(&g, &r).unwrap_or_else(|e| panic!("{algo}: {e}"));
    }
}

/// Heavy tie stress: many duplicate weights must still give one unique
/// forest thanks to the (weight, id) total order.
#[test]
fn duplicate_weights_are_deterministic() {
    use msf_suite::graph::EdgeList;
    // A 20x20 grid where every edge weighs 1.0.
    let side = 20u32;
    let mut triples = Vec::new();
    for r in 0..side {
        for c in 0..side {
            let v = r * side + c;
            if c + 1 < side {
                triples.push((v, v + 1, 1.0));
            }
            if r + 1 < side {
                triples.push((v, v + side, 1.0));
            }
        }
    }
    let g = EdgeList::from_triples((side * side) as usize, triples);
    let reference = minimum_spanning_forest(&g, Algorithm::Kruskal, &MsfConfig::default());
    for algo in Algorithm::ALL {
        for p in [1, 2, 5] {
            let r = minimum_spanning_forest(&g, algo, &MsfConfig::with_threads(p));
            assert_eq!(r.edges, reference.edges, "{algo} p={p}");
        }
    }
}

/// Star graphs maximize contention on a single hub — a worst case for the
/// concurrent coloring in MST-BC and for segment skew in Bor-EL.
#[test]
fn star_graph_all_algorithms() {
    use msf_suite::graph::EdgeList;
    let n = 2000u32;
    let triples: Vec<(u32, u32, f64)> = (1..n).map(|v| (0, v, f64::from(v) * 0.25)).collect();
    let g = EdgeList::from_triples(n as usize, triples);
    let reference = minimum_spanning_forest(&g, Algorithm::Kruskal, &MsfConfig::default());
    assert_eq!(reference.edges.len(), (n - 1) as usize);
    for algo in Algorithm::ALL {
        let r = minimum_spanning_forest(&g, algo, &MsfConfig::with_threads(6));
        assert_eq!(r.edges, reference.edges, "{algo}");
    }
}

/// Paths stress the iteration count of pointer jumping and the recursion
/// depth of MST-BC.
#[test]
fn long_path_all_algorithms() {
    use msf_suite::graph::EdgeList;
    let n = 3000u32;
    let triples: Vec<(u32, u32, f64)> = (0..n - 1)
        .map(|v| (v, v + 1, ((v * 7919) % 1000) as f64))
        .collect();
    let g = EdgeList::from_triples(n as usize, triples);
    for algo in Algorithm::ALL {
        let r = minimum_spanning_forest(&g, algo, &MsfConfig::with_threads(4));
        assert_eq!(
            r.edges.len(),
            (n - 1) as usize,
            "{algo} must take every path edge"
        );
    }
}
