//! SPMD thread team with reusable barriers.
//!
//! The paper's algorithms are written per-processor ("for processor pi,
//! 0 ≤ i ≤ p−1") with implicit barrier synchronization between steps — the
//! execution model of the SIMPLE library the authors built on. [`SmpTeam`]
//! reproduces it: `p` OS threads run the same closure, each sees its rank,
//! and [`TeamCtx::barrier`] lines the phases up.
//!
//! Data-parallel primitives (sorts, scans) use rayon internally; the SPMD
//! team is reserved for the algorithm skeletons whose structure genuinely is
//! "p coordinated sequential programs", like MST-BC's concurrent Prim
//! growth.

use std::sync::Barrier;

/// Handle given to every member of a running team.
pub struct TeamCtx<'a> {
    /// This thread's rank in `0..p`.
    pub rank: usize,
    /// Team width.
    pub p: usize,
    barrier: &'a Barrier,
}

impl TeamCtx<'_> {
    /// Block until every team member arrives.
    #[inline]
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// This rank's block of a `0..n` index space (contiguous, balanced).
    #[inline]
    pub fn block(&self, n: usize) -> std::ops::Range<usize> {
        crate::block_range(n, self.p, self.rank)
    }
}

/// A fixed-width SPMD team. Creating the team is cheap; each [`SmpTeam::run`]
/// spawns `p` scoped threads (the paper's algorithms launch one team per
/// algorithm invocation, so spawn cost is amortized over whole MSF runs).
#[derive(Debug, Clone, Copy)]
pub struct SmpTeam {
    p: usize,
}

impl SmpTeam {
    /// A team of `p` workers (`p >= 1`).
    pub fn new(p: usize) -> Self {
        SmpTeam { p: p.max(1) }
    }

    /// Team width.
    #[inline]
    pub fn width(&self) -> usize {
        self.p
    }

    /// Run `f` on every member; returns the per-rank results in rank order.
    ///
    /// A panic on any member propagates (the scope joins all threads first).
    pub fn run<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&TeamCtx<'_>) -> R + Sync,
    {
        if self.p == 1 {
            // Degenerate team: run inline, still honoring barrier() calls.
            let barrier = Barrier::new(1);
            let ctx = TeamCtx {
                rank: 0,
                p: 1,
                barrier: &barrier,
            };
            return vec![f(&ctx)];
        }
        let barrier = Barrier::new(self.p);
        let mut results: Vec<Option<R>> = (0..self.p).map(|_| None).collect();
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(self.p);
            for (rank, slot) in results.iter_mut().enumerate() {
                let barrier = &barrier;
                let f = &f;
                handles.push(s.spawn(move || {
                    let ctx = TeamCtx {
                        rank,
                        p: self.p,
                        barrier,
                    };
                    *slot = Some(f(&ctx));
                }));
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("worker completed"))
            .collect()
    }
}

/// Typed cross-member communication for an [`SmpTeam`] phase: each rank
/// deposits a value, a barrier separates writers from readers, and any rank
/// folds the deposits. Mirrors the reduce/broadcast primitives of the
/// SIMPLE library the paper's implementation was built on.
///
/// ```
/// use msf_primitives::team::{SmpTeam, TeamReducer};
/// let team = SmpTeam::new(4);
/// let red = TeamReducer::<u64>::new(4);
/// let sums = team.run(|ctx| {
///     red.put(ctx.rank, ctx.rank as u64 + 1);
///     ctx.barrier();
///     red.fold(0, |a, b| a + b)
/// });
/// assert_eq!(sums, vec![10, 10, 10, 10]);
/// ```
pub struct TeamReducer<T> {
    slots: Vec<std::sync::Mutex<Option<T>>>,
}

impl<T: Copy> TeamReducer<T> {
    /// Scratch for a team of width `p`.
    pub fn new(p: usize) -> Self {
        TeamReducer {
            slots: (0..p.max(1)).map(|_| std::sync::Mutex::new(None)).collect(),
        }
    }

    /// Deposit this rank's contribution. Call before the phase barrier.
    pub fn put(&self, rank: usize, value: T) {
        *self.slots[rank].lock().expect("reducer mutex poisoned") = Some(value);
    }

    /// Read rank `r`'s deposit (panics if it has not been put). Call after
    /// the phase barrier.
    pub fn get(&self, rank: usize) -> T {
        self.slots[rank]
            .lock()
            .expect("reducer mutex poisoned")
            .expect("rank deposited a value")
    }

    /// Fold all deposits (missing deposits are skipped). Call after the
    /// phase barrier.
    pub fn fold(&self, init: T, f: impl Fn(T, T) -> T) -> T {
        self.slots
            .iter()
            .filter_map(|s| *s.lock().expect("reducer mutex poisoned"))
            .fold(init, f)
    }

    /// Clear all slots for reuse in a later phase (typically done by one
    /// rank, followed by a barrier).
    pub fn reset(&self) {
        for s in &self.slots {
            *s.lock().expect("reducer mutex poisoned") = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_rank_order() {
        let team = SmpTeam::new(4);
        let out = team.run(|ctx| ctx.rank * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn width_one_runs_inline() {
        let team = SmpTeam::new(1);
        let out = team.run(|ctx| {
            ctx.barrier(); // must not deadlock
            ctx.p
        });
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn barrier_separates_phases() {
        // Phase 1: everyone increments. Phase 2: everyone must observe p.
        let team = SmpTeam::new(4);
        let counter = AtomicUsize::new(0);
        let observed = team.run(|ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            counter.load(Ordering::SeqCst)
        });
        assert_eq!(observed, vec![4, 4, 4, 4]);
    }

    #[test]
    fn blocks_cover_index_space() {
        let team = SmpTeam::new(3);
        let n = 100;
        let ranges = team.run(|ctx| ctx.block(n));
        let total: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(total, n);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges[2].end, n);
    }

    #[test]
    fn zero_width_clamps_to_one() {
        let team = SmpTeam::new(0);
        assert_eq!(team.width(), 1);
    }

    #[test]
    fn reducer_folds_min_and_broadcast() {
        let team = SmpTeam::new(3);
        let red = TeamReducer::<(u64, usize)>::new(3);
        // Each rank proposes (key, rank); everyone learns the argmin.
        let winners = team.run(|ctx| {
            let key = [5u64, 2, 9][ctx.rank];
            red.put(ctx.rank, (key, ctx.rank));
            ctx.barrier();
            red.fold((u64::MAX, usize::MAX), |a, b| if b.0 < a.0 { b } else { a })
        });
        assert_eq!(winners, vec![(2, 1); 3]);
    }

    #[test]
    fn reducer_reuse_across_phases() {
        let team = SmpTeam::new(2);
        let red = TeamReducer::<u32>::new(2);
        let out = team.run(|ctx| {
            // Phase 1.
            red.put(ctx.rank, 1);
            ctx.barrier();
            let s1 = red.fold(0, |a, b| a + b);
            ctx.barrier();
            if ctx.rank == 0 {
                red.reset();
            }
            ctx.barrier();
            // Phase 2.
            red.put(ctx.rank, 10);
            ctx.barrier();
            s1 + red.fold(0, |a, b| a + b)
        });
        assert_eq!(out, vec![22, 22]);
    }

    #[test]
    fn reducer_get_reads_specific_rank() {
        let red = TeamReducer::<i32>::new(2);
        red.put(0, -7);
        assert_eq!(red.get(0), -7);
    }
}
