//! SPMD thread team with reusable barriers.
//!
//! The paper's algorithms are written per-processor ("for processor pi,
//! 0 ≤ i ≤ p−1") with implicit barrier synchronization between steps — the
//! execution model of the SIMPLE library the authors built on. [`SmpTeam`]
//! reproduces it: `p` ranks run the same closure, each sees its rank, and
//! [`TeamCtx::barrier`] lines the phases up.
//!
//! Since the pool backend landed, `run` **leases** `p` persistent team
//! threads from [`msf_pool`] instead of spawning (and joining) `p` OS
//! threads per invocation — a Borůvka algorithm calling `run` once per
//! phase pays thread startup once per *process*, not once per phase. The
//! rank barrier is a reusable [sense-reversing barrier](msf_pool::SenseBarrier).
//! Under `MSF_SEQUENTIAL=1` (or `msf_pool::with_sequential`) `run` falls
//! back to the pre-pool scoped-thread implementation so the pool is never
//! touched, and nested data-parallel calls inside the closure stay
//! sequential too.
//!
//! # Panic propagation contract
//! If any rank's closure panics, `run` (both paths) first **poisons the
//! team barrier** — every sibling rank blocked in, or later reaching,
//! [`TeamCtx::barrier`] aborts by panicking with
//! [`msf_pool::BarrierPoisoned`] instead of deadlocking on the dead rank —
//! then waits for every rank to settle, and finally re-throws the
//! lowest-ranked *original* payload (secondary `BarrierPoisoned` casualties
//! are never chosen over the real panic). Partial per-rank results are
//! dropped.
//!
//! Data-parallel primitives (sorts, scans) use the rayon facade internally;
//! the SPMD team is reserved for the algorithm skeletons whose structure
//! genuinely is "p coordinated sequential programs", like MST-BC's
//! concurrent Prim growth.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use msf_pool::{BarrierPoisoned, RankSlots, SenseBarrier};

/// Handle given to every member of a running team.
pub struct TeamCtx<'a> {
    /// This thread's rank in `0..p`.
    pub rank: usize,
    /// Team width.
    pub p: usize,
    barrier: &'a SenseBarrier,
}

impl TeamCtx<'_> {
    /// Block until every team member arrives. Panics with
    /// [`msf_pool::BarrierPoisoned`] if a sibling rank has panicked.
    #[inline]
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// This rank's block of a `0..n` index space (contiguous, balanced).
    #[inline]
    pub fn block(&self, n: usize) -> std::ops::Range<usize> {
        crate::block_range(n, self.p, self.rank)
    }
}

/// A fixed-width SPMD team. Creating the team is free; [`SmpTeam::run`]
/// leases persistent pool threads, so repeated runs (one per Borůvka phase)
/// reuse the same OS threads and a reusable sense-reversing barrier.
#[derive(Debug, Clone, Copy)]
pub struct SmpTeam {
    p: usize,
}

impl SmpTeam {
    /// A team of `p` workers (`p >= 1`).
    pub fn new(p: usize) -> Self {
        SmpTeam { p: p.max(1) }
    }

    /// Team width.
    #[inline]
    pub fn width(&self) -> usize {
        self.p
    }

    /// Run `f` on every member; returns the per-rank results in rank order.
    ///
    /// When tracing is enabled (see [`crate::obs`]) the whole run is wrapped
    /// in a `team-run` span (`a = p`) on the calling thread, and each rank's
    /// closure in a `rank` span (`a = rank`, `b = p`) on the thread that
    /// executes it — rank 0 of a pooled run executes inline on the caller.
    ///
    /// See the module docs for the panic-propagation contract.
    pub fn run<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&TeamCtx<'_>) -> R + Sync,
    {
        let p = self.p;
        let _team_run = crate::obs::span(crate::obs::SpanKind::TeamRun, p as u64, 0);
        let barrier = SenseBarrier::new(p);
        if p == 1 {
            // Degenerate team: run inline, still honoring barrier() calls.
            let ctx = TeamCtx {
                rank: 0,
                p: 1,
                barrier: &barrier,
            };
            let _rank = crate::obs::span(crate::obs::SpanKind::Rank, 0, 1);
            return vec![f(&ctx)];
        }
        if msf_pool::sequential_here() {
            return run_scoped(p, &barrier, &f);
        }
        msf_pool::run_team_collect(p, |rank| {
            let ctx = TeamCtx {
                rank,
                p,
                barrier: &barrier,
            };
            let _rank = crate::obs::span(crate::obs::SpanKind::Rank, rank as u64, p as u64);
            match catch_unwind(AssertUnwindSafe(|| f(&ctx))) {
                Ok(result) => result,
                Err(payload) => {
                    // Free the sibling ranks before unwinding (see the
                    // panic contract): a rank parked on the barrier must
                    // die, not wait for us forever.
                    barrier.poison();
                    resume_unwind(payload)
                }
            }
        })
    }
}

/// Pre-pool implementation: `p` scoped OS threads per run. Used under the
/// sequential escape hatch, where touching the persistent pool is not
/// allowed; the escape hatch is propagated into each rank thread so nested
/// data-parallel calls stay sequential there too.
fn run_scoped<R, F>(p: usize, barrier: &SenseBarrier, f: &F) -> Vec<R>
where
    R: Send,
    F: Fn(&TeamCtx<'_>) -> R + Sync,
{
    let mut results: Vec<Option<R>> = (0..p).map(|_| None).collect();
    let panics: std::sync::Mutex<Vec<(usize, Box<dyn std::any::Any + Send>)>> =
        std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for (rank, slot) in results.iter_mut().enumerate() {
            let panics = &panics;
            scope.spawn(move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    msf_pool::with_sequential(|| {
                        let ctx = TeamCtx { rank, p, barrier };
                        let _rank =
                            crate::obs::span(crate::obs::SpanKind::Rank, rank as u64, p as u64);
                        f(&ctx)
                    })
                }));
                match outcome {
                    Ok(result) => *slot = Some(result),
                    Err(payload) => {
                        barrier.poison();
                        panics
                            .lock()
                            .expect("panic list poisoned")
                            .push((rank, payload));
                    }
                }
            });
        }
    });
    let mut panics = panics.into_inner().expect("panic list poisoned");
    if !panics.is_empty() {
        panics.sort_by_key(|(rank, _)| *rank);
        let original = panics
            .iter()
            .position(|(_, payload)| !payload.is::<BarrierPoisoned>())
            .unwrap_or(0);
        resume_unwind(panics.swap_remove(original).1);
    }
    results
        .into_iter()
        .map(|r| r.expect("worker completed"))
        .collect()
}

/// Typed cross-member communication for an [`SmpTeam`] phase: each rank
/// deposits a value, a barrier separates writers from readers, and any rank
/// folds the deposits. Mirrors the reduce/broadcast primitives of the
/// SIMPLE library the paper's implementation was built on.
///
/// Rank-exclusive writes make a mutex pure overhead on this hot barrier
/// path, so the slots are cache-line-padded [`msf_pool::RankSlots`]: a
/// release-store publishes each deposit, an acquire-load consumes it, and
/// the phase barrier provides the write→read ordering exactly as before.
///
/// ```
/// use msf_primitives::team::{SmpTeam, TeamReducer};
/// let team = SmpTeam::new(4);
/// let red = TeamReducer::<u64>::new(4);
/// let sums = team.run(|ctx| {
///     red.put(ctx.rank, ctx.rank as u64 + 1);
///     ctx.barrier();
///     red.fold(0, |a, b| a + b)
/// });
/// assert_eq!(sums, vec![10, 10, 10, 10]);
/// ```
pub struct TeamReducer<T> {
    slots: RankSlots<T>,
}

impl<T: Copy + Send> TeamReducer<T> {
    /// Scratch for a team of width `p`.
    pub fn new(p: usize) -> Self {
        TeamReducer {
            slots: RankSlots::new(p),
        }
    }

    /// Deposit this rank's contribution. Call before the phase barrier.
    pub fn put(&self, rank: usize, value: T) {
        self.slots.put(rank, value);
    }

    /// Read rank `r`'s deposit (panics if it has not been put). Call after
    /// the phase barrier.
    pub fn get(&self, rank: usize) -> T {
        self.slots.get(rank)
    }

    /// Fold all deposits in rank order (missing deposits are skipped). Call
    /// after the phase barrier.
    pub fn fold(&self, init: T, f: impl Fn(T, T) -> T) -> T {
        self.slots.fold(init, f)
    }

    /// Clear all slots for reuse in a later phase (typically done by one
    /// rank, followed by a barrier).
    pub fn reset(&self) {
        self.slots.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn pool() {
        msf_pool::force_width(4);
    }

    #[test]
    fn results_come_back_in_rank_order() {
        pool();
        let team = SmpTeam::new(4);
        let out = team.run(|ctx| ctx.rank * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn width_one_runs_inline() {
        pool();
        let team = SmpTeam::new(1);
        let out = team.run(|ctx| {
            ctx.barrier(); // must not deadlock
            ctx.p
        });
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn barrier_separates_phases() {
        pool();
        // Phase 1: everyone increments. Phase 2: everyone must observe p.
        let team = SmpTeam::new(4);
        let counter = AtomicUsize::new(0);
        let observed = team.run(|ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            counter.load(Ordering::SeqCst)
        });
        assert_eq!(observed, vec![4, 4, 4, 4]);
    }

    #[test]
    fn blocks_cover_index_space() {
        pool();
        let team = SmpTeam::new(3);
        let n = 100;
        let ranges = team.run(|ctx| ctx.block(n));
        let total: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(total, n);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges[2].end, n);
    }

    #[test]
    fn zero_width_clamps_to_one() {
        let team = SmpTeam::new(0);
        assert_eq!(team.width(), 1);
    }

    #[test]
    fn sequential_mode_matches_pooled_results() {
        pool();
        let team = SmpTeam::new(4);
        let pooled = team.run(|ctx| ctx.rank * 3 + 1);
        let seq = msf_pool::with_sequential(|| team.run(|ctx| ctx.rank * 3 + 1));
        assert_eq!(pooled, seq);
    }

    #[test]
    fn rank_panic_reaches_caller_not_deadlock() {
        pool();
        let team = SmpTeam::new(3);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            team.run(|ctx| {
                if ctx.rank == 2 {
                    panic!("rank 2 exploded");
                }
                ctx.barrier(); // poisoned by rank 2's unwinding
            })
        }));
        let payload = caught.expect_err("panic must propagate");
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("rank 2 exploded"),
            "original payload must win over BarrierPoisoned"
        );
    }

    #[test]
    fn reducer_folds_min_and_broadcast() {
        pool();
        let team = SmpTeam::new(3);
        let red = TeamReducer::<(u64, usize)>::new(3);
        // Each rank proposes (key, rank); everyone learns the argmin.
        let winners = team.run(|ctx| {
            let key = [5u64, 2, 9][ctx.rank];
            red.put(ctx.rank, (key, ctx.rank));
            ctx.barrier();
            red.fold((u64::MAX, usize::MAX), |a, b| if b.0 < a.0 { b } else { a })
        });
        assert_eq!(winners, vec![(2, 1); 3]);
    }

    #[test]
    fn reducer_reuse_across_phases() {
        pool();
        let team = SmpTeam::new(2);
        let red = TeamReducer::<u32>::new(2);
        let out = team.run(|ctx| {
            // Phase 1.
            red.put(ctx.rank, 1);
            ctx.barrier();
            let s1 = red.fold(0, |a, b| a + b);
            ctx.barrier();
            if ctx.rank == 0 {
                red.reset();
            }
            ctx.barrier();
            // Phase 2.
            red.put(ctx.rank, 10);
            ctx.barrier();
            s1 + red.fold(0, |a, b| a + b)
        });
        assert_eq!(out, vec![22, 22]);
    }

    #[test]
    fn reducer_get_reads_specific_rank() {
        let red = TeamReducer::<i32>::new(2);
        red.put(0, -7);
        assert_eq!(red.get(0), -7);
    }
}
