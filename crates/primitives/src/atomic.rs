//! Lock-free atomic write-min slots — the parlaylib `boruvka.h` race.
//!
//! Modern engineered Borůvka codes replace the barriered segmented find-min
//! of the paper's §2 variants with a per-endpoint *race*: every edge tries to
//! CAS itself into both endpoints' slots, and the slot keeps whichever
//! candidate is smallest under a strict total order. Because the order is
//! total, the final slot contents are the minimum of everything written
//! regardless of scheduling — the race is deterministic in its outcome, only
//! the interleaving varies.
//!
//! Two pieces live here:
//!
//! * [`weight_order_bits`] — the order-isomorphic `f64 → u64` bit map that
//!   lets IEEE weights be compared as unsigned integers. Packed with the
//!   edge id ([`packed_edge_key`]) it reproduces the suite's exact
//!   `(weight, edge id)` total order, ties and all — the invariant the
//!   unique-forest determinism contract rests on.
//! * [`MinSlots`] — an array of `AtomicU64` cells with `write_min`
//!   (natural `u64` order) and `write_min_by` (caller-supplied packed key).
//!   Under `MSF_SEQUENTIAL` (or inside `msf_pool::with_sequential`) the CAS
//!   loop is replaced by a plain load/compare/store, so the sequential
//!   escape hatch takes the exact branch-free path and records **zero** CAS
//!   retries.
//!
//! Contention is observable: every failed `compare_exchange` increments the
//! `atomic.write_min.cas_retry` registry counter (a [`LazyCounter`], free
//! when metrics are off), surfaced by `msf bench --json` and the metrics
//! snapshot.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::obs::metrics::LazyCounter;

/// Sentinel for a slot nothing has written yet. It is `u64::MAX`, so under
/// the natural order of [`MinSlots::write_min`] every real value beats it.
pub const EMPTY: u64 = u64::MAX;

static WRITE_MIN_CAS_RETRY: LazyCounter = LazyCounter::new("atomic.write_min.cas_retry");

/// Map a finite, non-NaN `f64` onto a `u64` whose **unsigned** order equals
/// the weight order used everywhere else in the suite (`OrderedWeight`,
/// which compares via `partial_cmp`):
///
/// * positives (and +0.0) get the sign bit set, keeping their magnitude
///   order;
/// * negatives are bitwise-inverted, reversing their magnitude order into
///   value order;
/// * `-0.0` is normalized to `+0.0` first — `partial_cmp` treats the two
///   zeros as equal, so their bit patterns must collide and leave the tie
///   to the edge id, exactly like the `(weight, id)` key does.
///
/// Subnormals need no special case: IEEE-754 bit patterns of same-sign
/// finite numbers (subnormal or not) are already monotone in magnitude.
#[inline]
pub fn weight_order_bits(w: f64) -> u64 {
    debug_assert!(!w.is_nan(), "NaN weights are rejected at graph build");
    let w = if w == 0.0 { 0.0 } else { w }; // collapse -0.0 onto +0.0
    let b = w.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// The packed `(weight bits, edge id)` key: 64 order-isomorphic weight bits
/// above, 32 id bits below. Its `u128` unsigned order is *exactly* the
/// suite-wide `(weight, edge id)` total order, so a `write_min_by` race
/// keyed by it elects the same unique minimum edge the sequential segmented
/// scan would.
#[inline]
pub fn packed_edge_key(w: f64, id: u32) -> u128 {
    (u128::from(weight_order_bits(w)) << 32) | u128::from(id)
}

/// Slot storage. The shared form is the lock-free CAS race. The
/// single-writer form interleaves each slot's value with a cache of its
/// current minimum key `(value, key hi, key lo)` — one cache line per
/// slot — so an improving write never has to re-derive the incumbent's
/// key (for edge races, a scattered read into the full edge array). The
/// atomics in the single-writer form are only there to stay inside
/// `#![forbid(unsafe_code)]`; every access is a plain Relaxed load/store
/// and the one-writer contract makes them race-free.
enum Store {
    Shared(Vec<AtomicU64>),
    Single(Vec<(AtomicU64, AtomicU64, AtomicU64)>),
}

/// An array of atomic minimum cells. See the module docs for the race
/// semantics and the sequential fallback.
pub struct MinSlots {
    store: Store,
}

impl MinSlots {
    /// `n` slots, all [`EMPTY`]. Captures the calling context's sequential
    /// mode (`MSF_SEQUENTIAL` / `with_sequential`) for the lifetime of the
    /// array, so a sequential run never touches the CAS path.
    pub fn new(n: usize) -> MinSlots {
        if crate::pool::sequential_here() {
            MinSlots::new_single_writer(n)
        } else {
            MinSlots {
                store: Store::Shared((0..n).map(|_| AtomicU64::new(EMPTY)).collect()),
            }
        }
    }

    /// `n` slots in single-writer mode: plain load/compare/store (zero CAS
    /// retries for the telemetry to report) plus a per-slot key cache, so
    /// `write_min_by` never re-derives the incumbent's key.
    ///
    /// **Caller contract:** every `write_min`/`write_min_by` on this array
    /// happens on one thread. The rayon-facade algorithms satisfy it when
    /// the pool has a single worker (everything runs inline); `SmpTeam`
    /// ranks are real threads at any pool width and must use [`new`].
    pub fn new_single_writer(n: usize) -> MinSlots {
        MinSlots {
            store: Store::Single(
                (0..n)
                    .map(|_| (AtomicU64::new(EMPTY), AtomicU64::new(0), AtomicU64::new(0)))
                    .collect(),
            ),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        match &self.store {
            Store::Shared(s) => s.len(),
            Store::Single(s) => s.len(),
        }
    }

    /// Whether the array has zero slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this array is in the single-writer (plain path) mode.
    pub fn is_single_writer(&self) -> bool {
        matches!(self.store, Store::Single(_))
    }

    /// Read slot `i` (the minimum of everything written so far, or
    /// [`EMPTY`]). Only the quiescent value — after the writing phase has
    /// joined — is deterministic.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        match &self.store {
            Store::Shared(s) => s[i].load(Ordering::Acquire),
            Store::Single(s) => s[i].0.load(Ordering::Relaxed),
        }
    }

    /// Reset every slot to [`EMPTY`] for reuse in the next round. Takes
    /// `&mut self`: resetting is a phase boundary, not part of any race.
    pub fn reset(&mut self) {
        match &mut self.store {
            Store::Shared(s) => {
                for v in s.iter_mut() {
                    *v.get_mut() = EMPTY;
                }
            }
            Store::Single(s) => {
                for (v, _, _) in s.iter_mut() {
                    *v.get_mut() = EMPTY;
                }
            }
        }
    }

    /// Lower slot `i` to `v` under the natural `u64` order. Returns whether
    /// the slot changed. `v` must not be [`EMPTY`] itself.
    #[inline]
    pub fn write_min(&self, i: usize, v: u64) -> bool {
        self.write_min_by(i, v, u128::from)
    }

    /// Lower slot `i` to `v` under the strict total order induced by `key`
    /// (smaller key wins; [`EMPTY`] always loses). Returns whether the slot
    /// changed. Keys must be distinct for distinct values, otherwise the
    /// race winner among equal-key values is schedule-dependent.
    #[inline]
    pub fn write_min_by(&self, i: usize, v: u64, key: impl Fn(u64) -> u128) -> bool {
        debug_assert!(v != EMPTY, "EMPTY is reserved for vacant slots");
        let kv = key(v);
        match &self.store {
            Store::Single(s) => {
                // One writer by contract: plain read/compare/write against
                // the cached incumbent key, zero CAS retries for the
                // telemetry to report.
                let (val, hi, lo) = &s[i];
                let cur = val.load(Ordering::Relaxed);
                let cur_key = (u128::from(hi.load(Ordering::Relaxed)) << 64)
                    | u128::from(lo.load(Ordering::Relaxed));
                if cur == EMPTY || kv < cur_key {
                    val.store(v, Ordering::Relaxed);
                    hi.store((kv >> 64) as u64, Ordering::Relaxed);
                    lo.store(kv as u64, Ordering::Relaxed);
                    return true;
                }
                false
            }
            Store::Shared(s) => {
                let slot = &s[i];
                let mut cur = slot.load(Ordering::Relaxed);
                loop {
                    if cur != EMPTY && kv >= key(cur) {
                        return false;
                    }
                    match slot.compare_exchange_weak(cur, v, Ordering::AcqRel, Ordering::Acquire) {
                        Ok(_) => return true,
                        Err(actual) => {
                            // Lost the race to a concurrent writer: re-read
                            // and re-decide. This is the contention
                            // observable.
                            WRITE_MIN_CAS_RETRY.inc();
                            cur = actual;
                        }
                    }
                }
            }
        }
    }

    /// Consume the array and return the plain slot values.
    pub fn into_values(self) -> Vec<u64> {
        match self.store {
            Store::Shared(s) => s.into_iter().map(AtomicU64::into_inner).collect(),
            Store::Single(s) => s.into_iter().map(|(v, _, _)| v.into_inner()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference order: `(partial_cmp weight, id)` — what `EdgeKey`
    /// implements in msf-graph.
    fn ref_order(a: (f64, u32), b: (f64, u32)) -> std::cmp::Ordering {
        a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1))
    }

    #[test]
    fn weight_order_bits_is_monotone_over_tricky_weights() {
        // Negatives, -0.0/+0.0, subnormals, and wide magnitude spread —
        // sorted ascending by value.
        let ws = [
            f64::MIN,
            -1.0e300,
            -2.5,
            -1.0,
            -1.0e-300,
            -f64::MIN_POSITIVE / 4.0, // negative subnormal
            0.0,
            f64::MIN_POSITIVE / 4.0, // positive subnormal
            f64::MIN_POSITIVE,
            1.0e-300,
            1.0,
            2.5,
            1.0e300,
            f64::MAX,
        ];
        for pair in ws.windows(2) {
            assert!(
                weight_order_bits(pair[0]) < weight_order_bits(pair[1]),
                "{} !< {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn negative_zero_ties_with_positive_zero() {
        assert_eq!(weight_order_bits(-0.0), weight_order_bits(0.0));
        // The tie falls through to the id, exactly like (weight, id).
        assert!(packed_edge_key(-0.0, 3) < packed_edge_key(0.0, 4));
        assert!(packed_edge_key(0.0, 3) < packed_edge_key(-0.0, 4));
    }

    #[test]
    fn packed_key_matches_the_reference_total_order() {
        let keys = [
            (-3.5f64, 9u32),
            (-3.5, 2),
            (-0.0, 7),
            (0.0, 1),
            (0.0, 7),
            (f64::MIN_POSITIVE / 2.0, 0),
            (1.0, 5),
            (1.0, 6),
            (7.25e12, 3),
        ];
        for &a in &keys {
            for &b in &keys {
                assert_eq!(
                    packed_edge_key(a.0, a.1).cmp(&packed_edge_key(b.0, b.1)),
                    ref_order(a, b),
                    "{a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn write_min_keeps_the_minimum() {
        let slots = MinSlots::new(2);
        assert_eq!(slots.get(0), EMPTY);
        assert!(slots.write_min(0, 42));
        assert!(!slots.write_min(0, 99));
        assert!(slots.write_min(0, 7));
        assert_eq!(slots.get(0), 7);
        assert_eq!(slots.get(1), EMPTY);
        assert_eq!(slots.into_values(), vec![7, EMPTY]);
    }

    #[test]
    fn write_min_by_uses_the_key_order() {
        // Values are indices into a table; the key reverses natural order.
        let table = [30u128, 20, 10];
        let slots = MinSlots::new(1);
        for v in 0..table.len() as u64 {
            slots.write_min_by(0, v, |v| table[v as usize]);
        }
        assert_eq!(slots.get(0), 2); // index of the smallest key
    }

    #[test]
    fn reset_vacates_every_slot() {
        let mut slots = MinSlots::new(3);
        for i in 0..3 {
            slots.write_min(i, i as u64);
        }
        slots.reset();
        assert!((0..3).all(|i| slots.get(i) == EMPTY));
    }

    #[test]
    fn sequential_mode_takes_the_plain_path() {
        crate::pool::with_sequential(|| {
            let slots = MinSlots::new(1);
            assert!(slots.is_single_writer());
            assert!(slots.write_min(0, 5));
            assert!(!slots.write_min(0, 6));
            assert_eq!(slots.get(0), 5);
        });
    }

    #[test]
    fn single_writer_mode_matches_the_shared_race() {
        // Same pseudo-random workload through both stores; the quiescent
        // minima (and the change/no-change return values) must coincide.
        let table: Vec<u128> = (0..512u64)
            .map(|v| u128::from(v * 2654435761 % 977))
            .collect();
        let shared = MinSlots::new(64);
        let single = MinSlots::new_single_writer(64);
        assert!(single.is_single_writer());
        let mut x = 0x9E3779B97F4A7C15u64;
        for _ in 0..4_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let (slot, v) = ((x >> 32) as usize % 64, x % 512);
            let a = shared.write_min_by(slot, v, |v| table[v as usize]);
            let b = single.write_min_by(slot, v, |v| table[v as usize]);
            assert_eq!(a, b);
        }
        for i in 0..64 {
            assert_eq!(shared.get(i), single.get(i), "slot {i}");
        }
        let (a, b) = (shared.into_values(), single.into_values());
        assert_eq!(a, b);
    }
}
