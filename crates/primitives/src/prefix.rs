//! Prefix sums (scans) and scan-based compaction.
//!
//! Borůvka's `compact-graph` step merges runs of duplicate edges with a
//! prefix-sum pass (paper §2.1); the parallel variants here follow the
//! standard chunked two-pass scheme: each thread scans its block, an
//! exclusive scan over the block totals produces per-block offsets, and a
//! second pass rewrites each block with its offset added.

use rayon::prelude::*;

/// Minimum input length before the parallel scans fall back to the
/// sequential code path; below this the fork/join overhead dominates.
pub const PAR_THRESHOLD: usize = 1 << 14;

/// In-place sequential exclusive prefix sum. Returns the total.
///
/// `[3, 1, 4]` becomes `[0, 3, 4]` and `8` is returned.
pub fn exclusive_scan(data: &mut [usize]) -> usize {
    let mut acc = 0usize;
    for x in data.iter_mut() {
        let v = *x;
        *x = acc;
        acc += v;
    }
    acc
}

/// In-place sequential inclusive prefix sum. Returns the total.
pub fn inclusive_scan(data: &mut [usize]) -> usize {
    let mut acc = 0usize;
    for x in data.iter_mut() {
        acc += *x;
        *x = acc;
    }
    acc
}

/// In-place parallel exclusive prefix sum over `chunks` blocks.
/// Returns the total.
pub fn par_exclusive_scan(data: &mut [usize], chunks: usize) -> usize {
    let n = data.len();
    if n < PAR_THRESHOLD || chunks <= 1 {
        return exclusive_scan(data);
    }
    let chunk = n.div_ceil(chunks);
    // Pass 1: per-block totals.
    let mut totals: Vec<usize> = data
        .par_chunks(chunk)
        .map(|block| block.iter().sum())
        .collect();
    let total = exclusive_scan(&mut totals);
    // Pass 2: scan each block seeded with its offset.
    data.par_chunks_mut(chunk)
        .zip(totals.par_iter())
        .for_each(|(block, &offset)| {
            let mut acc = offset;
            for x in block.iter_mut() {
                let v = *x;
                *x = acc;
                acc += v;
            }
        });
    total
}

/// Parallel compaction: keep the elements of `data` whose flag is set,
/// preserving order. This is the scatter phase shared by the compact-graph
/// implementations.
pub fn par_filter<T: Copy + Send + Sync>(data: &[T], keep: &[bool], chunks: usize) -> Vec<T> {
    assert_eq!(data.len(), keep.len());
    let n = data.len();
    if n < PAR_THRESHOLD || chunks <= 1 {
        return data
            .iter()
            .zip(keep)
            .filter(|&(_, &k)| k)
            .map(|(&x, _)| x)
            .collect();
    }
    let chunk = n.div_ceil(chunks);
    let mut counts: Vec<usize> = keep
        .par_chunks(chunk)
        .map(|block| block.iter().filter(|&&k| k).count())
        .collect();
    let total = exclusive_scan(&mut counts);
    let mut out: Vec<T> = Vec::with_capacity(total);
    // Each block writes into a disjoint region; build per-block vectors and
    // splice. (A scatter into a shared uninitialized buffer would need
    // unsafe, which this crate forbids; the extra copy is one pass.)
    let parts: Vec<Vec<T>> = data
        .par_chunks(chunk)
        .zip(keep.par_chunks(chunk))
        .map(|(d, k)| {
            d.iter()
                .zip(k)
                .filter(|&(_, &keep)| keep)
                .map(|(&x, _)| x)
                .collect()
        })
        .collect();
    for part in parts {
        out.extend_from_slice(&part);
    }
    debug_assert_eq!(out.len(), total);
    out
}

/// Segmented minimum: given sorted segment boundaries (`seg_starts` holding
/// the first index of each segment plus a final sentinel equal to
/// `values.len()`), compute for each segment the index of its minimum element
/// under the provided key extractor.
pub fn segmented_argmin<T, K, F>(values: &[T], seg_starts: &[usize], key: F) -> Vec<usize>
where
    T: Sync,
    K: PartialOrd + Send,
    F: Fn(&T) -> K + Sync,
{
    assert!(seg_starts.last().is_some_and(|&s| s == values.len()));
    (0..seg_starts.len() - 1)
        .into_par_iter()
        .map(|s| {
            let (lo, hi) = (seg_starts[s], seg_starts[s + 1]);
            assert!(lo < hi, "segments must be non-empty");
            let mut best = lo;
            let mut best_key = key(&values[lo]);
            for (i, v) in values.iter().enumerate().take(hi).skip(lo + 1) {
                let k = key(v);
                if k < best_key {
                    best = i;
                    best_key = k;
                }
            }
            best
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_scan_basics() {
        let mut v = vec![3, 1, 4, 1, 5];
        let total = exclusive_scan(&mut v);
        assert_eq!(v, vec![0, 3, 4, 8, 9]);
        assert_eq!(total, 14);
        let mut empty: Vec<usize> = vec![];
        assert_eq!(exclusive_scan(&mut empty), 0);
    }

    #[test]
    fn inclusive_scan_basics() {
        let mut v = vec![3, 1, 4];
        let total = inclusive_scan(&mut v);
        assert_eq!(v, vec![3, 4, 8]);
        assert_eq!(total, 8);
    }

    #[test]
    fn par_scan_matches_sequential() {
        let n = PAR_THRESHOLD + 137;
        let base: Vec<usize> = (0..n).map(|i| (i * 2654435761) % 17).collect();
        let mut seq = base.clone();
        let seq_total = exclusive_scan(&mut seq);
        for chunks in [2, 3, 8] {
            let mut par = base.clone();
            let par_total = par_exclusive_scan(&mut par, chunks);
            assert_eq!(par_total, seq_total);
            assert_eq!(par, seq);
        }
    }

    #[test]
    fn par_filter_matches_sequential() {
        let n = PAR_THRESHOLD + 41;
        let data: Vec<u64> = (0..n as u64).collect();
        let keep: Vec<bool> = (0..n).map(|i| i % 3 != 1).collect();
        let expect: Vec<u64> = data
            .iter()
            .zip(&keep)
            .filter(|&(_, &k)| k)
            .map(|(&x, _)| x)
            .collect();
        assert_eq!(par_filter(&data, &keep, 4), expect);
        assert_eq!(par_filter(&data[..100], &keep[..100], 4).len(), {
            keep[..100].iter().filter(|&&k| k).count()
        });
    }

    #[test]
    fn segmented_argmin_finds_minima() {
        let values = vec![5.0f64, 2.0, 7.0, 1.0, 9.0, 3.0];
        let segs = vec![0, 2, 5, 6];
        let mins = segmented_argmin(&values, &segs, |&x| x);
        assert_eq!(mins, vec![1, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn segmented_argmin_rejects_empty_segment() {
        let values = vec![1.0f64];
        let segs = vec![0, 0, 1];
        segmented_argmin(&values, &segs, |&x| x);
    }
}
