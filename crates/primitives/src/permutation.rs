//! Parallel random permutation (Sanders 1998).
//!
//! MST-BC's progress guarantee (paper §4) randomly reorders the vertex set so
//! adversarial start-vertex alignments across processors occur only with
//! vanishing probability. Sanders' scheme: each of `p` workers throws its
//! block of the identity into `p` random buckets, buckets are concatenated,
//! and each bucket is shuffled locally — a communication-free permutation
//! whose output is uniform when the local shuffles are.

use rand::prelude::*;
use rand::rngs::StdRng;
use rayon::prelude::*;

use crate::block_range;

/// Produce a random permutation of `0..n` using `p`-way bucketting, seeded
/// deterministically (each run reproducible; vary `seed` for fresh draws).
pub fn parallel_permutation(n: usize, p: usize, seed: u64) -> Vec<u32> {
    let p = p.max(1);
    if n == 0 {
        return Vec::new();
    }
    // Phase 1: each worker scatters its block into p buckets at random.
    let scattered: Vec<Vec<Vec<u32>>> = (0..p)
        .into_par_iter()
        .map(|t| {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (0x9e37_79b9_7f4a_7c15u64).wrapping_mul(t as u64 + 1));
            let mut buckets: Vec<Vec<u32>> = (0..p).map(|_| Vec::new()).collect();
            for v in block_range(n, p, t) {
                buckets[rng.gen_range(0..p)].push(v as u32);
            }
            buckets
        })
        .collect();
    // Phase 2: concatenate bucket b across workers, shuffle locally.
    let shuffled: Vec<Vec<u32>> = (0..p)
        .into_par_iter()
        .map(|b| {
            let mut bucket: Vec<u32> = Vec::new();
            for worker in &scattered {
                bucket.extend_from_slice(&worker[b]);
            }
            let mut rng =
                StdRng::seed_from_u64(seed ^ 0xd1b5_4a32_d192_ed03u64.wrapping_mul(b as u64 + 1));
            bucket.shuffle(&mut rng);
            bucket
        })
        .collect();
    let mut out = Vec::with_capacity(n);
    for bucket in shuffled {
        out.extend_from_slice(&bucket);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_is_permutation(perm: &[u32], n: usize) {
        assert_eq!(perm.len(), n);
        let mut seen = vec![false; n];
        for &v in perm {
            assert!(!seen[v as usize], "duplicate {v}");
            seen[v as usize] = true;
        }
    }

    #[test]
    fn produces_permutations() {
        for (n, p) in [(0usize, 1usize), (1, 1), (10, 3), (1000, 4), (12345, 7)] {
            assert_is_permutation(&parallel_permutation(n, p, 11), n);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = parallel_permutation(500, 4, 99);
        let b = parallel_permutation(500, 4, 99);
        let c = parallel_permutation(500, 4, 100);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should virtually never collide");
    }

    #[test]
    fn not_identity_for_nontrivial_inputs() {
        let perm = parallel_permutation(1000, 2, 1);
        let identity: Vec<u32> = (0..1000).collect();
        assert_ne!(perm, identity);
    }

    #[test]
    fn displacement_is_substantial() {
        // A genuinely random permutation moves most elements far; a buggy
        // near-identity output would fail this.
        let n = 10_000usize;
        let perm = parallel_permutation(n, 8, 5);
        let moved = perm
            .iter()
            .enumerate()
            .filter(|&(i, &v)| (i as i64 - v as i64).unsigned_abs() as usize > n / 10)
            .count();
        assert!(moved > n / 2, "only {moved} of {n} moved far");
    }
}
