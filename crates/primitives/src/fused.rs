//! Fused single-pass filter/relabel/compact kernels — the bandwidth-lean
//! contraction core.
//!
//! The paper's per-round contraction pipeline streams the edge array several
//! times: a find-min pass, a relabel pass, a self-loop filter, and a compact
//! write. On memory-bandwidth-bound sparse inputs (Sanders & Schimek's
//! observation, PAPERS.md) each extra pass is a full DRAM sweep of the edge
//! array. The kernels here collapse those passes:
//!
//! * [`filter_relabel_compact`] — one read of each input item, a caller
//!   `visit` closure that relabels/filters/side-effects (the fused
//!   write-min race rides inside it), and a compacted output written with
//!   the existing prefix/chunk machinery. Per-block staging plus parallel
//!   placement keeps everything safe (`#![forbid(unsafe_code)]`): block
//!   survivors land in per-block vectors, an exclusive scan of their
//!   lengths fixes each block's output region, and the regions — obtained
//!   by repeated `split_at_mut` — are filled concurrently.
//! * [`partition_compact`] — the two-way variant behind filter-Kruskal's
//!   light/heavy pivot split: one read, two compacted outputs.
//!
//! The multi-pass formulations are retained by every call site behind
//! [`unfused`] (`MSF_UNFUSED=1`, or [`with_unfused`] in-process) for
//! differential testing: both paths are value-identical by construction —
//! same survivors, same order, same modeled costs — so the suites can
//! assert bit-identical forests and exactly equal modeled costs between
//! them.
//!
//! Traffic through the fused path is observable: [`record_traffic`] feeds
//! the `kernel.fused_bytes_read` registry counter (a [`LazyCounter`], free
//! when metrics are off), which `msf bench --json` pre-registers and
//! EXPERIMENTS.md's bandwidth accounting reads against analytic
//! bytes-per-edge estimates.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use rayon::prelude::*;

use crate::obs::metrics::LazyCounter;
use crate::prefix::{exclusive_scan, PAR_THRESHOLD};

static FUSED_BYTES_READ: LazyCounter = LazyCounter::new("kernel.fused_bytes_read");

/// Mode override: 0 = follow `MSF_UNFUSED`, 1 = force fused, 2 = force
/// unfused. Only [`with_unfused`] writes it.
static FORCE_MODE: AtomicU8 = AtomicU8::new(0);

fn env_unfused() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("MSF_UNFUSED")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// Whether call sites should take the retained multi-pass path instead of
/// the fused kernels. Driven by `MSF_UNFUSED=1` (read once per process) or
/// an in-process [`with_unfused`] scope.
#[inline]
pub fn unfused() -> bool {
    match FORCE_MODE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => env_unfused(),
    }
}

/// Run `f` with the fused/unfused mode forced (`true` = multi-pass path),
/// restoring the previous override afterwards. The override is process
/// global; because the two paths are value-identical by construction, a
/// concurrent test observing a flipped mode mid-run still computes the
/// exact same results — only wall-clock timing differs.
pub fn with_unfused<R>(on: bool, f: impl FnOnce() -> R) -> R {
    let prev = FORCE_MODE.swap(if on { 2 } else { 1 }, Ordering::Relaxed);
    let r = f();
    FORCE_MODE.store(prev, Ordering::Relaxed);
    r
}

/// Whether the host has at least two hardware threads — the gate for
/// placement strategies that trade extra writes for concurrency. Pool
/// width deliberately does not enter: an oversubscribed pool on a 1-core
/// host still executes one copy at a time.
fn parallel_host() -> bool {
    static HOST: OnceLock<bool> = OnceLock::new();
    *HOST.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get() >= 2)
            .unwrap_or(false)
    })
}

/// Account `bytes` of fused-kernel read traffic to the
/// `kernel.fused_bytes_read` counter. Call sites with side-band reads the
/// kernels cannot see (label tables, union-find probes) add them here.
#[inline]
pub fn record_traffic(bytes: u64) {
    FUSED_BYTES_READ.add(bytes);
}

/// The fused relabel+filter+compact kernel over an implicit index domain
/// `0..len`: `visit(i)` reads item `i` exactly once, applies the caller's
/// relabeling, and returns `Some(mapped)` for survivors (side effects —
/// e.g. the next round's write-min race — ride along). Survivors are
/// written to a compacted output preserving index order.
///
/// `fill` is a throwaway element used to initialize the output buffer
/// (survivor placement is a safe overwrite, never an uninitialized write).
pub fn filter_compact_indexed<U: Copy + Send + Sync>(
    len: usize,
    p: usize,
    fill: U,
    visit: impl Fn(usize) -> Option<U> + Sync,
) -> Vec<U> {
    let p = p.max(1);
    // Take the single-buffer path whenever no second worker can exist:
    // staging + placement only pays for itself when blocks actually run
    // concurrently, and the visit order between the two paths is
    // observationally identical (each index exactly once; survivors in
    // index order).
    if p == 1
        || len < PAR_THRESHOLD
        || crate::pool::sequential_here()
        || rayon::current_num_threads() <= 1
    {
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            if let Some(u) = visit(i) {
                out.push(u);
            }
        }
        return out;
    }
    // Pass 1: each block reads its range once, staging survivors locally.
    let parts: Vec<Vec<U>> = (0..p)
        .into_par_iter()
        .map(|t| {
            let r = crate::block_range(len, p, t);
            let mut out = Vec::with_capacity(r.len());
            for i in r {
                if let Some(u) = visit(i) {
                    out.push(u);
                }
            }
            out
        })
        .collect();
    // Placement: exclusive scan of block lengths sizes the output exactly,
    // then the p block runs are spliced in order. Concurrent placement
    // writes the output twice (the `fill` initialization, then the copy
    // into disjoint `split_at_mut` regions — the price of staying inside
    // `#![forbid(unsafe_code)]`), so it only pays for itself when at least
    // two hardware threads can actually run the copies; on a serial host
    // the blocks are spliced once, in order.
    let mut lens: Vec<usize> = parts.iter().map(Vec::len).collect();
    let total = exclusive_scan(&mut lens);
    if !parallel_host() {
        let mut out = Vec::with_capacity(total);
        for part in &parts {
            out.extend_from_slice(part);
        }
        return out;
    }
    let mut out = vec![fill; total];
    let mut regions: Vec<&mut [U]> = Vec::with_capacity(p);
    let mut rest: &mut [U] = &mut out;
    for part in &parts {
        let (head, tail) = rest.split_at_mut(part.len());
        regions.push(head);
        rest = tail;
    }
    parts
        .into_par_iter()
        .zip(regions.into_par_iter())
        .for_each(|(part, dst)| dst.copy_from_slice(&part));
    out
}

/// [`filter_compact_indexed`] over a slice: one read of each input item,
/// compacted mapped survivors out. Records the input sweep (and the
/// survivor write-back) as fused traffic.
pub fn filter_relabel_compact<T: Sync, U: Copy + Send + Sync>(
    input: &[T],
    p: usize,
    fill: U,
    visit: impl Fn(usize, &T) -> Option<U> + Sync,
) -> Vec<U> {
    let out = filter_compact_indexed(input.len(), p, fill, |i| visit(i, &input[i]));
    record_traffic((std::mem::size_of_val(input) + std::mem::size_of_val(out.as_slice())) as u64);
    out
}

/// Two-way fused partition: one read of each item, two compacted outputs
/// (both preserving index order) — filter-Kruskal's light/heavy pivot
/// split. `classify` returns `true` for the first (light) side.
pub fn partition_compact<T: Sync + Copy + Send>(
    input: &[T],
    p: usize,
    classify: impl Fn(usize, &T) -> bool + Sync,
) -> (Vec<T>, Vec<T>) {
    let len = input.len();
    let p = p.max(1);
    if p == 1
        || len < PAR_THRESHOLD
        || crate::pool::sequential_here()
        || rayon::current_num_threads() <= 1
    {
        let mut light = Vec::with_capacity(len);
        let mut heavy = Vec::new();
        for (i, t) in input.iter().enumerate() {
            if classify(i, t) {
                light.push(*t);
            } else {
                heavy.push(*t);
            }
        }
        record_traffic(std::mem::size_of_val(input) as u64 * 2);
        return (light, heavy);
    }
    let parts: Vec<(Vec<T>, Vec<T>)> = (0..p)
        .into_par_iter()
        .map(|t| {
            let r = crate::block_range(len, p, t);
            let mut light = Vec::with_capacity(r.len());
            let mut heavy = Vec::new();
            for i in r {
                if classify(i, &input[i]) {
                    light.push(input[i]);
                } else {
                    heavy.push(input[i]);
                }
            }
            (light, heavy)
        })
        .collect();
    fn pick<T>(pr: &(Vec<T>, Vec<T>), side: usize) -> &Vec<T> {
        if side == 0 {
            &pr.0
        } else {
            &pr.1
        }
    }
    let place = |side: usize| -> Vec<T> {
        let mut lens: Vec<usize> = parts.iter().map(|pr| pick(pr, side).len()).collect();
        let total = exclusive_scan(&mut lens);
        let mut out = Vec::with_capacity(total);
        for pr in &parts {
            out.extend_from_slice(pick(pr, side));
        }
        out
    };
    let light = place(0);
    let heavy = place(1);
    record_traffic(std::mem::size_of_val(input) as u64 * 2);
    (light, heavy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_preserves_order_and_drops_losers() {
        let data: Vec<u32> = (0..100).collect();
        let out = filter_relabel_compact(&data, 3, 0u32, |_, &x| (x % 3 == 0).then_some(x * 2));
        let expect: Vec<u32> = (0..100).filter(|x| x % 3 == 0).map(|x| x * 2).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn parallel_and_sequential_paths_agree() {
        let data: Vec<u64> = (0..(PAR_THRESHOLD as u64 + 999))
            .map(|x| x * 7 % 1013)
            .collect();
        let keep = |_: usize, &x: &u64| (x % 5 != 0).then_some(x + 1);
        let seq = filter_relabel_compact(&data, 1, 0u64, keep);
        for p in [2, 3, 7, 8] {
            assert_eq!(filter_relabel_compact(&data, p, 0u64, keep), seq, "p {p}");
        }
        let pooled_seq =
            crate::pool::with_sequential(|| filter_relabel_compact(&data, 8, 0u64, keep));
        assert_eq!(pooled_seq, seq);
    }

    #[test]
    fn visit_sees_each_index_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let n = PAR_THRESHOLD + 17;
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let out = filter_compact_indexed(n, 4, 0usize, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
            Some(i)
        });
        assert_eq!(out, (0..n).collect::<Vec<_>>());
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn partition_splits_both_sides_in_order() {
        let data: Vec<u32> = (0..(PAR_THRESHOLD as u32 + 321)).collect();
        for p in [1, 2, 5, 8] {
            let (light, heavy) = partition_compact(&data, p, |_, &x| x % 2 == 0);
            assert_eq!(
                light,
                data.iter()
                    .copied()
                    .filter(|x| x % 2 == 0)
                    .collect::<Vec<_>>(),
                "p {p}"
            );
            assert_eq!(
                heavy,
                data.iter()
                    .copied()
                    .filter(|x| x % 2 == 1)
                    .collect::<Vec<_>>(),
                "p {p}"
            );
        }
    }

    #[test]
    fn with_unfused_overrides_and_restores() {
        let before = unfused();
        with_unfused(true, || assert!(unfused()));
        with_unfused(false, || assert!(!unfused()));
        with_unfused(true, || {
            with_unfused(false, || assert!(!unfused()));
            assert!(unfused());
        });
        assert_eq!(unfused(), before);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let out = filter_relabel_compact(&[] as &[u8], 4, 0u8, |_, &x| Some(x));
        assert!(out.is_empty());
        let (l, h) = partition_compact(&[1u8, 2, 3], 4, |_, &x| x < 3);
        assert_eq!((l, h), (vec![1, 2], vec![3]));
    }
}
