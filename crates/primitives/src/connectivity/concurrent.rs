//! Concurrent union–find with CAS hooking — the gbbs `nd.h` idiom.
//!
//! A lock-free disjoint-set forest for spanning-forest front-ends. Linking
//! follows the gbbs discipline that makes plain (non-CAS) path compression
//! safe:
//!
//! * **Roots only hook upward.** [`ConcurrentUnionFind::unite`] links the
//!   *smaller-id* root under the larger, so every non-self parent pointer
//!   points at a strictly larger vertex id and the forest can never cycle,
//!   no matter how stores interleave.
//! * **One hook per root, claimed by CAS.** A root may acquire at most one
//!   parent in its lifetime. The claim is a `compare_exchange` on the
//!   `hooks` array (from the vacant sentinel to the caller's edge tag);
//!   only the winner writes the parent pointer. The hooks array therefore
//!   records, per retired root, *which edge* retired it — the spanning
//!   forest falls out of the structure for free.
//! * **Compression stores ancestors.** [`ConcurrentUnionFind::find`] uses
//!   path halving with plain stores. Any value it writes was observed as an
//!   ancestor, and ancestors only ever move rootward (to larger ids), so a
//!   stale store still shortcuts correctly.
//!
//! Determinism: the final partition is the connectivity of the united
//! pairs, and when the united edges form a forest (each edge joins two
//! components not connected by the other edges, as Borůvka's per-vertex
//! minimum edges always do after mutual-pair dedup) the set of tags in the
//! hooks array is schedule-independent too — every forest edge retires
//! exactly one root. The *final root* of each component is its maximum
//! vertex id, also schedule-independent.
//!
//! Contention is observable: every lost hook CAS increments the
//! `unionfind.hook.cas_retry` registry counter. Under `MSF_SEQUENTIAL` (or
//! `msf_pool::with_sequential`) the CAS is skipped entirely — plain
//! load/compare/store, zero retries.

use std::sync::atomic::{AtomicU32, Ordering};

use crate::obs::metrics::LazyCounter;

/// Sentinel in the hooks array for "this root has not been retired".
/// Edge tags passed to [`ConcurrentUnionFind::unite`] must stay below it.
pub const NO_HOOK: u32 = u32::MAX;

static HOOK_CAS_RETRY: LazyCounter = LazyCounter::new("unionfind.hook.cas_retry");

/// Lock-free union–find over vertices `0..n`. See the module docs for the
/// linking discipline and determinism contract.
pub struct ConcurrentUnionFind {
    parent: Vec<AtomicU32>,
    hooks: Vec<AtomicU32>,
    sequential: bool,
}

impl ConcurrentUnionFind {
    /// `n` singleton sets. Captures the calling context's sequential mode
    /// (`MSF_SEQUENTIAL` / `with_sequential`), under which every operation
    /// takes a plain non-CAS path.
    pub fn new(n: usize) -> ConcurrentUnionFind {
        ConcurrentUnionFind {
            parent: (0..n as u32).map(AtomicU32::new).collect(),
            hooks: (0..n).map(|_| AtomicU32::new(NO_HOOK)).collect(),
            sequential: crate::pool::sequential_here(),
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure has zero vertices.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Current root of `u`'s set, compressing by path halving. Safe to call
    /// concurrently with `unite`; the answer is only stable once all
    /// uniting has joined.
    #[inline]
    pub fn find(&self, u: u32) -> u32 {
        let mut u = u;
        loop {
            let p = self.parent[u as usize].load(Ordering::Acquire);
            if p == u {
                return u;
            }
            let gp = self.parent[p as usize].load(Ordering::Acquire);
            if gp == p {
                return p;
            }
            // Halve: point u at its grandparent. gp was an ancestor of u
            // when loaded and links only move rootward, so a plain store
            // is safe (see module docs).
            self.parent[u as usize].store(gp, Ordering::Release);
            u = gp;
        }
    }

    /// Whether `u` and `v` are currently in the same set (quiescent reads
    /// only — see [`ConcurrentUnionFind::find`]).
    pub fn same_set(&self, u: u32, v: u32) -> bool {
        self.find(u) == self.find(v)
    }

    /// Join the sets of `u` and `v`, recording `tag` (an edge id,
    /// `< NO_HOOK`) in the hooks slot of whichever root gets retired.
    /// Returns `true` iff *this call* performed the link; `false` means the
    /// two were already connected (possibly by a concurrent racer).
    pub fn unite(&self, u: u32, v: u32, tag: u32) -> bool {
        debug_assert!(tag != NO_HOOK, "NO_HOOK is reserved for vacant hooks");
        loop {
            let ru = self.find(u);
            let rv = self.find(v);
            if ru == rv {
                return false;
            }
            // Retire the smaller root under the larger, keeping parent
            // pointers monotone in vertex id.
            let (lo, hi) = if ru < rv { (ru, rv) } else { (rv, ru) };
            if self.sequential {
                self.hooks[lo as usize].store(tag, Ordering::Relaxed);
                self.parent[lo as usize].store(hi, Ordering::Relaxed);
                return true;
            }
            // gbbs nd.h: claim the root via CAS on its hooks slot; only
            // the winner may write the parent pointer. A root whose hooks
            // slot is vacant is guaranteed still to be a root.
            if self.hooks[lo as usize]
                .compare_exchange(NO_HOOK, tag, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.parent[lo as usize].store(hi, Ordering::Release);
                return true;
            }
            // Someone else retired lo between our find and our CAS:
            // re-find under the new structure and try again.
            HOOK_CAS_RETRY.inc();
        }
    }

    /// The edge tags that performed links, i.e. the spanning forest of
    /// everything united so far, in ascending retired-root order. Call only
    /// after all uniting has joined.
    pub fn hooked(&self) -> Vec<u32> {
        self.hooks
            .iter()
            .map(|h| h.load(Ordering::Acquire))
            .filter(|&t| t != NO_HOOK)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_links() {
        let uf = ConcurrentUnionFind::new(5);
        assert_eq!(uf.len(), 5);
        assert!(!uf.same_set(0, 1));
        assert!(uf.unite(0, 1, 10));
        assert!(uf.same_set(0, 1));
        assert!(!uf.unite(1, 0, 11), "already connected");
        assert!(uf.unite(3, 4, 12));
        assert!(!uf.same_set(0, 3));
        assert_eq!(uf.hooked(), vec![10, 12]);
    }

    #[test]
    fn final_root_is_the_component_maximum() {
        // Whatever the unite order, roots merge smaller-into-larger, so the
        // surviving root is the component's max id.
        for edges in [
            vec![(0u32, 1u32), (1, 2), (2, 3)],
            vec![(2, 3), (0, 1), (1, 2)],
            vec![(0, 3), (1, 2), (0, 2)],
        ] {
            let uf = ConcurrentUnionFind::new(4);
            for (i, &(u, v)) in edges.iter().enumerate() {
                uf.unite(u, v, i as u32);
            }
            for v in 0..4 {
                assert_eq!(uf.find(v), 3, "edges {edges:?}, vertex {v}");
            }
        }
    }

    #[test]
    fn forest_unites_record_every_edge_exactly_once() {
        // A path: every edge links, tags = all edge ids as a set.
        let uf = ConcurrentUnionFind::new(6);
        for (i, uv) in [(4u32, 5u32), (0, 1), (2, 3), (1, 2), (3, 4)]
            .iter()
            .enumerate()
        {
            assert!(uf.unite(uv.0, uv.1, i as u32));
        }
        let mut tags = uf.hooked();
        tags.sort_unstable();
        assert_eq!(tags, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn matches_sequential_union_find_on_random_pairs() {
        use crate::unionfind::UnionFind;
        let n = 200u32;
        // Deterministic pseudo-random pair stream (no external RNG).
        let mut x = 0x2545F4914F6CDD1Du64;
        let mut pairs = Vec::new();
        for _ in 0..300 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let u = (x >> 32) as u32 % n;
            let v = x as u32 % n;
            if u != v {
                pairs.push((u, v));
            }
        }
        let conc = ConcurrentUnionFind::new(n as usize);
        let mut seq = UnionFind::new(n as usize);
        for (i, &(u, v)) in pairs.iter().enumerate() {
            assert_eq!(
                conc.unite(u, v, i as u32),
                seq.union(u as usize, v as usize),
                "pair {i}"
            );
        }
        for u in 0..n {
            for v in (u + 1..n).step_by(17) {
                assert_eq!(
                    conc.same_set(u, v),
                    seq.find(u as usize) == seq.find(v as usize),
                    "{u} {v}"
                );
            }
        }
    }

    #[test]
    fn sequential_mode_takes_the_plain_path() {
        crate::pool::with_sequential(|| {
            let uf = ConcurrentUnionFind::new(3);
            assert!(uf.sequential);
            assert!(uf.unite(0, 2, 7));
            assert!(uf.unite(1, 2, 8));
            assert_eq!(uf.find(0), 2);
            assert_eq!(uf.hooked(), vec![7, 8]);
        });
    }
}
