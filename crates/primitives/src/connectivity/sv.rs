//! Shiloach–Vishkin-style parallel connected components on an edge list.
//!
//! The practical variant with two alternating phases per round:
//!
//! * **hook** — every edge (u, v) tries to attach the larger current label's
//!   root under the smaller label with an atomic `fetch_min`;
//! * **shortcut** — every vertex pointer-jumps to its grandparent.
//!
//! Labels only ever decrease, so the races inherent in the concurrent
//! `fetch_min` stores are benign and the algorithm converges; with the
//! shortcut phase the number of rounds is O(log n) on all the graphs this
//! suite generates. MST-BC uses this to contract its mature subtrees
//! (paper §4, step 4).

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use rayon::prelude::*;

/// Edge lists shorter than this run the sequential union–find instead.
const PAR_THRESHOLD: usize = 1 << 14;

/// Compute connected components of the `n`-vertex graph with the given
/// undirected edges. Returns canonical per-vertex root ids (the minimum
/// vertex of each component points at itself).
pub fn connected_components(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
    if edges.len() < PAR_THRESHOLD {
        return super::seq::components_union_find(n, edges.iter().copied());
    }
    let parent: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let changed = AtomicBool::new(true);
    let mut rounds = 0usize;
    while changed.swap(false, Ordering::Relaxed) {
        rounds += 1;
        assert!(rounds <= 64 + n.ilog2() as usize, "SV failed to converge");
        // Hook phase.
        edges.par_iter().for_each(|&(u, v)| {
            let pu = parent[u as usize].load(Ordering::Relaxed);
            let pv = parent[v as usize].load(Ordering::Relaxed);
            if pu == pv {
                return;
            }
            let (hi, lo) = if pu > pv { (pu, pv) } else { (pv, pu) };
            let prev = parent[hi as usize].fetch_min(lo, Ordering::Relaxed);
            if prev > lo {
                changed.store(true, Ordering::Relaxed);
            }
        });
        // Shortcut phase: jump every vertex all the way to its current root.
        parent.par_iter().for_each(|slot| {
            let mut p = slot.load(Ordering::Relaxed);
            let mut g = parent[p as usize].load(Ordering::Relaxed);
            while g != p {
                p = g;
                g = parent[p as usize].load(Ordering::Relaxed);
            }
            slot.store(p, Ordering::Relaxed);
        });
    }
    let mut roots: Vec<u32> = parent.into_iter().map(AtomicU32::into_inner).collect();
    // Final cleanup jump: hooks racing with shortcuts can leave one level of
    // indirection behind in the last round.
    crate::connectivity::pointer_jump::jump_to_roots(&mut roots);
    canonicalize(&mut roots);
    roots
}

/// Rewrite roots so every component is represented by its minimum vertex.
/// `fetch_min` hooking already drives labels toward minima, but interleaved
/// hooks can settle on a non-minimal root; one linear pass fixes that.
fn canonicalize(roots: &mut [u32]) {
    let n = roots.len();
    let mut min_of_root = vec![u32::MAX; n];
    for (v, &r) in roots.iter().enumerate() {
        min_of_root[r as usize] = min_of_root[r as usize].min(v as u32);
    }
    for r in roots.iter_mut() {
        *r = min_of_root[*r as usize];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::seq::components_union_find;
    use rand::prelude::*;

    #[test]
    fn small_graph_matches_union_find() {
        let edges = vec![(0u32, 1u32), (2, 3), (3, 4), (6, 7)];
        assert_eq!(
            connected_components(8, &edges),
            components_union_find(8, edges.iter().copied())
        );
    }

    #[test]
    fn large_random_graph_matches_union_find() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000usize;
        let m = 60_000usize;
        let edges: Vec<(u32, u32)> = (0..m)
            .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
            .collect();
        assert_eq!(
            connected_components(n, &edges),
            components_union_find(n, edges.iter().copied())
        );
    }

    #[test]
    fn long_path_converges() {
        let n = 40_000usize;
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let roots = connected_components(n, &edges);
        assert!(roots.iter().all(|&r| r == 0));
    }

    #[test]
    fn star_converges_in_one_round() {
        let n = 50_000usize;
        let edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (0, i)).collect();
        let roots = connected_components(n, &edges);
        assert!(roots.iter().all(|&r| r == 0));
    }

    #[test]
    fn disconnected_pieces_keep_distinct_roots() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 30_000usize;
        // Edges only within [0, n/2) and [n/2, n).
        let half = n as u32 / 2;
        let mut edges = Vec::new();
        for _ in 0..40_000 {
            let a = rng.gen_range(0..half);
            let b = rng.gen_range(0..half);
            edges.push((a, b));
            edges.push((a + half, b + half));
        }
        let roots = connected_components(n, &edges);
        assert_eq!(roots, components_union_find(n, edges.iter().copied()));
    }
}
