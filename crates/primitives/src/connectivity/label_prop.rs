//! Label-propagation connected components.
//!
//! The simplest parallel CC scheme: every vertex repeatedly adopts the
//! minimum label in its closed neighborhood until no label changes. Rounds
//! are proportional to component diameter, so it loses badly to
//! Shiloach–Vishkin on paths — which is exactly why it is here: it is the
//! baseline the pointer-jumping algorithms are measured against (bench
//! `prim_connectivity`), mirroring how the connected-components studies the
//! paper draws its inputs from (Greiner; Hsu–Ramachandran–Dean;
//! Krishnamurthy et al.) compare their algorithms.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use rayon::prelude::*;

/// Edge lists shorter than this run sequentially.
const PAR_THRESHOLD: usize = 1 << 14;

/// Connected components by min-label propagation. Returns canonical
/// per-vertex roots (minimum vertex of each component), like the other
/// kernels in this module.
pub fn connected_components(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
    if edges.len() < PAR_THRESHOLD {
        return super::seq::components_union_find(n, edges.iter().copied());
    }
    let label: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let changed = AtomicBool::new(true);
    while changed.swap(false, Ordering::Relaxed) {
        edges.par_iter().for_each(|&(u, v)| {
            let lu = label[u as usize].load(Ordering::Relaxed);
            let lv = label[v as usize].load(Ordering::Relaxed);
            if lu == lv {
                return;
            }
            let (hi, lo) = if lu > lv { (u, lv) } else { (v, lu) };
            if label[hi as usize].fetch_min(lo, Ordering::Relaxed) > lo {
                changed.store(true, Ordering::Relaxed);
            }
        });
    }
    let labels: Vec<u32> = label.into_iter().map(AtomicU32::into_inner).collect();
    // Labels are component-minimal vertex ids already (they only ever
    // decrease toward the component minimum, and at fixpoint every edge has
    // equal endpoints' labels); they are exactly the canonical roots.
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::seq::components_union_find;
    use rand::prelude::*;

    #[test]
    fn matches_union_find_on_random_graph() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 30_000usize;
        let edges: Vec<(u32, u32)> = (0..80_000)
            .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
            .collect();
        assert_eq!(
            connected_components(n, &edges),
            components_union_find(n, edges.iter().copied())
        );
    }

    #[test]
    fn small_inputs_take_sequential_path() {
        let edges = vec![(0u32, 1u32), (2, 3)];
        assert_eq!(connected_components(5, &edges), vec![0, 0, 2, 2, 4]);
    }

    #[test]
    fn converges_on_long_paths() {
        // Diameter-stress: a path needs many propagation rounds but must
        // still land on all-zero labels.
        let n = 20_000usize;
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let roots = connected_components(n, &edges);
        assert!(roots.iter().all(|&r| r == 0));
    }

    #[test]
    fn agrees_with_shiloach_vishkin() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 25_000usize;
        let edges: Vec<(u32, u32)> = (0..50_000)
            .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
            .collect();
        assert_eq!(
            connected_components(n, &edges),
            crate::connectivity::sv::connected_components(n, &edges)
        );
    }
}
