//! Sequential connected-component references (union–find and BFS).
//!
//! These are the ground truth the parallel kernels are tested against, and
//! the fallback used when a contracted problem fits one processor.

use crate::unionfind::UnionFind;

/// Connected components via union–find. Returns per-vertex root ids
/// (each entry points at the minimum vertex of its component, making the
/// output canonical) — pair with [`crate::connectivity::relabel_consecutive`]
/// for dense labels.
pub fn components_union_find(n: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> Vec<u32> {
    let mut uf = UnionFind::new(n);
    for (u, v) in edges {
        uf.union(u as usize, v as usize);
    }
    canonical_roots(n, |v| uf.find(v) as u32)
}

/// Connected components via BFS over an adjacency structure given as a
/// neighbor closure; used only in tests for an independent second opinion.
pub fn components_bfs(n: usize, neighbors: impl Fn(usize) -> Vec<usize>) -> Vec<u32> {
    let mut root = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n {
        if root[s] != u32::MAX {
            continue;
        }
        root[s] = s as u32;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for w in neighbors(v) {
                if root[w] == u32::MAX {
                    root[w] = s as u32;
                    queue.push_back(w);
                }
            }
        }
    }
    root
}

/// Canonicalize arbitrary representative ids to "minimum vertex in the
/// component", so different algorithms produce byte-identical outputs.
fn canonical_roots(n: usize, mut rep: impl FnMut(usize) -> u32) -> Vec<u32> {
    let mut min_of_rep = vec![u32::MAX; n];
    let reps: Vec<u32> = (0..n).map(&mut rep).collect();
    for (v, &r) in reps.iter().enumerate() {
        min_of_rep[r as usize] = min_of_rep[r as usize].min(v as u32);
    }
    reps.iter().map(|&r| min_of_rep[r as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_components_basic() {
        let roots = components_union_find(6, vec![(0, 1), (1, 2), (4, 5)]);
        assert_eq!(roots, vec![0, 0, 0, 3, 4, 4]);
    }

    #[test]
    fn bfs_agrees_with_union_find() {
        let n = 50;
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1)
            .filter(|&i| i % 7 != 3)
            .map(|i| (i, i + 1))
            .collect();
        let uf = components_union_find(n, edges.iter().copied());
        let adj = {
            let mut adj = vec![Vec::new(); n];
            for &(u, v) in &edges {
                adj[u as usize].push(v as usize);
                adj[v as usize].push(u as usize);
            }
            adj
        };
        let bfs = components_bfs(n, |v| adj[v].clone());
        assert_eq!(uf, bfs);
    }

    #[test]
    fn empty_edge_set_gives_singletons() {
        let roots = components_union_find(4, std::iter::empty());
        assert_eq!(roots, vec![0, 1, 2, 3]);
    }

    #[test]
    fn self_loops_and_duplicates_are_harmless() {
        let roots = components_union_find(3, vec![(0, 0), (1, 2), (2, 1), (1, 2)]);
        assert_eq!(roots, vec![0, 1, 1]);
    }
}
