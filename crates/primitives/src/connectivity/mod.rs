//! Connected-component kernels.
//!
//! Borůvka's connect-components step (paper §2, citing Chung & Condon's
//! pointer-jumping approach) resolves the pseudo-forest induced by each
//! vertex's minimum-weight edge; [`pointer_jump`] implements it. MST-BC's
//! contraction step needs components of an arbitrary edge set, for which
//! [`sv`] provides a Shiloach–Vishkin-style parallel algorithm.
//! [`seq`] holds sequential reference implementations used for verification
//! and as the small-problem fallback. [`concurrent`] is the lock-free
//! CAS-hooking union–find behind the SF-Hook spanning-forest front-end.

pub mod concurrent;
pub mod label_prop;
pub mod pointer_jump;
pub mod seq;
pub mod sv;

/// Relabel an array of root ids (each entry pointing at its component's root
/// vertex) into consecutive component labels `0..k`. Returns the per-vertex
/// labels and the component count `k`.
///
/// Runs the standard flag/prefix-sum/gather sequence so supervertices keep
/// the relative order of their root vertex ids — the property Bor-FAL's
/// lookup table relies on.
pub fn relabel_consecutive(roots: &[u32]) -> (Vec<u32>, u32) {
    let n = roots.len();
    let mut is_root = vec![0usize; n];
    for (v, &r) in roots.iter().enumerate() {
        debug_assert!(
            (r as usize) < n && roots[r as usize] == r,
            "entry {v} does not point at a root"
        );
        if r as usize == v {
            is_root[v] = 1;
        }
    }
    let k = crate::prefix::exclusive_scan(&mut is_root);
    // After the scan, is_root[v] is the new label of root v.
    let labels: Vec<u32> = roots.iter().map(|&r| is_root[r as usize] as u32).collect();
    (labels, k as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relabel_assigns_consecutive_labels() {
        // Roots: {0,0,3,3,0} -> components {0:[0,1,4], 3:[2,3]}.
        let roots = vec![0, 0, 3, 3, 0];
        let (labels, k) = relabel_consecutive(&roots);
        assert_eq!(k, 2);
        assert_eq!(labels, vec![0, 0, 1, 1, 0]);
    }

    #[test]
    fn relabel_identity_when_all_singletons() {
        let roots: Vec<u32> = (0..10).collect();
        let (labels, k) = relabel_consecutive(&roots);
        assert_eq!(k, 10);
        assert_eq!(labels, roots);
    }
}
