//! Pointer jumping over the pseudo-forest produced by Borůvka's find-min.
//!
//! After find-min, every vertex points along its minimum-weight edge. The
//! resulting functional graph is a collection of trees whose roots sit on
//! mutual 2-cycles (u points at v and v at u, because the globally minimal
//! edge of the pair is minimal for both endpoints). Breaking each 2-cycle at
//! the smaller-indexed endpoint yields a rooted forest, and O(log n) rounds
//! of parallel pointer jumping collapse every vertex onto its root.

use rayon::prelude::*;

/// Length below which the jump rounds run sequentially.
const PAR_THRESHOLD: usize = 1 << 14;

/// Resolve a find-min pseudo-forest in place: on return, `parent[v]` is the
/// root of `v`'s tree and every root satisfies `parent[r] == r`.
///
/// # Panics
/// Panics (in debug builds) if the structure contains a cycle longer than 2,
/// which a correct find-min with totally ordered edge keys can never emit.
pub fn resolve_pseudo_forest(parent: &mut [u32]) {
    let n = parent.len();
    // Break 2-cycles: the smaller endpoint becomes the root.
    if n >= PAR_THRESHOLD {
        let snapshot: Vec<u32> = parent.to_vec();
        parent.par_iter_mut().enumerate().for_each(|(v, p)| {
            let q = snapshot[*p as usize];
            if q as usize == v && (*p as usize) > v {
                *p = v as u32;
            }
        });
    } else {
        for v in 0..n {
            let p = parent[v] as usize;
            if parent[p] as usize == v && p > v {
                parent[v] = v as u32;
            }
        }
    }
    jump_to_roots(parent);
}

/// Repeated parent doubling until every vertex points at a root. The input
/// must already be a rooted forest (no cycles except self-loops).
pub fn jump_to_roots(parent: &mut [u32]) {
    let n = parent.len();
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        debug_assert!(
            rounds <= 2 * usize::BITS as usize + 2,
            "pointer jumping did not converge; input was not a rooted forest"
        );
        let changed = if n >= PAR_THRESHOLD {
            let snapshot: Vec<u32> = parent.to_vec();
            parent
                .par_iter_mut()
                .map(|p| {
                    let g = snapshot[*p as usize];
                    if g != *p {
                        *p = g;
                        1usize
                    } else {
                        0
                    }
                })
                .sum::<usize>()
                > 0
        } else {
            let mut any = false;
            for v in 0..n {
                let g = parent[parent[v] as usize];
                if g != parent[v] {
                    parent[v] = g;
                    any = true;
                }
            }
            any
        };
        if !changed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_single_pair() {
        // 0 <-> 1 mutual pair.
        let mut parent = vec![1u32, 0];
        resolve_pseudo_forest(&mut parent);
        assert_eq!(parent, vec![0, 0]);
    }

    #[test]
    fn resolves_chain_onto_pair_root() {
        // 4 -> 3 -> 2 -> 1 <-> 0
        let mut parent = vec![1u32, 0, 1, 2, 3];
        resolve_pseudo_forest(&mut parent);
        assert_eq!(parent, vec![0, 0, 0, 0, 0]);
    }

    #[test]
    fn resolves_multiple_components() {
        // Component A: 0<->1 with 2 hanging; component B: 3<->4.
        let mut parent = vec![1u32, 0, 0, 4, 3];
        resolve_pseudo_forest(&mut parent);
        assert_eq!(parent, vec![0, 0, 0, 3, 3]);
    }

    #[test]
    fn large_star_and_long_chain() {
        let n = PAR_THRESHOLD + 100;
        // Long chain: v -> v-1, vertex 0 and 1 mutual.
        let mut parent: Vec<u32> = (0..n)
            .map(|v| if v == 0 { 1 } else { v as u32 - 1 })
            .collect();
        resolve_pseudo_forest(&mut parent);
        assert!(parent.iter().all(|&p| p == 0));

        // Star: everything points at n-1, which pairs with 0.
        let mut star: Vec<u32> = vec![(n - 1) as u32; n];
        star[n - 1] = 0;
        resolve_pseudo_forest(&mut star);
        assert!(star.iter().all(|&p| p == 0));
    }

    #[test]
    fn roots_stay_roots() {
        let mut parent = vec![0u32, 1, 2];
        resolve_pseudo_forest(&mut parent);
        assert_eq!(parent, vec![0, 1, 2]);
    }
}
