//! Union–find (disjoint set union) with union by rank and path compression.
//!
//! Drives the sequential Kruskal and Borůvka baselines and serves as the
//! ground truth for the parallel connectivity kernels.

/// Disjoint-set forest over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// Create `n` singleton sets.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "UnionFind is indexed by u32");
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the structure tracks no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently represented.
    #[inline]
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Find the representative of `x`, compressing the path (two-pass).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        let mut cur = x;
        while cur != root {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Merge the sets containing `a` and `b`. Returns `true` when the two
    /// were in different sets (i.e. an actual merge happened).
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.sets -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb as u32,
            std::cmp::Ordering::Greater => self.parent[rb] = ra as u32,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra as u32;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// True when `a` and `b` are currently in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn singletons_then_unions() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.set_count(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(3, 4));
        assert!(!uf.union(1, 0), "already merged");
        assert_eq!(uf.set_count(), 3);
        assert!(uf.same(0, 1));
        assert!(!uf.same(0, 3));
        assert!(uf.union(1, 4));
        assert!(uf.same(0, 3));
        assert_eq!(uf.set_count(), 2);
    }

    #[test]
    fn long_chain_compresses() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.set_count(), 1);
        let r = uf.find(0);
        for i in 0..n {
            assert_eq!(uf.find(i), r);
        }
    }

    #[test]
    fn empty_and_len() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.len(), 0);
        assert_eq!(uf.set_count(), 0);
    }

    proptest! {
        /// set_count always equals the count from a naive quadratic grouping.
        #[test]
        fn set_count_matches_naive(ops in proptest::collection::vec((0usize..40, 0usize..40), 0..120)) {
            let n = 40;
            let mut uf = UnionFind::new(n);
            let mut naive: Vec<usize> = (0..n).collect();
            for (a, b) in ops {
                uf.union(a, b);
                let (ra, rb) = (naive[a], naive[b]);
                if ra != rb {
                    for x in naive.iter_mut() {
                        if *x == rb { *x = ra; }
                    }
                }
            }
            let mut reps: Vec<usize> = naive.clone();
            reps.sort_unstable();
            reps.dedup();
            prop_assert_eq!(uf.set_count(), reps.len());
            for a in 0..n {
                for b in 0..n {
                    prop_assert_eq!(uf.same(a, b), naive[a] == naive[b]);
                }
            }
        }
    }
}
