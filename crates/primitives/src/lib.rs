//! # msf-primitives
//!
//! Shared-memory parallel primitives substrate for the MSF algorithm suite,
//! reproducing the building blocks Bader & Cong's implementation drew from
//! the SIMPLE methodology (Bader & JáJá 1999) and from Helman & JáJá's SMP
//! algorithm-engineering work:
//!
//! * [`team`] — an SPMD thread team with reusable barriers, the execution
//!   model every per-processor algorithm in the paper is written against.
//! * [`pool`] — the persistent work-stealing execution backend (re-export
//!   of the `msf-pool` crate): process-global stealing workers with
//!   chase-lev-style deques behind the `rayon` facade, leasable team
//!   threads behind [`team::SmpTeam`], sense-reversing barriers, and the
//!   `MSF_SEQUENTIAL` escape hatch.
//! * [`prefix`] — sequential and parallel prefix sums and compaction.
//! * [`sort`] — insertion sort, non-recursive merge sort, and the parallel
//!   sample sort used by the Bor-EL compact-graph step.
//! * [`connectivity`] — pointer-jumping components for Borůvka hook forests,
//!   Shiloach–Vishkin components for arbitrary edge lists, and a lock-free
//!   CAS-hooking union–find for spanning-forest front-ends.
//! * [`atomic`] — lock-free atomic write-min slots (the parlaylib race
//!   replacing barriered segmented find-min), with the order-isomorphic
//!   `(weight bits, edge id)` packed key.
//! * [`fused`] — single-pass fused filter/relabel/compact kernels (one
//!   DRAM sweep per contraction round instead of several), the retained
//!   multi-pass escape hatch (`MSF_UNFUSED=1`), and the
//!   `kernel.fused_bytes_read` traffic observable.
//! * [`unionfind`] — sequential union–find (rank + path compression).
//! * [`heap`] — an indexed binary heap with `decrease-key` for Prim-style
//!   tree growth.
//! * [`permutation`] — parallel random permutation (Sanders-style), used by
//!   MST-BC to guarantee progress with high probability.
//! * [`arena`] — per-thread bump arenas, the Bor-ALM memory manager.
//! * [`steal`] — work-stealing vertex partitions (owner takes from the head,
//!   thieves from the tail), as described in §4 of the paper.
//! * [`cost`] — per-thread work meters and per-step timers in the spirit of
//!   the Helman–JáJá SMP cost model (memory accesses + computation), used to
//!   produce deterministic modeled speedup curves on machines with fewer
//!   physical cores than the paper's testbed.
//! * [`obs`] — the observability subsystem (re-export of the `msf-obs`
//!   crate): per-thread lock-free event rings, span tracing over the
//!   Borůvka step loops and team lifecycles, and chrome-trace export,
//!   gated by `MSF_TRACE` (see DESIGN.md §11).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use msf_obs as obs;
pub use msf_pool as pool;

pub mod arena;
pub mod atomic;
pub mod connectivity;
pub mod cost;
pub mod fused;
pub mod heap;
pub mod permutation;
pub mod prefix;
pub mod sort;
pub mod steal;
pub mod team;
pub mod unionfind;

/// Decide how many items of `n` a chunk owned by thread `t` of `p` receives,
/// handing out the remainder one item at a time to the lowest-ranked threads.
///
/// Returns the half-open range `[start, end)` of the `t`-th block.
#[inline]
pub fn block_range(n: usize, p: usize, t: usize) -> std::ops::Range<usize> {
    debug_assert!(p > 0 && t < p);
    let base = n / p;
    let rem = n % p;
    let start = t * base + t.min(rem);
    let len = base + usize::from(t < rem);
    start..start + len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ranges_partition_exactly() {
        for n in [0usize, 1, 2, 7, 64, 1000, 1001] {
            for p in 1..=9usize {
                let mut covered = 0usize;
                let mut prev_end = 0usize;
                for t in 0..p {
                    let r = block_range(n, p, t);
                    assert_eq!(r.start, prev_end, "blocks must be contiguous");
                    prev_end = r.end;
                    covered += r.len();
                }
                assert_eq!(prev_end, n);
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn block_ranges_are_balanced() {
        for n in [10usize, 100, 101, 999] {
            for p in 1..=8usize {
                let sizes: Vec<usize> = (0..p).map(|t| block_range(n, p, t).len()).collect();
                let min = *sizes.iter().min().unwrap();
                let max = *sizes.iter().max().unwrap();
                assert!(max - min <= 1, "n={n} p={p} sizes={sizes:?}");
            }
        }
    }
}
