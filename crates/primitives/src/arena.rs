//! Per-thread bump arenas — the Bor-ALM memory manager.
//!
//! The paper's Bor-ALM variant (§2.2) allocates each thread's scratch
//! structures from a private memory segment instead of the shared system
//! heap, eliminating contention on the allocator's kernel lock (a real
//! bottleneck under Solaris 9's single-segment `malloc`). This safe-Rust
//! equivalent hands out index ranges from pre-reserved per-thread pools of
//! `u32`/`u64` words; the algorithms address scratch memory through
//! [`ArenaVec`] handles instead of freshly `Vec`-allocated buffers.
//!
//! The arena is deliberately a *bump* allocator: compact-graph allocates a
//! wave of per-vertex scratch lists, uses them within the iteration, and
//! releases everything at once with [`Arena::reset`].

/// A growable bump arena of `T` words.
#[derive(Debug)]
pub struct Arena<T> {
    storage: Vec<T>,
    /// High-water mark of live words (== storage.len() between allocations).
    allocated: usize,
}

/// A range handle into an [`Arena`]; resolves to a slice via
/// [`Arena::slice`] / [`Arena::slice_mut`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaVec {
    start: usize,
    len: usize,
}

impl ArenaVec {
    /// Number of words in the allocation.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for zero-length allocations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<T: Copy + Default> Arena<T> {
    /// Create an arena with `capacity` words pre-reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        Arena {
            storage: Vec::with_capacity(capacity),
            allocated: 0,
        }
    }

    /// Allocate `len` default-initialized words.
    pub fn alloc(&mut self, len: usize) -> ArenaVec {
        let start = self.allocated;
        self.storage.resize(start + len, T::default());
        self.allocated += len;
        ArenaVec { start, len }
    }

    /// Allocate and fill from a slice.
    pub fn alloc_from(&mut self, data: &[T]) -> ArenaVec {
        let v = self.alloc(data.len());
        self.slice_mut(v).copy_from_slice(data);
        v
    }

    /// Borrow an allocation immutably.
    #[inline]
    pub fn slice(&self, v: ArenaVec) -> &[T] {
        &self.storage[v.start..v.start + v.len]
    }

    /// Borrow an allocation mutably.
    #[inline]
    pub fn slice_mut(&mut self, v: ArenaVec) -> &mut [T] {
        &mut self.storage[v.start..v.start + v.len]
    }

    /// Words currently live.
    #[inline]
    pub fn used(&self) -> usize {
        self.allocated
    }

    /// Words reserved (capacity survives resets — that is the whole point:
    /// after the first Borůvka iteration no further system allocation calls
    /// are made from this thread).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.storage.capacity()
    }

    /// Release every allocation at once, keeping the reserved capacity.
    pub fn reset(&mut self) {
        self.storage.clear();
        self.allocated = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_access() {
        let mut a: Arena<u32> = Arena::with_capacity(16);
        let x = a.alloc(4);
        let y = a.alloc_from(&[7, 8, 9]);
        a.slice_mut(x).copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(a.slice(x), &[1, 2, 3, 4]);
        assert_eq!(a.slice(y), &[7, 8, 9]);
        assert_eq!(a.used(), 7);
    }

    #[test]
    fn reset_keeps_capacity() {
        let mut a: Arena<u64> = Arena::with_capacity(8);
        let _ = a.alloc(100);
        let cap = a.capacity();
        assert!(cap >= 100);
        a.reset();
        assert_eq!(a.used(), 0);
        assert_eq!(a.capacity(), cap, "reset must not free");
        let z = a.alloc(50);
        assert_eq!(a.slice(z).len(), 50);
        assert!(a.slice(z).iter().all(|&w| w == 0), "fresh words are zeroed");
    }

    #[test]
    fn zero_length_allocations() {
        let mut a: Arena<u32> = Arena::with_capacity(0);
        let v = a.alloc(0);
        assert!(v.is_empty());
        assert_eq!(a.slice(v), &[] as &[u32]);
    }

    #[test]
    fn many_allocations_are_disjoint() {
        let mut a: Arena<u32> = Arena::with_capacity(4);
        let handles: Vec<ArenaVec> = (0..20).map(|i| a.alloc(i % 5 + 1)).collect();
        for (i, &h) in handles.iter().enumerate() {
            for w in a.slice_mut(h).iter_mut() {
                *w = i as u32;
            }
        }
        for (i, &h) in handles.iter().enumerate() {
            assert!(a.slice(h).iter().all(|&w| w == i as u32));
        }
    }
}
