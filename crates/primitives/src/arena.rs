//! Per-thread bump arenas — the Bor-ALM memory manager.
//!
//! The paper's Bor-ALM variant (§2.2) allocates each thread's scratch
//! structures from a private memory segment instead of the shared system
//! heap, eliminating contention on the allocator's kernel lock (a real
//! bottleneck under Solaris 9's single-segment `malloc`). This safe-Rust
//! equivalent hands out index ranges from pre-reserved per-thread pools of
//! `u32`/`u64` words; the algorithms address scratch memory through
//! [`ArenaVec`] handles instead of freshly `Vec`-allocated buffers.
//!
//! The arena is deliberately a *bump* allocator: compact-graph allocates a
//! wave of per-vertex scratch lists, uses them within the iteration, and
//! releases everything at once with [`Arena::reset`].

use msf_obs::metrics::{LazyCounter, LazyGauge};

/// Chunks handed out by every arena in the process (while metrics are on).
static ARENA_CHUNKS: LazyCounter = LazyCounter::new("arena.chunks");
/// Times any arena had to grow its backing storage (a system allocation —
/// in steady-state Bor-ALM this stops after the first iterations).
static ARENA_GROWS: LazyCounter = LazyCounter::new("arena.grow_events");
/// Live arena bytes across the process; its peak is the aggregate
/// high-water mark of per-thread arena memory.
static ARENA_LIVE: LazyGauge = LazyGauge::new("arena.live_bytes");

/// A growable bump arena of `T` words.
#[derive(Debug)]
pub struct Arena<T> {
    storage: Vec<T>,
    /// High-water mark of live words (== storage.len() between allocations).
    allocated: usize,
    /// Telemetry for this arena (per-thread by construction: arenas are
    /// `!Sync`-by-use — one owner thread each in Bor-ALM).
    stats: ArenaStats,
}

/// Telemetry for one arena: the per-thread view of the Bor-ALM memory
/// story. Byte figures use `size_of::<T>()`; the process-wide aggregate
/// lives in the metrics registry (`arena.chunks`, `arena.grow_events`,
/// `arena.live_bytes`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Bytes live right now (words allocated since the last reset).
    pub live_bytes: usize,
    /// High-water mark of `live_bytes` over the arena's lifetime.
    pub peak_bytes: usize,
    /// Chunks ([`Arena::alloc`] / [`Arena::alloc_from`] calls) handed out.
    pub chunks: u64,
    /// Times the backing storage had to grow (i.e. hit the system
    /// allocator). Zero after warm-up is the Bor-ALM design goal.
    pub grow_events: u64,
    /// Bytes currently reserved (survives resets).
    pub capacity_bytes: usize,
}

/// A range handle into an [`Arena`]; resolves to a slice via
/// [`Arena::slice`] / [`Arena::slice_mut`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaVec {
    start: usize,
    len: usize,
}

impl ArenaVec {
    /// Word offset of the allocation within its arena. Together with
    /// [`ArenaVec::len`] this lets callers persist a handle in compact
    /// integer form and re-read it later via [`Arena::range`].
    #[inline]
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of words in the allocation.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for zero-length allocations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<T> Default for Arena<T> {
    /// An empty arena with nothing reserved (grows on first use).
    fn default() -> Self {
        Arena {
            storage: Vec::new(),
            allocated: 0,
            stats: ArenaStats::default(),
        }
    }
}

impl<T: Copy + Default> Arena<T> {
    /// Create an arena with `capacity` words pre-reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        Arena {
            storage: Vec::with_capacity(capacity),
            allocated: 0,
            stats: ArenaStats::default(),
        }
    }

    /// Allocate `len` default-initialized words.
    pub fn alloc(&mut self, len: usize) -> ArenaVec {
        let start = self.allocated;
        let cap_before = self.storage.capacity();
        self.storage.resize(start + len, T::default());
        self.allocated += len;
        self.stats.chunks += 1;
        ARENA_CHUNKS.inc();
        if self.storage.capacity() != cap_before {
            self.stats.grow_events += 1;
            ARENA_GROWS.inc();
        }
        let bytes = len * std::mem::size_of::<T>();
        self.stats.live_bytes += bytes;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.live_bytes);
        ARENA_LIVE.add(bytes as u64);
        ArenaVec { start, len }
    }

    /// Allocate and fill from a slice.
    pub fn alloc_from(&mut self, data: &[T]) -> ArenaVec {
        let v = self.alloc(data.len());
        self.slice_mut(v).copy_from_slice(data);
        v
    }

    /// Borrow an allocation immutably.
    #[inline]
    pub fn slice(&self, v: ArenaVec) -> &[T] {
        &self.storage[v.start..v.start + v.len]
    }

    /// Borrow a live range by raw `(start, len)` words — the de-persisted
    /// form of an [`ArenaVec`] (see [`ArenaVec::start`]).
    #[inline]
    pub fn range(&self, start: usize, len: usize) -> &[T] {
        &self.storage[start..start + len]
    }

    /// Borrow an allocation mutably.
    #[inline]
    pub fn slice_mut(&mut self, v: ArenaVec) -> &mut [T] {
        &mut self.storage[v.start..v.start + v.len]
    }

    /// Words currently live.
    #[inline]
    pub fn used(&self) -> usize {
        self.allocated
    }

    /// Words reserved (capacity survives resets — that is the whole point:
    /// after the first Borůvka iteration no further system allocation calls
    /// are made from this thread).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.storage.capacity()
    }

    /// Release every allocation at once, keeping the reserved capacity.
    pub fn reset(&mut self) {
        ARENA_LIVE.sub(self.stats.live_bytes as u64);
        self.stats.live_bytes = 0;
        self.storage.clear();
        self.allocated = 0;
    }

    /// This arena's telemetry (live/peak bytes, chunk and grow counts).
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            capacity_bytes: self.storage.capacity() * std::mem::size_of::<T>(),
            ..self.stats
        }
    }
}

impl<T> Drop for Arena<T> {
    fn drop(&mut self) {
        ARENA_LIVE.sub(self.stats.live_bytes as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_access() {
        let mut a: Arena<u32> = Arena::with_capacity(16);
        let x = a.alloc(4);
        let y = a.alloc_from(&[7, 8, 9]);
        a.slice_mut(x).copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(a.slice(x), &[1, 2, 3, 4]);
        assert_eq!(a.slice(y), &[7, 8, 9]);
        assert_eq!(a.used(), 7);
    }

    #[test]
    fn reset_keeps_capacity() {
        let mut a: Arena<u64> = Arena::with_capacity(8);
        let _ = a.alloc(100);
        let cap = a.capacity();
        assert!(cap >= 100);
        a.reset();
        assert_eq!(a.used(), 0);
        assert_eq!(a.capacity(), cap, "reset must not free");
        let z = a.alloc(50);
        assert_eq!(a.slice(z).len(), 50);
        assert!(a.slice(z).iter().all(|&w| w == 0), "fresh words are zeroed");
    }

    #[test]
    fn zero_length_allocations() {
        let mut a: Arena<u32> = Arena::with_capacity(0);
        let v = a.alloc(0);
        assert!(v.is_empty());
        assert_eq!(a.slice(v), &[] as &[u32]);
    }

    #[test]
    fn stats_track_live_peak_chunks_and_grows() {
        let mut a: Arena<u64> = Arena::with_capacity(4);
        let _ = a.alloc(2);
        let _ = a.alloc(2);
        let s = a.stats();
        assert_eq!(s.chunks, 2);
        assert_eq!(s.live_bytes, 4 * 8);
        assert_eq!(s.peak_bytes, 4 * 8);
        assert_eq!(s.grow_events, 0, "within pre-reserved capacity");
        let _ = a.alloc(100); // forces a grow
        let s = a.stats();
        assert!(s.grow_events >= 1);
        assert_eq!(s.live_bytes, 104 * 8);
        a.reset();
        let s = a.stats();
        assert_eq!(s.live_bytes, 0);
        assert_eq!(s.peak_bytes, 104 * 8, "peak survives reset");
        assert!(s.capacity_bytes >= 104 * 8, "capacity survives reset");
        // Steady state: a same-sized wave after reset never grows again.
        let grows_before = s.grow_events;
        let _ = a.alloc(104);
        assert_eq!(a.stats().grow_events, grows_before);
    }

    #[test]
    fn many_allocations_are_disjoint() {
        let mut a: Arena<u32> = Arena::with_capacity(4);
        let handles: Vec<ArenaVec> = (0..20).map(|i| a.alloc(i % 5 + 1)).collect();
        for (i, &h) in handles.iter().enumerate() {
            for w in a.slice_mut(h).iter_mut() {
                *w = i as u32;
            }
        }
        for (i, &h) in handles.iter().enumerate() {
            assert!(a.slice(h).iter().all(|&w| w == i as u32));
        }
    }
}
