//! Work accounting in the spirit of the Helman–JáJá SMP model.
//!
//! The paper analyzes every algorithm as ⟨ME; TC⟩ — the number of
//! non-contiguous **m**emory accesses and the **c**omputation time (§3).
//! This module lets the algorithms measure both empirically: each SPMD
//! worker carries a [`WorkMeter`] and bumps it as it touches memory and does
//! work; [`modeled_time`] then reduces the per-thread meters to the modeled
//! parallel running time (the maximum over workers, since barriers make each
//! phase as slow as its slowest worker).
//!
//! On the paper's 14-way Sun E4500 wall-clock time shows real speedup; on a
//! host with fewer physical cores, wall clock measures oversubscription
//! instead, and the meter-based model is the honest way to reproduce the
//! *shape* of the paper's speedup figures. EXPERIMENTS.md reports both.

/// Per-thread work counters. Plain integers — cheap enough to keep enabled
/// in benchmark builds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkMeter {
    /// Non-contiguous memory accesses (the model's ME term).
    pub mem: u64,
    /// Computation units: comparisons, hooks, heap operations (TC term).
    pub ops: u64,
}

impl WorkMeter {
    /// Fresh zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` non-contiguous memory accesses.
    #[inline(always)]
    pub fn mem(&mut self, n: u64) {
        self.mem += n;
    }

    /// Record `n` computation units.
    #[inline(always)]
    pub fn ops(&mut self, n: u64) {
        self.ops += n;
    }

    /// Weighted single-number cost: `ops + W * mem`, where `W` is the
    /// DRAM-latency:ALU weight from [`mem_weight`]. The model charges a
    /// non-contiguous access substantially more than an ALU op; the default
    /// `W = 4` matches the ratio we measured on this host and can be tuned
    /// per machine via `MSF_COST_MEM_WEIGHT` without affecting any
    /// *relative* comparison. Everything derived from meter costs —
    /// [`modeled_time`], [`total_work`], and the modeled speedup curves in
    /// the bench harness — picks the weight up through here.
    #[inline]
    pub fn cost(&self) -> u64 {
        self.ops + mem_weight() * self.mem
    }
}

/// The DRAM:ALU cost weight `W` used by [`WorkMeter::cost`]. Defaults to 4;
/// override with `MSF_COST_MEM_WEIGHT` (clamped to 1..=1024). Read once and
/// frozen for the process, so a run never mixes weights.
pub fn mem_weight() -> u64 {
    static WEIGHT: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *WEIGHT.get_or_init(|| parse_mem_weight(std::env::var("MSF_COST_MEM_WEIGHT").ok().as_deref()))
}

const DEFAULT_MEM_WEIGHT: u64 = 4;

fn parse_mem_weight(raw: Option<&str>) -> u64 {
    raw.and_then(|s| s.trim().parse::<u64>().ok())
        .map(|w| w.clamp(1, 1024))
        .unwrap_or(DEFAULT_MEM_WEIGHT)
}

impl std::ops::Add for WorkMeter {
    type Output = WorkMeter;
    fn add(self, rhs: WorkMeter) -> WorkMeter {
        WorkMeter {
            mem: self.mem + rhs.mem,
            ops: self.ops + rhs.ops,
        }
    }
}

impl std::iter::Sum for WorkMeter {
    fn sum<I: Iterator<Item = WorkMeter>>(iter: I) -> Self {
        iter.fold(WorkMeter::default(), |a, b| a + b)
    }
}

/// Modeled parallel time of one barrier-synchronized phase: the cost of the
/// slowest worker.
pub fn modeled_time(per_thread: &[WorkMeter]) -> u64 {
    per_thread.iter().map(WorkMeter::cost).max().unwrap_or(0)
}

/// Total work across workers (the model's work term; `work / p` bounds the
/// perfectly balanced time).
pub fn total_work(per_thread: &[WorkMeter]) -> u64 {
    per_thread.iter().map(WorkMeter::cost).sum()
}

/// A wall-clock stopwatch for per-step timing breakdowns (Fig. 2).
#[derive(Debug)]
pub struct Stopwatch(std::time::Instant);

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch(std::time::Instant::now())
    }

    /// Seconds elapsed since start.
    pub fn seconds(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }

    /// Elapsed time, restarting the watch — for chained phase timing.
    pub fn lap(&mut self) -> f64 {
        let now = std::time::Instant::now();
        let dt = now.duration_since(self.0).as_secs_f64();
        self.0 = now;
        dt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_accumulates_and_costs() {
        let mut m = WorkMeter::new();
        m.mem(10);
        m.ops(3);
        m.mem(2);
        assert_eq!(m.mem, 12);
        assert_eq!(m.ops, 3);
        assert_eq!(m.cost(), 3 + 4 * 12);
    }

    #[test]
    fn modeled_time_is_max_total_is_sum() {
        let meters = vec![
            WorkMeter { mem: 0, ops: 10 },
            WorkMeter { mem: 5, ops: 0 },
            WorkMeter { mem: 1, ops: 1 },
        ];
        assert_eq!(modeled_time(&meters), 20);
        assert_eq!(total_work(&meters), 10 + 20 + 5);
        assert_eq!(modeled_time(&[]), 0);
    }

    #[test]
    fn meters_sum() {
        let a = WorkMeter { mem: 1, ops: 2 };
        let b = WorkMeter { mem: 3, ops: 4 };
        let s: WorkMeter = [a, b].into_iter().sum();
        assert_eq!(s, WorkMeter { mem: 4, ops: 6 });
    }

    #[test]
    fn mem_weight_parsing_defaults_and_clamps() {
        assert_eq!(parse_mem_weight(None), 4);
        assert_eq!(parse_mem_weight(Some("")), 4);
        assert_eq!(parse_mem_weight(Some("junk")), 4);
        assert_eq!(parse_mem_weight(Some("7")), 7);
        assert_eq!(parse_mem_weight(Some(" 12 ")), 12);
        assert_eq!(parse_mem_weight(Some("0")), 1);
        assert_eq!(parse_mem_weight(Some("99999")), 1024);
    }

    #[test]
    fn stopwatch_laps_monotonically() {
        let mut w = Stopwatch::start();
        let a = w.lap();
        let b = w.seconds();
        assert!(a >= 0.0);
        assert!(b >= 0.0);
    }
}
