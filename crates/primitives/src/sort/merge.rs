//! Non-recursive (bottom-up) merge sort.
//!
//! The paper's sequential baseline of choice: its Kruskal implementation uses
//! this sort ("which in our experiments has superior performance over qsort,
//! GNU quicksort, and recursive merge sort for large inputs", §5.2), and
//! Bor-AL uses it for adjacency lists too long for insertion sort.

/// Stable bottom-up merge sort under a strict `less` predicate.
///
/// Runs in O(n log n) with a single auxiliary buffer of n elements and no
/// recursion: widths double each pass (1, 2, 4, …) and buffers ping-pong.
pub fn merge_sort_by<T, F>(data: &mut [T], less: F)
where
    T: Copy,
    F: Fn(&T, &T) -> bool,
{
    let n = data.len();
    if n <= 1 {
        return;
    }
    let mut buf: Vec<T> = data.to_vec();
    // `src` flag: false => data is current, true => buf is current.
    let mut in_buf = false;
    let mut width = 1usize;
    while width < n {
        {
            let (src, dst): (&[T], &mut [T]) = if in_buf {
                (&buf, &mut *data)
            } else {
                (&*data, &mut buf)
            };
            let mut lo = 0usize;
            while lo < n {
                let mid = usize::min(lo + width, n);
                let hi = usize::min(lo + 2 * width, n);
                merge_runs(&src[lo..mid], &src[mid..hi], &mut dst[lo..hi], &less);
                lo = hi;
            }
        }
        in_buf = !in_buf;
        width *= 2;
    }
    if in_buf {
        data.copy_from_slice(&buf);
    }
}

/// Merge two sorted runs into `dst` (which must have length `a.len() + b.len()`).
fn merge_runs<T, F>(a: &[T], b: &[T], dst: &mut [T], less: &F)
where
    T: Copy,
    F: Fn(&T, &T) -> bool,
{
    debug_assert_eq!(a.len() + b.len(), dst.len());
    let (mut i, mut j) = (0usize, 0usize);
    for slot in dst.iter_mut() {
        // Stability: take from `a` on ties.
        if i < a.len() && (j >= b.len() || !less(&b[j], &a[i])) {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::is_sorted_by;
    use proptest::prelude::*;

    #[test]
    fn sorts_basic_cases() {
        for n in [0usize, 1, 2, 3, 4, 5, 31, 32, 33, 1000] {
            let mut v: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9e3779b9)).collect();
            merge_sort_by(&mut v, |a, b| a < b);
            assert!(is_sorted_by(&v, |a, b| a < b), "n={n}");
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn handles_already_sorted_and_reversed() {
        let mut asc: Vec<u32> = (0..257).collect();
        merge_sort_by(&mut asc, |a, b| a < b);
        assert!(is_sorted_by(&asc, |a, b| a < b));

        let mut desc: Vec<u32> = (0..257).rev().collect();
        merge_sort_by(&mut desc, |a, b| a < b);
        assert_eq!(desc, (0..257).collect::<Vec<u32>>());
    }

    #[test]
    fn is_stable() {
        let mut v: Vec<(u8, usize)> = (0..100).map(|i| ((i % 3) as u8, i)).collect();
        merge_sort_by(&mut v, |a, b| a.0 < b.0);
        for w in v.windows(2) {
            assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }

    proptest! {
        #[test]
        fn matches_std_sort(mut v in proptest::collection::vec(any::<i64>(), 0..2000)) {
            let mut expect = v.clone();
            expect.sort();
            merge_sort_by(&mut v, |a, b| a < b);
            prop_assert_eq!(v, expect);
        }
    }
}
