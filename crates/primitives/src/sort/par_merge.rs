//! Parallel bottom-up merge sort.
//!
//! The comparison point for sample sort in the ablation benches: p blocks
//! are sorted independently (with the sequential bottom-up merge sort the
//! paper favors) and then merged pairwise in log p rounds. Unlike sample
//! sort it needs no splitter selection and its balance is perfect by
//! construction, but the final merge rounds have shrinking parallelism —
//! the trade sample sort exists to avoid.

use rayon::prelude::*;

use super::merge_sort_by;

/// Sort `data` by `key` using `blocks`-way parallel merge sort.
pub fn par_merge_sort_by_key<T, K, F>(data: Vec<T>, key: F, blocks: usize) -> Vec<T>
where
    T: Copy + Send + Sync,
    K: Ord + Copy + Send + Sync,
    F: Fn(&T) -> K + Sync,
{
    let n = data.len();
    let blocks = blocks.max(1);
    if n <= 1 || blocks == 1 {
        let mut out = data;
        merge_sort_by(&mut out, |a, b| key(a) < key(b));
        return out;
    }
    // Phase 1: sort each block independently.
    let mut runs: Vec<Vec<T>> = (0..blocks)
        .into_par_iter()
        .map(|t| {
            let r = crate::block_range(n, blocks, t);
            let mut block = data[r].to_vec();
            merge_sort_by(&mut block, |a, b| key(a) < key(b));
            block
        })
        .collect();
    drop(data);
    // Phase 2: pairwise merge rounds.
    while runs.len() > 1 {
        runs = runs
            .par_chunks(2)
            .map(|pair| match pair {
                [a] => a.clone(),
                [a, b] => merge_two(a, b, &key),
                _ => unreachable!("chunks(2)"),
            })
            .collect();
    }
    runs.pop().unwrap_or_default()
}

/// Stable two-way merge (left wins ties).
fn merge_two<T, K, F>(a: &[T], b: &[T], key: &F) -> Vec<T>
where
    T: Copy,
    K: Ord,
    F: Fn(&T) -> K,
{
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if key(&b[j]) < key(&a[i]) {
            out.push(b[j]);
            j += 1;
        } else {
            out.push(a[i]);
            i += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sorts_large_inputs_across_block_counts() {
        let data: Vec<u64> = (0..50_000u64)
            .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15))
            .collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        for blocks in [1, 2, 3, 7, 8] {
            assert_eq!(
                par_merge_sort_by_key(data.clone(), |&x| x, blocks),
                expect,
                "blocks={blocks}"
            );
        }
    }

    #[test]
    fn stable_with_payloads() {
        let data: Vec<(u32, usize)> = (0..10_000).map(|i| ((i % 5) as u32, i)).collect();
        let sorted = par_merge_sort_by_key(data, |&(k, _)| k, 4);
        for w in sorted.windows(2) {
            assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }

    #[test]
    fn trivial_inputs() {
        assert!(par_merge_sort_by_key(Vec::<u32>::new(), |&x| x, 4).is_empty());
        assert_eq!(par_merge_sort_by_key(vec![9u32], |&x| x, 4), vec![9]);
    }

    proptest! {
        #[test]
        fn matches_std_sort(v in proptest::collection::vec(any::<i32>(), 0..4000),
                            blocks in 1usize..10) {
            let mut expect = v.clone();
            expect.sort();
            prop_assert_eq!(par_merge_sort_by_key(v, |&x| x, blocks), expect);
        }
    }
}
