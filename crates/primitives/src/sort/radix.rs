//! LSD radix sort on unsigned integer keys.
//!
//! Borůvka's compact-graph sorts are keyed by (supervertex, supervertex,
//! weight) tuples whose leading components are small integers; when weights
//! can be quantized (or ties don't matter), a radix sort over a packed
//! integer key beats comparison sorting. The suite uses it for grouping
//! passes and offers it in the sample-sort ablation bench as the
//! "comparison-free" alternative the original SIMPLE library also shipped.

/// Stable LSD radix sort of `data` by a `u64` key, 8 bits per pass.
///
/// Passes over leading zero bytes shared by every key are skipped, so
/// sorting small-range keys (e.g. vertex ids) costs proportionally less.
pub fn radix_sort_by_key<T, F>(data: &mut Vec<T>, key: F)
where
    T: Copy,
    F: Fn(&T) -> u64,
{
    let n = data.len();
    if n <= 1 {
        return;
    }
    // Determine how many byte passes the actual key range needs.
    let max_key = data.iter().map(&key).fold(0u64, u64::max);
    let passes = (64 - max_key.leading_zeros() as usize).div_ceil(8);

    let mut src: Vec<T> = std::mem::take(data);
    let mut dst: Vec<T> = Vec::with_capacity(n);
    dst.resize(n, src[0]);

    for pass in 0..passes.max(1) {
        let shift = pass * 8;
        let mut counts = [0usize; 256];
        for item in &src {
            counts[((key(item) >> shift) & 0xFF) as usize] += 1;
        }
        let mut offsets = [0usize; 256];
        let mut acc = 0usize;
        for (o, &c) in offsets.iter_mut().zip(&counts) {
            *o = acc;
            acc += c;
        }
        for item in &src {
            let digit = ((key(item) >> shift) & 0xFF) as usize;
            dst[offsets[digit]] = *item;
            offsets[digit] += 1;
        }
        std::mem::swap(&mut src, &mut dst);
    }
    *data = src;
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sorts_u64_values() {
        let mut v: Vec<u64> = (0..10_000u64)
            .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15))
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort_by_key(&mut v, |&x| x);
        assert_eq!(v, expect);
    }

    #[test]
    fn small_range_keys_and_stability() {
        // Key range 0..4: only one pass; payload order must be preserved.
        let mut v: Vec<(u64, usize)> = (0..1000).map(|i| ((i * 7 % 4) as u64, i)).collect();
        radix_sort_by_key(&mut v, |&(k, _)| k);
        for w in v.windows(2) {
            assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }

    #[test]
    fn trivial_inputs() {
        let mut empty: Vec<u64> = vec![];
        radix_sort_by_key(&mut empty, |&x| x);
        assert!(empty.is_empty());
        let mut one = vec![42u64];
        radix_sort_by_key(&mut one, |&x| x);
        assert_eq!(one, vec![42]);
        let mut zeros = vec![0u64; 100];
        radix_sort_by_key(&mut zeros, |&x| x);
        assert_eq!(zeros, vec![0u64; 100]);
    }

    #[test]
    fn full_width_keys() {
        let mut v = vec![u64::MAX, 0, u64::MAX - 1, 1, u64::MAX / 2];
        radix_sort_by_key(&mut v, |&x| x);
        assert_eq!(v, vec![0, 1, u64::MAX / 2, u64::MAX - 1, u64::MAX]);
    }

    proptest! {
        #[test]
        fn matches_std_sort(mut v in proptest::collection::vec(any::<u64>(), 0..3000)) {
            let mut expect = v.clone();
            expect.sort_unstable();
            radix_sort_by_key(&mut v, |&x| x);
            prop_assert_eq!(v, expect);
        }

        #[test]
        fn stable_on_masked_keys(v in proptest::collection::vec(any::<u32>(), 0..2000)) {
            let mut tagged: Vec<(u32, usize)> = v.into_iter().enumerate()
                .map(|(i, x)| (x % 16, i)).collect();
            radix_sort_by_key(&mut tagged, |&(k, _)| u64::from(k));
            for w in tagged.windows(2) {
                prop_assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
            }
        }
    }
}
