//! Insertion sort, the short-list workhorse of Bor-AL's per-vertex sorts.

/// Stable in-place insertion sort under a strict `less` predicate.
///
/// Quadratic in the worst case but with a tiny constant; the compact-graph
/// step of Bor-AL applies it to the (overwhelmingly short) per-vertex
/// adjacency lists, exactly as the paper prescribes.
pub fn insertion_sort_by<T, F>(data: &mut [T], less: F)
where
    T: Copy,
    F: Fn(&T, &T) -> bool,
{
    for i in 1..data.len() {
        let x = data[i];
        let mut j = i;
        while j > 0 && less(&x, &data[j - 1]) {
            data[j] = data[j - 1];
            j -= 1;
        }
        data[j] = x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::is_sorted_by;
    use proptest::prelude::*;

    #[test]
    fn sorts_small_arrays() {
        let mut v = vec![3, 1, 2];
        insertion_sort_by(&mut v, |a, b| a < b);
        assert_eq!(v, vec![1, 2, 3]);

        let mut empty: Vec<i32> = vec![];
        insertion_sort_by(&mut empty, |a, b| a < b);
        assert!(empty.is_empty());

        let mut one = vec![42];
        insertion_sort_by(&mut one, |a, b| a < b);
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn is_stable() {
        // Sort pairs by first element only; second element records input order.
        let mut v: Vec<(u8, usize)> = vec![(1, 0), (0, 1), (1, 2), (0, 3), (1, 4)];
        insertion_sort_by(&mut v, |a, b| a.0 < b.0);
        assert_eq!(v, vec![(0, 1), (0, 3), (1, 0), (1, 2), (1, 4)]);
    }

    proptest! {
        #[test]
        fn matches_std_sort(mut v in proptest::collection::vec(any::<i64>(), 0..200)) {
            let mut expect = v.clone();
            expect.sort();
            insertion_sort_by(&mut v, |a, b| a < b);
            prop_assert_eq!(v, expect);
        }

        #[test]
        fn output_is_permutation_and_sorted(v in proptest::collection::vec(any::<u32>(), 0..150)) {
            let mut sorted = v.clone();
            insertion_sort_by(&mut sorted, |a, b| a < b);
            prop_assert!(is_sorted_by(&sorted, |a, b| a < b));
            let mut a = v;
            let mut b = sorted;
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }
}
