//! Sorting kernels used by the Borůvka compact-graph implementations.
//!
//! The paper's algorithm-engineering choices (§2.2) are reproduced exactly:
//! O(n²) insertion sort for the many short adjacency lists of very sparse
//! graphs, a non-recursive (bottom-up) merge sort for longer lists, and a
//! Helman–JáJá parallel sample sort for the global edge-list sort in Bor-EL.

mod insertion;
mod merge;
mod par_merge;
mod radix;
mod sample;

pub use insertion::insertion_sort_by;
pub use merge::merge_sort_by;
pub use par_merge::par_merge_sort_by_key;
pub use radix::radix_sort_by_key;
pub use sample::{sample_sort_by_key, SampleSortConfig};

/// List length at or below which [`two_level_sort_by`] prefers insertion
/// sort. Profiling in the paper showed 80% of adjacency lists of a 1M-vertex
/// 6M-edge random graph hold 1–100 elements; 32 is the crossover we measured
/// for the edge tuples sorted here (see bench `ablation_sort_threshold`).
pub const INSERTION_THRESHOLD: usize = 32;

/// The paper's two-level sequential sort: insertion sort for short lists,
/// non-recursive merge sort otherwise.
pub fn two_level_sort_by<T, F>(data: &mut [T], less: F)
where
    T: Copy,
    F: Fn(&T, &T) -> bool,
{
    if data.len() <= INSERTION_THRESHOLD {
        insertion_sort_by(data, less);
    } else {
        merge_sort_by(data, less);
    }
}

#[cfg(test)]
pub(crate) fn is_sorted_by<T, F: Fn(&T, &T) -> bool>(data: &[T], less: F) -> bool {
    data.windows(2).all(|w| !less(&w[1], &w[0]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_level_dispatches_both_paths() {
        let mut short: Vec<u32> = (0..INSERTION_THRESHOLD as u32).rev().collect();
        two_level_sort_by(&mut short, |a, b| a < b);
        assert!(is_sorted_by(&short, |a, b| a < b));

        let mut long: Vec<u32> = (0..1000u32).map(|i| i.wrapping_mul(2654435761)).collect();
        two_level_sort_by(&mut long, |a, b| a < b);
        assert!(is_sorted_by(&long, |a, b| a < b));
    }
}
