//! Parallel sample sort (Helman & JáJá, ALENEX'99).
//!
//! This is the sort at the heart of Bor-EL's compact-graph step (§2.1): the
//! whole edge list is sorted with supervertex(u) as the primary key,
//! supervertex(v) as the secondary key, and the weight as the tertiary key,
//! after which self-loops and multi-edges occupy consecutive positions.
//!
//! The classic three phases: (1) draw an oversampled set of keys and pick
//! `buckets - 1` splitters; (2) every thread partitions its block of the
//! input into buckets by binary-searching the splitters; (3) each bucket is
//! sorted independently in parallel (with this crate's bottom-up merge sort)
//! and the buckets are concatenated.

use rayon::prelude::*;

use super::merge_sort_by;
use crate::block_range;

/// Tuning knobs for [`sample_sort_by_key`].
#[derive(Debug, Clone, Copy)]
pub struct SampleSortConfig {
    /// Number of buckets (and of parallel block scans). Defaults to the
    /// current rayon thread-pool width.
    pub buckets: usize,
    /// Sample-per-bucket oversampling ratio; larger samples give more even
    /// buckets at the cost of a longer (sequential) splitter-selection step.
    pub oversample: usize,
    /// Inputs shorter than this are sorted sequentially.
    pub seq_threshold: usize,
}

impl Default for SampleSortConfig {
    fn default() -> Self {
        SampleSortConfig {
            buckets: rayon::current_num_threads().max(1),
            oversample: 32,
            seq_threshold: 1 << 13,
        }
    }
}

/// Sort `data` by an extracted key, returning the sorted vector.
///
/// The sort is stable for equal keys (blocks are scanned in order and the
/// per-bucket merge sort is stable), which compact-graph relies on when it
/// keeps the first (minimum-weight) edge of a duplicate run.
pub fn sample_sort_by_key<T, K, F>(data: Vec<T>, key: F, cfg: SampleSortConfig) -> Vec<T>
where
    T: Copy + Send + Sync,
    K: Ord + Copy + Send + Sync,
    F: Fn(&T) -> K + Sync,
{
    let n = data.len();
    let buckets = cfg.buckets.max(1);
    if n <= cfg.seq_threshold || buckets == 1 {
        let mut out = data;
        merge_sort_by(&mut out, |a, b| key(a) < key(b));
        return out;
    }

    // Phase 1: regular sampling. A deterministic stride sample behaves like
    // random sampling on the already-unordered edge lists we feed it and
    // keeps runs reproducible.
    let sample_size = (buckets * cfg.oversample).min(n);
    let stride = n / sample_size;
    let mut sample: Vec<K> = (0..sample_size).map(|i| key(&data[i * stride])).collect();
    sample.sort_unstable();
    let splitters: Vec<K> = (1..buckets)
        .map(|b| sample[b * sample_size / buckets])
        .collect();

    // Phase 2: each block partitions its elements into per-bucket vectors.
    // `partition_point` on the sorted splitters gives the bucket index; ties
    // go to the right bucket boundary consistently, preserving stability.
    let parts: Vec<Vec<Vec<T>>> = (0..buckets)
        .into_par_iter()
        .map(|t| {
            let r = block_range(n, buckets, t);
            let mut local: Vec<Vec<T>> = (0..buckets)
                .map(|_| Vec::with_capacity(r.len() / buckets + 1))
                .collect();
            for item in &data[r] {
                let k = key(item);
                let b = splitters.partition_point(|s| *s <= k);
                local[b].push(*item);
            }
            local
        })
        .collect();
    drop(data);

    // Phase 3: gather each bucket (block order preserves stability) and sort.
    let sorted_buckets: Vec<Vec<T>> = (0..buckets)
        .into_par_iter()
        .map(|b| {
            let mut bucket: Vec<T> = Vec::with_capacity(parts.iter().map(|p| p[b].len()).sum());
            for part in &parts {
                bucket.extend_from_slice(&part[b]);
            }
            merge_sort_by(&mut bucket, |a, b| key(a) < key(b));
            bucket
        })
        .collect();

    let mut out = Vec::with_capacity(n);
    for bucket in sorted_buckets {
        out.extend_from_slice(&bucket);
    }
    debug_assert_eq!(out.len(), n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg(buckets: usize) -> SampleSortConfig {
        SampleSortConfig {
            buckets,
            oversample: 8,
            seq_threshold: 16,
        }
    }

    #[test]
    fn sorts_large_input() {
        let data: Vec<u64> = (0..100_000u64)
            .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15))
            .collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        let got = sample_sort_by_key(data, |&x| x, cfg(4));
        assert_eq!(got, expect);
    }

    #[test]
    fn stable_for_equal_keys() {
        // Key is value % 4; payload records original index.
        let data: Vec<(u64, usize)> = (0..50_000).map(|i| ((i as u64 * 7) % 4, i)).collect();
        let got = sample_sort_by_key(data, |&(k, _)| k, cfg(4));
        for w in got.windows(2) {
            assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }

    #[test]
    fn handles_skewed_and_constant_keys() {
        let data: Vec<u32> = vec![7; 40_000];
        let got = sample_sort_by_key(data, |&x| x, cfg(8));
        assert!(got.iter().all(|&x| x == 7));
        assert_eq!(got.len(), 40_000);

        let skew: Vec<u32> = (0..40_000)
            .map(|i| if i % 100 == 0 { i as u32 } else { 3 })
            .collect();
        let mut expect = skew.clone();
        expect.sort_unstable();
        assert_eq!(sample_sort_by_key(skew, |&x| x, cfg(8)), expect);
    }

    #[test]
    fn single_bucket_falls_back() {
        let data: Vec<u32> = (0..1000).rev().collect();
        let got = sample_sort_by_key(data, |&x| x, cfg(1));
        assert_eq!(got, (0..1000).collect::<Vec<u32>>());
    }

    proptest! {
        #[test]
        fn matches_std_sort(v in proptest::collection::vec(any::<u32>(), 0..5000),
                            buckets in 1usize..9) {
            let mut expect = v.clone();
            expect.sort_unstable();
            let got = sample_sort_by_key(v, |&x| x, cfg(buckets));
            prop_assert_eq!(got, expect);
        }
    }
}
