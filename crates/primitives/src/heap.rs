//! Indexed binary min-heap with `decrease-key`.
//!
//! Prim's algorithm (the sequential baseline and each concurrent tree of
//! MST-BC) needs a heap addressed by vertex id so relaxing an edge can lower
//! an existing entry's key in place. The position map uses an epoch counter,
//! so [`IndexedHeap::reset`] is O(1); MST-BC resets once per grown tree.

/// Binary min-heap over item ids `0..capacity` with mutable keys.
#[derive(Debug, Clone)]
pub struct IndexedHeap<K> {
    /// Heap array of (key, id), standard implicit binary tree.
    slots: Vec<(K, u32)>,
    /// pos[id] = (epoch, index in `slots`); stale epochs mean "absent".
    pos: Vec<(u32, u32)>,
    epoch: u32,
}

const ABSENT: u32 = u32::MAX;

impl<K: PartialOrd + Copy> IndexedHeap<K> {
    /// Heap for ids in `0..capacity`; holds no items initially.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity < u32::MAX as usize);
        IndexedHeap {
            slots: Vec::new(),
            pos: vec![(0, ABSENT); capacity],
            epoch: 1,
        }
    }

    /// Remove all items in O(1) (epoch bump; the slot vector is truncated).
    pub fn reset(&mut self) {
        self.slots.clear();
        self.epoch = self.epoch.checked_add(1).unwrap_or_else(|| {
            // Epoch wrapped: do the slow full clear once every 2^32 resets.
            self.pos.fill((0, ABSENT));
            1
        });
    }

    /// Number of items currently in the heap.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no items are queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Current key of `id`, if present.
    pub fn key_of(&self, id: u32) -> Option<K> {
        let (e, i) = self.pos[id as usize];
        (e == self.epoch && i != ABSENT).then(|| self.slots[i as usize].0)
    }

    /// True when `id` is queued.
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        let (e, i) = self.pos[id as usize];
        e == self.epoch && i != ABSENT
    }

    /// Insert `id` with `key`, or lower its key if already present with a
    /// larger one. Returns `true` if the heap changed. Keys are never
    /// increased (Prim relaxation only ever improves).
    pub fn insert_or_decrease(&mut self, id: u32, key: K) -> bool {
        match self.key_of(id) {
            None => {
                let idx = self.slots.len() as u32;
                self.slots.push((key, id));
                self.pos[id as usize] = (self.epoch, idx);
                self.sift_up(idx as usize);
                true
            }
            Some(old) if key < old => {
                let (_, idx) = self.pos[id as usize];
                self.slots[idx as usize].0 = key;
                self.sift_up(idx as usize);
                true
            }
            Some(_) => false,
        }
    }

    /// Remove and return the minimum (key, id).
    pub fn extract_min(&mut self) -> Option<(K, u32)> {
        if self.slots.is_empty() {
            return None;
        }
        let top = self.slots[0];
        self.pos[top.1 as usize].1 = ABSENT;
        let last = self.slots.pop().expect("non-empty");
        if !self.slots.is_empty() {
            self.slots[0] = last;
            self.pos[last.1 as usize] = (self.epoch, 0);
            self.sift_down(0);
        }
        Some(top)
    }

    /// Peek at the minimum without removing it.
    pub fn peek(&self) -> Option<(K, u32)> {
        self.slots.first().copied()
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.slots[i].0 < self.slots[parent].0 {
                self.swap_slots(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < self.slots.len() && self.slots[l].0 < self.slots[smallest].0 {
                smallest = l;
            }
            if r < self.slots.len() && self.slots[r].0 < self.slots[smallest].0 {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.swap_slots(i, smallest);
            i = smallest;
        }
    }

    fn swap_slots(&mut self, a: usize, b: usize) {
        self.slots.swap(a, b);
        self.pos[self.slots[a].1 as usize].1 = a as u32;
        self.pos[self.slots[b].1 as usize].1 = b as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn extracts_in_order() {
        let mut h = IndexedHeap::new(10);
        for (id, k) in [(3u32, 5.0f64), (1, 2.0), (7, 9.0), (0, 1.0)] {
            assert!(h.insert_or_decrease(id, k));
        }
        assert_eq!(h.extract_min(), Some((1.0, 0)));
        assert_eq!(h.extract_min(), Some((2.0, 1)));
        assert_eq!(h.extract_min(), Some((5.0, 3)));
        assert_eq!(h.extract_min(), Some((9.0, 7)));
        assert_eq!(h.extract_min(), None);
    }

    #[test]
    fn decrease_key_reorders() {
        let mut h = IndexedHeap::new(4);
        h.insert_or_decrease(0, 10.0f64);
        h.insert_or_decrease(1, 5.0);
        assert!(h.insert_or_decrease(0, 1.0), "decrease accepted");
        assert!(!h.insert_or_decrease(0, 7.0), "increase rejected");
        assert_eq!(h.extract_min(), Some((1.0, 0)));
        assert_eq!(h.key_of(1), Some(5.0));
    }

    #[test]
    fn reset_is_cheap_and_complete() {
        let mut h = IndexedHeap::new(5);
        for id in 0..5u32 {
            h.insert_or_decrease(id, f64::from(id));
        }
        h.reset();
        assert!(h.is_empty());
        assert!(!h.contains(2));
        assert_eq!(h.extract_min(), None);
        // Reusable after reset.
        h.insert_or_decrease(2, 3.5);
        assert_eq!(h.extract_min(), Some((3.5, 2)));
    }

    proptest! {
        /// Heap-sorting arbitrary (id, key) upserts matches a reference model.
        #[test]
        fn matches_reference_model(ops in proptest::collection::vec((0u32..64, 0u64..1000), 1..300)) {
            let mut h = IndexedHeap::new(64);
            let mut model: std::collections::HashMap<u32, u64> = Default::default();
            for (id, key) in ops {
                h.insert_or_decrease(id, key);
                let e = model.entry(id).or_insert(u64::MAX);
                *e = (*e).min(key);
            }
            let mut drained = Vec::new();
            while let Some((k, id)) = h.extract_min() {
                drained.push((k, id));
            }
            // Keys come out in non-decreasing order…
            prop_assert!(drained.windows(2).all(|w| w[0].0 <= w[1].0));
            // …and match the model exactly.
            let mut expect: Vec<(u64, u32)> = model.into_iter().map(|(id, k)| (k, id)).collect();
            expect.sort_unstable();
            let mut got = drained.clone();
            got.sort_unstable();
            prop_assert_eq!(got, expect);
        }
    }
}
