//! Work-stealing vertex partitions for MST-BC.
//!
//! The paper (§4): "When a processor completes its partition of n/p
//! vertices, an unfinished partition is randomly selected, and processing
//! begins from a decreasing pointer that marks the end of the unprocessed
//! list." Each partition therefore has an owner cursor advancing from the
//! front and a thief cursor retreating from the back.
//!
//! Both cursors live packed in a single `AtomicU64` (head in the high word,
//! exclusive tail in the low word) and every claim is one CAS, so the
//! structure is linearizable: each index is handed out exactly once and none
//! is lost even when owner and thief race over the final slot.

use std::sync::atomic::{AtomicU64, Ordering};

/// One partition of a global index range, with packed (head, tail) cursors.
#[derive(Debug)]
struct Partition {
    /// high 32 bits: next front index; low 32 bits: one past the last index.
    cursors: AtomicU64,
}

#[inline]
fn pack(head: u32, tail_excl: u32) -> u64 {
    (u64::from(head) << 32) | u64::from(tail_excl)
}

#[inline]
fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

impl Partition {
    fn new(lo: usize, hi: usize) -> Self {
        Partition {
            cursors: AtomicU64::new(pack(lo as u32, hi as u32)),
        }
    }

    /// Owner claim: take the next front index.
    fn take_front(&self) -> Option<usize> {
        let mut cur = self.cursors.load(Ordering::Acquire);
        loop {
            let (head, tail) = unpack(cur);
            if head >= tail {
                return None;
            }
            match self.cursors.compare_exchange_weak(
                cur,
                pack(head + 1, tail),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(head as usize),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Thief claim: take the next back index.
    fn take_back(&self) -> Option<usize> {
        let mut cur = self.cursors.load(Ordering::Acquire);
        loop {
            let (head, tail) = unpack(cur);
            if head >= tail {
                return None;
            }
            match self.cursors.compare_exchange_weak(
                cur,
                pack(head, tail - 1),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((tail - 1) as usize),
                Err(actual) => cur = actual,
            }
        }
    }

    fn looks_empty(&self) -> bool {
        let (head, tail) = unpack(self.cursors.load(Ordering::Acquire));
        head >= tail
    }
}

/// A `[0, n)` index space split into `p` contiguous partitions with
/// owner-front / thief-back claiming.
#[derive(Debug)]
pub struct StealingPartitions {
    parts: Vec<Partition>,
}

impl StealingPartitions {
    /// Split `0..n` into `p` near-equal contiguous partitions.
    pub fn new(n: usize, p: usize) -> Self {
        assert!(n <= u32::MAX as usize, "index space is u32-packed");
        let parts = (0..p.max(1))
            .map(|t| {
                let r = crate::block_range(n, p.max(1), t);
                Partition::new(r.start, r.end)
            })
            .collect();
        StealingPartitions { parts }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// Claim the next index for worker `t`: own partition from the front
    /// first, then steal from the back of others, scanning from a
    /// caller-provided start offset (pass something random per attempt to
    /// spread thieves out).
    pub fn claim(&self, t: usize, steal_start: usize) -> Option<usize> {
        if let Some(i) = self.parts[t].take_front() {
            return Some(i);
        }
        let p = self.parts.len();
        for off in 0..p {
            let victim = (steal_start + off) % p;
            if victim == t {
                continue;
            }
            if let Some(i) = self.parts[victim].take_back() {
                return Some(i);
            }
        }
        None
    }

    /// Claim from worker `t`'s own partition only (the no-work-stealing
    /// ablation of MST-BC).
    pub fn claim_local(&self, t: usize) -> Option<usize> {
        self.parts[t].take_front()
    }

    /// Steal from other partitions' tails only (never from `t`'s own),
    /// scanning victims from `steal_start`. Lets callers distinguish owned
    /// claims from steals for instrumentation.
    pub fn claim_steal_only(&self, t: usize, steal_start: usize) -> Option<usize> {
        let p = self.parts.len();
        for off in 0..p {
            let victim = (steal_start + off) % p;
            if victim == t {
                continue;
            }
            if let Some(i) = self.parts[victim].take_back() {
                return Some(i);
            }
        }
        None
    }

    /// True once every partition is exhausted. Exhaustion is permanent, so a
    /// `true` answer is stable.
    pub fn all_done(&self) -> bool {
        self.parts.iter().all(Partition::looks_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn single_worker_drains_everything_in_order() {
        let sp = StealingPartitions::new(10, 1);
        let mut seen = Vec::new();
        while let Some(i) = sp.claim(0, 0) {
            seen.push(i);
        }
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert!(sp.all_done());
    }

    #[test]
    fn thief_takes_from_the_back() {
        let sp = StealingPartitions::new(8, 2);
        // Worker 1's own partition is 4..8; drain it, then it must steal
        // 0..4 from the BACK (3 first).
        for expect in 4..8 {
            assert_eq!(sp.claim(1, 0), Some(expect));
        }
        assert_eq!(sp.claim(1, 0), Some(3));
        assert_eq!(sp.claim(1, 0), Some(2));
        // Owner still takes from its own front.
        assert_eq!(sp.claim(0, 1), Some(0));
        assert_eq!(sp.claim(0, 1), Some(1));
        assert_eq!(sp.claim(0, 1), None);
        assert!(sp.all_done());
    }

    #[test]
    fn claims_are_unique_and_complete_sequentially_interleaved() {
        let n = 1000;
        let p = 4;
        let sp = StealingPartitions::new(n, p);
        let mut seen = HashSet::new();
        let mut active = true;
        while active {
            active = false;
            for t in 0..p {
                if let Some(i) = sp.claim(t, t * 13 + 1) {
                    assert!(seen.insert(i), "index {i} claimed twice");
                    active = true;
                }
            }
        }
        assert_eq!(seen.len(), n);
    }

    #[test]
    fn concurrent_claims_are_exactly_once() {
        let n = 50_000;
        let p = 8;
        let sp = StealingPartitions::new(n, p);
        let claimed: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for t in 0..p {
                let sp = &sp;
                let claimed = &claimed;
                s.spawn(move || {
                    let mut local = Vec::new();
                    let mut tries = t;
                    while let Some(i) = sp.claim(t, tries) {
                        local.push(i);
                        tries = tries.wrapping_mul(6364136223846793005).wrapping_add(1);
                    }
                    claimed.lock().unwrap().extend(local);
                });
            }
        });
        let mut all = claimed.into_inner().unwrap();
        all.sort_unstable();
        assert_eq!(all.len(), n, "every index claimed");
        all.dedup();
        assert_eq!(all.len(), n, "no index claimed twice");
        assert!(sp.all_done());
    }

    #[test]
    fn empty_and_tiny_ranges() {
        let sp = StealingPartitions::new(0, 4);
        for t in 0..4 {
            assert_eq!(sp.claim(t, 0), None);
        }
        assert!(sp.all_done());

        let sp = StealingPartitions::new(2, 4);
        let got: Vec<_> = (0..4).filter_map(|t| sp.claim(t, 0)).collect();
        assert_eq!(got.len(), 2);
    }
}
