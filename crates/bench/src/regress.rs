//! Statistical benchmark-regression harness: compare two `msf bench --json`
//! reports cell-by-cell and decide, with an explicit noise model, whether
//! the candidate regressed.
//!
//! A *cell* is one `(graph, algorithm, p)` triple. Wall-clock cells carry
//! the **min over `--repeats` runs** (min-of-k is the standard robust
//! estimator for "how fast can this go" — the minimum is far less noisy
//! than the mean under scheduler interference). Two guards keep CI honest:
//!
//! * a relative **threshold** (default 5%): the candidate regresses only if
//!   its min wall exceeds the baseline's by more than the threshold;
//! * a **wall floor** (default 1 ms): cells where both sides are faster
//!   than the floor are timer noise and never flagged.
//!
//! Independently of wall time, the deterministic **modeled cost** must match
//! *exactly* for cells marked `modeled_deterministic` — any drift means the
//! algorithm did different work, which is a semantic change, not noise.
//! (MST-BC's modeled cost depends on racy tie-breaks and is exempt.)

use std::collections::BTreeMap;

use crate::json::Json;

/// Newest `msf bench --json` schema this reader understands. v3 added the
/// per-run representation width (`"width"`) and kernel mode (`"fused"`).
pub const SCHEMA_VERSION: u64 = 3;

/// One `(graph, algorithm, p)` measurement extracted from a report.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Graph name (e.g. `random n=10000 m=6n`).
    pub graph: String,
    /// Algorithm name (e.g. `Bor-ALM`).
    pub algorithm: String,
    /// Processor count of the run.
    pub p: u64,
    /// Min-of-k wall seconds.
    pub wall_seconds: f64,
    /// Deterministic modeled parallel cost.
    pub modeled_cost: u64,
    /// Whether `modeled_cost` is reproducible run-to-run.
    pub modeled_deterministic: bool,
    /// Forest size — a correctness canary riding along.
    pub forest_edges: u64,
    /// Vertex representation width of the run (`"u32"` or `"u64"`; v2
    /// reports predate the field and default to `"u32"`).
    pub width: String,
    /// Whether the run used the fused contraction kernels. Pre-v3 reports
    /// ran the multi-pass code and default to `false`. A fused-mode
    /// mismatch between baseline and candidate is informational, never an
    /// error: comparing the modes is exactly what the fused-vs-unfused
    /// self-compare CI job does.
    pub fused: bool,
}

impl Cell {
    /// The match key.
    pub fn key(&self) -> (String, String, u64) {
        (self.graph.clone(), self.algorithm.clone(), self.p)
    }
}

/// Tunables for [`compare`].
#[derive(Debug, Clone, Copy)]
pub struct RegressConfig {
    /// Allowed wall-time growth in percent before a cell regresses.
    pub threshold_pct: f64,
    /// Cells where *both* walls sit under this floor (seconds) are treated
    /// as timer noise and never flagged.
    pub min_wall_seconds: f64,
}

impl Default for RegressConfig {
    fn default() -> Self {
        RegressConfig {
            threshold_pct: 5.0,
            min_wall_seconds: 1e-3,
        }
    }
}

/// Per-cell comparison outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within threshold (or under the noise floor).
    Ok,
    /// Faster by more than the threshold.
    Improved,
    /// Slower by more than the threshold.
    WallRegression,
    /// Deterministic modeled cost drifted — the algorithm changed.
    ModelChanged,
    /// Forest size differs — a correctness failure, not a perf delta.
    ResultChanged,
}

impl Verdict {
    /// True for verdicts that must fail the CI gate.
    pub fn is_regression(self) -> bool {
        matches!(
            self,
            Verdict::WallRegression | Verdict::ModelChanged | Verdict::ResultChanged
        )
    }

    fn label(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Improved => "improved",
            Verdict::WallRegression => "**WALL REGRESSION**",
            Verdict::ModelChanged => "**MODELED-COST DRIFT**",
            Verdict::ResultChanged => "**RESULT CHANGED**",
        }
    }
}

/// One matched cell with both sides and the verdict.
#[derive(Debug, Clone)]
pub struct CellDelta {
    /// The baseline side.
    pub baseline: Cell,
    /// The candidate side.
    pub candidate: Cell,
    /// Candidate wall as a percent delta over baseline (`+10.0` = 10% slower).
    pub wall_delta_pct: f64,
    /// The outcome.
    pub verdict: Verdict,
}

/// The full comparison result.
#[derive(Debug, Clone, Default)]
pub struct RegressReport {
    /// Matched cells in report order.
    pub deltas: Vec<CellDelta>,
    /// Keys present in the baseline but absent from the candidate (coverage
    /// loss — counts as a regression).
    pub missing_in_candidate: Vec<(String, String, u64)>,
    /// Keys only the candidate has (new coverage — informational).
    pub new_in_candidate: Vec<(String, String, u64)>,
}

impl RegressReport {
    /// Number of gate-failing findings (regressed cells + lost coverage).
    pub fn regressions(&self) -> usize {
        self.deltas
            .iter()
            .filter(|d| d.verdict.is_regression())
            .count()
            + self.missing_in_candidate.len()
    }

    /// Render the comparison as a markdown table plus a one-line verdict.
    pub fn markdown(&self, cfg: &RegressConfig) -> String {
        let mut out = String::new();
        out.push_str("## Benchmark regression report\n\n");
        out.push_str(&format!(
            "Threshold: wall +{:.1}% · noise floor: {:.1} ms · modeled cost: exact match \
             (deterministic cells)\n\n",
            cfg.threshold_pct,
            cfg.min_wall_seconds * 1e3
        ));
        out.push_str(
            "| graph | algorithm | p | base wall (s) | cand wall (s) | Δ wall | \
             base cost | cand cost | status |\n",
        );
        out.push_str("|---|---|---:|---:|---:|---:|---:|---:|---|\n");
        for d in &self.deltas {
            out.push_str(&format!(
                "| {} | {} | {} | {:.6} | {:.6} | {:+.1}% | {} | {} | {} |\n",
                d.baseline.graph,
                d.baseline.algorithm,
                d.baseline.p,
                d.baseline.wall_seconds,
                d.candidate.wall_seconds,
                d.wall_delta_pct,
                d.baseline.modeled_cost,
                d.candidate.modeled_cost,
                d.verdict.label()
            ));
        }
        for (g, a, p) in &self.missing_in_candidate {
            out.push_str(&format!(
                "| {g} | {a} | {p} | — | — | — | — | — | **MISSING IN CANDIDATE** |\n"
            ));
        }
        for (g, a, p) in &self.new_in_candidate {
            out.push_str(&format!(
                "| {g} | {a} | {p} | — | — | — | — | — | new cell |\n"
            ));
        }
        let n = self.regressions();
        out.push_str(&format!(
            "\n{} matched cells, {} regression{}{}\n",
            self.deltas.len(),
            n,
            if n == 1 { "" } else { "s" },
            if n == 0 {
                " — gate passes"
            } else {
                " — GATE FAILS"
            },
        ));
        out
    }
}

/// Pull the cells out of a parsed report, tolerating schema v1 (no
/// `schema_version` field, no metrics), v2, and v3 documents.
pub fn extract_cells(doc: &Json) -> Result<Vec<Cell>, String> {
    let version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .unwrap_or(1);
    if version > SCHEMA_VERSION {
        return Err(format!(
            "report schema_version {version} is newer than this binary understands ({SCHEMA_VERSION})"
        ));
    }
    if doc.get("suite").and_then(Json::as_str) != Some("msf-bench") {
        return Err("not an msf-bench report (missing \"suite\": \"msf-bench\")".into());
    }
    let mut cells = Vec::new();
    for graph in doc.get("graphs").map(Json::items).unwrap_or_default() {
        let gname = graph
            .get("name")
            .and_then(Json::as_str)
            .ok_or("graph entry without a name")?;
        for algo in graph.get("algorithms").map(Json::items).unwrap_or_default() {
            let aname = algo
                .get("algorithm")
                .and_then(Json::as_str)
                .ok_or("algorithm entry without a name")?;
            for run in algo.get("runs").map(Json::items).unwrap_or_default() {
                let need = |key: &str| -> Result<f64, String> {
                    run.get(key)
                        .and_then(Json::as_f64)
                        .ok_or(format!("run of {aname} on {gname} lacks \"{key}\""))
                };
                cells.push(Cell {
                    graph: gname.to_string(),
                    algorithm: aname.to_string(),
                    p: need("p")? as u64,
                    wall_seconds: need("wall_seconds")?,
                    modeled_cost: need("modeled_cost")? as u64,
                    // v1 reports predate the flag; MST-BC was already
                    // nondeterministic there.
                    modeled_deterministic: run
                        .get("modeled_deterministic")
                        .and_then(Json::as_bool)
                        .unwrap_or(aname != "MST-BC"),
                    forest_edges: need("forest_edges")? as u64,
                    width: run
                        .get("width")
                        .and_then(Json::as_str)
                        .unwrap_or("u32")
                        .to_string(),
                    fused: run.get("fused").and_then(Json::as_bool).unwrap_or(false),
                });
            }
        }
    }
    if cells.is_empty() {
        return Err("report contains no measurement cells".into());
    }
    Ok(cells)
}

/// Check that two reports measured the same experiment (same scale, seed,
/// and size) — comparing different experiments is a usage error.
pub fn check_comparable(baseline: &Json, candidate: &Json) -> Result<(), String> {
    for key in ["scale", "n", "seed"] {
        let b = baseline.get(key);
        let c = candidate.get(key);
        if b != c {
            return Err(format!(
                "reports are not comparable: \"{key}\" differs ({b:?} vs {c:?})"
            ));
        }
    }
    Ok(())
}

/// Compare two parsed reports cell-by-cell.
pub fn compare(
    baseline: &Json,
    candidate: &Json,
    cfg: &RegressConfig,
) -> Result<RegressReport, String> {
    check_comparable(baseline, candidate)?;
    let base_cells = extract_cells(baseline)?;
    let cand_cells = extract_cells(candidate)?;
    let mut cand_by_key: BTreeMap<(String, String, u64), Cell> =
        cand_cells.iter().map(|c| (c.key(), c.clone())).collect();
    let mut report = RegressReport::default();
    for b in base_cells {
        let Some(c) = cand_by_key.remove(&b.key()) else {
            report.missing_in_candidate.push(b.key());
            continue;
        };
        let wall_delta_pct = if b.wall_seconds > 0.0 {
            (c.wall_seconds / b.wall_seconds - 1.0) * 100.0
        } else {
            0.0
        };
        let under_floor =
            b.wall_seconds < cfg.min_wall_seconds && c.wall_seconds < cfg.min_wall_seconds;
        let verdict = if b.forest_edges != c.forest_edges {
            Verdict::ResultChanged
        } else if b.modeled_deterministic
            && c.modeled_deterministic
            && b.modeled_cost != c.modeled_cost
        {
            Verdict::ModelChanged
        } else if !under_floor && wall_delta_pct > cfg.threshold_pct {
            Verdict::WallRegression
        } else if !under_floor && wall_delta_pct < -cfg.threshold_pct {
            Verdict::Improved
        } else {
            Verdict::Ok
        };
        report.deltas.push(CellDelta {
            baseline: b,
            candidate: c,
            wall_delta_pct,
            verdict,
        });
    }
    report.new_in_candidate = cand_by_key.into_keys().collect();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal v2-shaped report with one graph and the given runs.
    fn doc(cells: &[(&str, &str, u64, f64, u64, bool)]) -> Json {
        // Group by (graph, algorithm) to build valid nesting.
        let mut graphs: BTreeMap<&str, BTreeMap<&str, Vec<String>>> = BTreeMap::new();
        for &(g, a, p, wall, cost, det) in cells {
            graphs
                .entry(g)
                .or_default()
                .entry(a)
                .or_default()
                .push(format!(
                    "{{\"p\": {p}, \"wall_seconds\": {wall}, \"modeled_cost\": {cost}, \
                 \"modeled_deterministic\": {det}, \"forest_edges\": 99}}"
                ));
        }
        let graphs_json: Vec<String> = graphs
            .into_iter()
            .map(|(g, algos)| {
                let algos_json: Vec<String> = algos
                    .into_iter()
                    .map(|(a, runs)| {
                        format!(
                            "{{\"algorithm\": \"{a}\", \"runs\": [{}]}}",
                            runs.join(", ")
                        )
                    })
                    .collect();
                format!(
                    "{{\"name\": \"{g}\", \"algorithms\": [{}]}}",
                    algos_json.join(", ")
                )
            })
            .collect();
        let text = format!(
            "{{\"suite\": \"msf-bench\", \"schema_version\": 2, \"scale\": \"smoke\", \
             \"n\": 10000, \"seed\": 1, \"graphs\": [{}]}}",
            graphs_json.join(", ")
        );
        Json::parse(&text).expect("test doc is valid JSON")
    }

    #[test]
    fn self_comparison_is_clean() {
        let d = doc(&[
            ("g1", "Bor-AL", 1, 0.5, 1000, true),
            ("g1", "Bor-AL", 4, 0.2, 400, true),
            ("g1", "MST-BC", 1, 0.6, 1234, false),
        ]);
        let r = compare(&d, &d, &RegressConfig::default()).unwrap();
        assert_eq!(r.deltas.len(), 3);
        assert_eq!(r.regressions(), 0);
        assert!(r
            .markdown(&RegressConfig::default())
            .contains("gate passes"));
    }

    #[test]
    fn slowdown_beyond_threshold_regresses() {
        let base = doc(&[("g1", "Bor-AL", 1, 0.5, 1000, true)]);
        let cand = doc(&[("g1", "Bor-AL", 1, 0.6, 1000, true)]);
        let r = compare(&base, &cand, &RegressConfig::default()).unwrap();
        assert_eq!(r.regressions(), 1);
        assert_eq!(r.deltas[0].verdict, Verdict::WallRegression);
        assert!((r.deltas[0].wall_delta_pct - 20.0).abs() < 1e-9);
        assert!(r.markdown(&RegressConfig::default()).contains("GATE FAILS"));
        // The same delta passes a 25% threshold.
        let loose = RegressConfig {
            threshold_pct: 25.0,
            ..RegressConfig::default()
        };
        assert_eq!(compare(&base, &cand, &loose).unwrap().regressions(), 0);
    }

    #[test]
    fn sub_floor_noise_is_ignored_and_speedups_noted() {
        let base = doc(&[
            ("g1", "Bor-AL", 1, 0.0002, 10, true),
            ("g1", "Bor-FAL", 1, 1.0, 999, true),
        ]);
        let cand = doc(&[
            ("g1", "Bor-AL", 1, 0.0009, 10, true), // 4.5x but under 1 ms floor
            ("g1", "Bor-FAL", 1, 0.5, 999, true),  // 2x faster
        ]);
        let r = compare(&base, &cand, &RegressConfig::default()).unwrap();
        assert_eq!(r.regressions(), 0);
        assert_eq!(r.deltas[0].verdict, Verdict::Ok);
        assert_eq!(r.deltas[1].verdict, Verdict::Improved);
    }

    #[test]
    fn deterministic_model_drift_fails_but_mstbc_is_exempt() {
        let base = doc(&[
            ("g1", "Bor-AL", 1, 0.5, 1000, true),
            ("g1", "MST-BC", 1, 0.5, 1000, false),
        ]);
        let cand = doc(&[
            ("g1", "Bor-AL", 1, 0.5, 1001, true),
            ("g1", "MST-BC", 1, 0.5, 2222, false),
        ]);
        let r = compare(&base, &cand, &RegressConfig::default()).unwrap();
        assert_eq!(r.regressions(), 1);
        assert_eq!(r.deltas[0].verdict, Verdict::ModelChanged);
        assert_eq!(r.deltas[1].verdict, Verdict::Ok);
    }

    #[test]
    fn missing_cells_regress_and_new_cells_are_informational() {
        let base = doc(&[
            ("g1", "Bor-AL", 1, 0.5, 1000, true),
            ("g1", "Bor-AL", 4, 0.2, 400, true),
        ]);
        let cand = doc(&[
            ("g1", "Bor-AL", 1, 0.5, 1000, true),
            ("g1", "Bor-ALM", 1, 0.4, 900, true),
        ]);
        let r = compare(&base, &cand, &RegressConfig::default()).unwrap();
        assert_eq!(r.regressions(), 1);
        assert_eq!(
            r.missing_in_candidate,
            vec![("g1".into(), "Bor-AL".into(), 4)]
        );
        assert_eq!(r.new_in_candidate.len(), 1);
    }

    #[test]
    fn incomparable_experiments_are_refused() {
        let base = doc(&[("g1", "Bor-AL", 1, 0.5, 1000, true)]);
        let mut text = String::new();
        // Same doc but a different seed.
        if let Json::Object(_) = &base {
            text = "{\"suite\": \"msf-bench\", \"schema_version\": 2, \"scale\": \"smoke\", \
                    \"n\": 10000, \"seed\": 2, \"graphs\": []}"
                .to_string();
        }
        let cand = Json::parse(&text).unwrap();
        assert!(compare(&base, &cand, &RegressConfig::default())
            .unwrap_err()
            .contains("seed"));
    }

    #[test]
    fn v3_width_and_fused_extract_and_mode_mismatch_is_not_an_error() {
        let v3 = |fused: bool| {
            Json::parse(&format!(
                "{{\"suite\": \"msf-bench\", \"schema_version\": 3, \"scale\": \"smoke\", \
                 \"n\": 10000, \"seed\": 1, \"graphs\": [{{\"name\": \"g\", \"algorithms\": \
                 [{{\"algorithm\": \"Bor-WriteMin\", \"runs\": [{{\"p\": 2, \
                 \"wall_seconds\": 0.1, \"modeled_cost\": 5, \"modeled_deterministic\": true, \
                 \"forest_edges\": 3, \"width\": \"u32\", \"fused\": {fused}}}]}}]}}]}}"
            ))
            .unwrap()
        };
        let cells = extract_cells(&v3(true)).unwrap();
        assert_eq!(cells[0].width, "u32");
        assert!(cells[0].fused);
        // Baseline unfused vs candidate fused: same work model, same
        // forest — compares clean, the mode is metadata, not a key.
        let r = compare(&v3(false), &v3(true), &RegressConfig::default()).unwrap();
        assert_eq!(r.regressions(), 0);
        assert_eq!(r.deltas.len(), 1);
    }

    #[test]
    fn newer_schema_is_refused() {
        let v99 = Json::parse(
            "{\"suite\": \"msf-bench\", \"schema_version\": 99, \"scale\": \"smoke\", \
             \"n\": 1, \"seed\": 1, \"graphs\": []}",
        )
        .unwrap();
        assert!(extract_cells(&v99).unwrap_err().contains("newer"));
    }

    #[test]
    fn v1_reports_without_flags_still_extract() {
        let v1 = Json::parse(
            "{\"suite\": \"msf-bench\", \"scale\": \"smoke\", \"n\": 10000, \"seed\": 1, \
             \"graphs\": [{\"name\": \"g\", \"algorithms\": [{\"algorithm\": \"MST-BC\", \
             \"runs\": [{\"p\": 2, \"wall_seconds\": 0.1, \"modeled_cost\": 5, \
             \"forest_edges\": 3}]}]}]}",
        )
        .unwrap();
        let cells = extract_cells(&v1).unwrap();
        assert_eq!(cells.len(), 1);
        assert!(!cells[0].modeled_deterministic, "MST-BC inferred nondet");
    }
}
