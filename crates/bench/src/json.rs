//! A minimal JSON value parser for the regression harness.
//!
//! The offline image has no serde, and `msf regress` must read back the
//! documents `msf bench --json` writes. This is a strict recursive-descent
//! parser for that job: full JSON syntax, objects as ordered key/value
//! pairs, numbers as `f64`. It is not a streaming parser and not tuned for
//! huge inputs — bench reports are a few hundred KB at most.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always held as `f64`; bench integers are ≤ 2^53).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. Keys keep document order; duplicate keys keep the last.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a complete document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Member lookup on an object (`None` for other kinds or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The array items, or an empty slice for non-arrays.
    pub fn items(&self) -> &[Json] {
        match self {
            Json::Array(v) => v,
            _ => &[],
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value as u64 (truncating), if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|n| n as u64)
    }

    /// Boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parse failure with a byte offset into the document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our own
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-3.5e2").unwrap(), Json::Number(-350.0));
        assert_eq!(
            Json::parse("\"a\\nb\\u0041\"").unwrap(),
            Json::String("a\nbA".into())
        );
    }

    #[test]
    fn parses_nested_structure() {
        let doc = r#"{"a": [1, {"b": "x"}, []], "c": {"d": false}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().items().len(), 3);
        assert_eq!(
            v.get("a").unwrap().items()[1].get("b").unwrap().as_str(),
            Some("x")
        );
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"\\q\"", "{'a':1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn roundtrips_a_bench_shaped_doc() {
        let doc = r#"{
            "schema_version": 2,
            "graphs": [{"name": "random n=10", "algorithms": [
                {"algorithm": "Bor-AL", "runs": [
                    {"p": 1, "wall_seconds": 0.0123, "modeled_cost": 456}
                ]}
            ]}]
        }"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("schema_version").unwrap().as_u64(), Some(2));
        let run = &v.get("graphs").unwrap().items()[0]
            .get("algorithms")
            .unwrap()
            .items()[0]
            .get("runs")
            .unwrap()
            .items()[0];
        assert_eq!(run.get("modeled_cost").unwrap().as_u64(), Some(456));
        assert_eq!(run.get("wall_seconds").unwrap().as_f64(), Some(0.0123));
    }

    #[test]
    fn unicode_passthrough() {
        let v = Json::parse("\"héllo — ∑\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo — ∑"));
    }
}
