//! `repro` — regenerate every table and figure of Bader & Cong's evaluation.
//!
//! ```sh
//! repro table1 [--scale paper|default|smoke]
//! repro fig2 | fig3 | fig4 | fig5 | fig6
//! repro all
//! ```
//!
//! Output is plain text shaped like the paper's tables; EXPERIMENTS.md
//! captures a run of `repro all` and compares it row-by-row with the paper.

use msf_bench::{
    fig3_inputs, fig4_inputs, fig5_inputs, fig6_inputs, print_row, run, sweep, Measurement, Scale,
    PROC_SWEEP,
};
use msf_core::{minimum_spanning_forest, verify, Algorithm, MsfConfig};
use msf_graph::generators::{random_graph, GeneratorConfig};

const SEED: u64 = 2026;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Default;
    let mut what: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| usage());
            }
            w => what.push(w),
        }
        i += 1;
    }
    if what.is_empty() {
        usage();
    }
    for w in what {
        match w {
            "table1" => table1(scale),
            "fig2" => fig2(scale),
            "fig3" => {
                fig3(scale);
                fig3_weights(scale);
            }
            "fig4" => figure_sweep("Figure 4 — random graphs", fig4_inputs(scale, SEED)),
            "fig5" => figure_sweep("Figure 5 — meshes & geometric", fig5_inputs(scale, SEED)),
            "fig6" => figure_sweep("Figure 6 — structured graphs", fig6_inputs(scale, SEED)),
            "ext" => ext_filter(scale),
            "mstbc" => mstbc_behavior(scale),
            "all" => {
                table1(scale);
                fig2(scale);
                fig3(scale);
                fig3_weights(scale);
                figure_sweep("Figure 4 — random graphs", fig4_inputs(scale, SEED));
                figure_sweep("Figure 5 — meshes & geometric", fig5_inputs(scale, SEED));
                figure_sweep("Figure 6 — structured graphs", fig6_inputs(scale, SEED));
                ext_filter(scale);
                mstbc_behavior(scale);
            }
            _ => usage(),
        }
    }
}

fn usage() -> ! {
    eprintln!("usage: repro [--scale paper|default|smoke] <table1|fig2|fig3|fig4|fig5|fig6|all>…");
    std::process::exit(2);
}

/// Table 1: rate of decrease of the edge list across Bor-EL iterations for
/// two random graphs (paper: G1 = 1M vertices / m/n = 6, G2 = 10K / m/n = 3).
fn table1(scale: Scale) {
    let n1 = scale.n();
    let n2 = (scale.n() / 100).max(100);
    for (tag, n, d) in [("G1", n1, 6usize), ("G2", n2, 3usize)] {
        let g = random_graph(&GeneratorConfig::with_seed(SEED), n, d * n);
        let m = run(&g, Algorithm::BorEl, 8);
        println!("\n== Table 1 ({tag}): random n={n}, m={} ==", d * n);
        let widths = [9usize, 12, 12, 8, 8];
        print_row(
            &["iteration", "2m", "decrease", "% dec.", "m/n"].map(String::from),
            &widths,
        );
        for row in m.result.stats.edge_decay_table() {
            print_row(
                &[
                    row.iteration.to_string(),
                    row.directed_edges.to_string(),
                    row.decrease.map_or("N/A".into(), |d| d.to_string()),
                    row.percent_decrease
                        .map_or("N/A".into(), |p| format!("{p:.1}%")),
                    format!("{:.1}", row.density),
                ],
                &widths,
            );
        }
    }
}

/// Fig. 2: per-step running-time breakdown of the four Borůvka variants on
/// random graphs with m = 4n, 6n, 10n.
fn fig2(scale: Scale) {
    let n = scale.n();
    println!("\n== Figure 2 — step breakdown (seconds, p=8 logical) ==");
    let widths = [16usize, 9, 10, 10, 10, 10];
    print_row(
        &["input", "algo", "find-min", "connect", "compact", "total"].map(String::from),
        &widths,
    );
    for d in [4usize, 6, 10] {
        let g = random_graph(&GeneratorConfig::with_seed(SEED), n, d * n);
        for algo in [
            Algorithm::BorEl,
            Algorithm::BorAl,
            Algorithm::BorAlm,
            Algorithm::BorFal,
        ] {
            let m = run(&g, algo, 8);
            let (fm, cc, cg) = m.result.stats.step_totals();
            print_row(
                &[
                    format!("random m={d}n"),
                    algo.name().to_string(),
                    format!("{:.3}", fm.seconds),
                    format!("{:.3}", cc.seconds),
                    format!("{:.3}", cg.seconds),
                    format!("{:.3}", m.wall_seconds),
                ],
                &widths,
            );
        }
    }
}

/// Fig. 3: performance ranking of the three sequential algorithms per class.
fn fig3(scale: Scale) {
    println!("\n== Figure 3 — sequential algorithm ranking ==");
    let widths = [18usize, 10, 10, 10, 28];
    print_row(
        &["input", "Prim", "Kruskal", "Boruvka", "ranking"].map(String::from),
        &widths,
    );
    for (name, g) in fig3_inputs(scale, SEED) {
        let cfg = MsfConfig::default();
        let mut times: Vec<(Algorithm, f64)> =
            [Algorithm::Prim, Algorithm::Kruskal, Algorithm::Boruvka]
                .into_iter()
                .map(|a| (a, minimum_spanning_forest(&g, a, &cfg).stats.total_seconds))
                .collect();
        let row_times: Vec<String> = times.iter().map(|&(_, t)| format!("{t:.3}")).collect();
        times.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
        let ranking = times
            .iter()
            .map(|&(a, _)| a.name())
            .collect::<Vec<_>>()
            .join(" < ");
        print_row(
            &[
                name,
                row_times[0].clone(),
                row_times[1].clone(),
                row_times[2].clone(),
                ranking,
            ],
            &widths,
        );
    }
}

/// Fig. 3, second axis: the same topology under different weight
/// assignments — "Different assignment of edge weights is also important"
/// for the sequential ranking (§5.2).
fn fig3_weights(scale: Scale) {
    use msf_graph::generators::{assign_weights, WeightScheme};
    let n = scale.n();
    println!("\n== Figure 3 (weight-assignment axis) — random m=6n ==");
    let widths = [14usize, 10, 10, 10, 28];
    print_row(
        &["weights", "Prim", "Kruskal", "Boruvka", "ranking"].map(String::from),
        &widths,
    );
    let base = random_graph(&GeneratorConfig::with_seed(SEED), n, 6 * n);
    for scheme in [
        WeightScheme::Uniform,
        WeightScheme::SmallIntegers { range: 8 },
        WeightScheme::Exponential,
        WeightScheme::Bimodal,
    ] {
        let g = assign_weights(&base, scheme, SEED);
        let cfg = MsfConfig::default();
        let mut times: Vec<(Algorithm, f64)> =
            [Algorithm::Prim, Algorithm::Kruskal, Algorithm::Boruvka]
                .into_iter()
                .map(|a| (a, minimum_spanning_forest(&g, a, &cfg).stats.total_seconds))
                .collect();
        let row_times: Vec<String> = times.iter().map(|&(_, t)| format!("{t:.3}")).collect();
        times.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
        let ranking = times
            .iter()
            .map(|&(a, _)| a.name())
            .collect::<Vec<_>>()
            .join(" < ");
        print_row(
            &[
                scheme.name().to_string(),
                row_times[0].clone(),
                row_times[1].clone(),
                row_times[2].clone(),
                ranking,
            ],
            &widths,
        );
    }
}

/// Figs. 4–6: every parallel algorithm vs p, with the best-sequential line.
fn figure_sweep(title: &str, inputs: Vec<(String, msf_graph::EdgeList)>) {
    println!("\n== {title} ==");
    for (name, g) in inputs {
        let (best_algo, best) = msf_core::best_sequential(&g);
        println!(
            "\n-- {name}: best sequential = {best_algo} at {:.3}s --",
            best.stats.total_seconds
        );
        let mut widths = vec![9usize];
        widths.extend(std::iter::repeat_n(12, PROC_SWEEP.len()));
        widths.push(9);
        let mut header = vec!["algo".to_string()];
        header.extend(PROC_SWEEP.iter().map(|p| format!("est p={p} [s]")));
        header.push("speedup".into());
        print_row(&header, &widths);
        for algo in Algorithm::PARALLEL {
            let series = sweep(&g, algo);
            verify_one(&g, &series[0].0);
            let mut cells = vec![algo.name().to_string()];
            cells.extend(series.iter().map(|(_, est)| format!("{est:.3}")));
            let best_est = series
                .iter()
                .map(|&(_, est)| est)
                .fold(f64::INFINITY, f64::min);
            cells.push(format!("{:.2}x", best.stats.total_seconds / best_est));
            print_row(&cells, &widths);
        }
    }
}

/// Extension experiment (§3 discussion): sampling + cycle-property edge
/// filtering in front of Bor-FAL vs plain Bor-FAL, on random graphs of
/// rising density — where Table 1 shows most edges are not in the MSF and
/// shrink only slowly under plain Borůvka.
fn ext_filter(scale: Scale) {
    let n = scale.n();
    println!("\n== Extension — cycle-property edge filtering (paper §3) ==");
    let widths = [14usize, 16, 12, 12, 9];
    print_row(
        &["input", "algo", "wall [s]", "modeled", "vs FAL"].map(String::from),
        &widths,
    );
    let cfg8 = MsfConfig::with_threads(8);
    for d in [4usize, 10, 20] {
        let g = random_graph(&GeneratorConfig::with_seed(SEED), n, d * n);
        let fal = run(&g, Algorithm::BorFal, 8);
        verify_one(&g, &fal);
        let fal_filt = run(&g, Algorithm::BorFalFilter, 8);
        verify_one(&g, &fal_filt);
        let al = run(&g, Algorithm::BorAl, 8);
        let al_filt = msf_core::par::filter::msf_with_inner(&g, &cfg8, Algorithm::BorAl);
        assert_eq!(fal.result.edges, fal_filt.result.edges);
        assert_eq!(fal.result.edges, al_filt.edges);
        let rows: [(&str, f64, u64); 4] = [
            ("Bor-FAL", fal.wall_seconds, fal.modeled_cost),
            ("filter→FAL", fal_filt.wall_seconds, fal_filt.modeled_cost),
            ("Bor-AL", al.wall_seconds, al.modeled_cost),
            (
                "filter→AL",
                al_filt.stats.total_seconds,
                al_filt.stats.modeled_cost,
            ),
        ];
        for (name, wall, modeled) in rows {
            print_row(
                &[
                    format!("random m={d}n"),
                    name.to_string(),
                    format!("{wall:.3}"),
                    modeled.to_string(),
                    format!("{:.2}x", fal.modeled_cost as f64 / modeled as f64),
                ],
                &widths,
            );
        }
    }
}

/// MST-BC behavioral counters vs p — the §4 narrative made visible: how
/// many Prim trees grow, how much of the graph they cover before the
/// Borůvka fallback takes over, and how often collisions/maturity/steals
/// fire as workers are added.
fn mstbc_behavior(scale: Scale) {
    let n = scale.n();
    println!("\n== MST-BC behavior vs p (random n={n}, m=6n) ==");
    let widths = [4usize, 8, 10, 12, 12, 10, 8];
    let side = (n as f64).sqrt().round() as usize;
    let inputs = [
        (
            "random m=6n".to_string(),
            random_graph(&GeneratorConfig::with_seed(SEED), n, 6 * n),
        ),
        (
            format!("mesh {side}x{side}"),
            msf_graph::generators::mesh2d(&GeneratorConfig::with_seed(SEED), side, side),
        ),
    ];
    for (name, g) in inputs {
        println!("-- {name} --");
        print_row(
            &[
                "p",
                "trees",
                "visited",
                "collisions",
                "matured",
                "steals",
                "rounds",
            ]
            .map(String::from),
            &widths,
        );
        for p in PROC_SWEEP {
            let m = run(&g, Algorithm::MstBc, p);
            verify_one(&g, &m);
            let st = m.result.stats.mstbc.expect("counters populated");
            print_row(
                &[
                    p.to_string(),
                    st.trees.to_string(),
                    st.visited.to_string(),
                    st.collisions.to_string(),
                    st.matured.to_string(),
                    st.steals.to_string(),
                    m.result.stats.iterations.len().to_string(),
                ],
                &widths,
            );
        }
    }
}

fn verify_one(g: &msf_graph::EdgeList, m: &Measurement) {
    verify::verify_msf(g, &m.result)
        .unwrap_or_else(|e| panic!("{} produced a wrong forest: {e}", m.algorithm));
}
