//! `msf` — command-line minimum spanning forest solver.
//!
//! ```sh
//! msf compute <graph.gr|graph.msfb> [--algo bor-fal] [--threads 8] [--verify] [--out forest.txt] [--trace t.json]
//! msf certify <graph.gr|graph.msfb> [--algo bor-fal] [--threads 8]
//! msf trace <graph.gr|graph.msfb> [--algo bor-fal] [--threads 8] [--out trace.json] [--strict]
//! msf fuzz [--cases 500] [--seed 2026] [--corpus DIR] [--max-n 96] [--inject-failure]
//! msf generate <kind> [params…] --out graph.gr [--weights uniform|small-int|exponential|bimodal]
//! msf convert <input> <output> [--to bin|dimacs]
//! msf info <graph.gr|graph.msfb>
//! msf bench [--scale smoke|default|paper|large] [--seed 2026] [--repeats K] [--certify] [--json] [--out BENCH.json]
//! msf regress --baseline OLD.json --candidate NEW.json [--threshold PCT] [--min-wall SECS]
//! msf serve --listen <unix:PATH|HOST:PORT> [--paranoid] [--preload NAME=PATH]…
//! msf client <addr> <op> [args…]
//! ```
//!
//! Graphs are DIMACS-style (`p sp n m` + `a u v w` lines, 1-indexed) or the
//! `.msfb` binary format — every command that reads a graph sniffs the
//! magic and picks the loader, so binary files work everywhere a DIMACS
//! file does (and load via `mmap`, not a parse). `msf convert` moves
//! between the two; `msf generate rmat`/`powerlaw` stream straight to
//! binary when the output path ends in `.msfb`. The forest output lists
//! one selected input edge per line as `u v w`.
//! `certify` proves a computed forest minimum from the cut/cycle properties
//! alone (no reference run); `fuzz` differential-tests the whole algorithm
//! portfolio on generated graphs, shrinking any failure to a minimal DIMACS
//! reproducer in the corpus directory; `trace` runs one algorithm with the
//! observability rings on and exports a `chrome://tracing` / Perfetto JSON
//! plus a per-span-kind text summary (`--strict` exits nonzero if any ring
//! overflowed and dropped events). `MSF_TRACE=1` turns tracing on for any
//! subcommand; `--trace PATH` does the same and writes the chrome JSON.
//! `bench --json` emits a schema-versioned report with per-phase histogram
//! summaries and allocator statistics; `regress` compares two such reports
//! and exits nonzero when the candidate regressed.

use std::fs::File;
use std::io::{BufWriter, Write};

use msf_core::{fuzz, minimum_spanning_forest, verify, Algorithm, MsfConfig};
use msf_graph::generators::{
    assign_weights, geometric_knn, mesh2d, mesh2d_random, mesh3d_random, powerlaw_graph,
    powerlaw_to_binary, random_graph, rmat_graph, rmat_to_binary, structured, GeneratorConfig,
    PowerLawConfig, RmatConfig, StructuredKind, WeightScheme,
};
use msf_graph::{binfmt, io, EdgeList};
use msf_primitives::obs;

/// Count heap traffic at the allocator (gated by `MSF_ALLOC_STATS`, forced
/// on by `msf bench`); disabled it is one relaxed load over plain `System`.
#[global_allocator]
static ALLOC: obs::alloc::CountingAllocator = obs::alloc::CountingAllocator;

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         msf compute <graph> [--algo NAME] [--threads P] [--verify] [--out FILE] [--trace FILE]\n  \
         msf certify <graph> [--algo NAME] [--threads P]\n  \
         msf trace <graph> [--algo NAME] [--threads P] [--out FILE] [--strict]\n  \
         msf profile [--hz N] [--out FILE] [--svg FILE] [--top N] [--assert-agree PCT]\n      \
         -- <compute|certify|trace|bench|fuzz args...>\n  \
         msf fuzz [--cases N] [--seed S] [--corpus DIR] [--max-n N] [--inject-failure]\n  \
         msf generate <random n m | mesh side | 2d60 side | 3d40 side | geometric n k | str0..str3 n\n                \
         | rmat scale edge_factor | powerlaw n m>\n      \
         [--seed S] [--weights uniform|small-int|exponential|bimodal] --out FILE\n      \
         (rmat/powerlaw stream to binary when FILE ends in .msfb)\n  \
         msf convert <input> <output> [--to bin|dimacs]\n  \
         msf info <graph>\n  \
         msf bench [--scale smoke|default|paper|large] [--seed S] [--repeats K] [--certify]\n      \
         [--json] [--out FILE] [--trace FILE]\n  \
         msf regress --baseline OLD.json --candidate NEW.json [--threshold PCT] [--min-wall SECS]\n      \
         [--out FILE]\n  \
         msf serve --listen <unix:PATH|HOST:PORT> [--algo NAME] [--threads P] [--paranoid]\n      \
         [--registry-bytes N] [--large-threshold U] [--max-inflight U] [--max-queued N]\n      \
         [--slow-ms MS] [--preload NAME=PATH]...\n  \
         msf client <addr> <ping|load NAME PATH|compute NAME|certify NAME|info NAME|evict NAME\n      \
         |stats|profile start|stop|fetch|shutdown> [--algo NAME] [--threads P] [--hz N]\n      \
         [--paranoid] [--no-cache]\n\n\
         --algorithm is accepted everywhere --algo is\n\
         <graph> is DIMACS (.gr) or msfb binary — detected by content, not extension\n\
         algorithms: prim kruskal boruvka bor-el bor-al bor-alm bor-fal bor-fal-filter bor-dense mst-bc\n            \
         bor-write-min sf-hook filter-kruskal"
    );
    std::process::exit(2);
}

/// Drain the event rings and write the chrome-trace JSON; nesting violations
/// are fatal (a malformed trace means an instrumentation bug, not bad input).
/// With `strict`, dropped events (ring overflow) are fatal too.
fn finish_trace(path: &str, strict: bool) {
    let trace = obs::drain();
    if let Err(e) = trace.validate_nesting() {
        eprintln!("TRACE NESTING VIOLATION: {e}");
        std::process::exit(1);
    }
    std::fs::write(path, trace.chrome_json()).expect("write trace JSON");
    eprintln!("{}", trace.summary());
    eprintln!("chrome trace written to {path} (load in chrome://tracing or ui.perfetto.dev)");
    if strict && trace.dropped > 0 {
        eprintln!(
            "--strict: {} events were dropped to ring overflow; failing",
            trace.dropped
        );
        std::process::exit(1);
    }
}

fn parse_algo(s: &str) -> Option<Algorithm> {
    Algorithm::parse(s)
}

/// Load a graph from either format, sniffing the binary magic. Binary
/// files validate on open (mmap) and then materialize the edge list the
/// kernels consume; text files stream through the DIMACS parser.
///
/// Any failure — missing file, unreadable path, truncated or malformed
/// content — is a clean one-line diagnostic and exit 2 (the CLI's usage
/// exit code), never a panic: scripts distinguish "bad input" (2) from
/// "algorithm failed" (1).
fn load(path: &str) -> EdgeList {
    msf_server::registry::load_graph_file(path).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

/// Bor-Dense needs a Θ(n²) matrix; refuse oversized inputs with the sized
/// error instead of letting construction abort mid-run. (Only the bound is
/// tested here — nothing is allocated.)
fn check_dense_fits(algo: Algorithm, g: &EdgeList) {
    let n = g.num_vertices();
    if algo == Algorithm::BorDense && n > msf_graph::dense::MAX_DENSE_VERTICES {
        let e = msf_graph::dense::DenseSizeError {
            n,
            entries: (n as u128).checked_mul(n as u128),
        };
        eprintln!("bor-dense cannot run on this input: {e}");
        eprintln!("hint: pick a sparse algorithm (bor-fal, bor-al, mst-bc, ...)");
        std::process::exit(1);
    }
}

fn main() {
    // Resolve MSF_TRACE/MSF_TRACE_CAP up front so the per-span check is the
    // steady-state one-load branch from the very first algorithm run.
    obs::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("compute") => compute(&args[1..]),
        Some("certify") => certify(&args[1..]),
        Some("trace") => trace_cmd(&args[1..]),
        Some("profile") => profile_cmd(&args[1..]),
        Some("fuzz") => fuzz_cmd(&args[1..]),
        Some("generate") => generate(&args[1..]),
        Some("convert") => convert(&args[1..]),
        Some("info") => info(&args[1..]),
        Some("bench") => bench(&args[1..]),
        Some("regress") => regress_cmd(&args[1..]),
        Some("serve") => serve_cmd(&args[1..]),
        Some("client") => client_cmd(&args[1..]),
        _ => usage(),
    }
}

/// `msf serve` — run the persistent daemon until SIGTERM/SIGINT or a
/// shutdown frame; the exit code is 1 when any request hard-failed (handler
/// panic or a paranoid certification rejecting a served forest).
fn serve_cmd(args: &[String]) {
    let mut cfg = msf_server::ServerConfig::default();
    let mut preload: Vec<(String, String)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => {
                i += 1;
                let addr = args.get(i).unwrap_or_else(|| usage());
                cfg.listen = msf_server::Listen::parse(addr).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            "--algo" | "--algorithm" => {
                i += 1;
                cfg.default_algorithm = args
                    .get(i)
                    .and_then(|s| parse_algo(s))
                    .unwrap_or_else(|| usage());
            }
            "--threads" => {
                i += 1;
                cfg.default_threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--registry-bytes" => {
                i += 1;
                cfg.registry_bytes = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--large-threshold" => {
                i += 1;
                cfg.admission.large_threshold = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--max-inflight" => {
                i += 1;
                cfg.admission.max_inflight_units = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--max-queued" => {
                i += 1;
                cfg.admission.max_queued = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--paranoid" => cfg.paranoid = true,
            "--slow-ms" => {
                i += 1;
                cfg.slow_ms = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--preload" => {
                i += 1;
                let spec = args.get(i).unwrap_or_else(|| usage());
                match spec.split_once('=') {
                    Some((name, path)) => preload.push((name.into(), path.into())),
                    None => {
                        eprintln!("--preload wants NAME=PATH, got '{spec}'");
                        std::process::exit(2);
                    }
                }
            }
            _ => usage(),
        }
        i += 1;
    }
    match msf_server::server::serve_with(cfg, &preload) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

/// `msf client <addr> <op> …` — one request against a running daemon.
/// Exit codes: 0 ok, 1 server-side error, 3 rejected by admission control,
/// 2 usage/transport problems.
fn client_cmd(args: &[String]) {
    use msf_server::proto::Response;
    let addr = args.first().unwrap_or_else(|| usage());
    let op = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
    let mut client = msf_server::Client::connect(addr).unwrap_or_else(|e| {
        eprintln!("cannot connect to {addr}: {e}");
        std::process::exit(2);
    });
    let rest = &args[2..];
    let mut algo = String::new();
    let mut threads = 0u32;
    let mut hz = 0u32;
    let mut paranoid = false;
    let mut no_cache = false;
    let mut positional: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--algo" | "--algorithm" => {
                i += 1;
                algo = rest.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--threads" => {
                i += 1;
                threads = rest
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--hz" => {
                i += 1;
                hz = rest
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--paranoid" => paranoid = true,
            "--no-cache" => no_cache = true,
            s => positional.push(s),
        }
        i += 1;
    }
    let sent = match (op, positional.as_slice()) {
        ("ping", []) => client.ping(),
        ("load", [name, path]) => client.load(name, path),
        ("compute", [name]) => client.compute(name, &algo, threads, paranoid, no_cache),
        ("certify", [name]) => client.certify(name, &algo, threads),
        ("info", [name]) => client.info(name),
        ("evict", [name]) => client.evict(name),
        ("stats", []) => client.stats(),
        ("shutdown", []) => client.shutdown(),
        ("profile", [action]) => client.profile(action, hz),
        _ => usage(),
    };
    let resp = sent.unwrap_or_else(|e| {
        eprintln!("request failed: {e}");
        std::process::exit(2);
    });
    match resp {
        Response::Error { message } => {
            eprintln!("server error: {message}");
            std::process::exit(1);
        }
        Response::Overloaded { queued, max } => {
            eprintln!("rejected by admission control: {queued}/{max} jobs queued");
            std::process::exit(3);
        }
        Response::Pong => println!("pong"),
        Response::ShuttingDown => println!("server is draining"),
        Response::Loaded {
            vertices,
            edges,
            bytes,
            fresh,
        } => println!(
            "loaded: {vertices} vertices, {edges} edges, ~{bytes} bytes resident{}",
            if fresh { "" } else { " (already resident)" }
        ),
        Response::Evicted { was_resident } => println!(
            "evicted: {}",
            if was_resident {
                "was resident"
            } else {
                "was not resident"
            }
        ),
        Response::Stats { text } => print!("{text}"),
        Response::Info(r) => println!(
            "info: {} vertices, {} edges, density {:.3}, resident={} (~{} bytes)",
            r.vertices, r.edges, r.density, r.resident, r.resident_bytes
        ),
        Response::Computed(r) => println!(
            "computed [{}]: {} forest edges, {} trees, weight {:.6}, checksum {:016x}, \
             {:.3} ms{}{}",
            r.algorithm,
            r.forest_edges,
            r.components,
            r.total_weight,
            r.checksum,
            r.wall_ns as f64 / 1e6,
            if r.round_cache_hit {
                ", round-cache hit"
            } else {
                ""
            },
            if r.certified { ", certified" } else { "" }
        ),
        Response::Certified(r) => println!(
            "certified: {} forest edges in {} trees, {} cycle queries, {} cut checks, \
             checksum {:016x}, {:.3} ms",
            r.forest_edges,
            r.trees,
            r.cycle_queries,
            r.cut_checks,
            r.checksum,
            r.wall_ns as f64 / 1e6
        ),
        Response::Profile {
            running,
            folded,
            samples,
            dropped,
            wakeups,
        } => {
            eprintln!(
                "profiler {}: {samples} samples, {dropped} dropped, {wakeups} wakeups",
                if running { "running" } else { "stopped" }
            );
            // The collapsed stacks go to stdout so they pipe straight into
            // flamegraph.pl or a file.
            print!("{folded}");
        }
    }
}

fn trace_cmd(args: &[String]) {
    let path = args.first().unwrap_or_else(|| usage());
    let mut algo = Algorithm::BorFal;
    let mut threads = rayon::current_num_threads().max(1);
    let mut out_path = String::from("trace.json");
    let mut strict = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--algo" | "--algorithm" => {
                i += 1;
                algo = args
                    .get(i)
                    .and_then(|s| parse_algo(s))
                    .unwrap_or_else(|| usage());
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                i += 1;
                out_path = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--strict" => strict = true,
            _ => usage(),
        }
        i += 1;
    }
    let g = load(path);
    check_dense_fits(algo, &g);
    obs::set_enabled(true);
    let _ = obs::drain(); // discard anything recorded before this run
    let result = minimum_spanning_forest(&g, algo, &MsfConfig::with_threads(threads));
    eprintln!(
        "{algo}: {} vertices, {} edges -> {} forest edges, weight {:.6}, {} trees, {:.3}s",
        g.num_vertices(),
        g.num_edges(),
        result.edges.len(),
        result.total_weight,
        result.components,
        result.stats.total_seconds
    );
    finish_trace(&out_path, strict);
}

/// `msf profile [--hz N] [--out FILE] [--svg FILE] [--top N]
/// [--assert-agree PCT] -- <subcommand args...>` — run any other subcommand
/// under the span-stack sampling profiler and report where the time went.
///
/// The inner command runs in-process (same dispatch as `msf <subcommand>`),
/// so the profiler sees the real pool workers and team threads. Metrics are
/// force-enabled so the instrumented `phase.*.wall_ns` histograms accumulate
/// alongside the samples; the agreement table at the end cross-checks the
/// two for every phase that held ≥5% of the run, and `--assert-agree PCT`
/// turns disagreement beyond PCT percent into exit code 1.
fn profile_cmd(args: &[String]) {
    let mut hz = 997u64;
    let mut out_path: Option<String> = None;
    let mut svg_path: Option<String> = None;
    let mut top = 10usize;
    let mut assert_agree: Option<f64> = None;
    let mut inner: Option<&[String]> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--hz" => {
                i += 1;
                hz = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                i += 1;
                out_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--svg" => {
                i += 1;
                svg_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--top" => {
                i += 1;
                top = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--assert-agree" => {
                i += 1;
                assert_agree = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--" => {
                inner = Some(&args[i + 1..]);
                break;
            }
            _ => usage(),
        }
        i += 1;
    }
    let inner = inner.filter(|a| !a.is_empty()).unwrap_or_else(|| usage());

    obs::metrics::set_enabled(true);
    obs::metrics::reset_for_test(); // the agreement check wants this run only
    obs::profile::start(hz).unwrap_or_else(|e| {
        eprintln!("cannot start the profiler: {e}");
        std::process::exit(2);
    });
    match inner[0].as_str() {
        "compute" => compute(&inner[1..]),
        "certify" => certify(&inner[1..]),
        "trace" => trace_cmd(&inner[1..]),
        "bench" => bench(&inner[1..]),
        "fuzz" => fuzz_cmd(&inner[1..]),
        other => {
            eprintln!(
                "msf profile cannot wrap '{other}' (try compute, certify, trace, bench, or fuzz)"
            );
            std::process::exit(2);
        }
    }
    let report = obs::profile::stop();

    eprintln!();
    eprint!("{}", report.top(top));
    if let Some(hot) = report.hottest() {
        eprintln!("hottest: {}", hot.name());
    }
    if let Some(path) = &out_path {
        std::fs::write(path, report.folded()).expect("write folded profile");
        eprintln!("collapsed stacks written to {path} (flamegraph.pl-compatible)");
    }
    if let Some(path) = &svg_path {
        std::fs::write(path, report.svg()).expect("write SVG flamegraph");
        eprintln!("flamegraph written to {path}");
    }

    // Reconcile sampled time against the instrumented phase wall clocks.
    // Inclusive samples of a phase kind / hz ≈ that phase's wall_ns sum:
    // step spans only ever live on the thread driving the run, so a phase
    // that instrumented W ns should hold ~W×hz/1e9 samples.
    let snap = obs::metrics::snapshot();
    let run_samples = report.inclusive_samples(obs::SpanKind::Run).max(1);
    let phases = [
        (obs::SpanKind::Setup, "phase.setup.wall_ns"),
        (obs::SpanKind::FindMin, "phase.find-min.wall_ns"),
        (obs::SpanKind::Connect, "phase.connect.wall_ns"),
        (obs::SpanKind::Compact, "phase.compact.wall_ns"),
        (obs::SpanKind::BaseCase, "phase.base-case.wall_ns"),
    ];
    let mut worst: Option<(f64, &str)> = None;
    let mut printed_header = false;
    for (kind, hist_name) in phases {
        let instrumented_ns = snap.histogram(hist_name).map(|h| h.sum).unwrap_or(0);
        let samples = report.inclusive_samples(kind);
        if instrumented_ns == 0 && samples == 0 {
            continue;
        }
        let share = samples as f64 / run_samples as f64;
        let est_ns = samples as f64 / hz as f64 * 1e9;
        let err_pct = if instrumented_ns > 0 {
            (est_ns - instrumented_ns as f64).abs() / instrumented_ns as f64 * 100.0
        } else {
            100.0
        };
        if !printed_header {
            eprintln!(
                "{:<20} {:>9} {:>12} {:>12} {:>8}",
                "phase", "share", "sampled", "metered", "error"
            );
            printed_header = true;
        }
        eprintln!(
            "{:<20} {:>8.1}% {:>10.3}ms {:>10.3}ms {:>7.1}%",
            kind.name(),
            share * 100.0,
            est_ns / 1e6,
            instrumented_ns as f64 / 1e6,
            err_pct
        );
        // Only phases carrying ≥5% of the run's samples are statistically
        // meaningful at practical rates; smaller ones are noise.
        if share >= 0.05 {
            let is_worse = worst.map(|(w, _)| err_pct > w).unwrap_or(true);
            if is_worse {
                worst = Some((err_pct, kind.name()));
            }
        }
    }
    if let (Some(limit), Some((err, name))) = (assert_agree, worst) {
        if err > limit {
            eprintln!(
                "--assert-agree {limit}%: phase '{name}' disagrees by {err:.1}% between \
                 samples and phase.*.wall_ns; failing"
            );
            std::process::exit(1);
        }
        eprintln!("--assert-agree {limit}%: worst major-phase disagreement {err:.1}% ({name}) ✓");
    }
}

fn certify(args: &[String]) {
    let path = args.first().unwrap_or_else(|| usage());
    let mut algo = Algorithm::BorFal;
    let mut threads = rayon::current_num_threads().max(1);
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--algo" | "--algorithm" => {
                i += 1;
                algo = args
                    .get(i)
                    .and_then(|s| parse_algo(s))
                    .unwrap_or_else(|| usage());
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
        i += 1;
    }
    let g = load(path);
    check_dense_fits(algo, &g);
    let result = minimum_spanning_forest(&g, algo, &MsfConfig::with_threads(threads));
    match msf_core::certify::certify_msf_with(&g, &result, threads) {
        Ok(cert) => {
            eprintln!(
                "{algo}: certificate accepted — {} forest edges in {} trees, {} cycle-property \
                 queries, {} cut-property checks, modeled certification time {}",
                cert.forest_edges,
                cert.trees,
                cert.cycle_queries,
                cert.cut_checks,
                cert.modeled_time()
            );
        }
        Err(v) => {
            eprintln!("{algo}: CERTIFICATE REJECTED — {v}");
            std::process::exit(1);
        }
    }
}

fn fuzz_cmd(args: &[String]) {
    let mut cfg = fuzz::FuzzConfig {
        cases: 500,
        ..fuzz::FuzzConfig::default()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--cases" => {
                i += 1;
                cfg.cases = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                cfg.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--corpus" => {
                i += 1;
                cfg.corpus_dir = Some(args.get(i).cloned().unwrap_or_else(|| usage()).into());
            }
            "--max-n" => {
                i += 1;
                cfg.max_vertices = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--inject-failure" => cfg.inject_failure = true,
            _ => usage(),
        }
        i += 1;
    }
    let report = fuzz::run_fuzz(&cfg).unwrap_or_else(|e| {
        eprintln!("fuzz campaign failed with IO error: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "fuzz: {} cases, {} runs, {} certified, {} failures (seed {})",
        report.cases,
        report.runs,
        report.certified,
        report.failures.len(),
        cfg.seed
    );
    for f in &report.failures {
        eprintln!(
            "  case {} [{}] {} at p={} base_size={} radix={}: {}",
            f.case, f.generator, f.algo, f.threads, f.base_size, f.radix_compact, f.detail
        );
        eprintln!(
            "    shrunk to {} vertices / {} edges{}",
            f.shrunk.num_vertices(),
            f.shrunk.num_edges(),
            match &f.reproducer {
                Some(p) => format!(", reproducer at {}", p.display()),
                None => String::new(),
            }
        );
    }
    if !report.failures.is_empty() {
        std::process::exit(1);
    }
}

fn compute(args: &[String]) {
    let path = args.first().unwrap_or_else(|| usage());
    let mut algo = Algorithm::BorFal;
    let mut threads = rayon::current_num_threads().max(1);
    let mut do_verify = false;
    let mut out_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--algo" | "--algorithm" => {
                i += 1;
                algo = args
                    .get(i)
                    .and_then(|s| parse_algo(s))
                    .unwrap_or_else(|| usage());
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--verify" => do_verify = true,
            "--out" => {
                i += 1;
                out_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--trace" => {
                i += 1;
                trace_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
        i += 1;
    }
    let g = load(path);
    check_dense_fits(algo, &g);
    if trace_path.is_some() {
        obs::set_enabled(true);
        let _ = obs::drain();
    }
    let result = minimum_spanning_forest(&g, algo, &MsfConfig::with_threads(threads));
    eprintln!(
        "{algo}: {} vertices, {} edges -> {} forest edges, weight {:.6}, {} trees, {:.3}s",
        g.num_vertices(),
        g.num_edges(),
        result.edges.len(),
        result.total_weight,
        result.components,
        result.stats.total_seconds
    );
    if do_verify {
        verify::verify_msf(&g, &result).unwrap_or_else(|e| {
            eprintln!("VERIFICATION FAILED: {e}");
            std::process::exit(1);
        });
        eprintln!("verified against the unique MSF ✓");
    }
    if let Some(out_path) = out_path {
        let mut out = BufWriter::new(File::create(&out_path).expect("create output"));
        for &id in &result.edges {
            let e = g.edge(id);
            writeln!(out, "{} {} {}", e.u + 1, e.v + 1, e.w).expect("write edge");
        }
        eprintln!("forest written to {out_path}");
    }
    if let Some(trace_path) = trace_path {
        finish_trace(&trace_path, false);
    }
}

fn generate(args: &[String]) {
    let mut seed = 2026u64;
    let mut weights: Option<WeightScheme> = None;
    let mut out_path: Option<String> = None;
    let mut positional: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--weights" => {
                i += 1;
                weights = Some(match args.get(i).map(String::as_str) {
                    Some("uniform") => WeightScheme::Uniform,
                    Some("small-int") => WeightScheme::SmallIntegers { range: 16 },
                    Some("exponential") => WeightScheme::Exponential,
                    Some("bimodal") => WeightScheme::Bimodal,
                    _ => usage(),
                });
            }
            "--out" => {
                i += 1;
                out_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            s => positional.push(s),
        }
        i += 1;
    }
    let cfg = GeneratorConfig::with_seed(seed);
    let num = |idx: usize| -> usize {
        positional
            .get(idx)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| usage())
    };
    // The streaming kinds write binary directly — O(1) memory, no
    // materialized EdgeList — whenever the output is a .msfb path and no
    // weight rescheme is requested.
    let kind = positional.first().copied();
    if matches!(kind, Some("rmat" | "powerlaw")) {
        let out = out_path.clone().unwrap_or_else(|| usage());
        if out.ends_with(".msfb") && weights.is_none() {
            let (n, m) = match kind {
                Some("rmat") => {
                    let rc = RmatConfig::graph500(num(1) as u32, num(2) as u64, seed);
                    let m = rmat_to_binary(&out, rc).unwrap_or_else(|e| {
                        eprintln!("cannot write {out}: {e}");
                        std::process::exit(1);
                    });
                    (rc.num_vertices(), m)
                }
                _ => {
                    let pc = PowerLawConfig::new(num(1) as u64, num(2) as u64, seed);
                    let m = powerlaw_to_binary(&out, pc).unwrap_or_else(|e| {
                        eprintln!("cannot write {out}: {e}");
                        std::process::exit(1);
                    });
                    (pc.n, m)
                }
            };
            eprintln!("wrote {out}: {n} vertices, {m} edges (binary, streamed)");
            return;
        }
    }
    let g = match kind {
        Some("rmat") => rmat_graph(RmatConfig::graph500(num(1) as u32, num(2) as u64, seed))
            .unwrap_or_else(|e| {
                eprintln!("rmat generation failed: {e}");
                std::process::exit(1);
            }),
        Some("powerlaw") => powerlaw_graph(PowerLawConfig::new(num(1) as u64, num(2) as u64, seed))
            .unwrap_or_else(|e| {
                eprintln!("powerlaw generation failed: {e}");
                std::process::exit(1);
            }),
        Some("random") => random_graph(&cfg, num(1), num(2)),
        Some("mesh") => mesh2d(&cfg, num(1), num(1)),
        Some("2d60") => mesh2d_random(&cfg, num(1), num(1), 0.6),
        Some("3d40") => mesh3d_random(&cfg, num(1), num(1), num(1), 0.4),
        Some("geometric") => geometric_knn(&cfg, num(1), num(2)),
        Some(s @ ("str0" | "str1" | "str2" | "str3")) => {
            let kind = match s {
                "str0" => StructuredKind::Str0,
                "str1" => StructuredKind::Str1,
                "str2" => StructuredKind::Str2,
                _ => StructuredKind::Str3,
            };
            structured(&cfg, kind, num(1))
        }
        _ => usage(),
    };
    let g = match weights {
        Some(scheme) => assign_weights(&g, scheme, seed),
        None => g,
    };
    let out_path = out_path.unwrap_or_else(|| usage());
    if out_path.ends_with(".msfb") {
        binfmt::write_binary(&g, &out_path).expect("write graph");
    } else {
        let out = BufWriter::new(File::create(&out_path).expect("create output"));
        io::write_dimacs(&g, out).expect("write graph");
    }
    eprintln!(
        "wrote {}: {} vertices, {} edges",
        out_path,
        g.num_vertices(),
        g.num_edges()
    );
}

/// `msf convert <input> <output> [--to bin|dimacs]` — translate between the
/// DIMACS text format and the msfb binary format. Without `--to`, the
/// direction is inferred: binary input → DIMACS, text input → binary.
fn convert(args: &[String]) {
    let mut to: Option<&str> = None;
    let mut positional: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--to" => {
                i += 1;
                to = Some(match args.get(i).map(String::as_str) {
                    Some(t @ ("bin" | "dimacs")) => t,
                    _ => usage(),
                });
            }
            s => positional.push(s),
        }
        i += 1;
    }
    let (input, output) = match positional.as_slice() {
        [a, b] => (*a, *b),
        _ => usage(),
    };
    let input_is_bin = binfmt::is_binary_file(input).unwrap_or_else(|e| {
        eprintln!("cannot open {input}: {e}");
        std::process::exit(1);
    });
    let to = to.unwrap_or(if input_is_bin { "dimacs" } else { "bin" });
    let g = load(input);
    let res = if to == "bin" {
        binfmt::write_binary(&g, output)
    } else {
        File::create(output).and_then(|f| io::write_dimacs(&g, BufWriter::new(f)))
    };
    res.unwrap_or_else(|e| {
        eprintln!("cannot write {output}: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "converted {input} -> {output} ({to}): {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );
}

/// Benchmark inputs: one representative graph per generator family the
/// paper sweeps (random, mesh, structured). The large tier swaps in the
/// scale-leap inputs instead: an R-MAT graph that travels through the
/// binary on-disk format (stream-write, mmap-load) before being timed, and
/// a 2M-vertex uniform random graph.
fn bench_inputs(scale: msf_bench::Scale, seed: u64) -> Vec<(&'static str, String, EdgeList)> {
    let n = scale.n();
    let cfg = GeneratorConfig::with_seed(seed);
    if scale == msf_bench::Scale::Large {
        let rc = RmatConfig::graph500(20, 8, seed);
        let path = std::env::temp_dir().join(format!("msf-bench-rmat-{}.msfb", std::process::id()));
        let rmat = rmat_to_binary(&path, rc)
            .and_then(|_| binfmt::BinGraph::open(&path))
            .and_then(|bin| bin.to_edge_list())
            .unwrap_or_else(|e| {
                eprintln!("cannot prepare the rmat binary input: {e}");
                std::process::exit(1);
            });
        std::fs::remove_file(&path).ok();
        return vec![
            (
                "rmat",
                format!("rmat scale=20 ef=8 seed={seed} (msfb roundtrip)"),
                rmat,
            ),
            (
                "random",
                format!("random n={n} m=2n"),
                random_graph(&cfg, n, 2 * n),
            ),
        ];
    }
    let side = (n as f64).sqrt().round() as usize;
    vec![
        (
            "random",
            format!("random n={n} m=6n"),
            random_graph(&cfg, n, 6 * n),
        ),
        (
            "mesh",
            format!("mesh {side}x{side}"),
            mesh2d(&cfg, side, side),
        ),
        (
            "structured",
            format!("str2 n={n}"),
            structured(&cfg, StructuredKind::Str2, n),
        ),
    ]
}

/// What the serve-mode bench measurement records.
struct ServeBenchEntry {
    graph: String,
    algorithm: String,
    first_wall_ns: u64,
    repeat_wall_ns: u64,
    repeat_cache_hit: bool,
    checksum: u64,
}

/// Serve the first bench input from an in-process daemon twice: the first
/// compute populates the contracted-intermediate cache, the repeat serves
/// round 1 from it. Both must produce the identical unique forest.
fn serve_bench_entry(scale: msf_bench::Scale, seed: u64) -> ServeBenchEntry {
    use msf_server::proto::{Op, Request, Response};
    let (_, name, g) = bench_inputs(scale, seed)
        .into_iter()
        .next()
        .expect("bench inputs are never empty");
    let server = msf_server::Server::new(msf_server::ServerConfig::default());
    server.registry.put("bench-serve", g);
    let mut req = Request::op(Op::Compute);
    req.graph = "bench-serve".into();
    let run = |label: &str| match server.handle(&req) {
        Response::Computed(r) => r,
        other => {
            eprintln!("serve bench {label} compute failed: {other:?}");
            std::process::exit(1);
        }
    };
    let first = run("first");
    let repeat = run("repeat");
    if first.checksum != repeat.checksum {
        eprintln!(
            "serve bench: repeat compute diverged (checksum {:016x} vs {:016x})",
            first.checksum, repeat.checksum
        );
        std::process::exit(1);
    }
    eprintln!(
        "serve: first {:.3} ms, repeat {:.3} ms (round cache {})",
        first.wall_ns as f64 / 1e6,
        repeat.wall_ns as f64 / 1e6,
        if repeat.round_cache_hit {
            "hit"
        } else {
            "miss"
        }
    );
    ServeBenchEntry {
        graph: name,
        algorithm: repeat.algorithm.clone(),
        first_wall_ns: first.wall_ns,
        repeat_wall_ns: repeat.wall_ns,
        repeat_cache_hit: repeat.round_cache_hit,
        checksum: repeat.checksum,
    }
}

fn bench(args: &[String]) {
    let mut scale = msf_bench::Scale::Default;
    let mut seed = 2026u64;
    let mut repeats = 1usize;
    let mut json = false;
    let mut do_certify = false;
    let mut out_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| msf_bench::Scale::parse(s))
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--repeats" => {
                i += 1;
                repeats = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&k| k >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--json" => json = true,
            "--certify" => do_certify = true,
            "--out" => {
                i += 1;
                out_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--trace" => {
                i += 1;
                trace_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
        i += 1;
    }
    if trace_path.is_some() {
        obs::set_enabled(true);
        let _ = obs::drain();
    }
    // The bench report depends on the metrics registry (phase histograms)
    // and the counting allocator (Bor-AL vs Bor-ALM heap traffic), so both
    // are forced on regardless of MSF_METRICS / MSF_ALLOC_STATS.
    obs::metrics::set_enabled(true);
    obs::alloc::set_enabled(true);
    // Pre-register the lock-free contention counters so the report always
    // carries them — an uncontended run surfaces an explicit 0, not an
    // absent key (the registry is name-keyed, so these handles alias the
    // ones inside msf-primitives).
    static WRITE_MIN_RETRY: obs::metrics::LazyCounter =
        obs::metrics::LazyCounter::new("atomic.write_min.cas_retry");
    static HOOK_RETRY: obs::metrics::LazyCounter =
        obs::metrics::LazyCounter::new("unionfind.hook.cas_retry");
    WRITE_MIN_RETRY.add(0);
    HOOK_RETRY.add(0);
    // Likewise the bandwidth-accounting pair: the fused-kernel byte counter
    // and the per-round live-supervertex histogram always appear in the
    // report, even for a sweep that never enters a fused sweep (MSF_UNFUSED).
    static FUSED_BYTES: obs::metrics::LazyCounter =
        obs::metrics::LazyCounter::new("kernel.fused_bytes_read");
    static ROUND_LIVE: obs::metrics::LazyHistogram =
        obs::metrics::LazyHistogram::new("boruvka.round_live_vertices");
    FUSED_BYTES.add(0);
    ROUND_LIVE.touch();
    // And the profiler's bookkeeping trio: `--json` consumers get stable
    // keys whether or not MSF_PROFILE was set for this run.
    static PROFILE_SAMPLES: obs::metrics::LazyCounter =
        obs::metrics::LazyCounter::new("profile.samples");
    static PROFILE_DROPPED: obs::metrics::LazyCounter =
        obs::metrics::LazyCounter::new("profile.dropped");
    static PROFILE_WAKEUPS: obs::metrics::LazyCounter =
        obs::metrics::LazyCounter::new("profile.wakeups");
    PROFILE_SAMPLES.add(0);
    PROFILE_DROPPED.add(0);
    PROFILE_WAKEUPS.add(0);

    let scale_name = match scale {
        msf_bench::Scale::Large => "large",
        msf_bench::Scale::Paper => "paper",
        msf_bench::Scale::Default => "default",
        msf_bench::Scale::Smoke => "smoke",
    };

    // Each entry: (generator family, graph name, |V|, |E|, per-algorithm
    // sweeps with the heap traffic each sweep induced and whether the
    // forest was certified minimum).
    type AlgoSweeps = Vec<(
        Algorithm,
        Vec<(msf_bench::Measurement, f64)>,
        obs::alloc::AllocStats,
        bool,
    )>;
    let mut report: Vec<(&'static str, String, usize, usize, AlgoSweeps)> = Vec::new();
    for (family, name, g) in bench_inputs(scale, seed) {
        eprintln!(
            "bench: {name} ({} vertices, {} edges)",
            g.num_vertices(),
            g.num_edges()
        );
        let mut sweeps = Vec::new();
        for algo in Algorithm::PARALLEL {
            // Bracket the sweep with allocator snapshots; rebasing the peak
            // makes `peak_bytes` the high-water mark of *this* sweep.
            obs::alloc::reset_peak();
            let before = obs::alloc::stats();
            let sweep = msf_bench::sweep_min_of(&g, algo, repeats);
            let alloc_delta = obs::alloc::stats().since(&before);
            for (m, est) in &sweep {
                eprintln!(
                    "  {algo} p={}: wall {:.4}s, est {:.4}s (modeled cost {})",
                    m.threads, m.wall_seconds, est, m.modeled_cost
                );
            }
            // --certify proves the recorded forest minimum from the
            // cut/cycle properties (widest sweep point), so the committed
            // trajectory numbers are certified, not just recorded.
            let certified = do_certify && {
                let (m, _) = sweep.last().expect("sweep is never empty");
                match msf_core::certify::certify_msf_with(&g, &m.result, m.threads) {
                    Ok(_) => true,
                    Err(v) => {
                        eprintln!("  {algo}: CERTIFICATE REJECTED — {v}");
                        std::process::exit(1);
                    }
                }
            };
            if certified {
                eprintln!("  {algo}: forest certified minimum ✓");
            }
            sweeps.push((algo, sweep, alloc_delta, certified));
        }
        report.push((family, name, g.num_vertices(), g.num_edges(), sweeps));
    }

    // The paper's §2.2 claim, measured: Bor-ALM's arena recycling should
    // show orders of magnitude fewer allocator calls than Bor-AL.
    eprintln!();
    eprintln!("heap traffic per algorithm sweep (counting allocator):");
    eprintln!(
        "  {:<28} {:<16} {:>12} {:>12} {:>12} {:>12}",
        "graph", "algorithm", "allocs", "frees", "alloc MiB", "peak MiB"
    );
    for (_, name, _, _, sweeps) in &report {
        for (algo, _, a, _) in sweeps {
            eprintln!(
                "  {:<28} {:<16} {:>12} {:>12} {:>12.2} {:>12.2}",
                name,
                algo.to_string(),
                a.allocs,
                a.frees,
                a.allocated_bytes as f64 / (1 << 20) as f64,
                a.peak_bytes as f64 / (1 << 20) as f64
            );
        }
    }

    if let Some(trace_path) = trace_path {
        finish_trace(&trace_path, false);
    }
    if !json {
        return;
    }
    // Host and pool blocks are captured only now, AFTER every sweep: the
    // pool lazily starts on first parallel use, so sampling its width
    // up front would record the pre-warm-up default (width 1 / 0 threads).
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let pool_width = msf_pool::width();
    let sequential = msf_pool::sequential_env();
    // Serve-mode entry: an in-process daemon serving the first bench graph.
    // The first compute pays the initial Borůvka round; the repeat serves
    // it from the contracted-intermediate cache — the delta is the benefit
    // a resident daemon offers over the offline CLI, measured in the same
    // report that tracks the offline numbers.
    let serve = serve_bench_entry(scale, seed);
    // One source of truth: fold the pool's native counters into the metrics
    // registry, then let both this JSON block and the daemon's scrape
    // endpoint read the same names out of the same snapshot.
    msf_pool::publish_metrics();
    let metrics = obs::metrics::snapshot();
    let pool_counter = |name: &str| metrics.counter(name).unwrap_or(0);
    let mem = obs::alloc::stats();
    // Hand-rolled JSON (no serde in the offline image). Every emitted string
    // is generated here and contains no characters needing escapes.
    let mut doc = String::new();
    doc.push_str("{\n");
    doc.push_str("  \"suite\": \"msf-bench\",\n");
    doc.push_str(&format!(
        "  \"schema_version\": {},\n",
        msf_bench::regress::SCHEMA_VERSION
    ));
    doc.push_str(&format!("  \"scale\": \"{scale_name}\",\n"));
    doc.push_str(&format!("  \"n\": {},\n", scale.n()));
    doc.push_str(&format!("  \"seed\": {seed},\n"));
    doc.push_str(&format!("  \"repeats\": {repeats},\n"));
    doc.push_str("  \"host\": {\n");
    doc.push_str(&format!("    \"available_parallelism\": {cores},\n"));
    doc.push_str(&format!("    \"pool_width\": {pool_width},\n"));
    doc.push_str(&format!("    \"sequential\": {sequential},\n"));
    doc.push_str(&format!(
        "    \"proc_sweep\": [{}]\n",
        msf_bench::PROC_SWEEP.map(|p| p.to_string()).join(", ")
    ));
    doc.push_str("  },\n");
    doc.push_str("  \"pool\": {\n");
    doc.push_str(&format!("    \"threads\": {pool_width},\n"));
    doc.push_str(&format!(
        "    \"steal_hits\": {},\n",
        pool_counter("pool.steal_hits")
    ));
    doc.push_str(&format!(
        "    \"steal_misses\": {},\n",
        pool_counter("pool.steal_misses")
    ));
    doc.push_str(&format!("    \"parks\": {},\n", pool_counter("pool.parks")));
    doc.push_str(&format!(
        "    \"injector_pushes\": {},\n",
        pool_counter("pool.injector_pushes")
    ));
    doc.push_str(&format!(
        "    \"injector_pops\": {},\n",
        pool_counter("pool.injector_pops")
    ));
    doc.push_str(&format!("    \"wakes\": {},\n", pool_counter("pool.wakes")));
    doc.push_str(&format!(
        "    \"deque_overflows\": {},\n",
        pool_counter("pool.deque_overflows")
    ));
    doc.push_str(&format!(
        "    \"team_threads_spawned\": {},\n",
        pool_counter("pool.team_threads_spawned")
    ));
    doc.push_str(&format!(
        "    \"team_leases\": {}\n",
        pool_counter("pool.team_leases")
    ));
    doc.push_str("  },\n");
    doc.push_str("  \"serve\": {\n");
    doc.push_str(&format!("    \"graph\": \"{}\",\n", serve.graph));
    doc.push_str(&format!("    \"algorithm\": \"{}\",\n", serve.algorithm));
    doc.push_str(&format!(
        "    \"first_wall_ns\": {},\n",
        serve.first_wall_ns
    ));
    doc.push_str(&format!(
        "    \"repeat_wall_ns\": {},\n",
        serve.repeat_wall_ns
    ));
    doc.push_str(&format!(
        "    \"repeat_cache_hit\": {},\n",
        serve.repeat_cache_hit
    ));
    doc.push_str(&format!("    \"checksum\": \"{:016x}\"\n", serve.checksum));
    doc.push_str("  },\n");
    push_metrics_json(&mut doc, &metrics);
    doc.push_str("  \"memory\": {\n");
    doc.push_str(&format!("    \"allocs\": {},\n", mem.allocs));
    doc.push_str(&format!("    \"frees\": {},\n", mem.frees));
    doc.push_str(&format!(
        "    \"allocated_bytes\": {},\n",
        mem.allocated_bytes
    ));
    doc.push_str(&format!("    \"freed_bytes\": {},\n", mem.freed_bytes));
    doc.push_str(&format!("    \"live_bytes\": {},\n", mem.live_bytes));
    doc.push_str(&format!("    \"peak_bytes\": {},\n", mem.peak_bytes));
    doc.push_str(&format!(
        "    \"peak_rss_kb\": {}\n",
        obs::alloc::peak_rss_kb()
    ));
    doc.push_str("  },\n");
    doc.push_str("  \"graphs\": [\n");
    for (gi, (family, name, vertices, edges, sweeps)) in report.iter().enumerate() {
        doc.push_str("    {\n");
        doc.push_str(&format!("      \"name\": \"{name}\",\n"));
        doc.push_str(&format!("      \"generator\": \"{family}\",\n"));
        doc.push_str(&format!("      \"vertices\": {vertices},\n"));
        doc.push_str(&format!("      \"edges\": {edges},\n"));
        doc.push_str("      \"algorithms\": [\n");
        for (ai, (algo, sweep, alloc, certified)) in sweeps.iter().enumerate() {
            let deterministic = *algo != Algorithm::MstBc;
            doc.push_str("        {\n");
            doc.push_str(&format!("          \"algorithm\": \"{algo}\",\n"));
            doc.push_str(&format!("          \"certified\": {certified},\n"));
            doc.push_str(&format!(
                "          \"alloc\": {{\"allocs\": {}, \"frees\": {}, \"allocated_bytes\": {}, \
                 \"peak_bytes\": {}}},\n",
                alloc.allocs, alloc.frees, alloc.allocated_bytes, alloc.peak_bytes
            ));
            doc.push_str("          \"runs\": [\n");
            for (ri, (m, est)) in sweep.iter().enumerate() {
                // Schema v3: the in-memory compute representation is always
                // narrow here (EdgeList cells), and the kernel mode records
                // whether the fused sweeps were active for this process.
                doc.push_str(&format!(
                    "            {{\"p\": {}, \"wall_seconds\": {:.6}, \"est_seconds\": {:.6}, \
                     \"modeled_cost\": {}, \"modeled_deterministic\": {}, \"forest_edges\": {}, \
                     \"total_weight\": {:.6}, \"width\": \"u32\", \"fused\": {}}}{}\n",
                    m.threads,
                    m.wall_seconds,
                    est,
                    m.modeled_cost,
                    deterministic,
                    m.result.edges.len(),
                    m.result.total_weight,
                    !msf_primitives::fused::unfused(),
                    if ri + 1 < sweep.len() { "," } else { "" }
                ));
            }
            doc.push_str("          ]\n");
            doc.push_str(&format!(
                "        }}{}\n",
                if ai + 1 < sweeps.len() { "," } else { "" }
            ));
        }
        doc.push_str("      ]\n");
        doc.push_str(&format!(
            "    }}{}\n",
            if gi + 1 < report.len() { "," } else { "" }
        ));
    }
    doc.push_str("  ]\n");
    doc.push_str("}\n");
    match out_path {
        Some(path) => {
            std::fs::write(&path, doc).expect("write bench JSON");
            eprintln!("bench report written to {path}");
        }
        None => print!("{doc}"),
    }
}

/// Append the `"metrics"` block: every counter, gauge, and histogram in the
/// registry, histograms summarized as count/sum/max/mean and the three
/// standard percentiles.
fn push_metrics_json(doc: &mut String, metrics: &obs::metrics::MetricsSnapshot) {
    doc.push_str("  \"metrics\": {\n");
    doc.push_str("    \"counters\": {");
    for (i, (name, value)) in metrics.counters.iter().enumerate() {
        doc.push_str(&format!(
            "{}\"{name}\": {value}",
            if i == 0 { "" } else { ", " }
        ));
    }
    doc.push_str("},\n");
    doc.push_str("    \"gauges\": {");
    for (i, (name, value, peak)) in metrics.gauges.iter().enumerate() {
        doc.push_str(&format!(
            "{}\"{name}\": {{\"value\": {value}, \"peak\": {peak}}}",
            if i == 0 { "" } else { ", " }
        ));
    }
    doc.push_str("},\n");
    doc.push_str("    \"histograms\": {\n");
    for (i, h) in metrics.histograms.iter().enumerate() {
        let mean = if h.count > 0 { h.mean() } else { 0.0 };
        doc.push_str(&format!(
            "      \"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {:.1}, \
             \"p50\": {}, \"p90\": {}, \"p99\": {}}}{}\n",
            h.name,
            h.count,
            h.sum,
            h.max,
            mean,
            h.p50(),
            h.p90(),
            h.p99(),
            if i + 1 < metrics.histograms.len() {
                ","
            } else {
                ""
            }
        ));
    }
    doc.push_str("    }\n");
    doc.push_str("  },\n");
}

fn regress_cmd(args: &[String]) {
    let mut baseline: Option<String> = None;
    let mut candidate: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut cfg = msf_bench::regress::RegressConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--baseline" => {
                i += 1;
                baseline = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--candidate" => {
                i += 1;
                candidate = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--threshold" => {
                i += 1;
                cfg.threshold_pct = args
                    .get(i)
                    .and_then(|s| s.trim_end_matches('%').parse().ok())
                    .filter(|&t: &f64| t >= 0.0)
                    .unwrap_or_else(|| usage());
            }
            "--min-wall" => {
                i += 1;
                cfg.min_wall_seconds = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&t: &f64| t >= 0.0)
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                i += 1;
                out_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
        i += 1;
    }
    let (baseline, candidate) = match (baseline, candidate) {
        (Some(b), Some(c)) => (b, c),
        _ => usage(),
    };
    let read = |path: &str| -> msf_bench::json::Json {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        msf_bench::json::Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        })
    };
    let base_doc = read(&baseline);
    let cand_doc = read(&candidate);
    let report = msf_bench::regress::compare(&base_doc, &cand_doc, &cfg).unwrap_or_else(|e| {
        eprintln!("regress: {e}");
        std::process::exit(2);
    });
    let md = report.markdown(&cfg);
    print!("{md}");
    if let Some(path) = out_path {
        std::fs::write(&path, &md).expect("write regress report");
        eprintln!("regress report written to {path}");
    }
    if report.regressions() > 0 {
        std::process::exit(1);
    }
}

fn info(args: &[String]) {
    let path = args.first().unwrap_or_else(|| usage());
    if binfmt::is_binary_file(path.as_str()).unwrap_or(false) {
        match binfmt::BinGraph::open(path.as_str()) {
            Ok(bin) => {
                println!("format:      msfb binary v{}", binfmt::VERSION);
                println!("ids:         {}", if bin.wide() { "u64" } else { "u32" });
                println!(
                    "sorted:      {}",
                    if bin.header().weight_sorted() {
                        "by weight"
                    } else {
                        "no"
                    }
                );
                println!(
                    "backing:     {}",
                    if bin.is_mmap() { "mmap" } else { "heap" }
                );
            }
            Err(e) => {
                eprintln!("cannot open {path}: {e}");
                std::process::exit(1);
            }
        }
    } else {
        println!("format:      dimacs text");
    }
    let g = load(path);
    println!("file:        {path}");
    println!("vertices:    {}", g.num_vertices());
    println!("edges:       {}", g.num_edges());
    println!("density m/n: {:.2}", g.density());
    println!("components:  {}", msf_graph::validate::component_count(&g));
    println!(
        "simple:      {}",
        match msf_graph::validate::check_simple(&g) {
            Ok(()) => "yes".to_string(),
            Err(e) => format!("no ({e})"),
        }
    );
}
