//! Shared harness for regenerating every table and figure of the paper's
//! evaluation (§5). The `repro` binary prints them; the Criterion benches
//! under `benches/` time the same kernels.
//!
//! ## Reading the speedup numbers on this host
//!
//! The paper measured wall-clock on a 14-processor Sun E4500. On hosts with
//! fewer physical cores the harness reports, for every parallel run, an
//! **estimated parallel time**: the measured 1-thread wall time scaled by
//! the deterministic modeled-cost ratio `modeled(p) / modeled(1)` (see
//! `msf_primitives::cost`). On a machine with ≥ p real cores the wall-clock
//! column itself shows the same behaviour. EXPERIMENTS.md records both.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod regress;

use msf_core::{minimum_spanning_forest, Algorithm, MsfConfig, MsfResult};
use msf_graph::generators::{
    geometric_knn, mesh2d, mesh2d_random, mesh3d_random, random_graph, structured, GeneratorConfig,
    StructuredKind,
};
use msf_graph::EdgeList;

/// Processor counts swept in the figure reproductions (the paper sweeps
/// 1–8+ on its plots).
pub const PROC_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Scale of the experiment suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// n = 2M vertices: past the paper's sizes, exercising the binary
    /// on-disk format and the streaming generators (R-MAT) end to end.
    Large,
    /// n = 1M vertices, exactly the paper's sizes. Needs a few GB of RAM
    /// and tens of minutes end-to-end on one core.
    Paper,
    /// n = 100K vertices: same densities and shapes, laptop-friendly.
    Default,
    /// n = 10K: smoke-test sizes for CI.
    Smoke,
}

impl Scale {
    /// Vertex count this scale assigns to the paper's "1M" graphs.
    pub fn n(self) -> usize {
        match self {
            Scale::Large => 2_000_000,
            Scale::Paper => 1_000_000,
            Scale::Default => 100_000,
            Scale::Smoke => 10_000,
        }
    }

    /// Parse from a CLI word.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "large" => Some(Scale::Large),
            "paper" => Some(Scale::Paper),
            "default" => Some(Scale::Default),
            "smoke" => Some(Scale::Smoke),
            _ => None,
        }
    }
}

/// One timed run of one algorithm at one processor count.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Algorithm that ran.
    pub algorithm: Algorithm,
    /// Logical processor count.
    pub threads: usize,
    /// Measured wall-clock seconds.
    pub wall_seconds: f64,
    /// Modeled parallel cost at this p.
    pub modeled_cost: u64,
    /// The full result (for verification and step breakdowns).
    pub result: MsfResult,
}

/// Run `algorithm` on `g` with `p` logical processors.
pub fn run(g: &EdgeList, algorithm: Algorithm, p: usize) -> Measurement {
    let cfg = MsfConfig::with_threads(p);
    let result = minimum_spanning_forest(g, algorithm, &cfg);
    Measurement {
        algorithm,
        threads: p,
        wall_seconds: result.stats.total_seconds,
        modeled_cost: result.stats.modeled_cost,
        result,
    }
}

/// Run `algorithm` `repeats` times at `p` and keep the run with the
/// **minimum wall time** (min-of-k: the robust "how fast can it go"
/// estimator the regression harness compares).
pub fn run_min_of(g: &EdgeList, algorithm: Algorithm, p: usize, repeats: usize) -> Measurement {
    let mut best = run(g, algorithm, p);
    for _ in 1..repeats.max(1) {
        let m = run(g, algorithm, p);
        if m.wall_seconds < best.wall_seconds {
            best = m;
        }
    }
    best
}

/// Sweep one algorithm over [`PROC_SWEEP`] and convert modeled costs into
/// estimated seconds anchored at the measured 1-thread wall time:
/// `est(p) = wall(1) · modeled(p) / modeled(1)`.
pub fn sweep(g: &EdgeList, algorithm: Algorithm) -> Vec<(Measurement, f64)> {
    sweep_min_of(g, algorithm, 1)
}

/// [`sweep`] with min-of-`repeats` wall times per processor count.
pub fn sweep_min_of(g: &EdgeList, algorithm: Algorithm, repeats: usize) -> Vec<(Measurement, f64)> {
    let runs: Vec<Measurement> = PROC_SWEEP
        .iter()
        .map(|&p| run_min_of(g, algorithm, p, repeats))
        .collect();
    let wall1 = runs[0].wall_seconds;
    let model1 = runs[0].modeled_cost.max(1) as f64;
    runs.into_iter()
        .map(|m| {
            let est = wall1 * m.modeled_cost as f64 / model1;
            (m, est)
        })
        .collect()
}

/// The named inputs of Fig. 4: random graphs at the paper's four densities.
pub fn fig4_inputs(scale: Scale, seed: u64) -> Vec<(String, EdgeList)> {
    let n = scale.n();
    [4usize, 6, 10, 20]
        .into_iter()
        .map(|d| {
            (
                format!("random n={n} m={}n", d),
                random_graph(&GeneratorConfig::with_seed(seed), n, d * n),
            )
        })
        .collect()
}

/// The named inputs of Fig. 5: regular mesh, geometric k=6, 2D60, 3D40.
pub fn fig5_inputs(scale: Scale, seed: u64) -> Vec<(String, EdgeList)> {
    let n = scale.n();
    let side = (n as f64).sqrt().round() as usize;
    let side3 = (n as f64).cbrt().round() as usize;
    let cfg = GeneratorConfig::with_seed(seed);
    vec![
        (format!("mesh {side}x{side}"), mesh2d(&cfg, side, side)),
        (format!("geometric n={n} k=6"), geometric_knn(&cfg, n, 6)),
        (
            format!("2D60 {side}x{side}"),
            mesh2d_random(&cfg, side, side, 0.6),
        ),
        (
            format!("3D40 {side3}^3"),
            mesh3d_random(&cfg, side3, side3, side3, 0.4),
        ),
    ]
}

/// The named inputs of Fig. 6: the structured worst cases.
pub fn fig6_inputs(scale: Scale, seed: u64) -> Vec<(String, EdgeList)> {
    let n = scale.n();
    let cfg = GeneratorConfig::with_seed(seed);
    [
        ("str0", StructuredKind::Str0),
        ("str1", StructuredKind::Str1),
        ("str2", StructuredKind::Str2),
        ("str3", StructuredKind::Str3),
    ]
    .into_iter()
    .map(|(name, kind)| (format!("{name} n={n}"), structured(&cfg, kind, n)))
    .collect()
}

/// The sequential-ranking input classes of Fig. 3.
pub fn fig3_inputs(scale: Scale, seed: u64) -> Vec<(String, EdgeList)> {
    let n = scale.n();
    let side = (n as f64).sqrt().round() as usize;
    let cfg = GeneratorConfig::with_seed(seed);
    vec![
        ("random m=2n".to_string(), random_graph(&cfg, n, 2 * n)),
        ("random m=6n".to_string(), random_graph(&cfg, n, 6 * n)),
        (format!("mesh {side}x{side}"), mesh2d(&cfg, side, side)),
        ("geometric k=6".to_string(), geometric_knn(&cfg, n, 6)),
        (
            "str0".to_string(),
            structured(&cfg, StructuredKind::Str0, n),
        ),
        (
            "str3".to_string(),
            structured(&cfg, StructuredKind::Str3, n),
        ),
    ]
}

/// Fixed-width text table helper.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", line.join("  "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_parse() {
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("large"), Some(Scale::Large));
        assert_eq!(Scale::parse("huge"), None);
        assert_eq!(Scale::Smoke.n(), 10_000);
        assert_eq!(Scale::Large.n(), 2_000_000);
    }

    #[test]
    fn sweep_anchors_estimates_at_one_thread() {
        let g = random_graph(&GeneratorConfig::with_seed(1), 2_000, 8_000);
        let s = sweep(&g, Algorithm::BorFal);
        assert_eq!(s.len(), PROC_SWEEP.len());
        let (m1, est1) = &s[0];
        assert_eq!(m1.threads, 1);
        assert!((est1 - m1.wall_seconds).abs() < 1e-12);
        // Modeled cost must shrink as p grows (work splits).
        assert!(s.last().unwrap().0.modeled_cost < s[0].0.modeled_cost);
    }

    #[test]
    fn figure_input_sets_have_expected_shapes() {
        let f4 = fig4_inputs(Scale::Smoke, 1);
        assert_eq!(f4.len(), 4);
        assert_eq!(f4[0].1.num_edges(), 4 * 10_000);
        let f6 = fig6_inputs(Scale::Smoke, 1);
        assert!(f6
            .iter()
            .all(|(_, g)| g.num_edges() == g.num_vertices() - 1));
    }
}
