//! The CLI must answer bad graph inputs with a clean one-line diagnostic
//! and exit code 2 — never a panic, never exit 1 (which means "the
//! algorithm or certificate failed", a different situation scripts must
//! distinguish). Exercised over every file in `tests/corpus/malformed/`
//! plus the missing-path and unreadable-path cases, for each subcommand
//! that reads a graph.

use std::path::{Path, PathBuf};
use std::process::Command;

fn msf() -> Command {
    Command::new(env!("CARGO_BIN_EXE_msf"))
}

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus/malformed")
}

/// Run `msf <sub> <path>` and return (exit code, stderr).
fn run(sub: &str, path: &str) -> (i32, String) {
    let out = msf()
        .arg(sub)
        .arg(path)
        .output()
        .expect("spawn the msf binary");
    let code = out.status.code().unwrap_or_else(|| {
        panic!(
            "msf {sub} {path} died without an exit code (signal — a panic or abort): {}",
            String::from_utf8_lossy(&out.stderr)
        )
    });
    (code, String::from_utf8_lossy(&out.stderr).into_owned())
}

fn assert_clean_exit2(sub: &str, path: &str) {
    let (code, stderr) = run(sub, path);
    assert_eq!(
        code, 2,
        "msf {sub} {path}: want exit 2, got {code}; stderr:\n{stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "msf {sub} {path} panicked:\n{stderr}"
    );
    // A clean diagnostic: at least one non-empty line mentioning the path
    // or the parse problem, not a backtrace.
    assert!(
        !stderr.trim().is_empty(),
        "msf {sub} {path}: exit 2 with no diagnostic"
    );
    assert!(
        !stderr.contains("RUST_BACKTRACE"),
        "msf {sub} {path} printed a backtrace:\n{stderr}"
    );
}

#[test]
fn every_malformed_corpus_file_is_a_clean_exit_2() {
    let dir = corpus_dir();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "gr"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 10,
        "malformed corpus shrank: {} files",
        entries.len()
    );
    for path in &entries {
        let p = path.to_str().expect("utf-8 path");
        for sub in ["compute", "certify", "info"] {
            assert_clean_exit2(sub, p);
        }
    }
}

#[test]
fn missing_path_is_a_clean_exit_2() {
    for sub in ["compute", "certify", "info"] {
        assert_clean_exit2(sub, "/definitely/not/here.gr");
    }
}

#[test]
fn unreadable_path_is_a_clean_exit_2() {
    // A directory is unreadable-as-a-graph on every platform and for every
    // uid (chmod 0 is a no-op under root, which CI containers run as).
    let dir = std::env::temp_dir().join(format!("msf-cli-unreadable-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    for sub in ["compute", "certify", "info"] {
        assert_clean_exit2(sub, dir.to_str().expect("utf-8 path"));
    }
    let _ = std::fs::remove_dir(&dir);
}

#[test]
fn diagnostics_name_the_offending_path() {
    let path = corpus_dir().join("truncated.gr");
    let p = path.to_str().expect("utf-8 path");
    let (code, stderr) = run("compute", p);
    assert_eq!(code, 2);
    assert!(
        stderr.contains("truncated.gr"),
        "the diagnostic should name the file:\n{stderr}"
    );
}
