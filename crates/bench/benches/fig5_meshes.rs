//! Figure 5 — the parallel algorithms on the regular and irregular meshes
//! (mesh, geometric k=6, 2D60, 3D40). The paper's winner here is Bor-ALM.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msf_bench::{fig5_inputs, Scale};
use msf_core::{minimum_spanning_forest, Algorithm, MsfConfig};

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_meshes");
    group.sample_size(10);
    for (name, g) in fig5_inputs(Scale::Smoke, 2026) {
        for algo in Algorithm::PARALLEL {
            group.bench_with_input(BenchmarkId::new(algo.name(), &name), &g, |b, g| {
                b.iter(|| {
                    minimum_spanning_forest(g, algo, &MsfConfig::with_threads(8)).total_weight
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
