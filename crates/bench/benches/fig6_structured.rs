//! Figure 6 — the structured worst cases str0..str3, where the paper finds
//! only MST-BC competitive with the sequential algorithms. The sequential
//! Kruskal is benchmarked alongside as the reference line.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msf_bench::{fig6_inputs, Scale};
use msf_core::{minimum_spanning_forest, Algorithm, MsfConfig};

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_structured");
    group.sample_size(10);
    for (name, g) in fig6_inputs(Scale::Smoke, 2026) {
        group.bench_with_input(BenchmarkId::new("Kruskal-seq", &name), &g, |b, g| {
            b.iter(|| {
                minimum_spanning_forest(g, Algorithm::Kruskal, &MsfConfig::default()).total_weight
            })
        });
        for algo in Algorithm::PARALLEL {
            group.bench_with_input(BenchmarkId::new(algo.name(), &name), &g, |b, g| {
                b.iter(|| {
                    minimum_spanning_forest(g, algo, &MsfConfig::with_threads(8)).total_weight
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
