//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * Bor-AL vs Bor-ALM — allocation policy only (the §2.2 memory-management
//!   claim);
//! * MST-BC with/without the random vertex permutation and with/without
//!   work stealing (§4's progress and load-balance mechanisms);
//! * sample-sort oversampling ratio (the Bor-EL compact knob);
//! * insertion-sort threshold of the two-level sort (the paper chose
//!   insertion sort for lists of ~1–100 elements).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msf_core::{minimum_spanning_forest, Algorithm, MsfConfig};
use msf_graph::generators::{random_graph, GeneratorConfig};
use msf_primitives::sort::{
    insertion_sort_by, merge_sort_by, sample_sort_by_key, SampleSortConfig,
};

fn bench_alloc_policy(c: &mut Criterion) {
    let g = random_graph(&GeneratorConfig::with_seed(2026), 20_000, 120_000);
    let mut group = c.benchmark_group("ablation_alloc_policy");
    group.sample_size(10);
    for algo in [Algorithm::BorAl, Algorithm::BorAlm] {
        group.bench_with_input(BenchmarkId::from_parameter(algo.name()), &g, |b, g| {
            b.iter(|| minimum_spanning_forest(g, algo, &MsfConfig::with_threads(8)).total_weight)
        });
    }
    group.finish();
}

fn bench_mstbc_flags(c: &mut Criterion) {
    let g = random_graph(&GeneratorConfig::with_seed(2026), 20_000, 120_000);
    let mut group = c.benchmark_group("ablation_mstbc");
    group.sample_size(10);
    for (label, shuffle, stealing) in [
        ("shuffle+steal", true, true),
        ("shuffle-only", true, false),
        ("steal-only", false, true),
        ("neither", false, false),
    ] {
        let cfg = MsfConfig {
            shuffle,
            work_stealing: stealing,
            ..MsfConfig::with_threads(8)
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &g, |b, g| {
            b.iter(|| minimum_spanning_forest(g, Algorithm::MstBc, &cfg).total_weight)
        });
    }
    group.finish();
}

fn bench_sample_sort_oversample(c: &mut Criterion) {
    let data: Vec<u64> = (0..400_000u64)
        .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15))
        .collect();
    let mut group = c.benchmark_group("ablation_sample_sort");
    group.sample_size(10);
    for oversample in [4usize, 32, 128] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("oversample={oversample}")),
            &data,
            |b, data| {
                let cfg = SampleSortConfig {
                    buckets: 8,
                    oversample,
                    seq_threshold: 1 << 12,
                };
                b.iter(|| sample_sort_by_key(data.clone(), |&x| x, cfg).len())
            },
        );
    }
    group.finish();
}

fn bench_sort_kernels(c: &mut Criterion) {
    // The three ways this suite can sort an edge-scale array: comparison
    // sample sort (Bor-EL's kernel), parallel merge sort (perfect balance,
    // serializing final merges), and LSD radix (comparison-free, integer
    // keys only).
    use msf_primitives::sort::{par_merge_sort_by_key, radix_sort_by_key};
    let data: Vec<u64> = (0..400_000u64)
        .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15))
        .collect();
    let mut group = c.benchmark_group("ablation_sort_kernels");
    group.sample_size(10);
    group.bench_function("sample_sort", |b| {
        b.iter(|| sample_sort_by_key(data.clone(), |&x| x, SampleSortConfig::default()).len())
    });
    group.bench_function("par_merge_sort", |b| {
        b.iter(|| par_merge_sort_by_key(data.clone(), |&x| x, 8).len())
    });
    group.bench_function("radix_sort", |b| {
        b.iter(|| {
            let mut d = data.clone();
            radix_sort_by_key(&mut d, |&x| x);
            d.len()
        })
    });
    group.finish();
}

fn bench_sort_threshold(c: &mut Criterion) {
    // Many short lists, the compact-graph workload profile the paper cites
    // (80% of lists hold 1-100 elements on a 1M/6M random graph).
    let lists: Vec<Vec<u64>> = (0..4_000)
        .map(|i| {
            let len = 1 + (i * 2654435761u64 as usize) % 64;
            (0..len as u64)
                .map(|j| (j ^ i as u64).wrapping_mul(0x9e3779b9))
                .collect()
        })
        .collect();
    let mut group = c.benchmark_group("ablation_sort_threshold");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("insertion"), &lists, |b, ls| {
        b.iter(|| {
            let mut total = 0u64;
            for l in ls {
                let mut l = l.clone();
                insertion_sort_by(&mut l, |a, b| a < b);
                total = total.wrapping_add(l[0]);
            }
            total
        })
    });
    group.bench_with_input(BenchmarkId::from_parameter("merge"), &lists, |b, ls| {
        b.iter(|| {
            let mut total = 0u64;
            for l in ls {
                let mut l = l.clone();
                merge_sort_by(&mut l, |a, b| a < b);
                total = total.wrapping_add(l[0]);
            }
            total
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_alloc_policy,
    bench_mstbc_flags,
    bench_sample_sort_oversample,
    bench_sort_kernels,
    bench_sort_threshold,
    bench_filter_frontend,
    bench_compact_kernel,
    bench_dense_vs_sparse
);
fn bench_filter_frontend(c: &mut Criterion) {
    // §3's suggested optimization: the filter pays in front of Bor-AL on
    // dense inputs, never in front of Bor-FAL (see EXPERIMENTS.md).
    let g = random_graph(&GeneratorConfig::with_seed(2026), 10_000, 200_000);
    let mut group = c.benchmark_group("ablation_filter_frontend");
    group.sample_size(10);
    let cfg = MsfConfig::with_threads(8);
    for (label, algo) in [("Bor-AL", Algorithm::BorAl), ("Bor-FAL", Algorithm::BorFal)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &g, |b, g| {
            b.iter(|| minimum_spanning_forest(g, algo, &cfg).total_weight)
        });
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("filter->{label}")),
            &g,
            |b, g| b.iter(|| msf_core::par::filter::msf_with_inner(g, &cfg, algo).total_weight),
        );
    }
    group.finish();
}

fn bench_compact_kernel(c: &mut Criterion) {
    // Bor-EL's compact step: comparison sample sort vs comparison-free
    // radix grouping over packed endpoint pairs.
    let g = random_graph(&GeneratorConfig::with_seed(2026), 20_000, 200_000);
    let mut group = c.benchmark_group("ablation_compact");
    group.sample_size(10);
    for (label, radix) in [("sample-sort", false), ("radix", true)] {
        let cfg = MsfConfig {
            radix_compact: radix,
            ..MsfConfig::with_threads(8)
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &g, |b, g| {
            b.iter(|| minimum_spanning_forest(g, Algorithm::BorEl, &cfg).total_weight)
        });
    }
    group.finish();
}

fn bench_dense_vs_sparse(c: &mut Criterion) {
    // Where the adjacency-matrix Borůvka crosses over: fine at high density
    // on few vertices, hopeless on sparse inputs (the paper's §1.1 point
    // about the Dehne–Götz approach).
    let mut group = c.benchmark_group("ablation_dense_vs_sparse");
    group.sample_size(10);
    for (label, n, m) in [
        ("dense-1k-100k", 1_000usize, 100_000usize),
        ("sparse-5k-20k", 5_000, 20_000),
    ] {
        let g = random_graph(&GeneratorConfig::with_seed(2026), n, m);
        for algo in [Algorithm::BorDense, Algorithm::BorAl] {
            group.bench_with_input(BenchmarkId::new(algo.name(), label), &g, |b, g| {
                b.iter(|| {
                    minimum_spanning_forest(g, algo, &MsfConfig::with_threads(8)).total_weight
                })
            });
        }
    }
    group.finish();
}

criterion_main!(benches);
