//! Figure 4 — the five parallel algorithms on random graphs at the paper's
//! four densities (4n, 6n, 10n, 20n edges), at p = 1 and p = 8 logical
//! processors. The scaled speedup curves come from `repro fig4`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msf_core::{minimum_spanning_forest, Algorithm, MsfConfig};
use msf_graph::generators::{random_graph, GeneratorConfig};

fn bench_fig4(c: &mut Criterion) {
    let n = 20_000usize;
    let mut group = c.benchmark_group("fig4_random");
    group.sample_size(10);
    for density in [4usize, 20] {
        let g = random_graph(&GeneratorConfig::with_seed(2026), n, density * n);
        for algo in Algorithm::PARALLEL {
            for p in [1usize, 8] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{}/p={p}", algo.name()), format!("m={density}n")),
                    &g,
                    |b, g| {
                        b.iter(|| {
                            minimum_spanning_forest(g, algo, &MsfConfig::with_threads(p))
                                .total_weight
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
