//! Table 1 — the Bor-EL iteration structure on the two random graphs whose
//! edge-decay the paper tabulates (G1: m/n = 6, G2: m/n = 3). Criterion
//! times the full Bor-EL run that produces the trace; run
//! `repro table1` for the table itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msf_core::{minimum_spanning_forest, Algorithm, MsfConfig};
use msf_graph::generators::{random_graph, GeneratorConfig};

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_edge_decay");
    group.sample_size(10);
    for (tag, n, density) in [("G1", 20_000usize, 6usize), ("G2", 2_000, 3)] {
        let g = random_graph(&GeneratorConfig::with_seed(2026), n, density * n);
        group.bench_with_input(BenchmarkId::new("Bor-EL", tag), &g, |b, g| {
            b.iter(|| {
                let r = minimum_spanning_forest(g, Algorithm::BorEl, &MsfConfig::with_threads(8));
                assert!(!r.stats.iterations.is_empty());
                r.total_weight
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
