//! Figure 2 — end-to-end time of the four Borůvka variants on random graphs
//! with m = 4n, 6n, 10n; the per-step breakdown itself comes from
//! `repro fig2`. The paper's claims checked here: Bor-AL beats Bor-EL, and
//! Bor-FAL beats both (its compact step is pointer surgery).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msf_core::{minimum_spanning_forest, Algorithm, MsfConfig};
use msf_graph::generators::{random_graph, GeneratorConfig};

fn bench_fig2(c: &mut Criterion) {
    let n = 20_000usize;
    let mut group = c.benchmark_group("fig2_step_breakdown");
    group.sample_size(10);
    for density in [4usize, 6, 10] {
        let g = random_graph(&GeneratorConfig::with_seed(2026), n, density * n);
        for algo in [
            Algorithm::BorEl,
            Algorithm::BorAl,
            Algorithm::BorAlm,
            Algorithm::BorFal,
        ] {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), format!("m={density}n")),
                &g,
                |b, g| {
                    b.iter(|| {
                        minimum_spanning_forest(g, algo, &MsfConfig::with_threads(8)).total_weight
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
