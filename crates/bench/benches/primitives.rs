//! Microbenchmarks of the substrate kernels the algorithms are built from:
//! sample sort, pointer-jumping components, Shiloach–Vishkin components,
//! prefix sums, the indexed heap, and the parallel permutation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msf_primitives::connectivity::{pointer_jump, sv};
use msf_primitives::heap::IndexedHeap;
use msf_primitives::permutation::parallel_permutation;
use msf_primitives::prefix::par_exclusive_scan;
use msf_primitives::sort::{sample_sort_by_key, SampleSortConfig};
use rand::prelude::*;

fn bench_sample_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("prim_sample_sort");
    group.sample_size(10);
    for size in [100_000usize, 400_000] {
        let data: Vec<u64> = (0..size as u64)
            .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| sample_sort_by_key(data.clone(), |&x| x, SampleSortConfig::default()).len())
        });
    }
    group.finish();
}

fn bench_connectivity(c: &mut Criterion) {
    let n = 100_000usize;
    let mut rng = StdRng::seed_from_u64(9);
    let edges: Vec<(u32, u32)> = (0..3 * n)
        .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
        .collect();
    let mut group = c.benchmark_group("prim_connectivity");
    group.sample_size(10);
    group.bench_function("shiloach_vishkin", |b| {
        b.iter(|| sv::connected_components(n, &edges)[0])
    });
    // Pointer jumping on a pseudo-forest of long chains.
    let parent: Vec<u32> = (0..n)
        .map(|v| {
            if v % 1000 == 0 {
                v as u32 + 1
            } else {
                v as u32 - 1
            }
        })
        .collect();
    group.bench_function("pointer_jump", |b| {
        b.iter(|| {
            let mut p = parent.clone();
            pointer_jump::resolve_pseudo_forest(&mut p);
            p[0]
        })
    });
    group.finish();
}

fn bench_prefix_and_permutation(c: &mut Criterion) {
    let mut group = c.benchmark_group("prim_scan_perm");
    group.sample_size(10);
    let data: Vec<usize> = (0..1_000_000).map(|i| i % 7).collect();
    group.bench_function("par_exclusive_scan_1M", |b| {
        b.iter(|| {
            let mut d = data.clone();
            par_exclusive_scan(&mut d, 8)
        })
    });
    group.bench_function("parallel_permutation_1M", |b| {
        b.iter(|| parallel_permutation(1_000_000, 8, 42)[0])
    });
    group.finish();
}

fn bench_heap(c: &mut Criterion) {
    let n = 100_000usize;
    let mut rng = StdRng::seed_from_u64(4);
    let keys: Vec<f64> = (0..4 * n).map(|_| rng.gen()).collect();
    let ids: Vec<u32> = (0..4 * n).map(|_| rng.gen_range(0..n as u32)).collect();
    let mut group = c.benchmark_group("prim_heap");
    group.sample_size(10);
    group.bench_function("upsert_drain_400k", |b| {
        b.iter(|| {
            let mut h: IndexedHeap<f64> = IndexedHeap::new(n);
            for (k, id) in keys.iter().zip(&ids) {
                h.insert_or_decrease(*id, *k);
            }
            let mut sum = 0.0;
            while let Some((k, _)) = h.extract_min() {
                sum += k;
            }
            sum
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sample_sort,
    bench_connectivity,
    bench_prefix_and_permutation,
    bench_heap
);
criterion_main!(benches);
