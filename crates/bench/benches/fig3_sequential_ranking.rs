//! Figure 3 — the three sequential baselines across input classes. The
//! paper's point: the ranking flips with graph class and weight structure
//! (Prim can be 3× faster than Kruskal on some inputs, Kruskal wins on the
//! degenerate trees).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msf_bench::{fig3_inputs, Scale};
use msf_core::{minimum_spanning_forest, Algorithm, MsfConfig};

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_sequential_ranking");
    group.sample_size(10);
    let cfg = MsfConfig::default();
    for (name, g) in fig3_inputs(Scale::Smoke, 2026) {
        for algo in [Algorithm::Prim, Algorithm::Kruskal, Algorithm::Boruvka] {
            group.bench_with_input(BenchmarkId::new(algo.name(), &name), &g, |b, g| {
                b.iter(|| minimum_spanning_forest(g, algo, &cfg).total_weight)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
