//! Seeded differential fuzzing of the whole algorithm portfolio.
//!
//! Each case draws a graph from a randomized generator mix (uniform random,
//! thinned meshes, geometric, degenerate structured trees, tie-heavy
//! multigraphs, disconnected unions), runs **every** [`Algorithm`] at
//! several thread counts and configuration corners (small `base_size`, odd
//! `p`, `radix_compact` on and off), and cross-checks the results two ways:
//!
//! 1. **differentially** — all algorithms must produce the identical edge-id
//!    set, since the `(weight, id)` total order makes the MSF unique;
//! 2. **by certification** — each result must pass the Kruskal-independent
//!    [`certify_msf_with`](crate::certify::certify_msf_with) optimality
//!    certificate.
//!
//! A failing case is shrunk by delta debugging (drop edge chunks while the
//! failure reproduces, then compact away unused vertices) and written to a
//! regression corpus as a DIMACS file whose `c msf-fuzz` header records the
//! exact algorithm and configuration, so
//! [`replay_corpus`] can re-check every past failure on each test run.
//!
//! Everything is deterministic in `FuzzConfig::seed`: the same seed replays
//! the same graphs, configurations, and verdicts.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use msf_graph::generators::{
    geometric_knn, mesh2d_random, random_graph, structured, GeneratorConfig, StructuredKind,
};
use msf_graph::EdgeList;
use rand::prelude::*;

use crate::certify::certify_msf_with;
use crate::{minimum_spanning_forest, Algorithm, MsfConfig};

/// Fuzzing campaign parameters.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of generated graphs.
    pub cases: usize,
    /// Master seed; equal seeds replay byte-identical campaigns.
    pub seed: u64,
    /// Where to write shrunk reproducers (`None` keeps them in memory only).
    pub corpus_dir: Option<PathBuf>,
    /// Upper bound on vertices per generated graph.
    pub max_vertices: usize,
    /// Thread counts every algorithm runs at.
    pub threads: Vec<usize>,
    /// Plant a deterministic wrong-forest "algorithm" to prove the pipeline
    /// detects, shrinks, and reports failures end to end.
    pub inject_failure: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            cases: 100,
            seed: 2026,
            corpus_dir: None,
            max_vertices: 96,
            threads: vec![1, 3, 7],
            inject_failure: false,
        }
    }
}

/// One confirmed disagreement or certification failure, after shrinking.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Index of the generated case.
    pub case: usize,
    /// Generator that produced the original graph.
    pub generator: String,
    /// CLI-style slug of the offending algorithm (`bor-el`, `injected`, …).
    pub algo: String,
    /// Configuration under which it failed.
    pub threads: usize,
    /// MST-BC base size in effect.
    pub base_size: usize,
    /// Bor-EL radix-compaction flag in effect.
    pub radix_compact: bool,
    /// Human-readable reason (differential mismatch or certificate error).
    pub detail: String,
    /// The shrunk graph that still reproduces the failure.
    pub shrunk: EdgeList,
    /// Where the DIMACS reproducer was written, when a corpus is configured.
    pub reproducer: Option<PathBuf>,
}

/// Campaign summary.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Cases generated.
    pub cases: usize,
    /// Individual algorithm runs (algorithms × thread counts × cases).
    pub runs: usize,
    /// Runs whose result passed certification.
    pub certified: usize,
    /// Confirmed, shrunk failures.
    pub failures: Vec<FuzzFailure>,
}

const ALGO_SLUGS: [(&str, Algorithm); 13] = [
    ("prim", Algorithm::Prim),
    ("kruskal", Algorithm::Kruskal),
    ("boruvka", Algorithm::Boruvka),
    ("bor-el", Algorithm::BorEl),
    ("bor-al", Algorithm::BorAl),
    ("bor-alm", Algorithm::BorAlm),
    ("bor-fal", Algorithm::BorFal),
    ("bor-fal-filter", Algorithm::BorFalFilter),
    ("bor-dense", Algorithm::BorDense),
    ("mst-bc", Algorithm::MstBc),
    ("bor-write-min", Algorithm::BorWriteMin),
    ("sf-hook", Algorithm::SfHook),
    ("filter-kruskal", Algorithm::FilterKruskal),
];

fn slug_of(a: Algorithm) -> &'static str {
    ALGO_SLUGS
        .iter()
        .find(|(_, algo)| *algo == a)
        .map(|(s, _)| *s)
        .expect("every algorithm has a slug")
}

fn algo_of(slug: &str) -> Option<Algorithm> {
    ALGO_SLUGS.iter().find(|(s, _)| *s == slug).map(|(_, a)| *a)
}

/// The subject of one fuzz run: a real algorithm, or the planted saboteur.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Subject {
    Real(Algorithm),
    /// Computes the true MSF, then drops one forest edge, swapping in the
    /// lightest non-forest edge when one exists — deterministic on every
    /// graph with a forest edge, so the failure reproduces throughout
    /// shrinking (down to a single mandatory edge).
    Injected,
}

impl Subject {
    fn slug(self) -> &'static str {
        match self {
            Subject::Real(a) => slug_of(a),
            Subject::Injected => "injected",
        }
    }

    fn run(self, g: &EdgeList, cfg: &MsfConfig) -> crate::MsfResult {
        match self {
            Subject::Real(a) => minimum_spanning_forest(g, a, cfg),
            Subject::Injected => {
                let mut r = minimum_spanning_forest(g, Algorithm::Boruvka, cfg);
                let in_forest: std::collections::HashSet<u32> = r.edges.iter().copied().collect();
                let swap_in = g
                    .edges()
                    .iter()
                    .filter(|e| !in_forest.contains(&e.id) && e.u != e.v)
                    .min_by_key(|e| e.key())
                    .map(|e| e.id);
                if r.edges.pop().is_some() {
                    if let Some(id) = swap_in {
                        r.edges.push(id);
                        r.edges.sort_unstable();
                        r.edges.dedup();
                    }
                    r.total_weight = r.edges.iter().map(|&i| g.edge(i).w).sum();
                }
                r
            }
        }
    }
}

/// One graph drawn from the generator mix.
fn sample_graph(rng: &mut StdRng, case: usize, max_n: usize) -> (String, EdgeList) {
    let gen_cfg = GeneratorConfig::with_seed(rng.gen::<u64>());
    let n = rng.gen_range(2..max_n.max(3));
    // random_graph draws simple graphs; cap m at the number of vertex pairs.
    let cap = |n: usize, m: usize| m.min(n * (n - 1) / 2).max(1);
    match rng.gen_range(0u32..6) {
        0 => {
            let m = cap(n, rng.gen_range(1..(3 * n).max(2)));
            (format!("random-{case}"), random_graph(&gen_cfg, n, m))
        }
        1 => {
            let side = rng.gen_range(2..((max_n as f64).sqrt() as usize).max(3));
            let keep = 0.3 + 0.6 * rng.gen::<f64>();
            (
                format!("mesh2d-{case}"),
                mesh2d_random(&gen_cfg, side, side, keep),
            )
        }
        2 => {
            let k = rng.gen_range(1..5);
            (
                format!("geo-{case}"),
                geometric_knn(&gen_cfg, n.max(k + 2), k),
            )
        }
        3 => {
            let kind = match rng.gen_range(0u32..4) {
                0 => StructuredKind::Str0,
                1 => StructuredKind::Str1,
                2 => StructuredKind::Str2,
                _ => StructuredKind::Str3,
            };
            (format!("str-{case}"), structured(&gen_cfg, kind, n.max(8)))
        }
        4 => (format!("ties-{case}"), tie_multigraph(rng, n)),
        _ => {
            // Disconnected union of two random blobs: exercises the forest
            // (not tree) paths and per-component certification.
            let n2 = rng.gen_range(2..n.max(3));
            let a = random_graph(&gen_cfg, n, cap(n, rng.gen_range(1..(2 * n).max(2))));
            let b = random_graph(
                &GeneratorConfig::with_seed(rng.gen::<u64>()),
                n2,
                cap(n2, rng.gen_range(1..(2 * n2).max(2))),
            );
            (
                format!("disjoint-{case}"),
                msf_graph::transform::disjoint_union(&[&a, &b]),
            )
        }
    }
}

/// A deliberately nasty multigraph: few distinct weights (so nearly every
/// comparison is a tie broken by edge id) and parallel edges (so the dedup
/// contract in the compact-graph kernels actually fires on input edges).
fn tie_multigraph(rng: &mut StdRng, n: usize) -> EdgeList {
    let n = n.max(2);
    let m = rng.gen_range(1..(4 * n).max(2));
    let weights = [0.0, 0.5, 1.0];
    let triples: Vec<(u32, u32, f64)> = (0..m)
        .map(|_| {
            let u = rng.gen_range(0..n as u32);
            let mut v = rng.gen_range(0..n as u32);
            if u == v {
                v = (v + 1) % n as u32;
            }
            (u, v, weights[rng.gen_range(0..weights.len())])
        })
        .collect();
    EdgeList::from_triples(n, triples)
}

/// Check one subject/config against the unique MSF. `None` means the run is
/// correct: it matches the independent Kruskal reference AND passes the
/// self-contained optimality certificate.
fn check_run(g: &EdgeList, subject: Subject, cfg: &MsfConfig) -> Option<String> {
    let r = subject.run(g, cfg);
    let reference = crate::seq::kruskal::msf(g);
    if r.edges != reference.edges {
        return Some(format!(
            "differential mismatch: {} selected {} edges, the unique MSF has {}",
            subject.slug(),
            r.edges.len(),
            reference.edges.len()
        ));
    }
    if let Err(v) = certify_msf_with(g, &r, cfg.threads) {
        return Some(format!("certification failed: {v}"));
    }
    None
}

/// Run the campaign.
pub fn run_fuzz(cfg: &FuzzConfig) -> std::io::Result<FuzzReport> {
    let mut report = FuzzReport {
        cases: 0,
        runs: 0,
        certified: 0,
        failures: Vec::new(),
    };
    if let Some(dir) = &cfg.corpus_dir {
        std::fs::create_dir_all(dir)?;
    }
    for case in 0..cfg.cases {
        let mut rng =
            StdRng::seed_from_u64(cfg.seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let (generator, g) = sample_graph(&mut rng, case, cfg.max_vertices);
        report.cases += 1;

        let mut subjects: Vec<Subject> = Algorithm::ALL.iter().map(|&a| Subject::Real(a)).collect();
        // Plant the saboteur in one case per campaign (the first with a
        // non-forest edge, so the corruption has something to swap in).
        if cfg.inject_failure && report.failures.is_empty() {
            subjects.push(Subject::Injected);
        }

        for &p in &cfg.threads {
            // Corner-heavy configuration sampling: tiny base sizes force
            // MST-BC's recursion, odd p exercises uneven block partitions,
            // and radix_compact flips Bor-EL onto its counting-sort path.
            let run_cfg = MsfConfig {
                threads: p,
                base_size: *[2usize, 4, 16, 64].choose(&mut rng).expect("non-empty"),
                shuffle: rng.gen_bool(0.5),
                work_stealing: rng.gen_bool(0.5),
                seed: rng.gen::<u64>(),
                radix_compact: rng.gen_bool(0.5),
            };
            for &subject in &subjects {
                report.runs += 1;
                match check_run(&g, subject, &run_cfg) {
                    None => report.certified += 1,
                    Some(detail) => {
                        let shrunk = shrink(&g, subject, &run_cfg);
                        let detail = check_run(&shrunk, subject, &run_cfg).unwrap_or(detail);
                        let reproducer = match &cfg.corpus_dir {
                            Some(dir) => Some(write_reproducer(
                                dir, case, &generator, subject, &run_cfg, &detail, &shrunk,
                            )?),
                            None => None,
                        };
                        report.failures.push(FuzzFailure {
                            case,
                            generator: generator.clone(),
                            algo: subject.slug().to_string(),
                            threads: run_cfg.threads,
                            base_size: run_cfg.base_size,
                            radix_compact: run_cfg.radix_compact,
                            detail,
                            shrunk,
                            reproducer,
                        });
                    }
                }
            }
        }
    }
    Ok(report)
}

/// Delta-debug `g` down to a small graph on which `subject` still fails
/// under `cfg`: repeatedly drop edge chunks (halving granularity as removals
/// stop reproducing), then compact away untouched vertices.
fn shrink(g: &EdgeList, subject: Subject, cfg: &MsfConfig) -> EdgeList {
    let fails = |n: usize, triples: &[(u32, u32, f64)]| -> bool {
        let candidate = EdgeList::from_triples(n, triples.to_vec());
        check_run(&candidate, subject, cfg).is_some()
    };
    let n = g.num_vertices();
    let mut triples: Vec<(u32, u32, f64)> = g.edges().iter().map(|e| (e.u, e.v, e.w)).collect();
    let mut chunk = (triples.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut start = 0;
        while start < triples.len() {
            let end = (start + chunk).min(triples.len());
            let mut candidate = Vec::with_capacity(triples.len() - (end - start));
            candidate.extend_from_slice(&triples[..start]);
            candidate.extend_from_slice(&triples[end..]);
            if fails(n, &candidate) {
                triples = candidate;
                progressed = true;
                // Re-test the same offset: it now holds different edges.
            } else {
                start = end;
            }
        }
        if !progressed {
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        }
    }
    // Vertex compaction: remap the endpoints that survived onto 0..k.
    let mut remap: BTreeMap<u32, u32> = BTreeMap::new();
    for &(u, v, _) in &triples {
        let next = remap.len() as u32;
        remap.entry(u).or_insert(next);
        let next = remap.len() as u32;
        remap.entry(v).or_insert(next);
    }
    let compacted: Vec<(u32, u32, f64)> = triples
        .iter()
        .map(|&(u, v, w)| (remap[&u], remap[&v], w))
        .collect();
    if fails(remap.len(), &compacted) {
        EdgeList::from_triples(remap.len(), compacted)
    } else {
        // Isolated-vertex count mattered to this failure; keep the ids.
        EdgeList::from_triples(n, triples)
    }
}

/// Write a shrunk failing case as DIMACS with an `c msf-fuzz` header that
/// [`replay_corpus`] can parse back into an exact re-run.
fn write_reproducer(
    dir: &Path,
    case: usize,
    generator: &str,
    subject: Subject,
    cfg: &MsfConfig,
    detail: &str,
    g: &EdgeList,
) -> std::io::Result<PathBuf> {
    let path = dir.join(format!("case{case}-{}-p{}.gr", subject.slug(), cfg.threads));
    let mut text = String::new();
    let _ = writeln!(
        text,
        "c msf-fuzz v1 case={case} generator={generator} algo={} threads={} base_size={} \
         shuffle={} work_stealing={} seed={} radix_compact={}",
        subject.slug(),
        cfg.threads,
        cfg.base_size,
        cfg.shuffle,
        cfg.work_stealing,
        cfg.seed,
        cfg.radix_compact,
    );
    let _ = writeln!(text, "c msf-fuzz-detail {detail}");
    let mut body = Vec::new();
    msf_graph::io::write_dimacs(g, &mut body)?;
    text.push_str(&String::from_utf8(body).expect("DIMACS output is UTF-8"));
    std::fs::write(&path, text)?;
    Ok(path)
}

/// One corpus entry, parsed back from its reproducer file.
#[derive(Debug, Clone)]
pub struct CorpusCase {
    /// Source file.
    pub path: PathBuf,
    /// Algorithm slug recorded in the header (`injected` entries replay with
    /// the real portfolio — the saboteur only exists inside a campaign).
    pub algo: String,
    /// Recorded configuration.
    pub config: MsfConfig,
    /// The graph.
    pub graph: EdgeList,
}

/// Load every `*.gr` reproducer under `dir`.
pub fn load_corpus(dir: &Path) -> std::io::Result<Vec<CorpusCase>> {
    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            (path.extension().is_some_and(|x| x == "gr")).then_some(path)
        })
        .collect();
    paths.sort();
    let mut cases = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(&path)?;
        let header = text
            .lines()
            .find(|l| l.starts_with("c msf-fuzz v1 "))
            .ok_or_else(|| {
                bad(format!(
                    "{}: missing `c msf-fuzz v1` header",
                    path.display()
                ))
            })?;
        let kv: BTreeMap<&str, &str> = header
            .split_whitespace()
            .filter_map(|tok| tok.split_once('='))
            .collect();
        let get = |key: &str| {
            kv.get(key)
                .copied()
                .ok_or_else(|| bad(format!("{}: header missing {key}=", path.display())))
        };
        let parse_usize = |key: &str| -> std::io::Result<usize> {
            get(key)?
                .parse()
                .map_err(|_| bad(format!("{}: bad {key}=", path.display())))
        };
        let parse_bool = |key: &str| -> std::io::Result<bool> {
            get(key)?
                .parse()
                .map_err(|_| bad(format!("{}: bad {key}=", path.display())))
        };
        let config = MsfConfig {
            threads: parse_usize("threads")?.max(1),
            base_size: parse_usize("base_size")?,
            shuffle: parse_bool("shuffle")?,
            work_stealing: parse_bool("work_stealing")?,
            seed: get("seed")?
                .parse()
                .map_err(|_| bad(format!("{}: bad seed=", path.display())))?,
            radix_compact: parse_bool("radix_compact")?,
        };
        let graph = msf_graph::io::read_dimacs(text.as_bytes())?;
        cases.push(CorpusCase {
            algo: get("algo")?.to_string(),
            config,
            graph,
            path,
        });
    }
    Ok(cases)
}

/// Replay the regression corpus: every recorded case must now pass — the
/// recorded algorithm (or, for `injected` entries, the full real portfolio)
/// must agree with the unique MSF and pass certification under the exact
/// recorded configuration. Returns the number of cases replayed.
pub fn replay_corpus(dir: &Path) -> Result<usize, String> {
    let cases = load_corpus(dir).map_err(|e| format!("cannot load corpus: {e}"))?;
    for case in &cases {
        let subjects: Vec<Subject> = match algo_of(&case.algo) {
            Some(a) => vec![Subject::Real(a)],
            None => Algorithm::ALL.iter().map(|&a| Subject::Real(a)).collect(),
        };
        for subject in subjects {
            if let Some(detail) = check_run(&case.graph, subject, &case.config) {
                return Err(format!(
                    "{}: {} still fails: {detail}",
                    case.path.display(),
                    subject.slug()
                ));
            }
        }
    }
    Ok(cases.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_campaign(inject: bool, corpus: Option<PathBuf>) -> FuzzReport {
        run_fuzz(&FuzzConfig {
            cases: 6,
            seed: 0xF00D,
            corpus_dir: corpus,
            max_vertices: 40,
            threads: vec![1, 3],
            inject_failure: inject,
        })
        .expect("fuzz campaign IO")
    }

    #[test]
    fn clean_campaign_has_no_failures() {
        let report = small_campaign(false, None);
        assert_eq!(report.cases, 6);
        assert_eq!(report.runs, 6 * 2 * Algorithm::ALL.len());
        assert_eq!(report.certified, report.runs);
        assert!(report.failures.is_empty(), "{:?}", report.failures);
    }

    #[test]
    fn campaigns_are_deterministic_per_seed() {
        let a = small_campaign(false, None);
        let b = small_campaign(false, None);
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.certified, b.certified);
    }

    #[test]
    fn injected_failure_is_caught_and_shrunk() {
        let dir = std::env::temp_dir().join(format!("msf-fuzz-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = small_campaign(true, Some(dir.clone()));
        assert!(
            !report.failures.is_empty(),
            "the planted saboteur must be detected"
        );
        let f = &report.failures[0];
        assert_eq!(f.algo, "injected");
        // Minimal reproducer: swapping one forest edge for the lightest
        // non-forest edge needs nothing more than one cycle.
        assert!(
            f.shrunk.num_edges() <= 3,
            "shrink left {} edges (expected a single cycle at most): {:?}",
            f.shrunk.num_edges(),
            f.shrunk
        );
        assert!(f.shrunk.num_vertices() <= f.shrunk.num_edges() + 1);
        let path = f.reproducer.as_ref().expect("corpus dir was configured");
        assert!(path.exists());
        // The reproducer parses back to the same graph and config.
        let corpus = load_corpus(&dir).unwrap();
        let case = corpus
            .iter()
            .find(|c| c.path == *path)
            .expect("written case is loadable");
        assert_eq!(case.algo, "injected");
        assert_eq!(case.graph.num_edges(), f.shrunk.num_edges());
        assert_eq!(case.config.threads, f.threads);
        assert_eq!(case.config.base_size, f.base_size);
        // Replaying treats `injected` as the real portfolio, which passes.
        assert_eq!(replay_corpus(&dir).unwrap(), corpus.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tie_multigraph_is_hostile_but_solvable() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let g = tie_multigraph(&mut rng, 12);
            assert!(g.num_edges() >= 1);
            for subject in Algorithm::ALL.map(Subject::Real) {
                assert!(
                    check_run(&g, subject, &MsfConfig::with_threads(3)).is_none(),
                    "{} on tie multigraph",
                    subject.slug()
                );
            }
        }
    }

    #[test]
    fn corpus_rejects_garbage_headers() {
        let dir = std::env::temp_dir().join(format!("msf-fuzz-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("x.gr"), "p sp 2 1\na 1 2 1.0\n").unwrap();
        assert!(
            load_corpus(&dir).is_err(),
            "missing header must be rejected"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn slugs_roundtrip() {
        for a in Algorithm::ALL {
            assert_eq!(algo_of(slug_of(a)), Some(a));
        }
        assert_eq!(algo_of("injected"), None);
    }
}
