//! MSF verification.
//!
//! With the `(weight, edge id)` total order the minimum spanning forest is
//! unique, so the strongest check is available cheaply: structural forest
//! invariants plus exact edge-set equality with a trusted sequential
//! reference, cross-checked against the Kruskal-independent certificate of
//! [`crate::certify`] so the reference and the certifier vouch for each
//! other.

use std::collections::HashSet;

use msf_graph::EdgeList;
use msf_primitives::unionfind::UnionFind;

use crate::MsfResult;

/// How many differing edge ids to include in a mismatch message.
const DIFF_SAMPLE: usize = 5;

/// The ids in `a` but not `b`, ascending, at most [`DIFF_SAMPLE`] of them.
/// Hash-set membership keeps the diff O(k) rather than the O(k²) that
/// repeated `contains` scans on large forests would cost.
fn sample_diff(a: &[u32], b: &[u32]) -> Vec<u32> {
    let b: HashSet<u32> = b.iter().copied().collect();
    let mut out: Vec<u32> = a.iter().copied().filter(|id| !b.contains(id)).collect();
    out.sort_unstable();
    out.truncate(DIFF_SAMPLE);
    out
}

/// Verify that `result` is a minimum spanning forest of `g`.
///
/// Checks, in order:
/// 1. every edge id is valid and used at most once;
/// 2. the edges are acyclic (union–find accepts every one);
/// 3. the forest spans: tree count equals the component count of `g`;
/// 4. the reported weight and component fields are consistent;
/// 5. the edge set equals the (unique) MSF computed by Kruskal;
/// 6. the Kruskal comparison and the self-contained optimality certificate
///    of [`crate::certify::certify_msf`] reach the same verdict — a
///    disagreement means the *verifiers* are buggy, and is reported as such.
pub fn verify_msf(g: &EdgeList, result: &MsfResult) -> Result<(), String> {
    let n = g.num_vertices();
    let m = g.num_edges();

    let mut seen = vec![false; m];
    for &id in &result.edges {
        let id = id as usize;
        if id >= m {
            return Err(format!("edge id {id} out of range (m = {m})"));
        }
        if seen[id] {
            return Err(format!("edge id {id} used twice"));
        }
        seen[id] = true;
    }

    let mut uf = UnionFind::new(n);
    for &id in &result.edges {
        let e = g.edge(id);
        if !uf.union(e.u as usize, e.v as usize) {
            return Err(format!("edge id {id} closes a cycle"));
        }
    }

    let components = msf_graph::validate::component_count(g);
    if uf.set_count() != components {
        return Err(format!(
            "forest has {} trees but the graph has {} components — not spanning",
            uf.set_count(),
            components
        ));
    }
    if result.components as usize != components {
        return Err(format!(
            "result reports {} components, graph has {components}",
            result.components
        ));
    }

    let weight: f64 = result.edges.iter().map(|&id| g.edge(id).w).sum();
    if (weight - result.total_weight).abs() > 1e-9 * weight.abs().max(1.0) {
        return Err(format!(
            "reported weight {} != recomputed {weight}",
            result.total_weight
        ));
    }

    let reference = crate::seq::kruskal::msf(g);
    let kruskal_verdict = if reference.edges == result.edges {
        Ok(())
    } else {
        let missing = sample_diff(&reference.edges, &result.edges);
        let extra = sample_diff(&result.edges, &reference.edges);
        Err(format!(
            "edge set differs from the unique MSF (missing e.g. {missing:?}, extra e.g. {extra:?})"
        ))
    };

    // Independent second opinion: the cut/cycle-property certificate never
    // runs Kruskal, so agreement here means a shared reference bug cannot
    // silently accept a wrong forest (nor a certifier bug reject a right
    // one).
    let certificate_verdict = crate::certify::certify_msf(g, result);
    match (kruskal_verdict, certificate_verdict) {
        (Ok(()), Ok(_)) => Ok(()),
        (Err(k), Err(_)) => Err(k),
        (Ok(()), Err(c)) => Err(format!(
            "verifier disagreement: matches the Kruskal reference but fails \
             certification ({c}) — one of the two verifiers is buggy"
        )),
        (Err(k), Ok(_)) => Err(format!(
            "verifier disagreement: certified optimal yet differs from the \
             Kruskal reference ({k}) — one of the two verifiers is buggy"
        )),
    }
}

/// Verify the MSF *without* recomputing a reference forest: structural
/// checks plus the cycle property — under the `(weight, id)` total order the
/// claimed forest is THE minimum spanning forest iff it spans and every
/// non-forest edge is strictly heavier than the maximum edge on the forest
/// path between its endpoints. O(n log n) build + O(m log n) queries, fully
/// independent of the Kruskal/Prim/Borůvka implementations.
pub fn verify_msf_cycle_property(g: &EdgeList, result: &MsfResult) -> Result<(), String> {
    let n = g.num_vertices();

    // Structural: acyclic + spanning (shared with verify_msf, recomputed
    // here so this function stands alone).
    let mut uf = UnionFind::new(n);
    let mut in_forest = vec![false; g.num_edges()];
    for &id in &result.edges {
        if id as usize >= g.num_edges() {
            return Err(format!("edge id {id} out of range"));
        }
        if in_forest[id as usize] {
            return Err(format!("edge id {id} used twice"));
        }
        in_forest[id as usize] = true;
        let e = g.edge(id);
        if !uf.union(e.u as usize, e.v as usize) {
            return Err(format!("edge id {id} closes a cycle"));
        }
    }
    if uf.set_count() != msf_graph::validate::component_count(g) {
        return Err("forest is not spanning".into());
    }

    // Cycle property via path-max queries over the claimed forest.
    let forest: Vec<(u32, u32, msf_graph::EdgeKey)> = result
        .edges
        .iter()
        .map(|&id| {
            let e = g.edge(id);
            (e.u, e.v, e.key())
        })
        .collect();
    let pm = msf_graph::pathmax::PathMaxForest::build(n, &forest);
    for e in g.edges() {
        if in_forest[e.id as usize] {
            continue;
        }
        match pm.path_max(e.u, e.v) {
            Some(path_max) if e.key() > path_max => {}
            Some(path_max) => {
                return Err(format!(
                    "non-forest edge {} (key {:?}) is not the maximum of its cycle \
                     (path max {:?}) — the forest is not minimum",
                    e.id,
                    e.key(),
                    path_max
                ));
            }
            None => {
                return Err(format!(
                    "non-forest edge {} connects two forest trees — not spanning",
                    e.id
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RunStats;
    use crate::{minimum_spanning_forest, Algorithm, MsfConfig, MsfResult};
    use msf_graph::generators::{random_graph, GeneratorConfig};

    fn fake_result(edges: Vec<u32>, weight: f64, components: u32) -> MsfResult {
        MsfResult {
            edges,
            total_weight: weight,
            components,
            stats: RunStats::default(),
        }
    }

    #[test]
    fn accepts_correct_forest() {
        let g = random_graph(&GeneratorConfig::with_seed(1), 100, 300);
        let r = minimum_spanning_forest(&g, Algorithm::Kruskal, &MsfConfig::default());
        verify_msf(&g, &r).unwrap();
    }

    #[test]
    fn rejects_cycle() {
        let g = EdgeList::from_triples(3, vec![(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]);
        let r = fake_result(vec![0, 1, 2], 6.0, 0);
        assert!(verify_msf(&g, &r).unwrap_err().contains("cycle"));
    }

    #[test]
    fn rejects_non_spanning() {
        let g = EdgeList::from_triples(3, vec![(0, 1, 1.0), (1, 2, 2.0)]);
        let r = fake_result(vec![0], 1.0, 2);
        assert!(verify_msf(&g, &r).unwrap_err().contains("not spanning"));
    }

    #[test]
    fn rejects_non_minimum() {
        // Spanning but picks the heavy edge.
        let g = EdgeList::from_triples(3, vec![(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]);
        let r = fake_result(vec![0, 2], 4.0, 1);
        assert!(verify_msf(&g, &r).unwrap_err().contains("differs"));
    }

    #[test]
    fn rejects_bad_ids_and_weights() {
        let g = EdgeList::from_triples(3, vec![(0, 1, 1.0), (1, 2, 2.0)]);
        assert!(verify_msf(&g, &fake_result(vec![7], 0.0, 1))
            .unwrap_err()
            .contains("out of range"));
        assert!(verify_msf(&g, &fake_result(vec![0, 0], 2.0, 1))
            .unwrap_err()
            .contains("twice"));
        let wrong_weight = fake_result(vec![0, 1], 999.0, 1);
        assert!(verify_msf(&g, &wrong_weight)
            .unwrap_err()
            .contains("weight"));
    }

    #[test]
    fn cycle_property_verifier_accepts_and_rejects() {
        let g = random_graph(&GeneratorConfig::with_seed(4), 200, 800);
        let good = minimum_spanning_forest(&g, Algorithm::BorFal, &MsfConfig::default());
        verify_msf_cycle_property(&g, &good).unwrap();

        // Swap one forest edge for a non-forest edge sharing the cut: the
        // result spans but is no longer minimum.
        let non_forest: u32 = (0..g.num_edges() as u32)
            .find(|id| !good.edges.contains(id))
            .expect("some non-forest edge exists");
        let e = g.edge(non_forest);
        // Find a forest edge on the path between its endpoints by removing
        // edges until connectivity between e.u and e.v breaks.
        let mut tampered = good.edges.clone();
        for i in 0..tampered.len() {
            let mut attempt = tampered.clone();
            attempt.remove(i);
            let mut uf = UnionFind::new(g.num_vertices());
            for &id in &attempt {
                let f = g.edge(id);
                uf.union(f.u as usize, f.v as usize);
            }
            if !uf.same(e.u as usize, e.v as usize) {
                attempt.push(non_forest);
                attempt.sort_unstable();
                tampered = attempt;
                break;
            }
        }
        let bad = MsfResult {
            edges: tampered,
            total_weight: 0.0,
            components: good.components,
            stats: RunStats::default(),
        };
        assert!(
            verify_msf_cycle_property(&g, &bad).is_err(),
            "swapped-edge forest must fail the cycle property"
        );
    }

    #[test]
    fn cycle_property_verifier_on_ties() {
        // All weights equal: only the id order distinguishes forests.
        let g = EdgeList::from_triples(4, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]);
        let good = minimum_spanning_forest(&g, Algorithm::Kruskal, &MsfConfig::default());
        verify_msf_cycle_property(&g, &good).unwrap();
        // The other spanning tree (ids 1,2,3) is spanning but not THE MSF.
        let bad = MsfResult {
            edges: vec![1, 2, 3],
            total_weight: 3.0,
            components: 1,
            stats: RunStats::default(),
        };
        assert!(verify_msf_cycle_property(&g, &bad).is_err());
    }

    #[test]
    fn rejects_wrong_component_count() {
        let g = EdgeList::from_triples(3, vec![(0, 1, 1.0), (1, 2, 2.0)]);
        let r = fake_result(vec![0, 1], 3.0, 5);
        assert!(verify_msf(&g, &r).unwrap_err().contains("components"));
    }
}
