//! # msf-core
//!
//! The minimum-spanning-forest algorithms of Bader & Cong (IPPS 2004):
//!
//! | Algorithm | Paper § | Module |
//! |---|---|---|
//! | Prim (binary heap)            | 5.2 | [`seq::prim`] |
//! | Kruskal (bottom-up merge sort)| 5.2 | [`seq::kruskal`] |
//! | Borůvka (m log n, union-find) | 5.2 | [`seq::boruvka`] |
//! | Bor-EL (edge list + sample sort)        | 2.1 | [`par::bor_el`] |
//! | Bor-AL (adjacency arrays + 2-level sort)| 2.2 | [`par::bor_al`] |
//! | Bor-ALM (Bor-AL + per-thread arenas)    | 2.2 | [`par::bor_al`] |
//! | Bor-FAL (flexible adjacency list)       | 2.3 | [`par::bor_fal`] |
//! | MST-BC (concurrent Prim + Borůvka hybrid)| 4  | [`par::mst_bc`] |
//! | Bor-WriteMin (lock-free write-min filter-Borůvka) | — | [`par::bor_write_min`] |
//! | SF-Hook (CAS-hook front-end + cycle filter)       | — | [`par::sf_hook`] |
//! | Filter-Kruskal (sampling pivot + union-find filter)| — | [`par::filter_kruskal`] |
//!
//! Every algorithm solves the minimum spanning **forest** problem and, with
//! the `(weight, edge id)` total order, produces exactly the same edge set —
//! the invariant the verification module and test suite enforce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certify;
pub mod fuzz;
pub mod job;
pub mod par;
pub mod seq;
pub mod stats;
pub mod verify;

use msf_graph::EdgeList;
use stats::RunStats;

/// Which MSF algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Sequential Prim with binary heap.
    Prim,
    /// Sequential Kruskal with non-recursive merge sort.
    Kruskal,
    /// Sequential m log n Borůvka.
    Boruvka,
    /// Parallel Borůvka, edge-list representation (global sample sort).
    BorEl,
    /// Parallel Borůvka, adjacency arrays (two-level sort).
    BorAl,
    /// Bor-AL with per-thread arena memory management.
    BorAlm,
    /// Parallel Borůvka, flexible adjacency list.
    BorFal,
    /// Bor-FAL behind sampling + cycle-property edge filtering (the
    /// extension argued for in the paper's §3 analysis).
    BorFalFilter,
    /// Parallel Borůvka on an adjacency matrix (JáJá's dense compact-graph;
    /// the representation behind the earlier Dehne & Götz study). Θ(n²)
    /// memory — small dense inputs only.
    BorDense,
    /// The new hybrid algorithm (concurrent Prim growth + contraction).
    MstBc,
    /// Lock-free filter-Borůvka: per-endpoint atomic write-min races under
    /// the packed `(weight bits, edge id)` key, recursing on the filtered
    /// (relabel-only, multi-edges kept) edge list.
    BorWriteMin,
    /// Lock-free spanning-forest front-end: CAS-hooks each supervertex's
    /// minimum edge into a concurrent union-find, then finishes with the
    /// sampling + cycle-property filter over the reduced graph.
    SfHook,
    /// Sampling filter-Kruskal: pivot-partition the edge list, recurse on
    /// the light side, prune the heavy side through a concurrent union-find
    /// (the cycle property again), recurse on the survivors.
    FilterKruskal,
}

impl Algorithm {
    /// All algorithms, sequential baselines first.
    pub const ALL: [Algorithm; 13] = [
        Algorithm::Prim,
        Algorithm::Kruskal,
        Algorithm::Boruvka,
        Algorithm::BorEl,
        Algorithm::BorAl,
        Algorithm::BorAlm,
        Algorithm::BorFal,
        Algorithm::BorFalFilter,
        Algorithm::BorDense,
        Algorithm::MstBc,
        Algorithm::BorWriteMin,
        Algorithm::SfHook,
        Algorithm::FilterKruskal,
    ];

    /// The parallel algorithms compared in the paper's Figs. 4–6, plus the
    /// lock-free speed contenders adjudicated against them.
    pub const PARALLEL: [Algorithm; 8] = [
        Algorithm::BorEl,
        Algorithm::BorAl,
        Algorithm::BorAlm,
        Algorithm::BorFal,
        Algorithm::MstBc,
        Algorithm::BorWriteMin,
        Algorithm::SfHook,
        Algorithm::FilterKruskal,
    ];

    /// The CLI/wire slug (lower-case, hyphenated; `parse` inverts it).
    pub fn slug(self) -> &'static str {
        match self {
            Algorithm::Prim => "prim",
            Algorithm::Kruskal => "kruskal",
            Algorithm::Boruvka => "boruvka",
            Algorithm::BorEl => "bor-el",
            Algorithm::BorAl => "bor-al",
            Algorithm::BorAlm => "bor-alm",
            Algorithm::BorFal => "bor-fal",
            Algorithm::BorFalFilter => "bor-fal-filter",
            Algorithm::BorDense => "bor-dense",
            Algorithm::MstBc => "mst-bc",
            Algorithm::BorWriteMin => "bor-write-min",
            Algorithm::SfHook => "sf-hook",
            Algorithm::FilterKruskal => "filter-kruskal",
        }
    }

    /// Parse a slug (case-insensitive); inverse of [`Algorithm::slug`].
    pub fn parse(s: &str) -> Option<Algorithm> {
        let lower = s.to_ascii_lowercase();
        Algorithm::ALL.iter().copied().find(|a| a.slug() == lower)
    }

    /// The paper's name for the algorithm.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Prim => "Prim",
            Algorithm::Kruskal => "Kruskal",
            Algorithm::Boruvka => "Boruvka",
            Algorithm::BorEl => "Bor-EL",
            Algorithm::BorAl => "Bor-AL",
            Algorithm::BorAlm => "Bor-ALM",
            Algorithm::BorFal => "Bor-FAL",
            Algorithm::BorFalFilter => "Bor-FAL+filter",
            Algorithm::BorDense => "Bor-Dense",
            Algorithm::MstBc => "MST-BC",
            Algorithm::BorWriteMin => "Bor-WriteMin",
            Algorithm::SfHook => "SF-Hook",
            Algorithm::FilterKruskal => "Filter-Kruskal",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Run-time configuration shared by all algorithms.
#[derive(Debug, Clone)]
pub struct MsfConfig {
    /// Logical processor count `p`: the number of SPMD workers (MST-BC) and
    /// of parallel blocks (Borůvka variants). On a machine whose rayon pool
    /// is at least this wide it is also the physical parallelism.
    pub threads: usize,
    /// MST-BC recurses until the contracted problem has at most this many
    /// vertices, then solves it sequentially (the paper's `nb`).
    pub base_size: usize,
    /// MST-BC: randomly permute the vertex visit order (the paper's
    /// progress-with-high-probability safeguard).
    pub shuffle: bool,
    /// MST-BC: steal vertices from other processors' partitions when your
    /// own is exhausted.
    pub work_stealing: bool,
    /// Seed for the MST-BC permutation.
    pub seed: u64,
    /// Bor-EL: replace the comparison sample sort in compact-graph with a
    /// comparison-free radix grouping over packed endpoint pairs (the
    /// counting-sort ablation of bench `ablation_compact`).
    pub radix_compact: bool,
}

impl Default for MsfConfig {
    fn default() -> Self {
        MsfConfig {
            threads: rayon::current_num_threads().max(1),
            base_size: 64,
            shuffle: true,
            work_stealing: true,
            seed: 0xB0C0,
            radix_compact: false,
        }
    }
}

impl MsfConfig {
    /// Config with an explicit processor count.
    pub fn with_threads(threads: usize) -> Self {
        MsfConfig {
            threads: threads.max(1),
            ..Self::default()
        }
    }
}

/// The result of an MSF computation.
#[derive(Debug, Clone)]
pub struct MsfResult {
    /// Input edge ids in the forest, sorted ascending (so results compare
    /// with `==`).
    pub edges: Vec<u32>,
    /// Sum of selected edge weights.
    pub total_weight: f64,
    /// Number of trees in the forest (== connected components of the input,
    /// counting isolated vertices).
    pub components: u32,
    /// Timing, iteration, and modeled-cost statistics.
    pub stats: RunStats,
}

impl MsfResult {
    /// A stable 64-bit fingerprint of the forest: FNV-1a over the sorted
    /// edge ids, the weight bits, and the tree count. Because the
    /// `(weight, edge id)` total order makes the MSF unique, every
    /// algorithm — and every client of a serving daemon — must observe the
    /// same checksum for the same input graph.
    pub fn checksum(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x1000_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        for &id in &self.edges {
            eat(&id.to_le_bytes());
        }
        eat(&self.total_weight.to_bits().to_le_bytes());
        eat(&self.components.to_le_bytes());
        h
    }

    pub(crate) fn from_ids(g: &EdgeList, mut ids: Vec<u32>, stats: RunStats) -> Self {
        ids.sort_unstable();
        debug_assert!(ids.windows(2).all(|w| w[0] != w[1]), "duplicate MSF edge");
        let total_weight = ids.iter().map(|&id| g.edge(id).w).sum();
        let components = (g.num_vertices() - ids.len()) as u32;
        MsfResult {
            edges: ids,
            total_weight,
            components,
            stats,
        }
    }
}

/// Compute the minimum spanning forest of `g` with the chosen algorithm.
///
/// When tracing is enabled (see [`msf_primitives::obs`]) the whole
/// computation is wrapped in a `run` span whose BEGIN event carries
/// `(n, m)` and whose END event carries `(forest edges, components)`.
/// Inner runs (the filter front-end, MST-BC base cases through this entry
/// point) nest their own `run` spans inside it.
pub fn minimum_spanning_forest(g: &EdgeList, algorithm: Algorithm, cfg: &MsfConfig) -> MsfResult {
    let run_span = msf_primitives::obs::span(
        msf_primitives::obs::SpanKind::Run,
        g.num_vertices() as u64,
        g.num_edges() as u64,
    );
    let result = dispatch(g, algorithm, cfg);
    run_span.end_with(result.edges.len() as u64, u64::from(result.components));
    result
}

fn dispatch(g: &EdgeList, algorithm: Algorithm, cfg: &MsfConfig) -> MsfResult {
    match algorithm {
        Algorithm::Prim => seq::prim::msf(g),
        Algorithm::Kruskal => seq::kruskal::msf(g),
        Algorithm::Boruvka => seq::boruvka::msf(g),
        Algorithm::BorEl => par::bor_el::msf(g, cfg),
        Algorithm::BorAl => par::bor_al::msf(g, cfg, par::bor_al::AllocPolicy::SystemHeap),
        Algorithm::BorAlm => par::bor_al::msf(g, cfg, par::bor_al::AllocPolicy::ThreadArena),
        Algorithm::BorFal => par::bor_fal::msf(g, cfg),
        Algorithm::BorFalFilter => par::filter::msf(g, cfg),
        Algorithm::BorDense => par::bor_dense::msf(g, cfg),
        Algorithm::MstBc => par::mst_bc::msf(g, cfg),
        Algorithm::BorWriteMin => par::bor_write_min::msf(g, cfg),
        Algorithm::SfHook => par::sf_hook::msf(g, cfg),
        Algorithm::FilterKruskal => par::filter_kruskal::msf(g, cfg),
    }
}

/// Run the three sequential baselines and return the fastest result — the
/// paper always reports speedup "compared with the best sequential
/// algorithm" (§5.2).
pub fn best_sequential(g: &EdgeList) -> (Algorithm, MsfResult) {
    [Algorithm::Prim, Algorithm::Kruskal, Algorithm::Boruvka]
        .into_iter()
        .map(|a| (a, minimum_spanning_forest(g, a, &MsfConfig::default())))
        .min_by(|a, b| {
            a.1.stats
                .total_seconds
                .partial_cmp(&b.1.stats.total_seconds)
                .expect("finite timings")
        })
        .expect("non-empty candidate list")
}
