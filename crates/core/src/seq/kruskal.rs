//! Kruskal's algorithm with the paper's non-recursive merge sort ("which in
//! our experiments has superior performance over qsort, GNU quicksort, and
//! recursive merge sort for large inputs", §5.2) and union–find.

use msf_graph::EdgeList;
use msf_primitives::cost::Stopwatch;
use msf_primitives::sort::merge_sort_by;
use msf_primitives::unionfind::UnionFind;

use crate::stats::RunStats;
use crate::MsfResult;

/// Compute the MSF with sort-then-scan Kruskal.
pub fn msf(g: &EdgeList) -> MsfResult {
    let watch = Stopwatch::start();
    let n = g.num_vertices();
    let mut order: Vec<u32> = (0..g.num_edges() as u32).collect();
    let edges = g.edges();
    merge_sort_by(&mut order, |&a, &b| {
        edges[a as usize].key() < edges[b as usize].key()
    });
    let mut uf = UnionFind::new(n);
    let mut out = Vec::with_capacity(n.saturating_sub(1));
    for &id in &order {
        let e = edges[id as usize];
        if uf.union(e.u as usize, e.v as usize) {
            out.push(id);
            if out.len() + 1 == n {
                break; // spanning tree complete
            }
        }
    }
    let mut stats = RunStats::new("Kruskal", 1);
    stats.total_seconds = watch.seconds();
    MsfResult::from_ids(g, out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_light_edges_first() {
        let g = EdgeList::from_triples(
            4,
            vec![
                (0, 1, 4.0),
                (1, 2, 1.0),
                (2, 3, 2.0),
                (0, 3, 3.0),
                (0, 2, 5.0),
            ],
        );
        let r = msf(&g);
        // Sorted: 1.0(id1), 2.0(id2), 3.0(id3), 4.0(id0), 5.0(id4).
        assert_eq!(r.edges, vec![1, 2, 3]);
        assert_eq!(r.total_weight, 6.0);
    }

    #[test]
    fn forest_on_disconnected_input() {
        let g = EdgeList::from_triples(6, vec![(0, 1, 1.0), (3, 4, 1.0), (4, 5, 1.0)]);
        let r = msf(&g);
        assert_eq!(r.edges.len(), 3);
        assert_eq!(r.components, 3); // {0,1}, {2}, {3,4,5}
    }

    #[test]
    fn matches_prim_on_random_input() {
        use msf_graph::generators::{random_graph, GeneratorConfig};
        let g = random_graph(&GeneratorConfig::with_seed(9), 200, 800);
        assert_eq!(msf(&g).edges, super::super::prim::msf(&g).edges);
    }

    #[test]
    fn duplicate_weights_resolved_by_id() {
        let g = EdgeList::from_triples(3, vec![(0, 2, 1.0), (1, 2, 1.0), (0, 1, 1.0)]);
        assert_eq!(msf(&g).edges, vec![0, 1]);
    }
}
