//! Prim's algorithm with a binary heap — the strongest sequential baseline
//! on many of the paper's inputs ("Prim's algorithm can be 3 times faster
//! than Kruskal's algorithm for some inputs", §5.2).
//!
//! Restarting from every yet-unvisited vertex extends it to the minimum
//! spanning *forest* of disconnected inputs.

use msf_graph::{AdjacencyArray, EdgeKey, EdgeList, OrderedWeight};
use msf_primitives::cost::Stopwatch;
use msf_primitives::heap::IndexedHeap;

use crate::stats::RunStats;
use crate::MsfResult;

/// Sentinel "no connecting edge" marker in `edge_to`.
const NONE: u32 = u32::MAX;

/// Compute the MSF with heap-based Prim.
pub fn msf(g: &EdgeList) -> MsfResult {
    let watch = Stopwatch::start();
    let n = g.num_vertices();
    let csr = AdjacencyArray::from_edge_list(g);
    let mut heap: IndexedHeap<EdgeKey> = IndexedHeap::new(n);
    let mut in_tree = vec![false; n];
    let mut edge_to = vec![NONE; n];
    let mut out: Vec<u32> = Vec::with_capacity(n.saturating_sub(1));

    for start in 0..n as u32 {
        if in_tree[start as usize] {
            continue;
        }
        heap.reset();
        // Root enters with the always-first sentinel key and no parent edge.
        heap.insert_or_decrease(
            start,
            EdgeKey {
                w: OrderedWeight(f64::NEG_INFINITY),
                id: 0,
            },
        );
        edge_to[start as usize] = NONE;
        while let Some((_, v)) = heap.extract_min() {
            if in_tree[v as usize] {
                continue;
            }
            in_tree[v as usize] = true;
            if edge_to[v as usize] != NONE {
                out.push(edge_to[v as usize]);
            }
            for (u, w, id) in csr.neighbors(v) {
                if in_tree[u as usize] {
                    continue;
                }
                let key = EdgeKey {
                    w: OrderedWeight(w),
                    id,
                };
                if heap.insert_or_decrease(u, key) {
                    edge_to[u as usize] = id;
                }
            }
        }
    }

    let mut stats = RunStats::new("Prim", 1);
    stats.total_seconds = watch.seconds();
    MsfResult::from_ids(g, out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_path() {
        let g = EdgeList::from_triples(4, vec![(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]);
        let r = msf(&g);
        assert_eq!(r.edges, vec![0, 1, 2]);
        assert_eq!(r.total_weight, 6.0);
        assert_eq!(r.components, 1);
    }

    #[test]
    fn drops_heaviest_cycle_edge() {
        let g = EdgeList::from_triples(3, vec![(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]);
        let r = msf(&g);
        assert_eq!(r.edges, vec![0, 1]);
    }

    #[test]
    fn handles_forest_inputs() {
        // Two components + one isolated vertex.
        let g = EdgeList::from_triples(5, vec![(0, 1, 1.0), (2, 3, 5.0)]);
        let r = msf(&g);
        assert_eq!(r.edges, vec![0, 1]);
        assert_eq!(r.components, 3);
    }

    #[test]
    fn equal_weights_break_ties_by_id() {
        // Both cycle edges weigh 1.0; the smaller id must win.
        let g = EdgeList::from_triples(3, vec![(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]);
        let r = msf(&g);
        assert_eq!(r.edges, vec![0, 1]);
    }

    #[test]
    fn empty_and_single_vertex() {
        let r = msf(&EdgeList::from_triples(0, vec![]));
        assert!(r.edges.is_empty());
        assert_eq!(r.components, 0);
        let r = msf(&EdgeList::from_triples(1, vec![]));
        assert!(r.edges.is_empty());
        assert_eq!(r.components, 1);
    }
}
