//! The classic m log n sequential Borůvka: every round scans all edges to
//! find each component's minimum outgoing edge, merges along them, and
//! repeats until no merge happens. The third baseline of §5.2 (and what
//! earlier studies like Chung & Condon compared against).

use msf_graph::EdgeList;
use msf_primitives::cost::Stopwatch;
use msf_primitives::unionfind::UnionFind;

use crate::stats::RunStats;
use crate::MsfResult;

const NONE: u32 = u32::MAX;

/// Compute the MSF with sequential Borůvka rounds over a union–find.
pub fn msf(g: &EdgeList) -> MsfResult {
    let watch = Stopwatch::start();
    let n = g.num_vertices();
    let edges = g.edges();
    let mut uf = UnionFind::new(n);
    let mut best: Vec<u32> = vec![NONE; n]; // per-root best edge id this round
    let mut out: Vec<u32> = Vec::with_capacity(n.saturating_sub(1));

    loop {
        // find-min: per component root, the minimum outgoing edge.
        let mut any_candidate = false;
        for e in edges {
            let (ru, rv) = (uf.find(e.u as usize), uf.find(e.v as usize));
            if ru == rv {
                continue;
            }
            any_candidate = true;
            let key = e.key();
            for r in [ru, rv] {
                if best[r] == NONE || key < edges[best[r] as usize].key() {
                    best[r] = e.id;
                }
            }
        }
        if !any_candidate {
            break;
        }
        // Merge along the chosen edges. The same edge may be chosen by both
        // of its components; `union` returning false filters the duplicate.
        let mut merged = false;
        for slot in best.iter_mut() {
            let id = *slot;
            if id == NONE {
                continue;
            }
            *slot = NONE;
            let e = edges[id as usize];
            if uf.union(e.u as usize, e.v as usize) {
                out.push(id);
                merged = true;
            }
        }
        debug_assert!(merged, "a candidate round must merge something");
    }

    let mut stats = RunStats::new("Boruvka", 1);
    stats.total_seconds = watch.seconds();
    MsfResult::from_ids(g, out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle() {
        let g = EdgeList::from_triples(3, vec![(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]);
        assert_eq!(msf(&g).edges, vec![0, 1]);
    }

    #[test]
    fn forest_and_isolated_vertices() {
        let g = EdgeList::from_triples(7, vec![(0, 1, 1.0), (1, 2, 0.5), (4, 5, 2.0)]);
        let r = msf(&g);
        assert_eq!(r.edges, vec![0, 1, 2]);
        assert_eq!(r.components, 4); // {0,1,2}, {3}, {4,5}, {6}
    }

    #[test]
    fn matches_kruskal_on_random_inputs() {
        use msf_graph::generators::{random_graph, GeneratorConfig};
        for seed in 0..5u64 {
            let g = random_graph(&GeneratorConfig::with_seed(seed), 150, 400);
            assert_eq!(
                msf(&g).edges,
                super::super::kruskal::msf(&g).edges,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn handles_equal_weights() {
        // A 4-cycle of equal weights: ids 0,1,2 win by the tie-break order.
        let g = EdgeList::from_triples(4, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]);
        assert_eq!(msf(&g).edges, vec![0, 1, 2]);
    }

    #[test]
    fn empty_graph() {
        let r = msf(&EdgeList::from_triples(3, vec![]));
        assert!(r.edges.is_empty());
        assert_eq!(r.components, 3);
    }
}
