//! The sequential baselines (paper §5.2). Speedup in every figure is
//! measured against the *best* of these on the given input, which is what
//! makes the paper's speedups meaningful ("remarkable to note since the
//! sequential algorithm has very low overhead").

pub mod boruvka;
pub mod kruskal;
pub mod prim;

#[cfg(test)]
mod tests {
    use crate::{verify, Algorithm, MsfConfig};
    use msf_graph::generators::{random_graph, GeneratorConfig};

    /// All three baselines agree edge-for-edge on random graphs.
    #[test]
    fn baselines_agree() {
        let cfg = GeneratorConfig::with_seed(77);
        let g = random_graph(&cfg, 300, 900);
        let cfg_m = MsfConfig::default();
        let p = crate::minimum_spanning_forest(&g, Algorithm::Prim, &cfg_m);
        let k = crate::minimum_spanning_forest(&g, Algorithm::Kruskal, &cfg_m);
        let b = crate::minimum_spanning_forest(&g, Algorithm::Boruvka, &cfg_m);
        assert_eq!(p.edges, k.edges);
        assert_eq!(k.edges, b.edges);
        verify::verify_msf(&g, &p).unwrap();
    }
}
