//! Run statistics: per-iteration step breakdowns (Fig. 2), edge-decay
//! traces (Table 1), and modeled parallel cost (Figs. 4–6 on hosts with
//! fewer cores than the paper's testbed).

use msf_primitives::cost::{Stopwatch, WorkMeter};
use msf_primitives::obs;

/// Wall-clock and modeled cost of one Borůvka-style step within one
/// iteration.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepStats {
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Modeled cost: the maximum per-block [`WorkMeter`] cost of the step
    /// (barriers make a phase as slow as its slowest worker).
    pub modeled_max: u64,
    /// Total work across blocks (the `work / p` lower bound's numerator).
    pub modeled_total: u64,
}

impl StepStats {
    /// Assemble from per-block meters plus a wall-clock measurement.
    pub fn from_meters(seconds: f64, meters: &[WorkMeter]) -> Self {
        StepStats {
            seconds,
            modeled_max: msf_primitives::cost::modeled_time(meters),
            modeled_total: msf_primitives::cost::total_work(meters),
        }
    }

    /// A purely sequential step of the given cost.
    pub fn serial(seconds: f64, meter: WorkMeter) -> Self {
        StepStats {
            seconds,
            modeled_max: meter.cost(),
            modeled_total: meter.cost(),
        }
    }

    fn merge(&mut self, other: &StepStats) {
        self.seconds += other.seconds;
        self.modeled_max += other.modeled_max;
        self.modeled_total += other.modeled_total;
    }
}

/// Which Borůvka-structured step a [`StepSpan`] times. Maps one-to-one onto
/// the observability taxonomy in [`obs::SpanKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// One-time setup before the step loop.
    Setup,
    /// The find-min step (or MST-BC's tree-growth phase).
    FindMin,
    /// The connect-components step.
    Connect,
    /// The compact-graph step.
    Compact,
    /// A sequential base-case solve.
    BaseCase,
}

impl StepKind {
    fn span_kind(self) -> obs::SpanKind {
        match self {
            StepKind::Setup => obs::SpanKind::Setup,
            StepKind::FindMin => obs::SpanKind::FindMin,
            StepKind::Connect => obs::SpanKind::Connect,
            StepKind::Compact => obs::SpanKind::Compact,
            StepKind::BaseCase => obs::SpanKind::BaseCase,
        }
    }

    /// The metrics-registry wall-time histogram for this step kind. Every
    /// parallel variant funnels through [`StepSpan`], so these five statics
    /// cover all six algorithms without per-algorithm plumbing.
    fn wall_hist(self) -> &'static obs::metrics::LazyHistogram {
        use obs::metrics::LazyHistogram;
        static SETUP: LazyHistogram = LazyHistogram::new("phase.setup.wall_ns");
        static FIND_MIN: LazyHistogram = LazyHistogram::new("phase.find-min.wall_ns");
        static CONNECT: LazyHistogram = LazyHistogram::new("phase.connect.wall_ns");
        static COMPACT: LazyHistogram = LazyHistogram::new("phase.compact.wall_ns");
        static BASE_CASE: LazyHistogram = LazyHistogram::new("phase.base-case.wall_ns");
        match self {
            StepKind::Setup => &SETUP,
            StepKind::FindMin => &FIND_MIN,
            StepKind::Connect => &CONNECT,
            StepKind::Compact => &COMPACT,
            StepKind::BaseCase => &BASE_CASE,
        }
    }
}

/// Test-only wall-clock fault injection: `MSF_TEST_SLOW_PHASE_NS=<ns>`
/// sleeps that long inside every find-min step before its wall time is
/// read, slowing the measured wall clock without touching the modeled
/// cost. This is the lever CI uses to prove `msf regress` flags a genuine
/// slowdown; it must never be set outside tests.
fn test_slow_phase_ns() -> u64 {
    use std::sync::OnceLock;
    static SLOW_NS: OnceLock<u64> = OnceLock::new();
    *SLOW_NS.get_or_init(|| {
        std::env::var("MSF_TEST_SLOW_PHASE_NS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0)
    })
}

/// The single source for a step's wall time, modeled cost, and trace span.
///
/// `begin` starts the stopwatch and opens the matching [`obs`] span;
/// [`StepSpan::finish`] measures the wall clock exactly once, folds the
/// per-block meters (plus the per-phase launch overhead) into a
/// [`StepStats`], and closes the span with `a = modeled_max`,
/// `b = wall nanoseconds` ([`event_ns`] of the same `seconds` the stats
/// carry) — so a drained trace can be reconciled against [`IterationStats`]
/// *exactly*, not within a tolerance.
#[derive(Debug)]
pub struct StepSpan {
    kind: StepKind,
    watch: Stopwatch,
    span: obs::SpanGuard,
}

impl StepSpan {
    /// Start timing a step of `kind` in iteration `iteration` (0 for
    /// whole-run steps like setup).
    pub fn begin(kind: StepKind, iteration: usize) -> StepSpan {
        StepSpan {
            kind,
            span: obs::span(kind.span_kind(), iteration as u64, 0),
            watch: Stopwatch::start(),
        }
    }

    /// End the step: assemble its [`StepStats`] from the per-block meters
    /// and close the trace span. `phase_overhead` is the modeled cost of
    /// launching the phase (barrier + fork); it is charged to the critical
    /// path (`modeled_max`) once and to `modeled_total` once per block, so
    /// `modeled_total >= modeled_max` stays invariant.
    pub fn finish(self, meters: &[WorkMeter], phase_overhead: u64) -> StepStats {
        if self.kind == StepKind::FindMin {
            let slow_ns = test_slow_phase_ns();
            if slow_ns > 0 {
                std::thread::sleep(std::time::Duration::from_nanos(slow_ns));
            }
        }
        let seconds = self.watch.seconds();
        let stats = StepStats {
            seconds,
            modeled_max: msf_primitives::cost::modeled_time(meters) + phase_overhead,
            modeled_total: msf_primitives::cost::total_work(meters)
                + phase_overhead * meters.len().max(1) as u64,
        };
        self.kind.wall_hist().record(event_ns(seconds));
        self.span.end_with(stats.modeled_max, event_ns(seconds));
        stats
    }
}

/// The nanosecond encoding used for wall-clock seconds in trace-event args.
/// Exposed so consistency tests can recompute the exact same `u64` from
/// [`StepStats::seconds`].
pub fn event_ns(seconds: f64) -> u64 {
    (seconds * 1e9) as u64
}

/// One Borůvka-style iteration: problem size at entry plus the three step
/// costs. `directed_edges` is `2m` in the paper's Table 1 terminology.
#[derive(Debug, Clone, Default)]
pub struct IterationStats {
    /// Supervertices at iteration entry.
    pub vertices: usize,
    /// Directed edge entries at iteration entry (2m).
    pub directed_edges: usize,
    /// find-min step.
    pub find_min: StepStats,
    /// connect-components step.
    pub connect: StepStats,
    /// compact-graph step.
    pub compact: StepStats,
}

/// MST-BC behavioral counters, aggregated over all rounds and workers —
/// the observables behind §4's discussion of tree growth, collisions, and
/// work stealing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MstBcStats {
    /// Prim trees started (colors allocated and successfully claimed).
    pub trees: u64,
    /// Vertices folded into trees (visited). The remainder were handled by
    /// the step-3 Borůvka pass.
    pub visited: u64,
    /// Growths stopped because the heap yielded a foreign-colored vertex.
    pub collisions: u64,
    /// Growths stopped by the maturity check (a foreign-colored neighbor).
    pub matured: u64,
    /// Start vertices claimed from another worker's partition.
    pub steals: u64,
}

impl std::ops::Add for MstBcStats {
    type Output = MstBcStats;
    fn add(self, o: MstBcStats) -> MstBcStats {
        MstBcStats {
            trees: self.trees + o.trees,
            visited: self.visited + o.visited,
            collisions: self.collisions + o.collisions,
            matured: self.matured + o.matured,
            steals: self.steals + o.steals,
        }
    }
}

/// Statistics for a whole MSF run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Algorithm name (paper spelling).
    pub algorithm: &'static str,
    /// Logical processor count the run was configured with.
    pub threads: usize,
    /// Per-iteration traces (empty for the sequential baselines).
    pub iterations: Vec<IterationStats>,
    /// End-to-end wall-clock seconds.
    pub total_seconds: f64,
    /// End-to-end modeled parallel cost (sum over phases of each phase's
    /// slowest block). Divide a 1-thread run's value by a p-thread run's
    /// value for the modeled speedup curve.
    pub modeled_cost: u64,
    /// MST-BC behavioral counters (None for every other algorithm).
    pub mstbc: Option<MstBcStats>,
}

impl RunStats {
    /// Start a stats record for `algorithm` at width `threads`.
    pub fn new(algorithm: &'static str, threads: usize) -> Self {
        RunStats {
            algorithm,
            threads,
            ..Default::default()
        }
    }

    /// Append an iteration and fold its modeled cost into the total. Also
    /// records the supervertex shrink ratio versus the previous iteration
    /// (per-mille of vertices surviving, so a halving records 500) into the
    /// `boruvka.shrink_permille` histogram — the observable behind the
    /// paper's geometric-decay argument.
    pub fn push_iteration(&mut self, it: IterationStats) {
        use obs::metrics::LazyHistogram;
        static SHRINK: LazyHistogram = LazyHistogram::new("boruvka.shrink_permille");
        // Absolute companion to the shrink ratio: how many supervertices
        // were alive entering each round. Together with
        // `kernel.fused_bytes_read` this is the bandwidth-accounting pair —
        // live vertices say how large the round's frontier was, fused bytes
        // say what the contraction sweeps paid to shrink it.
        static LIVE: LazyHistogram = LazyHistogram::new("boruvka.round_live_vertices");
        LIVE.record(it.vertices as u64);
        if let Some(prev) = self.iterations.last() {
            if prev.vertices > 0 {
                SHRINK.record((it.vertices as u64 * 1000) / prev.vertices as u64);
            }
        }
        self.modeled_cost +=
            it.find_min.modeled_max + it.connect.modeled_max + it.compact.modeled_max;
        self.iterations.push(it);
    }

    /// Add cost that is outside the iteration structure (setup, base-case
    /// solve, recursion plumbing).
    pub fn add_flat_cost(&mut self, cost: u64) {
        self.modeled_cost += cost;
    }

    /// Aggregate step totals across iterations: (find-min, connect, compact)
    /// — the three stacked segments of the paper's Fig. 2 bars.
    pub fn step_totals(&self) -> (StepStats, StepStats, StepStats) {
        let mut fm = StepStats::default();
        let mut cc = StepStats::default();
        let mut cg = StepStats::default();
        for it in &self.iterations {
            fm.merge(&it.find_min);
            cc.merge(&it.connect);
            cg.merge(&it.compact);
        }
        (fm, cc, cg)
    }

    /// The Table 1 trace: `(2m, decrease, %decrease, m/n)` per iteration.
    pub fn edge_decay_table(&self) -> Vec<EdgeDecayRow> {
        let mut rows = Vec::with_capacity(self.iterations.len());
        let mut prev: Option<usize> = None;
        for (i, it) in self.iterations.iter().enumerate() {
            let decrease = prev.map(|p| p - it.directed_edges.min(p));
            rows.push(EdgeDecayRow {
                iteration: i + 1,
                directed_edges: it.directed_edges,
                decrease,
                percent_decrease: match (prev, decrease) {
                    (Some(p), Some(d)) if p > 0 => Some(100.0 * d as f64 / p as f64),
                    _ => None,
                },
                density: if it.vertices > 0 {
                    it.directed_edges as f64 / 2.0 / it.vertices as f64
                } else {
                    0.0
                },
            });
            prev = Some(it.directed_edges);
        }
        rows
    }
}

/// One row of the Table 1 reproduction.
#[derive(Debug, Clone, Copy)]
pub struct EdgeDecayRow {
    /// Iteration number (1-based, like the paper).
    pub iteration: usize,
    /// Size of the directed edge list (the paper's `2m` column).
    pub directed_edges: usize,
    /// Absolute decrease vs the previous iteration (`N/A` on the first).
    pub decrease: Option<usize>,
    /// Percentage decrease vs the previous iteration.
    pub percent_decrease: Option<f64>,
    /// Graph density m/n at iteration entry.
    pub density: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(max: u64) -> StepStats {
        StepStats {
            seconds: 0.1,
            modeled_max: max,
            modeled_total: max * 2,
        }
    }

    #[test]
    fn modeled_cost_accumulates_per_iteration() {
        let mut s = RunStats::new("X", 4);
        s.push_iteration(IterationStats {
            vertices: 100,
            directed_edges: 400,
            find_min: step(10),
            connect: step(5),
            compact: step(20),
        });
        s.push_iteration(IterationStats {
            vertices: 50,
            directed_edges: 300,
            find_min: step(8),
            connect: step(4),
            compact: step(15),
        });
        assert_eq!(s.modeled_cost, 35 + 27);
        s.add_flat_cost(7);
        assert_eq!(s.modeled_cost, 69);
        let (fm, cc, cg) = s.step_totals();
        assert_eq!(fm.modeled_max, 18);
        assert_eq!(cc.modeled_max, 9);
        assert_eq!(cg.modeled_max, 35);
        assert!((fm.seconds - 0.2).abs() < 1e-12);
    }

    #[test]
    fn from_meters_and_finish_keep_total_at_least_max() {
        let meters = [
            WorkMeter { mem: 10, ops: 5 },
            WorkMeter { mem: 2, ops: 100 },
            WorkMeter { mem: 0, ops: 0 },
        ];
        let s = StepStats::from_meters(0.5, &meters);
        assert!(s.modeled_total >= s.modeled_max);

        // StepSpan charges phase overhead to the critical path once and to
        // the total once per block, so the invariant survives the overhead.
        for overhead in [0u64, 1, 20_000] {
            for k in 1..=3usize {
                let sp = StepSpan::begin(StepKind::FindMin, 0);
                let s = sp.finish(&meters[..k], overhead);
                assert!(
                    s.modeled_total >= s.modeled_max,
                    "k={k} overhead={overhead}: {s:?}"
                );
            }
        }

        let serial = StepStats::serial(0.1, WorkMeter { mem: 3, ops: 7 });
        assert_eq!(serial.modeled_total, serial.modeled_max);
    }

    #[test]
    fn merge_is_additive_in_every_field() {
        let a = StepStats {
            seconds: 0.25,
            modeled_max: 10,
            modeled_total: 30,
        };
        let b = StepStats {
            seconds: 0.75,
            modeled_max: 7,
            modeled_total: 9,
        };
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.seconds, a.seconds + b.seconds);
        assert_eq!(m.modeled_max, 17);
        assert_eq!(m.modeled_total, 39);
        // Merging inputs that each satisfy total >= max preserves it.
        assert!(m.modeled_total >= m.modeled_max);
    }

    #[test]
    fn mesh_run_iteration_breakdowns_sum_to_run_totals() {
        let g = msf_graph::generators::mesh2d(
            &msf_graph::generators::GeneratorConfig::with_seed(1),
            12,
            12,
        );
        let cfg = crate::MsfConfig {
            threads: 2,
            ..Default::default()
        };
        let r = crate::minimum_spanning_forest(&g, crate::Algorithm::BorAl, &cfg);
        let stats = &r.stats;
        assert!(!stats.iterations.is_empty());

        // step_totals must be the exact fold of the per-iteration rows.
        let (fm, cc, cg) = stats.step_totals();
        let mut esum = (
            StepStats::default(),
            StepStats::default(),
            StepStats::default(),
        );
        for it in &stats.iterations {
            esum.0.merge(&it.find_min);
            esum.1.merge(&it.connect);
            esum.2.merge(&it.compact);
            for step in [&it.find_min, &it.connect, &it.compact] {
                assert!(step.modeled_total >= step.modeled_max, "{step:?}");
            }
        }
        assert_eq!(fm.modeled_max, esum.0.modeled_max);
        assert_eq!(cc.modeled_total, esum.1.modeled_total);
        assert_eq!(cg.modeled_max, esum.2.modeled_max);
        assert_eq!(fm.seconds, esum.0.seconds);

        // Bor-AL has no flat cost: the whole-run modeled cost is exactly
        // the sum of every step's critical path.
        assert_eq!(
            stats.modeled_cost,
            fm.modeled_max + cc.modeled_max + cg.modeled_max
        );
        // And the wall clock covers at least the steps it contains.
        let step_seconds = fm.seconds + cc.seconds + cg.seconds;
        assert!(stats.total_seconds >= step_seconds * 0.99);
    }

    #[test]
    fn edge_decay_table_matches_paper_layout() {
        let mut s = RunStats::new("Bor-EL", 1);
        for (n, m2) in [(100usize, 1000usize), (50, 800), (10, 100)] {
            s.push_iteration(IterationStats {
                vertices: n,
                directed_edges: m2,
                ..Default::default()
            });
        }
        let rows = s.edge_decay_table();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].decrease, None);
        assert_eq!(rows[1].decrease, Some(200));
        assert!((rows[1].percent_decrease.unwrap() - 20.0).abs() < 1e-9);
        assert!((rows[2].density - 5.0).abs() < 1e-9);
    }
}
