//! Bor-FAL: parallel Borůvka on the flexible adjacency list (paper §2.3).
//!
//! compact-graph becomes a small sort plus pointer appends — no edge is ever
//! rewritten or copied, and its cost depends only on the number of
//! supervertices. In exchange, find-min must translate endpoints through
//! the vertex→supervertex lookup table and filter self-loops and
//! multi-edges on the fly, so its cost stays O(m) every iteration. Fewer
//! memory *writes* is the key SMP win: "memory writes typically generate
//! more cache coherency transactions than do reads".

use msf_graph::{EdgeKey, EdgeList, FlexAdjacencyList, OrderedWeight};
use msf_primitives::cost::{Stopwatch, WorkMeter};
use msf_primitives::obs;
use rayon::prelude::*;

use crate::par::common::{connect_components, emit_unique, PHASE_OVERHEAD};
use crate::stats::{IterationStats, RunStats, StepKind, StepSpan};
use crate::{MsfConfig, MsfResult};

/// Compute the MSF with Bor-FAL.
pub fn msf(g: &EdgeList, cfg: &MsfConfig) -> MsfResult {
    let watch = Stopwatch::start();
    let p = cfg.threads.max(1);
    let mut stats = RunStats::new("Bor-FAL", p);

    let mut flex = FlexAdjacencyList::new(g);
    let mut out: Vec<u32> = Vec::with_capacity(g.num_vertices().saturating_sub(1));
    // The flexible list never shrinks the edge set, so the 2m column of the
    // iteration trace is constant — exactly what the paper reports about
    // Bor-FAL's compact step ("almost the same for the three input graphs
    // because it only depends on the number of vertices").
    let directed_edges = flex.base().num_directed_edges();

    loop {
        let n = flex.num_supervertices();
        if n <= 1 {
            break;
        }
        let mut it = IterationStats {
            vertices: n,
            directed_edges,
            ..Default::default()
        };
        let _iteration = obs::span(
            obs::SpanKind::Iteration,
            stats.iterations.len() as u64,
            n as u64,
        );

        // Step 1: find-min with on-the-fly translation + self-loop filter.
        let step = StepSpan::begin(StepKind::FindMin, stats.iterations.len());
        let mut fm_meters = vec![WorkMeter::new(); p];
        let (to, chosen, any) = find_min(&flex, p, &mut fm_meters);
        it.find_min = step.finish(&fm_meters, PHASE_OVERHEAD);
        if !any {
            // Every supervertex is mature: the forest is complete. This
            // probe iteration is not pushed onto the stats, so its find-min
            // span is a trailing singleton in the trace.
            break;
        }
        emit_unique(&mut out, chosen);

        // Step 2: connect-components.
        let step = StepSpan::begin(StepKind::Connect, stats.iterations.len());
        let mut cc_meters = vec![WorkMeter::new(); p];
        let (labels, k) = connect_components(to, p, &mut cc_meters);
        it.connect = step.finish(&cc_meters, PHASE_OVERHEAD);

        // Step 3: compact-graph — membership appends + lookup-table rewrite.
        let step = StepSpan::begin(StepKind::Compact, stats.iterations.len());
        let mut cg_meter = WorkMeter::new();
        cg_meter.ops(n as u64); // membership moves
        cg_meter.mem(flex.labels().len() as u64 / p as u64 + 1); // table rewrite

        // Bor-FAL's compact never touches edge data — its entire bandwidth
        // bill is the membership moves plus the u32 lookup-table rewrite
        // (one read of the old label, one write of the new), which is why it
        // shows the smallest kernel.fused_bytes_read of the Borůvka family
        // (DESIGN.md §15).
        msf_primitives::fused::record_traffic((8 * flex.labels().len() + 4 * n) as u64);
        flex.compact(&labels, k as usize);
        it.compact = step.finish(
            &vec![
                WorkMeter {
                    mem: cg_meter.mem,
                    ops: cg_meter.ops / p as u64 + 1,
                };
                p
            ],
            PHASE_OVERHEAD,
        );

        stats.push_iteration(it);
    }

    stats.total_seconds = watch.seconds();
    MsfResult::from_ids(g, out, stats)
}

/// find-min across supervertices: scan every member's base adjacency list,
/// translating targets through the lookup table; returns hook targets,
/// chosen edge ids, and whether any supervertex still had an external edge.
///
/// Work is partitioned over *member vertices*, not supervertices: once a
/// giant supervertex absorbs most of the graph, per-supervertex blocks
/// would leave one worker with nearly all edges ("load balancing among the
/// processors as the algorithm progresses" — the same balancing concern the
/// paper raises for find-min). Blocks may split a supervertex, so each
/// worker returns per-supervertex partial minima that a cheap sequential
/// pass merges.
fn find_min(
    flex: &FlexAdjacencyList,
    p: usize,
    meters: &mut [WorkMeter],
) -> (Vec<u32>, Vec<u32>, bool) {
    let n = flex.num_supervertices();
    // Prefix offsets of the virtual concatenation of all member lists.
    let mut offs: Vec<usize> = Vec::with_capacity(n + 1);
    offs.push(0);
    for s in 0..n as u32 {
        offs.push(offs[s as usize] + flex.members(s).len());
    }
    let total = offs[n];

    // Each worker scans a balanced slice of members and emits (supervertex,
    // best key, hook target, edge id) partials in supervertex order.
    type Partial = (u32, EdgeKey, u32, u32);
    let parts: Vec<(Vec<Partial>, WorkMeter)> = (0..p)
        .into_par_iter()
        .map(|t| {
            let r = msf_primitives::block_range(total, p, t);
            let mut meter = WorkMeter::new();
            let mut partials: Vec<(u32, EdgeKey, u32, u32)> = Vec::new();
            if r.is_empty() {
                return (partials, meter);
            }
            // First supervertex whose members overlap this block.
            let mut s = offs.partition_point(|&o| o <= r.start) - 1;
            let mut idx = r.start;
            while idx < r.end {
                let seg_end = offs[s + 1].min(r.end);
                let members = flex.members(s as u32);
                let local = &members[idx - offs[s]..seg_end - offs[s]];
                let mut best: Option<(EdgeKey, u32, u32)> = None;
                for &v in local {
                    meter.mem(1); // member hop (the linked-list pointer chase)
                    for (ts, w, id) in flex.base().neighbors(v) {
                        // Every scan translates through the lookup table:
                        // one scattered read per edge entry.
                        meter.mem(1);
                        meter.ops(1);
                        let ts = flex.supervertex_of(ts);
                        if ts == s as u32 {
                            continue; // self-loop filtered in find-min
                        }
                        let key = EdgeKey {
                            w: OrderedWeight(w),
                            id,
                        };
                        if best.is_none_or(|(bk, _, _)| key < bk) {
                            best = Some((key, ts, id));
                        }
                    }
                }
                if let Some((key, ts, id)) = best {
                    partials.push((s as u32, key, ts, id));
                }
                idx = seg_end;
                s += 1;
            }
            (partials, meter)
        })
        .collect();

    // Merge partials (a supervertex split across blocks contributes one
    // partial per block; keep the minimum).
    let mut to: Vec<u32> = (0..n as u32).collect();
    let mut best_key: Vec<EdgeKey> = vec![EdgeKey::MAX; n];
    let mut chosen_of: Vec<u32> = vec![u32::MAX; n];
    for (t, (partials, m)) in parts.into_iter().enumerate() {
        meters[t] = meters[t] + m;
        for (s, key, ts, id) in partials {
            if key < best_key[s as usize] {
                best_key[s as usize] = key;
                to[s as usize] = ts;
                chosen_of[s as usize] = id;
            }
        }
    }
    let chosen: Vec<u32> = chosen_of.into_iter().filter(|&id| id != u32::MAX).collect();
    let any = !chosen.is_empty();
    (to, chosen, any)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msf_graph::generators::{random_graph, GeneratorConfig};

    fn cfg(p: usize) -> MsfConfig {
        MsfConfig::with_threads(p)
    }

    #[test]
    fn triangle() {
        let g = EdgeList::from_triples(3, vec![(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]);
        let r = msf(&g, &cfg(2));
        assert_eq!(r.edges, vec![0, 1]);
    }

    #[test]
    fn matches_kruskal_on_random_graphs() {
        for seed in 0..4u64 {
            let g = random_graph(&GeneratorConfig::with_seed(seed), 400, 1600);
            let expect = crate::seq::kruskal::msf(&g);
            for p in [1, 2, 4] {
                assert_eq!(msf(&g, &cfg(p)).edges, expect.edges, "seed {seed}, p {p}");
            }
        }
    }

    #[test]
    fn disconnected_input_terminates_via_maturity() {
        let g = EdgeList::from_triples(6, vec![(0, 1, 1.0), (2, 3, 2.0), (3, 4, 0.5)]);
        let r = msf(&g, &cfg(2));
        assert_eq!(r.edges, vec![0, 1, 2]);
        assert_eq!(r.components, 3);
    }

    #[test]
    fn paper_fig1_example() {
        // The 6-vertex graph of the paper's Fig. 1.
        let g = EdgeList::from_triples(
            6,
            vec![
                (0, 4, 1.0),
                (0, 1, 2.0),
                (1, 5, 3.0),
                (4, 2, 4.0),
                (2, 3, 5.0),
                (3, 5, 6.0),
            ],
        );
        let r = msf(&g, &cfg(2));
        assert_eq!(r.edges, crate::seq::kruskal::msf(&g).edges);
        assert_eq!(r.components, 1);
        assert_eq!(r.edges.len(), 5);
    }

    #[test]
    fn iteration_trace_has_constant_edge_column() {
        let g = random_graph(&GeneratorConfig::with_seed(2), 300, 900);
        let r = msf(&g, &cfg(2));
        assert!(r.stats.iterations.len() >= 2);
        for it in &r.stats.iterations {
            assert_eq!(
                it.directed_edges, 1800,
                "Bor-FAL never shrinks the edge set"
            );
        }
    }
}
