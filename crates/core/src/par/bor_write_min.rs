//! Bor-WriteMin: filter-Borůvka with per-endpoint atomic write-min races
//! (the parlaylib `boruvka.h` shape).
//!
//! The paper's §2 variants all pay a sort- or list-surgery-based
//! compact-graph step every iteration to keep find-min cheap. This
//! contender drops that bargain entirely:
//!
//! 1. **find-min** is a lock-free race: every surviving edge lowers both
//!    endpoints' [`MinSlots`] cells to its own index under the packed
//!    `(weight bits, edge id)` key. No segments, no sort — one linear pass
//!    over the edge array, O(m) atomic RMWs.
//! 2. **connect** star-contracts the chosen pseudo-forest by the suite's
//!    deterministic rule (mutual pairs broken at the smaller index, pointer
//!    jumping, consecutive relabel) — the "deterministic rule" alternative
//!    to coin-flipping, chosen so the contraction is schedule-independent.
//! 3. **compact** merely relabels endpoints and filters self-loops,
//!    *keeping multi-edges* — the "recursion on the filtered edge list" of
//!    filter-Borůvka. Each round is O(m_i) with no reordering, so the edge
//!    array stays in original-id order forever (the property the base case
//!    leans on).
//!
//! **The fused hot path** (default; `MSF_UNFUSED=1` selects the retained
//! multi-pass shape in [`msf_unfused`]) reads each surviving edge once per
//! round instead of twice-plus:
//!
//! * round 0 races directly over the input edge array — [`EdgeList`]
//!   admits no self-loops, so the setup copy of the undirected list the
//!   multi-pass shape makes is pure bandwidth and is never materialized;
//! * each compact sweep relabels, filters, writes the compacted survivor —
//!   **and runs the next round's write-min race on it in the same read**.
//!   The race value is the edge's index into the *pre-contraction* array
//!   (immutable during the sweep, so the key closure never aliases the
//!   output being staged); the next find-min merely harvests the quiescent
//!   slots, translating winner endpoints through that round's labels.
//!
//! The race outcome is the same either way — identical candidate set,
//! identical keys — and every modeled charge is a pure function of
//! `(m, n, p)` attributed to the same steps, so fused and unfused runs
//! produce bit-identical forests at exactly equal modeled cost; only the
//! DRAM traffic differs. See DESIGN.md §15 for the dataflow.
//!
//! The recursion bottoms out on a sequential Kruskal over the contracted
//! multigraph once few edges survive, amortizing the long tail of tiny
//! rounds. Because every pass preserves relative edge order and original
//! ids ride along, position order in the base problem equals original-id
//! order and the `(weight, id)` tie-break is preserved end to end: the
//! output is the suite-wide unique forest, bit-identical at every thread
//! count and under `MSF_SEQUENTIAL`.

use msf_graph::{Edge, EdgeList};
use msf_primitives::atomic::{packed_edge_key, MinSlots, EMPTY};
use msf_primitives::cost::{Stopwatch, WorkMeter};
use msf_primitives::obs;
use rayon::prelude::*;

use crate::par::common::{
    collect_undirected, connect_components, emit_unique, relabel_and_filter, write_min_race,
    PHASE_OVERHEAD,
};
use crate::stats::{IterationStats, RunStats, StepKind, StepSpan};
use crate::{MsfConfig, MsfResult};

/// Below this many surviving edges the races stop paying for their phase
/// overhead and a sequential Kruskal finishes the contracted multigraph.
const BASE_CASE_EDGES: usize = 256;

/// Compute the MSF with Bor-WriteMin.
pub fn msf(g: &EdgeList, cfg: &MsfConfig) -> MsfResult {
    if msf_primitives::fused::unfused() {
        msf_unfused(g, cfg)
    } else {
        msf_fused(g, cfg)
    }
}

/// This round's edge array: round 0 reads the input graph in place (the
/// fused path never copies it); later rounds own their filtered list.
enum Round<'a> {
    Input(&'a [Edge]),
    Owned(Vec<Edge>),
}

impl Round<'_> {
    #[inline]
    fn edges(&self) -> &[Edge] {
        match self {
            Round::Input(s) => s,
            Round::Owned(v) => v,
        }
    }
}

/// The fused hot path: one read of each surviving edge per round.
fn msf_fused(g: &EdgeList, cfg: &MsfConfig) -> MsfResult {
    let p = cfg.threads.max(1);
    let watch = Stopwatch::start();
    let mut stats = RunStats::new("Bor-WriteMin", p);

    // Setup. The multi-pass shape copies the undirected list here; the
    // input list already carries no self-loops, so this path races round 0
    // over it in place and only charges the copy's modeled cost (one read
    // per edge per block — the identical formula `collect_undirected`
    // charges).
    let setup = StepSpan::begin(StepKind::Setup, 0);
    let mut setup_meters = vec![WorkMeter::new(); p];
    let all = g.edges();
    for (t, m) in setup_meters.iter_mut().enumerate() {
        m.mem(msf_primitives::block_range(all.len(), p, t).len() as u64);
    }
    stats.add_flat_cost(setup.finish(&setup_meters, PHASE_OVERHEAD).modeled_max);

    let mut n = g.num_vertices();
    let mut out: Vec<u32> = Vec::with_capacity(n.saturating_sub(1));

    let mut cur = Round::Input(all);
    // The race already run over `cur` by the previous compact sweep: the
    // quiescent slots, the pre-contraction array their values index, and
    // the labels translating that array's endpoints into `cur`'s space.
    let mut pending: Option<(MinSlots, Round, Vec<u32>)> = None;

    while !cur.edges().is_empty() {
        if cur.edges().len() <= BASE_CASE_EDGES {
            base_case(n, cur.edges(), &mut out, &mut stats);
            break;
        }
        let m_cur = cur.edges().len();
        let mut it = IterationStats {
            vertices: n,
            directed_edges: 2 * m_cur,
            ..Default::default()
        };
        let _iteration = obs::span(
            obs::SpanKind::Iteration,
            stats.iterations.len() as u64,
            n as u64,
        );

        // Step 1: find-min. Round 0 races here; later rounds raced during
        // the previous compact sweep and only harvest the winners, charging
        // the standalone race's exact formula (slot init amortized over the
        // blocks, two atomic RMWs per surviving edge) where the RMWs were
        // actually issued on this step's behalf.
        let step = StepSpan::begin(StepKind::FindMin, stats.iterations.len());
        let mut fm_meters = vec![WorkMeter::new(); p];
        let (chosen, to) = match pending.take() {
            None => {
                let slots = write_min_race(cur.edges(), n, p, &mut fm_meters);
                harvest(cur.edges(), &slots, n, p, &mut fm_meters, |e, v| {
                    (e.id, e.other(v))
                })
            }
            Some((slots, prev, prev_labels)) => {
                for (t, m) in fm_meters.iter_mut().enumerate() {
                    m.mem(
                        (n / p) as u64
                            + 1
                            + 2 * msf_primitives::block_range(m_cur, p, t).len() as u64,
                    );
                }
                harvest(prev.edges(), &slots, n, p, &mut fm_meters, |e, v| {
                    let (lu, lv) = (prev_labels[e.u as usize], prev_labels[e.v as usize]);
                    (e.id, if lu == v { lv } else { lu })
                })
            }
        };
        emit_unique(&mut out, chosen);
        it.find_min = step.finish(&fm_meters, PHASE_OVERHEAD);

        // Step 2: star-contract the pseudo-forest (deterministic rule:
        // mutual pairs break at the smaller index, then pointer jumping).
        let step = StepSpan::begin(StepKind::Connect, stats.iterations.len());
        let mut cc_meters = vec![WorkMeter::new(); p];
        let (labels, k) = connect_components(to, p, &mut cc_meters);
        it.connect = step.finish(&cc_meters, PHASE_OVERHEAD);

        // Step 3: the fused compact sweep — relabel, drop self-loops, write
        // the compacted survivor, and run the NEXT round's write-min race,
        // all in one read of each edge. The race values index the immutable
        // `cur` array, so the key closure never touches the output being
        // staged; the RMWs are attributed to the next find-min (above),
        // this step charging only the multi-pass compact's two label reads
        // per edge.
        let step = StepSpan::begin(StepKind::Compact, stats.iterations.len());
        let mut cg_meters = vec![WorkMeter::new(); p];
        for (t, m) in cg_meters.iter_mut().enumerate() {
            m.mem(2 * msf_primitives::block_range(m_cur, p, t).len() as u64);
        }
        let slots_next = crate::par::common::min_slots_here(k as usize);
        let next = {
            let cur_edges = cur.edges();
            let key = |i: u64| {
                let e = &cur_edges[i as usize];
                packed_edge_key(e.w, e.id)
            };
            msf_primitives::fused::filter_relabel_compact(
                cur_edges,
                p,
                Edge::new(0, 0, 0.0, 0),
                |i, e| {
                    let (lu, lv) = (labels[e.u as usize], labels[e.v as usize]);
                    if lu == lv {
                        return None;
                    }
                    slots_next.write_min_by(lu as usize, i as u64, key);
                    slots_next.write_min_by(lv as usize, i as u64, key);
                    Some(Edge::new(lu, lv, e.w, e.id))
                },
            )
        };
        msf_primitives::fused::record_traffic(8 * m_cur as u64);
        it.compact = step.finish(&cg_meters, PHASE_OVERHEAD);

        pending = Some((slots_next, cur, labels));
        cur = Round::Owned(next);
        n = k as usize;

        stats.push_iteration(it);
        if n <= 1 {
            break;
        }
    }

    stats.total_seconds = watch.seconds();
    MsfResult::from_ids(g, out, stats)
}

/// Walk the quiescent slots in `p` metered blocks (one read per vertex).
/// `edges` is the array the slot values index; `decode(edge, v)` maps a
/// vertex's winning edge to `(forest id, hook target)` in `v`'s own vertex
/// space. Vertices with empty slots hook to themselves.
fn harvest(
    edges: &[Edge],
    slots: &MinSlots,
    n: usize,
    p: usize,
    meters: &mut [WorkMeter],
    decode: impl Fn(&Edge, u32) -> (u32, u32) + Sync,
) -> (Vec<u32>, Vec<u32>) {
    let parts: Vec<(Vec<u32>, Vec<u32>, WorkMeter)> = (0..p)
        .into_par_iter()
        .map(|t| {
            let r = msf_primitives::block_range(n, p, t);
            let mut meter = WorkMeter::new();
            let mut chosen = Vec::new();
            let mut to = Vec::with_capacity(r.len());
            for v in r {
                meter.mem(1);
                let s = slots.get(v);
                if s == EMPTY {
                    to.push(v as u32);
                } else {
                    let (id, target) = decode(&edges[s as usize], v as u32);
                    chosen.push(id);
                    to.push(target);
                }
            }
            (chosen, to, meter)
        })
        .collect();
    let mut chosen = Vec::new();
    let mut to = Vec::with_capacity(n);
    for (t, (c, t_part, m)) in parts.into_iter().enumerate() {
        meters[t] = meters[t] + m;
        chosen.extend_from_slice(&c);
        to.extend_from_slice(&t_part);
    }
    (chosen, to)
}

/// The retained multi-pass shape (`MSF_UNFUSED=1`): standalone setup copy,
/// race pass, harvest, connect, separate relabel+filter pass — the
/// differential baseline the fused path is proven against.
fn msf_unfused(g: &EdgeList, cfg: &MsfConfig) -> MsfResult {
    let watch = Stopwatch::start();
    let p = cfg.threads.max(1);
    let mut stats = RunStats::new("Bor-WriteMin", p);

    let setup = StepSpan::begin(StepKind::Setup, 0);
    let mut setup_meters = vec![WorkMeter::new(); p];
    let mut edges = collect_undirected(g, p, &mut setup_meters);
    stats.add_flat_cost(setup.finish(&setup_meters, PHASE_OVERHEAD).modeled_max);

    let mut n = g.num_vertices();
    let mut out: Vec<u32> = Vec::with_capacity(n.saturating_sub(1));

    while !edges.is_empty() {
        if edges.len() <= BASE_CASE_EDGES {
            base_case(n, &edges, &mut out, &mut stats);
            break;
        }
        let mut it = IterationStats {
            vertices: n,
            directed_edges: 2 * edges.len(),
            ..Default::default()
        };
        let _iteration = obs::span(
            obs::SpanKind::Iteration,
            stats.iterations.len() as u64,
            n as u64,
        );

        // Step 1: the write-min race, then harvest each vertex's winner —
        // its chosen edge id for the forest and its hook target for the
        // contraction.
        let step = StepSpan::begin(StepKind::FindMin, stats.iterations.len());
        let mut fm_meters = vec![WorkMeter::new(); p];
        let slots = write_min_race(&edges, n, p, &mut fm_meters);
        let (chosen, to) = harvest(&edges, &slots, n, p, &mut fm_meters, |e, v| {
            (e.id, e.other(v))
        });
        emit_unique(&mut out, chosen);
        it.find_min = step.finish(&fm_meters, PHASE_OVERHEAD);

        // Step 2: star-contract the pseudo-forest (deterministic rule:
        // mutual pairs break at the smaller index, then pointer jumping).
        let step = StepSpan::begin(StepKind::Connect, stats.iterations.len());
        let mut cc_meters = vec![WorkMeter::new(); p];
        let (labels, k) = connect_components(to, p, &mut cc_meters);
        it.connect = step.finish(&cc_meters, PHASE_OVERHEAD);

        // Step 3: relabel + drop self-loops, keeping multi-edges and
        // original ids — the filtered list the next round recurses on.
        let step = StepSpan::begin(StepKind::Compact, stats.iterations.len());
        let mut cg_meters = vec![WorkMeter::new(); p];
        edges = relabel_and_filter(&edges, &labels, p, &mut cg_meters);
        n = k as usize;
        it.compact = step.finish(&cg_meters, PHASE_OVERHEAD);

        stats.push_iteration(it);
        if n <= 1 {
            break;
        }
    }

    stats.total_seconds = watch.seconds();
    MsfResult::from_ids(g, out, stats)
}

/// Sequential Kruskal over the contracted multigraph. Relative edge order
/// equals original-id order (every pass is order-preserving), so the
/// remapped position ids tie-break exactly like the originals.
fn base_case(n: usize, edges: &[Edge], out: &mut Vec<u32>, stats: &mut RunStats) {
    let step = StepSpan::begin(StepKind::BaseCase, stats.iterations.len());
    let ids: Vec<u32> = edges.iter().map(|e| e.id).collect();
    let sub = EdgeList::from_triples(n, edges.iter().map(|e| (e.u, e.v, e.w)).collect::<Vec<_>>());
    let r = crate::seq::kruskal::msf(&sub);
    out.extend(r.edges.iter().map(|&sid| ids[sid as usize]));
    let m = edges.len() as u64;
    let log_m = (u64::BITS - m.max(2).leading_zeros()) as u64;
    let mut meter = WorkMeter::new();
    meter.mem(2 * m);
    meter.ops(m * log_m);
    stats.add_flat_cost(step.finish(&[meter], PHASE_OVERHEAD).modeled_max);
}

#[cfg(test)]
mod tests {
    use super::*;
    use msf_graph::generators::{mesh2d, random_graph, GeneratorConfig};

    fn cfg(p: usize) -> MsfConfig {
        MsfConfig::with_threads(p)
    }

    #[test]
    fn triangle() {
        let g = EdgeList::from_triples(3, vec![(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]);
        let r = msf(&g, &cfg(2));
        assert_eq!(r.edges, vec![0, 1]);
        assert_eq!(r.components, 1);
    }

    #[test]
    fn matches_kruskal_on_random_graphs() {
        for seed in 0..4u64 {
            let g = random_graph(&GeneratorConfig::with_seed(seed), 400, 1600);
            let expect = crate::seq::kruskal::msf(&g);
            for p in [1, 2, 4] {
                let r = msf(&g, &cfg(p));
                assert_eq!(r.edges, expect.edges, "seed {seed}, p {p}");
            }
        }
    }

    #[test]
    fn exercises_the_race_rounds_past_the_base_case() {
        // Big enough that several write-min rounds run before the Kruskal
        // tail takes over.
        let g = random_graph(&GeneratorConfig::with_seed(7), 4_000, 16_000);
        let expect = crate::seq::kruskal::msf(&g);
        let r = msf(&g, &cfg(3));
        assert_eq!(r.edges, expect.edges);
        assert!(!r.stats.iterations.is_empty());
        assert_eq!(r.stats.iterations[0].vertices, 4_000);
        assert_eq!(r.stats.iterations[0].directed_edges, 32_000);
        // The filtered list shrinks strictly (chosen edges self-loop away).
        for w in r.stats.iterations.windows(2) {
            assert!(w[1].directed_edges < w[0].directed_edges);
        }
        assert!(r.stats.modeled_cost > 0);
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let g = mesh2d(&GeneratorConfig::with_seed(3), 70, 70);
        let base = msf(&g, &cfg(1));
        for p in [2, 3, 7, 8] {
            let r = msf(&g, &cfg(p));
            assert_eq!(r.edges, base.edges, "p {p}");
            assert_eq!(r.total_weight.to_bits(), base.total_weight.to_bits());
        }
    }

    #[test]
    fn ties_and_negative_weights_stay_deterministic() {
        // Equal, negative, and ±0.0 weights: the packed key must break
        // every tie by id, matching Kruskal.
        let mut triples = Vec::new();
        let n = 60u32;
        for u in 0..n {
            for v in u + 1..n {
                let w = match (u + v) % 4 {
                    0 => 1.0,
                    1 => -2.5,
                    2 => 0.0,
                    _ => -0.0,
                };
                if (u * v) % 3 != 1 {
                    triples.push((u, v, w));
                }
            }
        }
        let g = EdgeList::from_triples(n as usize, triples);
        let expect = crate::seq::kruskal::msf(&g);
        for p in [1, 2, 4] {
            assert_eq!(msf(&g, &cfg(p)).edges, expect.edges, "p {p}");
        }
    }

    #[test]
    fn forest_and_isolated_vertices() {
        let g = EdgeList::from_triples(6, vec![(0, 1, 1.0), (2, 3, 4.0), (3, 4, 2.0)]);
        let r = msf(&g, &cfg(2));
        assert_eq!(r.edges, vec![0, 1, 2]);
        assert_eq!(r.components, 3);
    }

    #[test]
    fn empty_graph_short_circuits() {
        let g = EdgeList::from_triples(4, vec![]);
        let r = msf(&g, &cfg(2));
        assert!(r.edges.is_empty());
        assert_eq!(r.components, 4);
    }

    #[test]
    fn sequential_escape_hatch_is_bit_identical() {
        let g = random_graph(&GeneratorConfig::with_seed(11), 3_000, 12_000);
        let pooled = msf(&g, &cfg(4));
        let seq = msf_primitives::pool::with_sequential(|| msf(&g, &cfg(4)));
        assert_eq!(pooled.edges, seq.edges);
        assert_eq!(pooled.total_weight.to_bits(), seq.total_weight.to_bits());
    }

    #[test]
    fn fused_and_unfused_agree_in_forest_and_model() {
        let g = random_graph(&GeneratorConfig::with_seed(23), 5_000, 20_000);
        for p in [1, 3, 8] {
            let fused = msf_primitives::fused::with_unfused(false, || msf(&g, &cfg(p)));
            let unfused = msf_primitives::fused::with_unfused(true, || msf(&g, &cfg(p)));
            assert_eq!(fused.edges, unfused.edges, "p {p}");
            assert_eq!(
                fused.total_weight.to_bits(),
                unfused.total_weight.to_bits(),
                "p {p}"
            );
            assert_eq!(
                fused.stats.modeled_cost, unfused.stats.modeled_cost,
                "p {p}"
            );
            assert_eq!(fused.stats.iterations.len(), unfused.stats.iterations.len());
        }
    }
}
