//! Bor-EL: parallel Borůvka on the edge-list representation (paper §2.1).
//!
//! Every undirected edge appears twice (both directions). The
//! compact-graph step is "an elegant implementation": one parallel **sample
//! sort** of the whole edge list keyed by (supervertex(u), supervertex(v),
//! weight), after which self-loops and multi-edges sit in consecutive
//! positions and a prefix-sum pass merges them. The price is rewriting the
//! entire edge array every iteration — which is exactly why the paper finds
//! Bor-EL the slowest variant and why Bor-FAL exists.
//!
//! Invariant maintained across iterations: the directed edge array is sorted
//! by (source, target, key), so find-min is a contiguous segmented scan.

use msf_graph::EdgeList;
use msf_primitives::cost::{Stopwatch, WorkMeter};
use msf_primitives::obs;

use crate::par::common::{
    connect_components, emit_unique, radix_group_and_dedup, relabel_and_filter, segment_starts,
    segmented_find_min, sort_and_dedup, PHASE_OVERHEAD,
};
use crate::stats::{IterationStats, RunStats, StepKind, StepSpan};
use crate::{MsfConfig, MsfResult};

/// Compute the MSF with Bor-EL.
pub fn msf(g: &EdgeList, cfg: &MsfConfig) -> MsfResult {
    let watch = Stopwatch::start();
    let p = cfg.threads.max(1);
    let mut stats = RunStats::new("Bor-EL", p);

    // Setup: mirror to directed pairs and establish the sorted invariant.
    let compact = if cfg.radix_compact {
        radix_group_and_dedup
    } else {
        sort_and_dedup
    };
    let setup = StepSpan::begin(StepKind::Setup, 0);
    let mut setup_meters = vec![WorkMeter::new(); p];
    let mut edges = compact(g.to_directed_pairs(), p, &mut setup_meters);
    stats.add_flat_cost(setup.finish(&setup_meters, PHASE_OVERHEAD).modeled_max);

    let mut n = g.num_vertices();
    let mut out: Vec<u32> = Vec::with_capacity(n.saturating_sub(1));

    while !edges.is_empty() {
        let mut it = IterationStats {
            vertices: n,
            directed_edges: edges.len(),
            ..Default::default()
        };
        let _iteration = obs::span(
            obs::SpanKind::Iteration,
            stats.iterations.len() as u64,
            n as u64,
        );

        // Step 1: find-min over the per-source segments.
        let step = StepSpan::begin(StepKind::FindMin, stats.iterations.len());
        let mut fm_meters = vec![WorkMeter::new(); p];
        let seg = segment_starts(&edges, n, p);
        let mins = segmented_find_min(&edges, &seg, p, &mut fm_meters);
        let chosen: Vec<u32> = mins
            .iter()
            .filter(|&&i| i != u32::MAX)
            .map(|&i| edges[i as usize].id)
            .collect();
        emit_unique(&mut out, chosen);
        it.find_min = step.finish(&fm_meters, PHASE_OVERHEAD);

        // Step 2: connect-components over the chosen edges.
        let step = StepSpan::begin(StepKind::Connect, stats.iterations.len());
        let mut cc_meters = vec![WorkMeter::new(); p];
        let to: Vec<u32> = mins
            .iter()
            .enumerate()
            .map(|(v, &i)| {
                if i == u32::MAX {
                    v as u32
                } else {
                    edges[i as usize].v
                }
            })
            .collect();
        let (labels, k) = connect_components(to, p, &mut cc_meters);
        it.connect = step.finish(&cc_meters, PHASE_OVERHEAD);

        // Step 3: compact-graph — relabel, drop self-loops, global sample
        // sort, merge multi-edge runs.
        let step = StepSpan::begin(StepKind::Compact, stats.iterations.len());
        let mut cg_meters = vec![WorkMeter::new(); p];
        let survivors = relabel_and_filter(&edges, &labels, p, &mut cg_meters);
        edges = compact(survivors, p, &mut cg_meters);
        n = k as usize;
        it.compact = step.finish(&cg_meters, PHASE_OVERHEAD);

        stats.push_iteration(it);
        if n <= 1 {
            break;
        }
    }

    stats.total_seconds = watch.seconds();
    MsfResult::from_ids(g, out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msf_graph::generators::{random_graph, GeneratorConfig};

    fn cfg(p: usize) -> MsfConfig {
        MsfConfig::with_threads(p)
    }

    #[test]
    fn triangle() {
        let g = EdgeList::from_triples(3, vec![(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]);
        let r = msf(&g, &cfg(2));
        assert_eq!(r.edges, vec![0, 1]);
        assert_eq!(r.components, 1);
    }

    #[test]
    fn matches_kruskal_on_random_graphs() {
        for seed in 0..4u64 {
            let g = random_graph(&GeneratorConfig::with_seed(seed), 400, 1600);
            let expect = crate::seq::kruskal::msf(&g);
            for p in [1, 2, 4] {
                let r = msf(&g, &cfg(p));
                assert_eq!(r.edges, expect.edges, "seed {seed}, p {p}");
            }
        }
    }

    #[test]
    fn forest_and_isolated_vertices() {
        let g = EdgeList::from_triples(6, vec![(0, 1, 1.0), (2, 3, 4.0), (3, 4, 2.0)]);
        let r = msf(&g, &cfg(2));
        assert_eq!(r.edges, vec![0, 1, 2]);
        assert_eq!(r.components, 3);
    }

    #[test]
    fn records_iteration_trace() {
        let g = random_graph(&GeneratorConfig::with_seed(5), 200, 600);
        let r = msf(&g, &cfg(2));
        assert!(!r.stats.iterations.is_empty());
        assert_eq!(r.stats.iterations[0].vertices, 200);
        assert_eq!(r.stats.iterations[0].directed_edges, 1200);
        // Edge counts strictly decrease.
        for w in r.stats.iterations.windows(2) {
            assert!(w[1].directed_edges < w[0].directed_edges);
        }
        assert!(r.stats.modeled_cost > 0);
    }

    #[test]
    fn radix_compact_produces_identical_forests() {
        for seed in 0..3u64 {
            let g = random_graph(&GeneratorConfig::with_seed(seed), 500, 2500);
            let sample = msf(&g, &cfg(4));
            let radix = msf(
                &g,
                &MsfConfig {
                    radix_compact: true,
                    ..cfg(4)
                },
            );
            assert_eq!(sample.edges, radix.edges, "seed {seed}");
            // Same iteration structure too: the compact output is identical.
            assert_eq!(sample.stats.iterations.len(), radix.stats.iterations.len());
            for (a, b) in sample.stats.iterations.iter().zip(&radix.stats.iterations) {
                assert_eq!(a.directed_edges, b.directed_edges);
            }
        }
    }

    #[test]
    fn empty_graph_short_circuits() {
        let g = EdgeList::from_triples(4, vec![]);
        let r = msf(&g, &cfg(2));
        assert!(r.edges.is_empty());
        assert_eq!(r.components, 4);
    }
}
