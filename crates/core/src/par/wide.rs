//! Width-adaptive write-min Borůvka over the structure-of-arrays graphs —
//! the wide entry point whose hot recursion narrows itself to `u32`.
//!
//! Every in-memory compute kernel in this suite indexes vertices with
//! `u32`; the binary format and [`SoaEdgeList`] additionally make
//! \>4-billion-vertex graphs *representable* with `u64` ids. This module is
//! the bridge: [`msf_on_soa`] runs the lock-free write-min contraction
//! directly over either width, and — the adaptive part — **re-indexes the
//! recursion into the narrow representation the moment the live
//! supervertex count fits the `u32` id space** (checked after every
//! contraction round, so a wide input typically narrows after round one,
//! the paper's own observation that Borůvka's first round collapses most
//! of the graph). Narrowing halves endpoint bandwidth for every remaining
//! sweep.
//!
//! **Safety of the trigger** (DESIGN.md §15): contraction only ever shrinks
//! the supervertex count, labels are renumbered consecutively (`0..k`)
//! every round, and surviving edges carry their original input ids
//! untouched — so once `k ≤ 2³²` every future endpoint fits `u32` and the
//! conversion is exact. The narrowing write happens *inside* the round's
//! fused compact sweep (the `visit` closure simply emits `u32` endpoints
//! instead of `u64`), so it costs zero extra passes, and the modeled cost
//! — which counts memory *accesses*, not bytes — is identical whether the
//! round narrows or not. That identity is what the narrow≡wide
//! differential suite asserts: `MSF_NO_NARROW=1` (or [`with_no_narrow`])
//! keeps the recursion wide end to end and must reproduce the same forest
//! bit for bit at the same modeled cost; only the `kernel.fused_bytes_read`
//! byte counter — which *does* see widths — is allowed to differ.

use msf_graph::soa::SoaEdgeList;
use msf_graph::vertexid::VertexId;
use msf_primitives::atomic::{weight_order_bits, EMPTY};
use msf_primitives::cost::{Stopwatch, WorkMeter};
use msf_primitives::fused;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use crate::par::common::{min_slots_here, PHASE_OVERHEAD};
use crate::stats::{StepKind, StepSpan};
use crate::MsfConfig;

/// Below this many surviving edges the recursion solves sequentially
/// (matches the narrow core's base-case philosophy).
const BASE_CASE_EDGES: usize = 256;

/// Mode override: 0 = follow `MSF_NO_NARROW`, 1 = force narrowing on,
/// 2 = force narrowing off. Only [`with_no_narrow`] writes it.
static FORCE_MODE: AtomicU8 = AtomicU8::new(0);

fn env_no_narrow() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("MSF_NO_NARROW")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// Whether the recursion must stay at the input width (`MSF_NO_NARROW=1`
/// or a [`with_no_narrow`] scope) — the differential-testing lever.
#[inline]
pub fn no_narrow() -> bool {
    match FORCE_MODE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => env_no_narrow(),
    }
}

/// Run `f` with narrowing forced on (`false`) or off (`true`), restoring
/// the previous override afterwards. Process global, like
/// [`fused::with_unfused`]; both settings compute the identical forest, so
/// a concurrent observer of a flipped mode still gets exact results.
pub fn with_no_narrow<R>(on: bool, f: impl FnOnce() -> R) -> R {
    let prev = FORCE_MODE.swap(if on { 2 } else { 1 }, Ordering::Relaxed);
    let r = f();
    FORCE_MODE.store(prev, Ordering::Relaxed);
    r
}

/// The result of a width-adaptive run. Mirrors [`crate::MsfResult`] but
/// with `u64` edge indices and component counts, since the input may not
/// fit the narrow id space at all.
#[derive(Debug, Clone)]
pub struct WideMsfResult {
    /// Input edge indices in the forest, sorted ascending.
    pub edges: Vec<u64>,
    /// Sum of selected edge weights.
    pub total_weight: f64,
    /// Trees in the forest (isolated vertices included).
    pub components: u64,
    /// Accumulated modeled cost — a pure function of the round structure
    /// and `(m, n, p)`, *independent of the representation width*, which
    /// is what makes the narrow≡wide differential exact.
    pub modeled_cost: u64,
    /// Whether the recursion re-indexed itself into `u32` at some round.
    pub narrowed: bool,
    /// Wall-clock seconds.
    pub total_seconds: f64,
}

/// One in-flight contraction edge at width `V`. The id is always `u64`:
/// original input indices never shrink, only endpoints do.
#[derive(Debug, Clone, Copy)]
struct WEdge<V: VertexId> {
    u: V,
    v: V,
    w: f64,
    id: u64,
}

/// The exact `(weight, id)` total order as one `u128`: order-isomorphic
/// weight bits above, the full 64-bit original id below — the wide
/// analogue of [`msf_primitives::atomic::packed_edge_key`].
#[inline]
fn wide_key(w: f64, id: u64) -> u128 {
    (u128::from(weight_order_bits(w)) << 64) | u128::from(id)
}

/// The round's working edges: round zero borrows the input arrays (no
/// setup copy — the first race and compact read the SoA directly), every
/// later round owns its compacted survivors.
enum Work<'a, V: VertexId> {
    Soa(&'a [V], &'a [V], &'a [f64]),
    Owned(Vec<WEdge<V>>),
}

impl<V: VertexId> Work<'_, V> {
    #[inline]
    fn len(&self) -> usize {
        match self {
            Work::Soa(u, _, _) => u.len(),
            Work::Owned(e) => e.len(),
        }
    }

    #[inline]
    fn get(&self, i: usize) -> WEdge<V> {
        match self {
            Work::Soa(u, v, w) => WEdge {
                u: u[i],
                v: v[i],
                w: w[i],
                id: i as u64,
            },
            Work::Owned(e) => e[i],
        }
    }
}

/// Compute the MSF of a structure-of-arrays graph at either vertex width,
/// narrowing the recursion to `u32` as soon as the live supervertex count
/// permits (unless [`no_narrow`]). The vertex count must be addressable
/// (`n` vertices of per-vertex state are allocated).
pub fn msf_on_soa<V: VertexId>(g: &SoaEdgeList<V>, cfg: &MsfConfig) -> WideMsfResult {
    let watch = Stopwatch::start();
    let p = cfg.threads.max(1);
    let n = g.num_vertices();
    let (us, vs, ws) = g.arrays();
    let mut out: Vec<u64> = Vec::new();
    let mut cost = 0u64;
    let narrowed = solve(Work::Soa(us, vs, ws), n, p, &mut out, &mut cost);
    out.sort_unstable();
    let total_weight = out.iter().map(|&i| ws[i as usize]).sum();
    WideMsfResult {
        components: n - out.len() as u64,
        total_weight,
        edges: out,
        modeled_cost: cost,
        narrowed,
        total_seconds: watch.seconds(),
    }
}

/// The contraction loop at width `V`. Returns whether any round narrowed.
fn solve<V: VertexId>(
    work: Work<'_, V>,
    n: u64,
    p: usize,
    out: &mut Vec<u64>,
    cost: &mut u64,
) -> bool {
    let mut work = work;
    let mut n = n;
    let mut round = 0usize;
    loop {
        let m = work.len();
        if m == 0 || n <= 1 {
            return false;
        }
        if m <= BASE_CASE_EDGES {
            *cost += base_case(&work, round, out);
            return false;
        }

        // Find-min: the per-endpoint write-min race under the wide packed
        // key, then one harvest read per vertex.
        let step = StepSpan::begin(StepKind::FindMin, round);
        let mut meters = vec![WorkMeter::new(); p];
        let n_idx = usize::try_from(n).expect("vertex state must be addressable");
        let slots = min_slots_here(n_idx);
        let key = |x: u64| {
            let e = work.get(x as usize);
            wide_key(e.w, e.id)
        };
        (0..p).into_par_iter().for_each(|t| {
            for i in msf_primitives::block_range(m, p, t) {
                let e = work.get(i);
                slots.write_min_by(e.u.to_index(), i as u64, key);
                slots.write_min_by(e.v.to_index(), i as u64, key);
            }
        });
        for (t, meter) in meters.iter_mut().enumerate() {
            meter.mem(n / p as u64 + 1);
            meter.mem(2 * msf_primitives::block_range(m, p, t).len() as u64);
            meter.mem(msf_primitives::block_range(n_idx, p, t).len() as u64); // harvest
        }
        let parts: Vec<(Vec<u64>, Vec<u64>)> = (0..p)
            .into_par_iter()
            .map(|t| {
                let r = msf_primitives::block_range(n_idx, p, t);
                let mut to = Vec::with_capacity(r.len());
                let mut chosen = Vec::new();
                for v in r {
                    let s = slots.get(v);
                    if s == EMPTY {
                        to.push(v as u64);
                    } else {
                        let e = work.get(s as usize);
                        to.push(e.other(v as u64));
                        chosen.push(e.id);
                    }
                }
                (to, chosen)
            })
            .collect();
        let mut to: Vec<u64> = Vec::with_capacity(n_idx);
        let mut chosen: Vec<u64> = Vec::new();
        for (t_part, c_part) in parts {
            to.extend_from_slice(&t_part);
            chosen.extend_from_slice(&c_part);
        }
        chosen.sort_unstable();
        chosen.dedup();
        out.extend_from_slice(&chosen);
        *cost += step.finish(&meters, PHASE_OVERHEAD).modeled_max;

        // Connect: break 2-cycles, pointer jump, renumber consecutively.
        let step = StepSpan::begin(StepKind::Connect, round);
        let mut meters = vec![WorkMeter::new(); p];
        let log_n = (64 - n.max(2).leading_zeros()) as u64;
        let per = (n * log_n) / p as u64;
        for meter in meters.iter_mut() {
            meter.mem(per);
            meter.ops(per);
        }
        let (labels, k) = connect_wide(to);
        *cost += step.finish(&meters, PHASE_OVERHEAD).modeled_max;

        // Compact: the fused relabel+filter sweep. When the surviving
        // supervertex count fits u32 (and narrowing is allowed), the sweep
        // emits narrow endpoints directly — same access count, half the
        // endpoint bytes — and the loop continues at the narrow width.
        let step = StepSpan::begin(StepKind::Compact, round);
        let mut meters = vec![WorkMeter::new(); p];
        for (t, meter) in meters.iter_mut().enumerate() {
            meter.mem(2 * msf_primitives::block_range(m, p, t).len() as u64);
        }
        let narrow = V::WIDE && !no_narrow() && u128::from(k) <= <u32 as VertexId>::MAX_COUNT;
        if narrow {
            let next: Vec<WEdge<u32>> = compact_into(&work, &labels, p);
            *cost += step.finish(&meters, PHASE_OVERHEAD).modeled_max;
            solve(Work::Owned(next), k, p, out, cost);
            return true;
        }
        let next: Vec<WEdge<V>> = compact_into(&work, &labels, p);
        *cost += step.finish(&meters, PHASE_OVERHEAD).modeled_max;
        work = Work::Owned(next);
        n = k;
        round += 1;
    }
}

impl<V: VertexId> WEdge<V> {
    #[inline]
    fn other(&self, x: u64) -> u64 {
        let (u, v) = (self.u.to_u64(), self.v.to_u64());
        u ^ v ^ x
    }
}

/// Relabel through `labels`, drop self-loops, and write survivors at width
/// `W` in one fused sweep (multi-pass staging under `MSF_UNFUSED=1`; same
/// survivors, same order). This is where narrowing physically happens:
/// `W = u32` while `V = u64` makes the compact write the narrow
/// representation with zero extra passes.
fn compact_into<V: VertexId, W: VertexId>(
    work: &Work<'_, V>,
    labels: &[u64],
    p: usize,
) -> Vec<WEdge<W>> {
    let m = work.len();
    let visit = |i: usize| {
        let e = work.get(i);
        let (lu, lv) = (labels[e.u.to_index()], labels[e.v.to_index()]);
        (lu != lv).then(|| WEdge {
            u: W::from_u64(lu),
            v: W::from_u64(lv),
            w: e.w,
            id: e.id,
        })
    };
    if fused::unfused() {
        let parts: Vec<Vec<WEdge<W>>> = (0..p)
            .into_par_iter()
            .map(|t| {
                let r = msf_primitives::block_range(m, p, t);
                let mut part = Vec::with_capacity(r.len());
                for i in r {
                    if let Some(e) = visit(i) {
                        part.push(e);
                    }
                }
                part
            })
            .collect();
        let mut next = Vec::with_capacity(m);
        for part in parts {
            next.extend_from_slice(&part);
        }
        return next;
    }
    let fill = WEdge {
        u: W::from_u64(0),
        v: W::from_u64(0),
        w: 0.0,
        id: 0,
    };
    let next = fused::filter_compact_indexed(m, p, fill, visit);
    // Bytes, not accesses: the read side is width V (two endpoints, weight,
    // id), the write side width W — this counter is the one place where
    // narrowing is *visible*, while the modeled cost stays width-pure. The
    // two u64 label-table reads per edge are side-band traffic on top.
    fused::record_traffic(
        (m * (2 * V::WIDTH + 16) + next.len() * (2 * W::WIDTH + 16) + 16 * m) as u64,
    );
    next
}

/// Resolve the find-min pseudo-forest and renumber roots consecutively —
/// the width-generic analogue of the narrow core's connect step (2-cycle
/// break at the smaller endpoint, parent doubling, exclusive-scan
/// renumbering). Labels are deterministic: they depend only on the
/// component structure, never on thread schedule.
fn connect_wide(mut parent: Vec<u64>) -> (Vec<u64>, u64) {
    let n = parent.len();
    for v in 0..n {
        let p = parent[v] as usize;
        if parent[p] as usize == v && p > v {
            parent[v] = v as u64;
        }
    }
    loop {
        let mut any = false;
        for v in 0..n {
            let g = parent[parent[v] as usize];
            if g != parent[v] {
                parent[v] = g;
                any = true;
            }
        }
        if !any {
            break;
        }
    }
    let mut is_root = vec![0usize; n];
    for (v, &r) in parent.iter().enumerate() {
        if r as usize == v {
            is_root[v] = 1;
        }
    }
    let k = msf_primitives::prefix::exclusive_scan(&mut is_root);
    let labels: Vec<u64> = parent.iter().map(|&r| is_root[r as usize] as u64).collect();
    (labels, k as u64)
}

/// Sequential Kruskal over the surviving edges: sort under the exact
/// `(weight, original id)` order, unite through a plain path-halving DSU,
/// emit the original ids that linked. Endpoints are densified first so the
/// DSU is O(live vertices), not O(original n).
fn base_case<V: VertexId>(work: &Work<'_, V>, round: usize, out: &mut Vec<u64>) -> u64 {
    let m = work.len();
    let step = StepSpan::begin(StepKind::BaseCase, round);
    let mut order: Vec<u32> = (0..m as u32).collect();
    order.sort_unstable_by_key(|&i| {
        let e = work.get(i as usize);
        wide_key(e.w, e.id)
    });
    let mut dense: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
    let mut parent: Vec<u32> = Vec::new();
    let mut dense_id = |x: u64, parent: &mut Vec<u32>| -> u32 {
        *dense.entry(x).or_insert_with(|| {
            let id = parent.len() as u32;
            parent.push(id);
            id
        })
    };
    let find = |parent: &mut Vec<u32>, mut x: u32| -> u32 {
        while parent[x as usize] != x {
            let g = parent[parent[x as usize] as usize];
            parent[x as usize] = g;
            x = g;
        }
        x
    };
    for &i in &order {
        let e = work.get(i as usize);
        let (du, dv) = (
            dense_id(e.u.to_u64(), &mut parent),
            dense_id(e.v.to_u64(), &mut parent),
        );
        let (ru, rv) = (find(&mut parent, du), find(&mut parent, dv));
        if ru != rv {
            parent[ru.max(rv) as usize] = ru.min(rv);
            out.push(e.id);
        }
    }
    let mut meter = WorkMeter::new();
    let log_m = (usize::BITS - m.max(2).leading_zeros()) as u64;
    meter.mem(2 * m as u64);
    meter.ops(m as u64 * log_m);
    step.finish(&[meter], PHASE_OVERHEAD).modeled_max
}

#[cfg(test)]
mod tests {
    use super::*;
    use msf_graph::generators::{random_graph, GeneratorConfig};

    fn cfg(p: usize) -> MsfConfig {
        MsfConfig::with_threads(p)
    }

    fn expect_ids(g: &msf_graph::EdgeList) -> Vec<u64> {
        crate::seq::kruskal::msf(g)
            .edges
            .iter()
            .map(|&i| u64::from(i))
            .collect()
    }

    #[test]
    fn narrow_entry_matches_kruskal() {
        for seed in 0..3u64 {
            let g = random_graph(&GeneratorConfig::with_seed(seed), 500, 3000);
            let soa = SoaEdgeList::<u32>::from_edge_list(&g).unwrap();
            for p in [1, 3, 8] {
                let r = msf_on_soa(&soa, &cfg(p));
                assert_eq!(r.edges, expect_ids(&g), "seed {seed} p {p}");
                assert!(!r.narrowed, "u32 entry must never re-narrow");
            }
        }
    }

    #[test]
    fn wide_entry_narrows_and_matches() {
        let g = random_graph(&GeneratorConfig::with_seed(5), 4000, 16000);
        let soa = SoaEdgeList::<u64>::from_edge_list(&g).unwrap();
        let r = msf_on_soa(&soa, &cfg(4));
        assert_eq!(r.edges, expect_ids(&g));
        assert!(r.narrowed, "a u64 input this small must narrow");
    }

    #[test]
    fn narrowed_and_wide_runs_are_bit_identical() {
        for seed in [2u64, 9] {
            let g = random_graph(&GeneratorConfig::with_seed(seed), 3000, 12000);
            let soa = SoaEdgeList::<u64>::from_edge_list(&g).unwrap();
            for p in [1, 2, 3, 7, 8] {
                let narrowed = with_no_narrow(false, || msf_on_soa(&soa, &cfg(p)));
                let wide = with_no_narrow(true, || msf_on_soa(&soa, &cfg(p)));
                assert!(narrowed.narrowed && !wide.narrowed);
                assert_eq!(narrowed.edges, wide.edges, "seed {seed} p {p}");
                assert_eq!(
                    narrowed.total_weight.to_bits(),
                    wide.total_weight.to_bits(),
                    "seed {seed} p {p}"
                );
                assert_eq!(
                    narrowed.modeled_cost, wide.modeled_cost,
                    "seed {seed} p {p}: modeled cost must be width-pure"
                );
            }
        }
    }

    #[test]
    fn fused_and_unfused_agree_at_both_widths() {
        let g = random_graph(&GeneratorConfig::with_seed(13), 2000, 9000);
        let soa = SoaEdgeList::<u64>::from_edge_list(&g).unwrap();
        let fused_run = fused::with_unfused(false, || msf_on_soa(&soa, &cfg(3)));
        let plain_run = fused::with_unfused(true, || msf_on_soa(&soa, &cfg(3)));
        assert_eq!(fused_run.edges, plain_run.edges);
        assert_eq!(fused_run.modeled_cost, plain_run.modeled_cost);
    }

    #[test]
    fn disconnected_components_counted() {
        let a = random_graph(&GeneratorConfig::with_seed(1), 200, 800);
        let mut triples: Vec<(u32, u32, f64)> = a.edges().iter().map(|e| (e.u, e.v, e.w)).collect();
        triples.extend(
            random_graph(&GeneratorConfig::with_seed(2), 200, 800)
                .edges()
                .iter()
                .map(|e| (e.u + 200, e.v + 200, e.w)),
        );
        let g = msf_graph::EdgeList::from_triples(400, triples);
        let soa = SoaEdgeList::<u64>::from_edge_list(&g).unwrap();
        let r = msf_on_soa(&soa, &cfg(2));
        let expect = crate::seq::kruskal::msf(&g);
        assert_eq!(r.edges, expect_ids(&g));
        assert_eq!(r.components, u64::from(expect.components));
    }

    #[test]
    fn sequential_escape_hatch_matches() {
        let g = random_graph(&GeneratorConfig::with_seed(17), 800, 4000);
        let soa = SoaEdgeList::<u64>::from_edge_list(&g).unwrap();
        msf_primitives::pool::with_sequential(|| {
            assert_eq!(msf_on_soa(&soa, &cfg(4)).edges, expect_ids(&g));
        });
    }
}
