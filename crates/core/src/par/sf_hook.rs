//! SF-Hook: lock-free union-find front-end + cycle-property filter finish
//! (the gbbs `nd.h` shape).
//!
//! Where Bor-WriteMin recurses on the filtered list to the end, this
//! contender spends only a fixed number of rounds on lock-free contraction
//! and hands the reduced graph to the sampling + cycle-property filter:
//!
//! 1. **find-min** — the same per-endpoint write-min race, electing each
//!    supervertex's minimum incident edge under the packed
//!    `(weight bits, edge id)` key.
//! 2. **connect** — instead of pointer-jumping a pseudo-forest array, the
//!    chosen edges are CAS-hooked into a [`ConcurrentUnionFind`]: each
//!    unite claims the smaller root's hooks slot by `compare_exchange` and
//!    retires it under the larger root (gbbs `nd.h`). The deduped chosen
//!    edges form a forest, so every one of them retires exactly one root
//!    and the hooks array *is* the round's forest contribution —
//!    schedule-independent as a set. A parallel find-all pass then
//!    pointer-jumps every vertex to its root (path halving), and roots are
//!    renumbered consecutively.
//! 3. **compact** — relabel + drop self-loops, keeping multi-edges.
//!
//! After [`HOOK_ROUNDS`] rounds the surviving supervertex count has dropped
//! by ≥ 4x (each round at least halves it) and the remaining edges go to
//! [`crate::par::filter`] — coin-flip sampling, path-max queries, Bor-FAL
//! on the survivors — whose output ids map back through the front-end's
//! order-preserving edge list. Both stages preserve the `(weight, id)`
//! total order end to end, so the result is the suite-wide unique forest,
//! bit-identical at every thread count and under `MSF_SEQUENTIAL`.

use msf_graph::EdgeList;
use msf_primitives::atomic::EMPTY;
use msf_primitives::connectivity::concurrent::ConcurrentUnionFind;
use msf_primitives::cost::{Stopwatch, WorkMeter};
use msf_primitives::obs;
use rayon::prelude::*;

use crate::par::common::{
    collect_undirected, connect_components_from_roots, emit_unique, relabel_and_filter,
    write_min_race, PHASE_OVERHEAD,
};
use crate::stats::{IterationStats, RunStats, StepKind, StepSpan};
use crate::{MsfConfig, MsfResult};

/// Lock-free contraction rounds before the filter takes over. Two rounds
/// cut the supervertex count by at least 4x (usually far more), which is
/// where the race's O(m) passes stop paying against the filter's ability
/// to discard most remaining edges outright.
const HOOK_ROUNDS: usize = 2;

/// Compute the MSF with SF-Hook.
pub fn msf(g: &EdgeList, cfg: &MsfConfig) -> MsfResult {
    let watch = Stopwatch::start();
    let p = cfg.threads.max(1);
    let mut stats = RunStats::new("SF-Hook", p);

    let setup = StepSpan::begin(StepKind::Setup, 0);
    let mut setup_meters = vec![WorkMeter::new(); p];
    let mut edges = collect_undirected(g, p, &mut setup_meters);
    stats.add_flat_cost(setup.finish(&setup_meters, PHASE_OVERHEAD).modeled_max);

    let mut n = g.num_vertices();
    let mut out: Vec<u32> = Vec::with_capacity(n.saturating_sub(1));

    for _ in 0..HOOK_ROUNDS {
        if edges.is_empty() || n <= 1 {
            break;
        }
        let mut it = IterationStats {
            vertices: n,
            directed_edges: 2 * edges.len(),
            ..Default::default()
        };
        let _iteration = obs::span(
            obs::SpanKind::Iteration,
            stats.iterations.len() as u64,
            n as u64,
        );

        // Step 1: elect each supervertex's minimum incident edge.
        let step = StepSpan::begin(StepKind::FindMin, stats.iterations.len());
        let mut fm_meters = vec![WorkMeter::new(); p];
        let slots = write_min_race(&edges, n, p, &mut fm_meters);
        it.find_min = step.finish(&fm_meters, PHASE_OVERHEAD);

        // Step 2: CAS-hook the chosen edges into the concurrent union-find,
        // then pointer-jump every vertex to its root. The hooks array comes
        // back as this round's forest edges.
        let step = StepSpan::begin(StepKind::Connect, stats.iterations.len());
        let mut cc_meters = vec![WorkMeter::new(); p];
        let uf = ConcurrentUnionFind::new(n);
        let log_n = (usize::BITS - n.max(2).leading_zeros()) as u64;
        let hook_meters: Vec<WorkMeter> = (0..p)
            .into_par_iter()
            .map(|t| {
                let r = msf_primitives::block_range(n, p, t);
                let mut meter = WorkMeter::new();
                for v in r {
                    meter.mem(1);
                    let s = slots.get(v);
                    if s != EMPTY {
                        let e = &edges[s as usize];
                        // Two finds plus one CAS, all scattered.
                        meter.mem(2 * log_n + 1);
                        uf.unite(e.u, e.v, e.id);
                    }
                }
                meter
            })
            .collect();
        let root_parts: Vec<(Vec<u32>, WorkMeter)> = (0..p)
            .into_par_iter()
            .map(|t| {
                let r = msf_primitives::block_range(n, p, t);
                let mut meter = WorkMeter::new();
                meter.mem(r.len() as u64 * log_n);
                let part: Vec<u32> = r.map(|v| uf.find(v as u32)).collect();
                (part, meter)
            })
            .collect();
        let mut roots = Vec::with_capacity(n);
        for (t, ((part, m), hm)) in root_parts.into_iter().zip(hook_meters).enumerate() {
            cc_meters[t] = cc_meters[t] + m + hm;
            roots.extend_from_slice(&part);
        }
        emit_unique(&mut out, uf.hooked());
        let (labels, k) = connect_components_from_roots(roots, p, &mut cc_meters);
        it.connect = step.finish(&cc_meters, PHASE_OVERHEAD);

        // Step 3: relabel + drop self-loops, keeping multi-edges.
        let step = StepSpan::begin(StepKind::Compact, stats.iterations.len());
        let mut cg_meters = vec![WorkMeter::new(); p];
        edges = relabel_and_filter(&edges, &labels, p, &mut cg_meters);
        n = k as usize;
        it.compact = step.finish(&cg_meters, PHASE_OVERHEAD);

        stats.push_iteration(it);
    }

    // Finish: cycle-property filter over the reduced graph. The edge list
    // is order-preserving (position order == original-id order), so the
    // inner run's (weight, position) tie-break equals (weight, original id)
    // and the id remap below is exact.
    if !edges.is_empty() && n > 1 {
        let ids: Vec<u32> = edges.iter().map(|e| e.id).collect();
        let reduced =
            EdgeList::from_triples(n, edges.iter().map(|e| (e.u, e.v, e.w)).collect::<Vec<_>>());
        let inner = crate::par::filter::msf(&reduced, cfg);
        stats.add_flat_cost(inner.stats.modeled_cost);
        out.extend(inner.edges.iter().map(|&rid| ids[rid as usize]));
    }

    stats.total_seconds = watch.seconds();
    MsfResult::from_ids(g, out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msf_graph::generators::{mesh2d, random_graph, GeneratorConfig};

    fn cfg(p: usize) -> MsfConfig {
        MsfConfig::with_threads(p)
    }

    #[test]
    fn triangle() {
        let g = EdgeList::from_triples(3, vec![(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]);
        let r = msf(&g, &cfg(2));
        assert_eq!(r.edges, vec![0, 1]);
        assert_eq!(r.components, 1);
    }

    #[test]
    fn matches_kruskal_on_random_graphs() {
        for seed in 0..4u64 {
            let g = random_graph(&GeneratorConfig::with_seed(seed), 400, 1600);
            let expect = crate::seq::kruskal::msf(&g);
            for p in [1, 2, 4] {
                let r = msf(&g, &cfg(p));
                assert_eq!(r.edges, expect.edges, "seed {seed}, p {p}");
            }
        }
    }

    #[test]
    fn hook_rounds_then_filter_on_larger_inputs() {
        let g = random_graph(&GeneratorConfig::with_seed(7), 4_000, 16_000);
        let expect = crate::seq::kruskal::msf(&g);
        let r = msf(&g, &cfg(3));
        assert_eq!(r.edges, expect.edges);
        // Exactly the front-end rounds appear as iterations.
        assert_eq!(r.stats.iterations.len(), HOOK_ROUNDS);
        assert_eq!(r.stats.iterations[0].vertices, 4_000);
        for w in r.stats.iterations.windows(2) {
            assert!(w[1].directed_edges < w[0].directed_edges);
            // Every non-isolated supervertex merges, so n drops sharply.
            assert!(w[1].vertices < w[0].vertices / 2 + 8);
        }
        assert!(r.stats.modeled_cost > 0);
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let g = mesh2d(&GeneratorConfig::with_seed(3), 70, 70);
        let base = msf(&g, &cfg(1));
        for p in [2, 3, 7, 8] {
            let r = msf(&g, &cfg(p));
            assert_eq!(r.edges, base.edges, "p {p}");
            assert_eq!(r.total_weight.to_bits(), base.total_weight.to_bits());
        }
    }

    #[test]
    fn ties_and_negative_weights_stay_deterministic() {
        let mut triples = Vec::new();
        let n = 60u32;
        for u in 0..n {
            for v in u + 1..n {
                let w = match (u + v) % 4 {
                    0 => 1.0,
                    1 => -2.5,
                    2 => 0.0,
                    _ => -0.0,
                };
                if (u * v) % 3 != 1 {
                    triples.push((u, v, w));
                }
            }
        }
        let g = EdgeList::from_triples(n as usize, triples);
        let expect = crate::seq::kruskal::msf(&g);
        for p in [1, 2, 4] {
            assert_eq!(msf(&g, &cfg(p)).edges, expect.edges, "p {p}");
        }
    }

    #[test]
    fn forest_and_isolated_vertices() {
        let g = EdgeList::from_triples(6, vec![(0, 1, 1.0), (2, 3, 4.0), (3, 4, 2.0)]);
        let r = msf(&g, &cfg(2));
        assert_eq!(r.edges, vec![0, 1, 2]);
        assert_eq!(r.components, 3);
    }

    #[test]
    fn empty_graph_short_circuits() {
        let g = EdgeList::from_triples(4, vec![]);
        let r = msf(&g, &cfg(2));
        assert!(r.edges.is_empty());
        assert_eq!(r.components, 4);
    }

    #[test]
    fn sequential_escape_hatch_is_bit_identical() {
        let g = random_graph(&GeneratorConfig::with_seed(11), 3_000, 12_000);
        let pooled = msf(&g, &cfg(4));
        let seq = msf_primitives::pool::with_sequential(|| msf(&g, &cfg(4)));
        assert_eq!(pooled.edges, seq.edges);
        assert_eq!(pooled.total_weight.to_bits(), seq.total_weight.to_bits());
    }
}
