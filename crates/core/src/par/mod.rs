//! The four parallel Borůvka variants (§2), the new MST-BC hybrid (§4), and
//! the lock-free speed contenders (Bor-WriteMin, SF-Hook, Filter-Kruskal).

pub mod bor_al;
pub mod bor_dense;
pub mod bor_el;
pub mod bor_fal;
pub mod bor_write_min;
pub(crate) mod common;
pub mod filter;
pub mod filter_kruskal;
pub mod mst_bc;
pub mod sf_hook;
pub mod wide;
