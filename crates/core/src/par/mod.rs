//! The four parallel Borůvka variants (§2) and the new MST-BC hybrid (§4).

pub mod bor_al;
pub mod bor_dense;
pub mod bor_el;
pub mod bor_fal;
pub(crate) mod common;
pub mod filter;
pub mod mst_bc;
