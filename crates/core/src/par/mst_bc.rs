//! MST-BC: the paper's new shared-memory MSF algorithm (§4, Algs. 1–2).
//!
//! `p` processors each run Prim's algorithm concurrently on the shared
//! graph, growing vertex-disjoint subtrees claimed through a CAS-once color
//! array. A tree stops growing ("matures") when its heap yields a vertex it
//! no longer owns or a vertex adjacent to a foreign color. Vertices left
//! unvisited pick their minimum incident edge (one Borůvka step), mature
//! subtrees contract via connected components, and the algorithm recurses on
//! the contracted graph until the problem fits one processor, which finishes
//! with the best sequential algorithm.
//!
//! With p = 1 this *is* Prim's algorithm (one tree grows to completion per
//! component); with p = n it degenerates to Borůvka. Load balance uses work
//! stealing from the tail of unfinished partitions; progress against
//! adversarial start alignments uses a random vertex permutation (Sanders).
//!
//! Correctness relies on two facts enforced here (cf. the paper's
//! Appendix B and DESIGN.md §6): a vertex's color is written exactly once,
//! so trees never share vertices; and every neighbor — even foreign-colored
//! — is inserted into the grower's heap, so a tree always stops *before*
//! skipping a lighter crossing edge, making every accepted edge the minimum
//! edge over its tree's cut.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use msf_graph::{AdjacencyArray, Edge, EdgeKey, EdgeList, OrderedWeight};
use msf_primitives::cost::{Stopwatch, WorkMeter};
use msf_primitives::heap::IndexedHeap;
use msf_primitives::obs;
use msf_primitives::permutation::parallel_permutation;
use msf_primitives::steal::StealingPartitions;
use msf_primitives::team::SmpTeam;
use msf_primitives::unionfind::UnionFind;
use rayon::prelude::*;

use crate::par::common::{
    connect_components_from_roots, relabel_and_filter, sort_and_dedup, PHASE_OVERHEAD,
};
use crate::stats::{IterationStats, MstBcStats, RunStats, StepKind, StepSpan};
use crate::{MsfConfig, MsfResult};

const NONE: u32 = u32::MAX;

/// The sentinel key that makes a tree's start vertex pop first.
const START_KEY: EdgeKey = EdgeKey {
    w: OrderedWeight(f64::NEG_INFINITY),
    id: 0,
};

/// Compute the MSF with MST-BC.
pub fn msf(g: &EdgeList, cfg: &MsfConfig) -> MsfResult {
    let watch = Stopwatch::start();
    let p = cfg.threads.max(1);
    let mut stats = RunStats::new("MST-BC", p);

    // Current contracted problem: endpoints are current vertex ids, `id`
    // still the original input edge id.
    let mut n = g.num_vertices();
    let mut edges: Vec<Edge> = g.edges().to_vec();
    let mut out: Vec<u32> = Vec::with_capacity(n.saturating_sub(1));
    let mut level = 0u64;

    while n > cfg.base_size && !edges.is_empty() {
        let mut it = IterationStats {
            vertices: n,
            directed_edges: edges.len() * 2,
            ..Default::default()
        };
        let _iteration = obs::span(
            obs::SpanKind::Iteration,
            stats.iterations.len() as u64,
            n as u64,
        );
        let step = StepSpan::begin(StepKind::FindMin, stats.iterations.len());

        // Index edges so chosen edges resolve to current endpoints; the
        // total-order key still uses the ORIGINAL id, keeping the forest
        // identical to every other algorithm's under ties.
        let indexed: Vec<Edge> = edges
            .iter()
            .enumerate()
            .map(|(i, e)| Edge::new(e.u, e.v, e.w, i as u32))
            .collect();
        let csr = AdjacencyArray::from_edges(n, &indexed);

        // Steps 1–2 (Alg. 2): concurrent Prim growth.
        let (tree_edges, visited, grow_meters, round_stats) =
            grow_trees(&csr, &edges, n, p, cfg, level);
        stats.mstbc = Some(stats.mstbc.unwrap_or_default() + round_stats);
        it.find_min = step.finish(&grow_meters, PHASE_OVERHEAD);

        // Step 3: Borůvka step for unvisited vertices.
        let step = StepSpan::begin(StepKind::Connect, stats.iterations.len());
        let mut b_meters = vec![WorkMeter::new(); p];
        let boruvka_edges = unvisited_min_edges(&csr, &edges, &visited, n, p, &mut b_meters);
        let mut chosen = tree_edges;
        chosen.extend_from_slice(&boruvka_edges);
        chosen.sort_unstable();
        chosen.dedup();
        out.extend(chosen.iter().map(|&i| edges[i as usize].id));

        // Step 4: contract the found forest via connected components.
        let pairs: Vec<(u32, u32)> = chosen
            .iter()
            .map(|&i| (edges[i as usize].u, edges[i as usize].v))
            .collect();
        let roots = msf_primitives::connectivity::sv::connected_components(n, &pairs);
        let (labels, k) = connect_components_from_roots(roots, p, &mut b_meters);
        it.connect = step.finish(&b_meters, PHASE_OVERHEAD);

        // Step 5: rebuild the graph between supervertices.
        let step = StepSpan::begin(StepKind::Compact, stats.iterations.len());
        let mut cg_meters = vec![WorkMeter::new(); p];
        let survivors = relabel_and_filter(&edges, &labels, p, &mut cg_meters);
        // Canonicalize direction so (u,v) and (v,u) multi-edges merge.
        let canon: Vec<Edge> = survivors
            .into_par_iter()
            .map(|e| {
                if e.u <= e.v {
                    e
                } else {
                    Edge::new(e.v, e.u, e.w, e.id)
                }
            })
            .collect();
        edges = sort_and_dedup(canon, p, &mut cg_meters);
        n = k as usize;
        it.compact = step.finish(&cg_meters, PHASE_OVERHEAD);

        stats.push_iteration(it);
        level += 1;
        if n <= 1 {
            edges.clear();
        }
    }

    // Base case: one processor solves the contracted remainder (Kruskal).
    if !edges.is_empty() {
        let base = StepSpan::begin(StepKind::BaseCase, stats.iterations.len());
        let mut meter = WorkMeter::new();
        let mut order: Vec<u32> = (0..edges.len() as u32).collect();
        order.sort_unstable_by_key(|&i| edges[i as usize].key());
        let mut uf = UnionFind::new(n);
        for &i in &order {
            let e = edges[i as usize];
            meter.ops(2);
            meter.mem(2);
            if uf.union(e.u as usize, e.v as usize) {
                out.push(e.id);
            }
        }
        meter.ops((edges.len().max(2).ilog2() as u64) * edges.len() as u64);
        stats.add_flat_cost(base.finish(&[meter], 0).modeled_max);
    }

    stats.total_seconds = watch.seconds();
    MsfResult::from_ids(g, out, stats)
}

/// Alg. 2: every team member claims uncolored start vertices and grows Prim
/// trees until maturity. Returns the chosen edge indices, the visited map,
/// and per-thread work meters.
fn grow_trees(
    csr: &AdjacencyArray,
    edges: &[Edge],
    n: usize,
    p: usize,
    cfg: &MsfConfig,
    level: u64,
) -> (Vec<u32>, Vec<bool>, Vec<WorkMeter>, MstBcStats) {
    let color: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let visited: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let order: Option<Vec<u32>> = cfg
        .shuffle
        .then(|| parallel_permutation(n, p, cfg.seed ^ level.wrapping_mul(0x9e37)));
    let partitions = StealingPartitions::new(n, p);

    let team = SmpTeam::new(p);
    let results: Vec<(Vec<u32>, WorkMeter, MstBcStats)> = team.run(|ctx| {
        let t = ctx.rank;
        let mut meter = WorkMeter::new();
        let mut local_stats = MstBcStats::default();
        let mut heap: IndexedHeap<EdgeKey> = IndexedHeap::new(n);
        let mut edge_to: Vec<u32> = vec![NONE; n];
        let mut found: Vec<u32> = Vec::new();
        let mut trees = 0u32;
        let mut rng_state = (t as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ level;

        loop {
            let slot = match partitions.claim_local(t) {
                Some(slot) => Some(slot),
                None if cfg.work_stealing => {
                    rng_state = rng_state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let stolen = partitions.claim_steal_only(t, (rng_state >> 33) as usize);
                    if stolen.is_some() {
                        local_stats.steals += 1;
                    }
                    stolen
                }
                None => None,
            };
            let Some(slot) = slot else { break };
            let v = order.as_ref().map_or(slot as u32, |o| o[slot]);
            meter.mem(1);
            if color[v as usize].load(Ordering::SeqCst) != 0 {
                continue;
            }
            // Choose a color unique across processors and this processor's
            // earlier trees (step 1.2 of Alg. 2).
            let my_color = trees
                .wrapping_mul(p as u32)
                .wrapping_add(t as u32)
                .wrapping_add(1);
            trees += 1;
            if color[v as usize]
                .compare_exchange(0, my_color, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                continue; // lost the race for the start vertex
            }
            local_stats.trees += 1;
            // Grow one Prim tree from v.
            heap.reset();
            heap.insert_or_decrease(v, START_KEY);
            edge_to[v as usize] = NONE;
            let mut accepted = 0u32;
            while let Some((_, w)) = heap.extract_min() {
                meter.ops(1);
                // On hosts with fewer cores than p, one thread could grow an
                // entire component before its peers are scheduled, which no
                // real SMP would do. Yielding every few dozen acceptances
                // interleaves the growers the way genuine concurrency does;
                // it is a no-op cost on machines with >= p cores.
                accepted += 1;
                if p > 1 && accepted.is_multiple_of(32) {
                    std::thread::yield_now();
                }
                if color[w as usize].load(Ordering::SeqCst) != my_color {
                    local_stats.collisions += 1;
                    break; // collision: another tree owns w — mature
                }
                if visited[w as usize].load(Ordering::SeqCst) {
                    continue; // already folded into this tree
                }
                // Maturity check: any neighbor already in a foreign tree?
                let mut foreign = false;
                for (u, _, _) in csr.neighbors(w) {
                    meter.mem(1);
                    let c = color[u as usize].load(Ordering::SeqCst);
                    if c != 0 && c != my_color {
                        foreign = true;
                        break;
                    }
                }
                if foreign {
                    local_stats.matured += 1;
                    break;
                }
                visited[w as usize].store(true, Ordering::SeqCst);
                local_stats.visited += 1;
                if edge_to[w as usize] != NONE {
                    found.push(edge_to[w as usize]);
                }
                for (u, _, idx) in csr.neighbors(w) {
                    meter.mem(1);
                    meter.ops(1);
                    if color[u as usize].load(Ordering::SeqCst) == my_color
                        && visited[u as usize].load(Ordering::SeqCst)
                    {
                        continue; // my own tree body
                    }
                    let _ = color[u as usize].compare_exchange(
                        0,
                        my_color,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    );
                    // Insert regardless of who owns u: if the cut minimum
                    // leads into a foreign tree we must *stop* there, not
                    // skip past it (see module docs).
                    let key = edges[idx as usize].key();
                    if heap.insert_or_decrease(u, key) {
                        edge_to[u as usize] = idx;
                    }
                }
            }
        }
        (found, meter, local_stats)
    });

    let mut found = Vec::new();
    let mut meters = Vec::with_capacity(p);
    let mut agg = MstBcStats::default();
    for (f, m, st) in results {
        found.extend_from_slice(&f);
        meters.push(m);
        agg = agg + st;
    }
    let visited: Vec<bool> = visited.into_iter().map(AtomicBool::into_inner).collect();
    (found, visited, meters, agg)
}

/// Step 3: each unvisited vertex contributes its minimum incident edge.
fn unvisited_min_edges(
    csr: &AdjacencyArray,
    edges: &[Edge],
    visited: &[bool],
    n: usize,
    p: usize,
    meters: &mut [WorkMeter],
) -> Vec<u32> {
    let parts: Vec<(Vec<u32>, WorkMeter)> = (0..p)
        .into_par_iter()
        .map(|t| {
            let r = msf_primitives::block_range(n, p, t);
            let mut meter = WorkMeter::new();
            let mut found = Vec::new();
            for v in r {
                if visited[v] {
                    continue;
                }
                meter.mem(1);
                let mut best: Option<(EdgeKey, u32)> = None;
                for (_, _, idx) in csr.neighbors(v as u32) {
                    meter.ops(1);
                    let key = edges[idx as usize].key();
                    if best.is_none_or(|(bk, _)| key < bk) {
                        best = Some((key, idx));
                    }
                }
                if let Some((_, idx)) = best {
                    found.push(idx);
                }
            }
            (found, meter)
        })
        .collect();
    let mut found = Vec::new();
    for (t, (f, m)) in parts.into_iter().enumerate() {
        meters[t] = meters[t] + m;
        found.extend_from_slice(&f);
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use msf_graph::generators::{random_graph, structured, GeneratorConfig, StructuredKind};

    fn cfg(p: usize) -> MsfConfig {
        MsfConfig {
            base_size: 8,
            ..MsfConfig::with_threads(p)
        }
    }

    #[test]
    fn triangle() {
        let g = EdgeList::from_triples(3, vec![(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]);
        let r = msf(&g, &cfg(2));
        assert_eq!(r.edges, vec![0, 1]);
    }

    #[test]
    fn single_thread_behaves_as_prim() {
        let g = random_graph(&GeneratorConfig::with_seed(3), 300, 1200);
        let r = msf(&g, &cfg(1));
        assert_eq!(r.edges, crate::seq::prim::msf(&g).edges);
    }

    #[test]
    fn matches_kruskal_for_many_thread_counts() {
        for seed in 0..4u64 {
            let g = random_graph(&GeneratorConfig::with_seed(seed), 400, 1600);
            let expect = crate::seq::kruskal::msf(&g);
            for p in [1, 2, 3, 4, 8] {
                let r = msf(&g, &cfg(p));
                assert_eq!(r.edges, expect.edges, "seed {seed}, p {p}");
            }
        }
    }

    #[test]
    fn handles_structured_worst_cases() {
        for kind in [
            StructuredKind::Str0,
            StructuredKind::Str1,
            StructuredKind::Str2,
            StructuredKind::Str3,
        ] {
            let g = structured(&GeneratorConfig::with_seed(1), kind, 200);
            let r = msf(&g, &cfg(4));
            // The input is a tree: the MSF is the whole edge set.
            assert_eq!(r.edges, (0..199u32).collect::<Vec<_>>(), "{kind:?}");
        }
    }

    #[test]
    fn disconnected_forest() {
        let g = EdgeList::from_triples(7, vec![(0, 1, 1.0), (2, 3, 2.0), (3, 4, 0.5)]);
        let r = msf(&g, &cfg(3));
        assert_eq!(r.edges, vec![0, 1, 2]);
        assert_eq!(r.components, 4);
    }

    #[test]
    fn ablations_still_correct() {
        let g = random_graph(&GeneratorConfig::with_seed(5), 500, 2000);
        let expect = crate::seq::kruskal::msf(&g);
        for (shuffle, stealing) in [(false, false), (false, true), (true, false)] {
            let c = MsfConfig {
                shuffle,
                work_stealing: stealing,
                base_size: 8,
                ..MsfConfig::with_threads(4)
            };
            let r = msf(&g, &c);
            assert_eq!(r.edges, expect.edges, "shuffle={shuffle} steal={stealing}");
        }
    }

    #[test]
    fn behavioral_counters_are_plausible() {
        let g = random_graph(&GeneratorConfig::with_seed(8), 2_000, 8_000);
        let r = msf(&g, &cfg(4));
        let st = r.stats.mstbc.expect("MST-BC populates its counters");
        assert!(st.trees >= 1);
        assert!(st.visited >= 1);
        // At p=1 there are no foreign trees to collide with…
        let r1 = msf(&g, &cfg(1));
        let st1 = r1.stats.mstbc.expect("populated at p=1 too");
        assert_eq!(st1.collisions, 0, "single worker never collides");
        assert_eq!(st1.steals, 0, "single worker has nobody to steal from");
        // …and one worker visits every vertex of the (connected) graph.
        assert_eq!(st1.visited, 2_000);
    }

    #[test]
    fn no_stealing_when_disabled() {
        let g = random_graph(&GeneratorConfig::with_seed(9), 1_000, 4_000);
        let c = MsfConfig {
            work_stealing: false,
            base_size: 8,
            ..MsfConfig::with_threads(4)
        };
        let r = msf(&g, &c);
        assert_eq!(r.stats.mstbc.unwrap().steals, 0);
    }

    #[test]
    fn base_case_only_when_tiny() {
        let g = random_graph(&GeneratorConfig::with_seed(6), 30, 60);
        let c = MsfConfig {
            base_size: 1000,
            ..MsfConfig::with_threads(4)
        };
        let r = msf(&g, &c);
        assert_eq!(r.edges, crate::seq::kruskal::msf(&g).edges);
        assert!(r.stats.iterations.is_empty(), "entirely the base case");
    }
}
