//! Machinery shared by the parallel MSF algorithms: connect-components over
//! find-min choices, edge relabel/contract passes, and the modeled-cost
//! conventions.

use msf_graph::{Edge, EdgeList, OrderedWeight};
use msf_primitives::atomic::{packed_edge_key, MinSlots};
use msf_primitives::connectivity::{pointer_jump, relabel_consecutive};
use msf_primitives::cost::WorkMeter;
use msf_primitives::prefix::exclusive_scan;
use msf_primitives::sort::{sample_sort_by_key, SampleSortConfig};
use rayon::prelude::*;

/// Modeled fixed cost of launching and barrier-joining one parallel phase
/// (fork overhead, splitter selection, cache-line ping-pong on shared
/// cursors). In work units of [`WorkMeter::cost`]; roughly the ~20 µs a
/// fork/join round trip costs at ~1 ns/unit. This constant is what bends the
/// modeled speedup curves away from ideal on iteration-heavy inputs (the
/// structured graphs of Fig. 6), matching the qualitative behavior the paper
/// measured on real hardware.
pub(crate) const PHASE_OVERHEAD: u64 = 20_000;

/// Composite sort key for contract passes: group by (source, target), then
/// order each group by the total-order edge key so the group's first element
/// is its minimum.
#[inline]
pub(crate) fn contract_key(e: &Edge) -> (u32, u32, OrderedWeight, u32) {
    (e.u, e.v, OrderedWeight(e.w), e.id)
}

/// The connect-components step (paper §2, step 2): every vertex points along
/// its chosen minimum edge (`to[v]`, or `v` itself when it chose nothing),
/// mutual pairs are broken, pointer jumping collapses the hook trees, and
/// roots are renumbered consecutively. Returns `(labels, k)` and charges the
/// modeled cost to `meters`.
pub(crate) fn connect_components(
    to: Vec<u32>,
    p: usize,
    meters: &mut [WorkMeter],
) -> (Vec<u32>, u32) {
    let n = to.len();
    let mut parent = to;
    pointer_jump::resolve_pseudo_forest(&mut parent);
    let (labels, k) = relabel_consecutive(&parent);
    // Pointer jumping is O(n log n) scattered reads split across p workers;
    // the paper's own bound for this step (§3): ME ≤ 2 n log n.
    let log_n = (usize::BITS - n.max(2).leading_zeros()) as u64;
    let per = (n as u64 * log_n) / p.max(1) as u64;
    for m in meters.iter_mut() {
        m.mem(per);
        m.ops(per);
    }
    (labels, k)
}

/// Renumber already-resolved component roots (e.g. from Shiloach–Vishkin)
/// into consecutive labels, charging the modeled relabel cost to `meters`.
pub(crate) fn connect_components_from_roots(
    roots: Vec<u32>,
    p: usize,
    meters: &mut [WorkMeter],
) -> (Vec<u32>, u32) {
    let n = roots.len();
    let (labels, k) = relabel_consecutive(&roots);
    let per = (n / p.max(1)) as u64 + 1;
    for m in meters.iter_mut() {
        m.mem(per);
        m.ops(per);
    }
    (labels, k)
}

/// Relabel endpoints through `labels` and drop self-loops, in `p` metered
/// blocks. The surviving edges keep their weight and original id.
///
/// Dispatches between the fused single-sweep kernel
/// ([`msf_primitives::fused::filter_relabel_compact`]) and the retained
/// multi-pass formulation (`MSF_UNFUSED=1`). Both paths produce the exact
/// same survivors in the exact same order and charge the exact same
/// modeled cost — two scattered lookup-table reads per edge — which is
/// what lets the differential suite demand bit-identical forests *and*
/// equal modeled costs between modes.
pub(crate) fn relabel_and_filter(
    edges: &[Edge],
    labels: &[u32],
    p: usize,
    meters: &mut [WorkMeter],
) -> Vec<Edge> {
    let p = p.max(1);
    for (t, m) in meters.iter_mut().enumerate().take(p) {
        m.mem(2 * msf_primitives::block_range(edges.len(), p, t).len() as u64);
    }
    if msf_primitives::fused::unfused() {
        // Multi-pass path: per-block staging vectors, then a serial splice.
        let parts: Vec<Vec<Edge>> = (0..p)
            .into_par_iter()
            .map(|t| {
                let r = msf_primitives::block_range(edges.len(), p, t);
                let mut out = Vec::with_capacity(r.len());
                for e in &edges[r] {
                    let (lu, lv) = (labels[e.u as usize], labels[e.v as usize]);
                    if lu != lv {
                        out.push(Edge::new(lu, lv, e.w, e.id));
                    }
                }
                out
            })
            .collect();
        let mut out = Vec::with_capacity(edges.len());
        for part in parts {
            out.extend_from_slice(&part);
        }
        return out;
    }
    let out =
        msf_primitives::fused::filter_relabel_compact(edges, p, Edge::new(0, 0, 0.0, 0), |_, e| {
            let (lu, lv) = (labels[e.u as usize], labels[e.v as usize]);
            (lu != lv).then(|| Edge::new(lu, lv, e.w, e.id))
        });
    // The kernel records the edge sweep; the two u32 label-table reads per
    // edge are side-band traffic it cannot see.
    msf_primitives::fused::record_traffic(8 * edges.len() as u64);
    out
}

/// Sort relabeled edges by [`contract_key`] and keep only the first (=
/// minimum) edge of every (u, v) group — the sample-sort + prefix-merge
/// compact of Bor-EL (§2.1), also reused by MST-BC's contraction (§4 step 5).
///
/// Input edges must already be self-loop free. The caller chooses directed
/// (2m mirrored entries, Bor-EL) or undirected (MST-BC) form.
pub(crate) fn sort_and_dedup(edges: Vec<Edge>, p: usize, meters: &mut [WorkMeter]) -> Vec<Edge> {
    let len = edges.len();
    if len == 0 {
        return edges;
    }
    let p = p.max(1);
    let cfg = SampleSortConfig {
        buckets: p,
        ..SampleSortConfig::default()
    };
    let sorted = sample_sort_by_key(edges, contract_key, cfg);
    // Keep the head of each (u, v) run.
    let keep: Vec<bool> = (0..len)
        .into_par_iter()
        .map(|i| i == 0 || (sorted[i].u, sorted[i].v) != (sorted[i - 1].u, sorted[i - 1].v))
        .collect();
    let out = msf_primitives::prefix::par_filter(&sorted, &keep, p);
    // Modeled cost per worker, following the paper's sample-sort complexity
    // (Eq. 2): each element is bucketed (1 scattered write), gathered
    // (1 scattered read), and takes part in an O(l log l) bucket sort.
    let log_l = (usize::BITS - len.max(2).leading_zeros()) as u64;
    let per_elems = (len / p) as u64 + 1;
    for m in meters.iter_mut() {
        m.mem(2 * per_elems);
        m.ops(per_elems * log_l + per_elems);
    }
    out
}

/// Radix-based alternative to [`sort_and_dedup`]: group edges by the packed
/// `(u, v)` endpoint pair with a comparison-free LSD radix sort, then keep
/// each group's minimum-key edge with one linear scan. Produces exactly the
/// same output (sorted by source then target, one minimum edge per pair);
/// exchanged for the sample sort via `MsfConfig::radix_compact` and
/// measured in bench `ablation_sort_kernels` / `ablation_compact`.
pub(crate) fn radix_group_and_dedup(
    mut edges: Vec<Edge>,
    p: usize,
    meters: &mut [WorkMeter],
) -> Vec<Edge> {
    let len = edges.len();
    if len == 0 {
        return edges;
    }
    msf_primitives::sort::radix_sort_by_key(&mut edges, |e| {
        (u64::from(e.u) << 32) | u64::from(e.v)
    });
    let mut out: Vec<Edge> = Vec::with_capacity(len);
    let mut best = edges[0];
    for &e in &edges[1..] {
        if (e.u, e.v) == (best.u, best.v) {
            if e.key() < best.key() {
                best = e;
            }
        } else {
            out.push(best);
            best = e;
        }
    }
    out.push(best);
    // Modeled cost: ~`passes` counting passes of contiguous reads plus one
    // scattered write per element per pass, split across p workers.
    let passes = 8u64; // two u32 endpoints, byte digits
    let per = (len / p.max(1)) as u64 + 1;
    for m in meters.iter_mut() {
        m.mem(per * passes / 4);
        m.ops(per * passes);
    }
    out
}

/// Segment starts of a (sorted-by-source) directed edge array: `seg[v]` is
/// the first index whose source is ≥ v, computed by `p` blocks of binary
/// searches; `seg[n] == edges.len()`.
pub(crate) fn segment_starts(edges: &[Edge], n: usize, p: usize) -> Vec<usize> {
    let p = p.max(1);
    let mut seg: Vec<usize> = (0..n)
        .into_par_iter()
        .with_min_len(n.div_ceil(p))
        .map(|v| edges.partition_point(|e| (e.u as usize) < v))
        .collect();
    seg.push(edges.len());
    seg
}

/// Per-vertex minimum edge over source segments: returns, for each vertex,
/// the index of its minimum-key incident edge or `u32::MAX` when its segment
/// is empty. Metered per block.
pub(crate) fn segmented_find_min(
    edges: &[Edge],
    seg: &[usize],
    p: usize,
    meters: &mut [WorkMeter],
) -> Vec<u32> {
    let n = seg.len() - 1;
    let p = p.max(1);
    let parts: Vec<(Vec<u32>, WorkMeter)> = (0..p)
        .into_par_iter()
        .map(|t| {
            let r = msf_primitives::block_range(n, p, t);
            let mut meter = WorkMeter::new();
            let mut out = Vec::with_capacity(r.len());
            for v in r {
                let (lo, hi) = (seg[v], seg[v + 1]);
                meter.mem(1);
                meter.ops((hi - lo) as u64);
                if lo == hi {
                    out.push(u32::MAX);
                    continue;
                }
                let mut best = lo;
                for i in lo + 1..hi {
                    if edges[i].key() < edges[best].key() {
                        best = i;
                    }
                }
                out.push(best as u32);
            }
            (out, meter)
        })
        .collect();
    let mut out = Vec::with_capacity(n);
    for (t, (part, m)) in parts.into_iter().enumerate() {
        meters[t] = meters[t] + m;
        out.extend_from_slice(&part);
    }
    out
}

/// Copy the undirected edge list, dropping self-loops, in `p` metered
/// blocks — the one-time setup pass of the lock-free contenders, which
/// iterate over the *undirected* m-entry list (no mirroring, no sorting).
pub(crate) fn collect_undirected(g: &EdgeList, p: usize, meters: &mut [WorkMeter]) -> Vec<Edge> {
    let all = g.edges();
    let p = p.max(1);
    let parts: Vec<(Vec<Edge>, WorkMeter)> = (0..p)
        .into_par_iter()
        .map(|t| {
            let r = msf_primitives::block_range(all.len(), p, t);
            let mut meter = WorkMeter::new();
            let mut out = Vec::with_capacity(r.len());
            for e in &all[r] {
                meter.mem(1);
                if e.u != e.v {
                    out.push(*e);
                }
            }
            (out, meter)
        })
        .collect();
    let mut out = Vec::with_capacity(all.len());
    for (t, (part, m)) in parts.into_iter().enumerate() {
        meters[t] = meters[t] + m;
        out.extend_from_slice(&part);
    }
    out
}

/// Whether every write of a rayon-facade race is guaranteed to run on the
/// calling thread: the sequential escape hatch is on, or the pool has a
/// single worker (fork/join then runs inline). This is the soundness
/// condition for [`MinSlots::new_single_writer`]'s plain path — note it is
/// about the *pool*, not the host: an `SmpTeam` leases real threads at any
/// pool width and never qualifies.
pub(crate) fn single_writer_here() -> bool {
    msf_primitives::pool::sequential_here() || msf_primitives::pool::width() == 1
}

/// [`MinSlots`] sized `n`, in single-writer mode when the calling context
/// guarantees one writer ([`single_writer_here`]).
pub(crate) fn min_slots_here(n: usize) -> MinSlots {
    if single_writer_here() {
        MinSlots::new_single_writer(n)
    } else {
        MinSlots::new(n)
    }
}

/// The per-endpoint write-min race (parlaylib `boruvka.h`): every edge
/// lowers both endpoints' slots to its own index under the packed
/// `(weight bits, edge id)` key, so the quiescent slots hold each vertex's
/// unique minimum incident edge — the same winner the barriered segmented
/// scan elects, without any sort or segment structure.
pub(crate) fn write_min_race(
    edges: &[Edge],
    n: usize,
    p: usize,
    meters: &mut [WorkMeter],
) -> MinSlots {
    let p = p.max(1);
    let slots = min_slots_here(n);
    let key = |i: u64| {
        let e = &edges[i as usize];
        packed_edge_key(e.w, e.id)
    };
    let parts: Vec<WorkMeter> = (0..p)
        .into_par_iter()
        .map(|t| {
            let r = msf_primitives::block_range(edges.len(), p, t);
            let mut meter = WorkMeter::new();
            // Slot initialization, amortized over the blocks.
            meter.mem((n / p) as u64 + 1);
            for i in r {
                let e = &edges[i];
                // Two atomic RMWs per edge (plus rare retry reloads).
                meter.mem(2);
                slots.write_min_by(e.u as usize, i as u64, key);
                slots.write_min_by(e.v as usize, i as u64, key);
            }
            meter
        })
        .collect();
    for (t, m) in parts.into_iter().enumerate() {
        meters[t] = meters[t] + m;
    }
    slots
}

/// Sort + dedup a batch of chosen edge ids (both endpoints of a mutual pair
/// pick the same edge) and append them to the output forest.
pub(crate) fn emit_unique(out: &mut Vec<u32>, mut chosen: Vec<u32>) {
    chosen.sort_unstable();
    chosen.dedup();
    out.extend_from_slice(&chosen);
}

/// Build per-supervertex offsets for grouping `n` items by label via a
/// counting sort: returns `(starts, order)` where `order[starts[s]..starts[s+1]]`
/// lists the items labeled `s`.
pub(crate) fn group_by_label(labels: &[u32], k: usize) -> (Vec<usize>, Vec<u32>) {
    let mut counts = vec![0usize; k + 1];
    for &l in labels {
        counts[l as usize] += 1;
    }
    exclusive_scan(&mut counts);
    let starts = counts.clone();
    let mut cursor = counts;
    let mut order = vec![0u32; labels.len()];
    for (v, &l) in labels.iter().enumerate() {
        order[cursor[l as usize]] = v as u32;
        cursor[l as usize] += 1;
    }
    (starts, order)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_components_pairs_and_chains() {
        // 0<->1, 2->1, 3<->4.
        let to = vec![1u32, 0, 1, 4, 3];
        let mut meters = vec![WorkMeter::new(); 2];
        let (labels, k) = connect_components(to, 2, &mut meters);
        assert_eq!(k, 2);
        assert_eq!(labels, vec![0, 0, 0, 1, 1]);
        assert!(meters[0].cost() > 0);
    }

    #[test]
    fn relabel_filters_self_loops() {
        let edges = vec![
            Edge::new(0, 1, 1.0, 0),
            Edge::new(1, 2, 2.0, 1),
            Edge::new(2, 3, 3.0, 2),
        ];
        let labels = vec![0, 0, 1, 1];
        let mut meters = vec![WorkMeter::new(); 2];
        let out = relabel_and_filter(&edges, &labels, 2, &mut meters);
        assert_eq!(out.len(), 1);
        assert_eq!((out[0].u, out[0].v, out[0].id), (0, 1, 1));
    }

    #[test]
    fn sort_and_dedup_keeps_minimum_of_group() {
        let edges = vec![
            Edge::new(0, 1, 5.0, 0),
            Edge::new(0, 1, 2.0, 1),
            Edge::new(1, 0, 3.0, 2),
            Edge::new(0, 2, 1.0, 3),
        ];
        let mut meters = vec![WorkMeter::new(); 2];
        let out = sort_and_dedup(edges, 2, &mut meters);
        // Groups: (0,1) -> id1 (w=2 min), (0,2) -> id3, (1,0) -> id2.
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].id, 1);
        assert_eq!(out[1].id, 3);
        assert_eq!(out[2].id, 2);
    }

    #[test]
    fn segment_starts_and_find_min() {
        let edges = vec![
            Edge::new(0, 1, 5.0, 0),
            Edge::new(0, 2, 2.0, 1),
            Edge::new(2, 0, 2.0, 1),
            Edge::new(2, 1, 9.0, 2),
        ];
        let seg = segment_starts(&edges, 3, 2);
        assert_eq!(seg, vec![0, 2, 2, 4]);
        let mut meters = vec![WorkMeter::new(); 2];
        let mins = segmented_find_min(&edges, &seg, 2, &mut meters);
        assert_eq!(mins[0], 1); // w=2 edge
        assert_eq!(mins[1], u32::MAX); // vertex 1 has no outgoing entries
        assert_eq!(mins[2], 2);
    }

    #[test]
    fn emit_unique_dedups() {
        let mut out = vec![9u32];
        emit_unique(&mut out, vec![3, 1, 3, 2, 1]);
        assert_eq!(out, vec![9, 1, 2, 3]);
    }

    #[test]
    fn group_by_label_buckets() {
        let labels = vec![1u32, 0, 1, 2, 0];
        let (starts, order) = group_by_label(&labels, 3);
        assert_eq!(starts, vec![0, 2, 4, 5]);
        assert_eq!(&order[0..2], &[1, 4]); // label 0
        assert_eq!(&order[2..4], &[0, 2]); // label 1
        assert_eq!(&order[4..5], &[3]); // label 2
    }
}
