//! Bor-AL / Bor-ALM: parallel Borůvka on adjacency arrays with the
//! two-level compact-graph sort (paper §2.2).
//!
//! compact-graph here is *bucketed*: first a small counting sort groups the
//! vertex array by supervertex label, then each vertex's adjacency list is
//! sorted individually — insertion sort for the many short lists, bottom-up
//! merge sort for long ones — and the sorted member lists of each
//! supervertex are k-way merged, dropping self-loops and keeping the
//! lightest of every multi-edge group. Sorting within buckets "saves
//! unnecessary comparisons between edges that have no vertices in common",
//! which is the paper's explanation for Bor-AL beating Bor-EL.
//!
//! **Bor-ALM** is the same algorithm under a different allocation policy:
//! instead of one fresh heap allocation per supervertex list per iteration,
//! each worker bump-allocates its lists from a retained per-worker
//! [`Arena`] — the paper's per-thread memory segments that sidestep the
//! shared `malloc` lock on Solaris. The arenas double-buffer across
//! iterations (compact reads generation i while writing generation i+1
//! into the spare set), so after the first couple of iterations warm the
//! capacity, the steady state performs **zero** system allocations per
//! iteration — which is exactly what the allocation-stats table printed by
//! `msf bench` demonstrates.

use msf_graph::{EdgeKey, EdgeList, OrderedWeight};
use msf_primitives::arena::Arena;
use msf_primitives::cost::{Stopwatch, WorkMeter};
use msf_primitives::obs;
use msf_primitives::sort::two_level_sort_by;
use rayon::prelude::*;

use crate::par::common::{connect_components, emit_unique, group_by_label, PHASE_OVERHEAD};
use crate::stats::{IterationStats, RunStats, StepKind, StepSpan};
use crate::{MsfConfig, MsfResult};

/// How compact-graph allocates the new adjacency lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocPolicy {
    /// One heap allocation per supervertex list per iteration (Bor-AL).
    SystemHeap,
    /// Per-worker retained arena buffers (Bor-ALM).
    ThreadArena,
}

/// One adjacency entry: target vertex, weight, original edge id.
/// (`Default` is required by the arena's zero-fill contract.)
#[derive(Debug, Clone, Copy, Default)]
struct AdjEntry {
    t: u32,
    w: f64,
    id: u32,
}

impl AdjEntry {
    #[inline]
    fn key(&self) -> EdgeKey {
        EdgeKey {
            w: OrderedWeight(self.w),
            id: self.id,
        }
    }

    /// compact-graph sort key: target supervertex first, then edge key.
    #[inline]
    fn group_key(&self) -> (u32, OrderedWeight, u32) {
        (self.t, OrderedWeight(self.w), self.id)
    }
}

/// One worker's retained Bor-ALM memory: its bump arena plus the scratch
/// buffers compact-graph reuses every iteration. Everything here keeps its
/// capacity across iterations (the arena via [`Arena::reset`], the `Vec`s
/// via `clear`), which is where Bor-ALM's zero-steady-state-allocation
/// behavior comes from.
#[derive(Debug, Default)]
struct ArenaWorker {
    arena: Arena<AdjEntry>,
    /// Relabeled, per-member-sorted entries for the supervertex in flight.
    scratch: Vec<AdjEntry>,
    /// Segment boundaries into `scratch`, one member list per segment.
    seg_bounds: Vec<usize>,
    /// K-way-merge output staging, copied into the arena per list.
    merge_buf: Vec<AdjEntry>,
    /// Retained k-way-merge heap and cursors.
    merge: MergeScratch,
}

/// Reusable state for one k-way merge, retained across supervertices so the
/// merge itself performs no heap allocation in steady state.
#[derive(Debug, Default)]
struct MergeScratch {
    heads: std::collections::BinaryHeap<MergeHead>,
    cursor: Vec<usize>,
}

/// One segment's frontier entry in the merge heap (min-heap via `Reverse`).
type MergeHead = std::cmp::Reverse<((u32, OrderedWeight, u32), usize)>;

/// Adjacency lists under either allocation policy.
enum Lists {
    Heap(Vec<Vec<AdjEntry>>),
    /// `index[v] = (worker, start, len)` into `storage[worker].arena`.
    Arena {
        index: Vec<(u32, u32, u32)>,
        storage: Vec<ArenaWorker>,
    },
}

impl Lists {
    #[inline]
    fn list(&self, v: usize) -> &[AdjEntry] {
        match self {
            Lists::Heap(lists) => &lists[v],
            Lists::Arena { index, storage } => {
                let (b, s, l) = index[v];
                storage[b as usize].arena.range(s as usize, l as usize)
            }
        }
    }

    fn total_entries(&self) -> usize {
        match self {
            Lists::Heap(lists) => lists.iter().map(Vec::len).sum(),
            Lists::Arena { index, .. } => index.iter().map(|&(_, _, l)| l as usize).sum(),
        }
    }
}

/// Compute the MSF with Bor-AL (`SystemHeap`) or Bor-ALM (`ThreadArena`).
pub fn msf(g: &EdgeList, cfg: &MsfConfig, policy: AllocPolicy) -> MsfResult {
    let watch = Stopwatch::start();
    let p = cfg.threads.max(1);
    let name = match policy {
        AllocPolicy::SystemHeap => "Bor-AL",
        AllocPolicy::ThreadArena => "Bor-ALM",
    };
    let mut stats = RunStats::new(name, p);

    let mut n = g.num_vertices();
    let mut out: Vec<u32> = Vec::with_capacity(n.saturating_sub(1));

    // Bor-ALM double buffer: compact reads the front generation (inside
    // `lists`) while writing the next one into these spare workers; after
    // the swap the displaced generation's arenas come back here, capacity
    // intact, for the iteration after.
    let mut spare: Vec<ArenaWorker> = match policy {
        AllocPolicy::ThreadArena => (0..p).map(|_| ArenaWorker::default()).collect(),
        AllocPolicy::SystemHeap => Vec::new(),
    };

    // Initial lists straight from the input. Bor-AL pays one heap `Vec` per
    // vertex here (as it will again every iteration); Bor-ALM bump-allocates
    // the whole generation from its per-thread arenas from the start.
    let csr = msf_graph::AdjacencyArray::from_edge_list(g);
    let mut lists = match policy {
        AllocPolicy::SystemHeap => Lists::Heap(
            (0..n as u32)
                .map(|v| {
                    csr.neighbors(v)
                        .map(|(t, w, id)| AdjEntry { t, w, id })
                        .collect()
                })
                .collect(),
        ),
        AllocPolicy::ThreadArena => {
            let mut workers = std::mem::take(&mut spare);
            let spans_per_worker: Vec<Vec<(u32, u32)>> = workers
                .par_iter_mut()
                .enumerate()
                .map(|(t, w)| {
                    let r = msf_primitives::block_range(n, p, t);
                    w.arena.reset();
                    let mut spans = Vec::with_capacity(r.len());
                    for v in r {
                        w.merge_buf.clear();
                        w.merge_buf
                            .extend(csr.neighbors(v as u32).map(|(t2, w2, id)| AdjEntry {
                                t: t2,
                                w: w2,
                                id,
                            }));
                        let av = w.arena.alloc_from(&w.merge_buf);
                        spans.push((av.start() as u32, av.len() as u32));
                    }
                    spans
                })
                .collect();
            let mut index = Vec::with_capacity(n);
            for (t, spans) in spans_per_worker.into_iter().enumerate() {
                for (s0, l) in spans {
                    index.push((t as u32, s0, l));
                }
            }
            Lists::Arena {
                index,
                storage: workers,
            }
        }
    };
    drop(csr);

    loop {
        let directed_edges = lists.total_entries();
        if directed_edges == 0 {
            break;
        }
        let mut it = IterationStats {
            vertices: n,
            directed_edges,
            ..Default::default()
        };
        let _iteration = obs::span(
            obs::SpanKind::Iteration,
            stats.iterations.len() as u64,
            n as u64,
        );

        // Step 1: find-min — scan each vertex's (contiguous) list.
        let step = StepSpan::begin(StepKind::FindMin, stats.iterations.len());
        let mut fm_meters = vec![WorkMeter::new(); p];
        let (to, chosen) = find_min(&lists, n, p, &mut fm_meters);
        emit_unique(&mut out, chosen);
        it.find_min = step.finish(&fm_meters, PHASE_OVERHEAD);

        // Step 2: connect-components.
        let step = StepSpan::begin(StepKind::Connect, stats.iterations.len());
        let mut cc_meters = vec![WorkMeter::new(); p];
        let (labels, k) = connect_components(to, p, &mut cc_meters);
        it.connect = step.finish(&cc_meters, PHASE_OVERHEAD);

        // Step 3: compact-graph — the two-level sort + k-way merge.
        let step = StepSpan::begin(StepKind::Compact, stats.iterations.len());
        let mut cg_meters = vec![WorkMeter::new(); p];
        let next = compact(
            &lists,
            &labels,
            k as usize,
            p,
            policy,
            &mut spare,
            &mut cg_meters,
        );
        // compact-graph is already a fused relabel+filter sweep (each
        // surviving entry is read exactly once, relabeled, and written into
        // the next generation), so it participates in the suite-wide
        // bandwidth accounting: one read of the old generation plus one
        // write of the new one (DESIGN.md §15).
        msf_primitives::fused::record_traffic(
            ((directed_edges + next.total_entries()) * std::mem::size_of::<AdjEntry>()) as u64,
        );
        let old = std::mem::replace(&mut lists, next);
        if let Lists::Arena { storage, .. } = old {
            // Recycle the displaced generation's arenas and scratch buffers.
            spare = storage;
        }
        n = k as usize;
        it.compact = step.finish(&cg_meters, PHASE_OVERHEAD);

        stats.push_iteration(it);
        if n <= 1 {
            break;
        }
    }

    stats.total_seconds = watch.seconds();
    MsfResult::from_ids(g, out, stats)
}

/// find-min over per-vertex lists: returns the hook targets (`v` itself when
/// the list is empty) and the chosen edge ids.
fn find_min(lists: &Lists, n: usize, p: usize, meters: &mut [WorkMeter]) -> (Vec<u32>, Vec<u32>) {
    let parts: Vec<(Vec<u32>, Vec<u32>, WorkMeter)> = (0..p)
        .into_par_iter()
        .map(|t| {
            let r = msf_primitives::block_range(n, p, t);
            let mut meter = WorkMeter::new();
            let mut to = Vec::with_capacity(r.len());
            let mut chosen = Vec::new();
            for v in r {
                let list = lists.list(v);
                meter.mem(1);
                meter.ops(list.len() as u64);
                match list.iter().min_by_key(|e| e.key()) {
                    Some(best) => {
                        to.push(best.t);
                        chosen.push(best.id);
                    }
                    None => to.push(v as u32),
                }
            }
            (to, chosen, meter)
        })
        .collect();
    let mut to = Vec::with_capacity(n);
    let mut chosen = Vec::new();
    for (t, (tpart, cpart, m)) in parts.into_iter().enumerate() {
        meters[t] = meters[t] + m;
        to.extend_from_slice(&tpart);
        chosen.extend_from_slice(&cpart);
    }
    (to, chosen)
}

/// Relabel, per-member-sort, and segment one supervertex's member lists
/// into `scratch`/`seg_bounds` (cleared first). Shared by both policies.
fn build_segments(
    lists: &Lists,
    labels: &[u32],
    members: &[u32],
    s: u32,
    scratch: &mut Vec<AdjEntry>,
    seg_bounds: &mut Vec<usize>,
    meter: &mut WorkMeter,
) {
    scratch.clear();
    seg_bounds.clear();
    seg_bounds.push(0);
    for &v in members {
        let start = scratch.len();
        for e in lists.list(v as usize) {
            meter.mem(1); // label lookup
            let tl = labels[e.t as usize];
            if tl != s {
                scratch.push(AdjEntry { t: tl, ..*e });
            }
        }
        let seg = &mut scratch[start..];
        let len = seg.len() as u64;
        meter.ops(len * (64 - len.max(2).leading_zeros()) as u64);
        two_level_sort_by(seg, |a, b| a.group_key() < b.group_key());
        seg_bounds.push(scratch.len());
    }
}

/// The two-level compact-graph step. For `ThreadArena`, the next generation
/// is written into `spare` (drained by this call; the caller recycles the
/// displaced generation back into it after swapping).
fn compact(
    lists: &Lists,
    labels: &[u32],
    k: usize,
    p: usize,
    policy: AllocPolicy,
    spare: &mut Vec<ArenaWorker>,
    meters: &mut [WorkMeter],
) -> Lists {
    // "Sort the vertex array according to the supervertex label" — the
    // smaller parallel sort is a counting sort here.
    let (starts, order) = group_by_label(labels, k);
    for m in meters.iter_mut() {
        m.mem((labels.len() / p.max(1)) as u64 + 1);
        m.ops((labels.len() / p.max(1)) as u64 + 1);
    }

    match policy {
        // Bor-AL: each worker heap-allocates one fresh Vec per supervertex
        // list, every iteration — the allocator-contention baseline.
        AllocPolicy::SystemHeap => {
            let parts: Vec<(Vec<Vec<AdjEntry>>, WorkMeter)> = (0..p)
                .into_par_iter()
                .map(|t| {
                    let r = msf_primitives::block_range(k, p, t);
                    let mut meter = WorkMeter::new();
                    let mut built: Vec<Vec<AdjEntry>> = Vec::with_capacity(r.len());
                    let mut scratch: Vec<AdjEntry> = Vec::new();
                    let mut seg_bounds: Vec<usize> = Vec::new();
                    let mut merge = MergeScratch::default();
                    for s in r {
                        build_segments(
                            lists,
                            labels,
                            &order[starts[s]..starts[s + 1]],
                            s as u32,
                            &mut scratch,
                            &mut seg_bounds,
                            &mut meter,
                        );
                        let mut list = Vec::with_capacity(scratch.len());
                        merge_segments_into(
                            &scratch,
                            &seg_bounds,
                            &mut merge,
                            &mut list,
                            &mut meter,
                        );
                        built.push(list);
                    }
                    (built, meter)
                })
                .collect();
            let mut lists: Vec<Vec<AdjEntry>> = Vec::with_capacity(k);
            for (t, (built, m)) in parts.into_iter().enumerate() {
                meters[t] = meters[t] + m;
                lists.extend(built);
            }
            Lists::Heap(lists)
        }
        // Bor-ALM: each worker bump-allocates its block's lists from its
        // retained arena; only capacity warm-up ever hits the system heap.
        AllocPolicy::ThreadArena => {
            let mut workers = std::mem::take(spare);
            if workers.len() < p {
                workers.resize_with(p, ArenaWorker::default);
            }
            let parts: Vec<(Vec<(u32, u32)>, WorkMeter)> = workers
                .par_iter_mut()
                .enumerate()
                .map(|(t, w)| {
                    let r = msf_primitives::block_range(k, p, t);
                    let mut meter = WorkMeter::new();
                    w.arena.reset();
                    let mut spans: Vec<(u32, u32)> = Vec::with_capacity(r.len());
                    for s in r {
                        let (scratch, seg_bounds) = (&mut w.scratch, &mut w.seg_bounds);
                        build_segments(
                            lists,
                            labels,
                            &order[starts[s]..starts[s + 1]],
                            s as u32,
                            scratch,
                            seg_bounds,
                            &mut meter,
                        );
                        w.merge_buf.clear();
                        merge_segments_into(
                            &w.scratch,
                            &w.seg_bounds,
                            &mut w.merge,
                            &mut w.merge_buf,
                            &mut meter,
                        );
                        let av = w.arena.alloc_from(&w.merge_buf);
                        spans.push((av.start() as u32, av.len() as u32));
                    }
                    (spans, meter)
                })
                .collect();
            let mut index: Vec<(u32, u32, u32)> = Vec::with_capacity(k);
            for (t, (spans, m)) in parts.into_iter().enumerate() {
                meters[t] = meters[t] + m;
                for (start, len) in spans {
                    index.push((t as u32, start, len));
                }
            }
            Lists::Arena {
                index,
                storage: workers,
            }
        }
    }
}

/// K-way merge of per-member sorted segments into `outlist`, keeping the
/// minimum entry per target ("the set of vertices with the same supervertex
/// label … can be merged efficiently"). The caller owns `outlist` and the
/// merge scratch, so Bor-ALM stages into retained buffers and the merge is
/// allocation-free in steady state.
fn merge_segments_into(
    scratch: &[AdjEntry],
    bounds: &[usize],
    ms: &mut MergeScratch,
    outlist: &mut Vec<AdjEntry>,
    meter: &mut WorkMeter,
) {
    let segs = bounds.len() - 1;
    outlist.reserve(scratch.len());
    if segs == 1 {
        // Single member: already sorted; dedup by target in one pass.
        for e in scratch {
            if outlist.last().is_none_or(|l| l.t != e.t) {
                outlist.push(*e);
            }
        }
        meter.ops(scratch.len() as u64);
        return;
    }
    ms.heads.clear();
    ms.heads.extend(
        (0..segs)
            .filter(|&i| bounds[i] < bounds[i + 1])
            .map(|i| std::cmp::Reverse((scratch[bounds[i]].group_key(), i))),
    );
    ms.cursor.clear();
    ms.cursor.extend_from_slice(&bounds[..segs]);
    while let Some(std::cmp::Reverse((_, i))) = ms.heads.pop() {
        let e = scratch[ms.cursor[i]];
        meter.ops(2);
        if outlist.last().is_none_or(|l| l.t != e.t) {
            outlist.push(e);
        }
        ms.cursor[i] += 1;
        if ms.cursor[i] < bounds[i + 1] {
            ms.heads
                .push(std::cmp::Reverse((scratch[ms.cursor[i]].group_key(), i)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msf_graph::generators::{random_graph, GeneratorConfig};

    fn cfg(p: usize) -> MsfConfig {
        MsfConfig::with_threads(p)
    }

    #[test]
    fn triangle_both_policies() {
        let g = EdgeList::from_triples(3, vec![(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]);
        for policy in [AllocPolicy::SystemHeap, AllocPolicy::ThreadArena] {
            let r = msf(&g, &cfg(2), policy);
            assert_eq!(r.edges, vec![0, 1], "{policy:?}");
        }
    }

    #[test]
    fn matches_kruskal_on_random_graphs() {
        for seed in 0..4u64 {
            let g = random_graph(&GeneratorConfig::with_seed(seed), 400, 1600);
            let expect = crate::seq::kruskal::msf(&g);
            for p in [1, 2, 4] {
                for policy in [AllocPolicy::SystemHeap, AllocPolicy::ThreadArena] {
                    let r = msf(&g, &cfg(p), policy);
                    assert_eq!(r.edges, expect.edges, "seed {seed}, p {p}, {policy:?}");
                }
            }
        }
    }

    #[test]
    fn multi_edge_merge_keeps_minimum() {
        // A square whose contraction creates parallel edges: 0-1 and 2-3
        // are the light pair edges; between the pairs run 1-2 (w 10, id 2),
        // 0-3 (w 9, id 3), 0-2 (w 8, id 4). After one iteration the three
        // become parallel edges and only id 4 (w 8) must survive and win.
        let g = EdgeList::from_triples(
            4,
            vec![
                (0, 1, 1.0),
                (2, 3, 1.5),
                (1, 2, 10.0),
                (0, 3, 9.0),
                (0, 2, 8.0),
            ],
        );
        let r = msf(&g, &cfg(2), AllocPolicy::SystemHeap);
        assert_eq!(r.edges, vec![0, 1, 4]);
        assert_eq!(r.total_weight, 1.0 + 1.5 + 8.0);
    }

    #[test]
    fn disconnected_forest() {
        let g = EdgeList::from_triples(5, vec![(0, 1, 1.0), (2, 3, 2.0)]);
        let r = msf(&g, &cfg(3), AllocPolicy::ThreadArena);
        assert_eq!(r.edges, vec![0, 1]);
        assert_eq!(r.components, 3);
    }

    #[test]
    fn alm_and_al_byte_identical() {
        let g = random_graph(&GeneratorConfig::with_seed(31), 500, 2500);
        let a = msf(&g, &cfg(4), AllocPolicy::SystemHeap);
        let b = msf(&g, &cfg(4), AllocPolicy::ThreadArena);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.total_weight, b.total_weight);
    }
}
