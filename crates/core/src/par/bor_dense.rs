//! Bor-Dense: parallel Borůvka on an adjacency matrix.
//!
//! The dense counterpart the paper positions its sparse designs against:
//! "For dense graphs that can be represented by an adjacency matrix, JáJá
//! describes a simple and efficient implementation" of compact-graph (§2) —
//! and the representation the earlier BSP study of Dehne & Götz used (§1.1),
//! which "is not suitable for the more challenging sparse graphs".
//!
//! Steps per iteration: find-min is a per-row scan, connect-components is
//! the usual hook + pointer-jump, and compact-graph folds the old matrix
//! into a fresh k×k matrix with each worker owning a block of old rows and
//! scattering into per-worker partial matrices that are reduced at the end
//! (Θ(n²) work regardless of m — great at high density, hopeless for the
//! sparse inputs the paper targets, which bench `ablation_dense` shows).

use msf_graph::dense::DenseGraph;
use msf_graph::EdgeList;
use msf_primitives::cost::{Stopwatch, WorkMeter};
use msf_primitives::obs;
use rayon::prelude::*;

use crate::par::common::{connect_components, emit_unique, PHASE_OVERHEAD};
use crate::stats::{IterationStats, RunStats, StepKind, StepSpan};
use crate::{MsfConfig, MsfResult};

/// Compute the MSF with dense Borůvka. Memory is Θ(n²); see
/// [`msf_graph::dense::MAX_DENSE_VERTICES`].
pub fn msf(g: &EdgeList, cfg: &MsfConfig) -> MsfResult {
    let watch = Stopwatch::start();
    let p = cfg.threads.max(1);
    let mut stats = RunStats::new("Bor-Dense", p);

    let mut dense = DenseGraph::from_edge_list(g);
    let mut out: Vec<u32> = Vec::with_capacity(g.num_vertices().saturating_sub(1));

    loop {
        let n = dense.num_vertices();
        if n <= 1 {
            break;
        }
        let mut it = IterationStats {
            vertices: n,
            directed_edges: dense.directed_entries(),
            ..Default::default()
        };
        let _iteration = obs::span(
            obs::SpanKind::Iteration,
            stats.iterations.len() as u64,
            n as u64,
        );

        // find-min: per-row scans, p blocks of rows.
        let step = StepSpan::begin(StepKind::FindMin, stats.iterations.len());
        let mut fm_meters = vec![WorkMeter::new(); p];
        let parts: Vec<(Vec<u32>, Vec<u32>, WorkMeter)> = (0..p)
            .into_par_iter()
            .map(|t| {
                let r = msf_primitives::block_range(n, p, t);
                let mut meter = WorkMeter::new();
                let mut to = Vec::with_capacity(r.len());
                let mut chosen = Vec::new();
                for v in r {
                    meter.ops(n as u64);
                    meter.mem(1);
                    match dense.row_min(v as u32) {
                        Some((b, _, id)) => {
                            to.push(b);
                            chosen.push(id);
                        }
                        None => to.push(v as u32),
                    }
                }
                (to, chosen, meter)
            })
            .collect();
        let mut to = Vec::with_capacity(n);
        let mut chosen = Vec::new();
        for (t, (tp, cp, m)) in parts.into_iter().enumerate() {
            fm_meters[t] = fm_meters[t] + m;
            to.extend_from_slice(&tp);
            chosen.extend_from_slice(&cp);
        }
        let any = !chosen.is_empty();
        it.find_min = step.finish(&fm_meters, PHASE_OVERHEAD);
        if !any {
            stats.push_iteration(it);
            break; // every remaining supervertex is isolated
        }
        emit_unique(&mut out, chosen);

        // connect-components.
        let step = StepSpan::begin(StepKind::Connect, stats.iterations.len());
        let mut cc_meters = vec![WorkMeter::new(); p];
        let (labels, k) = connect_components(to, p, &mut cc_meters);
        it.connect = step.finish(&cc_meters, PHASE_OVERHEAD);

        // compact-graph: fold rows into per-worker k×k partials, reduce.
        let step = StepSpan::begin(StepKind::Compact, stats.iterations.len());
        let mut cg_meters = vec![WorkMeter::new(); p];
        let partials: Vec<(DenseGraph, WorkMeter)> = (0..p)
            .into_par_iter()
            .map(|t| {
                let r = msf_primitives::block_range(n, p, t);
                let mut meter = WorkMeter::new();
                let mut part = DenseGraph::empty(k as usize);
                for a in r {
                    let la = labels[a];
                    let (ws, ids) = dense.row(a as u32);
                    meter.ops(n as u64);
                    for (b, (&w, &id)) in ws.iter().zip(ids).enumerate() {
                        if w.is_infinite() {
                            continue;
                        }
                        let lb = labels[b];
                        if la != lb {
                            meter.mem(1);
                            part.relax(la, lb, w, id);
                        }
                    }
                }
                (part, meter)
            })
            .collect();
        let mut next = DenseGraph::empty(k as usize);
        for (t, (part, m)) in partials.into_iter().enumerate() {
            cg_meters[t] = cg_meters[t] + m;
            for a in 0..k {
                let (ws, ids) = part.row(a);
                for (b, (&w, &id)) in ws.iter().zip(ids).enumerate() {
                    if w.is_finite() {
                        next.relax(a, b as u32, w, id);
                    }
                }
            }
        }
        dense = next;
        it.compact = step.finish(&cg_meters, PHASE_OVERHEAD);
        stats.push_iteration(it);
    }

    stats.total_seconds = watch.seconds();
    MsfResult::from_ids(g, out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msf_graph::generators::{random_graph, GeneratorConfig};

    fn cfg(p: usize) -> MsfConfig {
        MsfConfig::with_threads(p)
    }

    #[test]
    fn triangle() {
        let g = EdgeList::from_triples(3, vec![(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]);
        assert_eq!(msf(&g, &cfg(2)).edges, vec![0, 1]);
    }

    #[test]
    fn matches_kruskal_on_dense_random_graphs() {
        for seed in 0..3u64 {
            // Genuinely dense: 300 vertices, 1/3 of all pairs.
            let g = random_graph(&GeneratorConfig::with_seed(seed), 300, 15_000);
            let expect = crate::seq::kruskal::msf(&g);
            for p in [1, 2, 4] {
                assert_eq!(msf(&g, &cfg(p)).edges, expect.edges, "seed {seed} p {p}");
            }
        }
    }

    #[test]
    fn parallel_edges_collapse_correctly() {
        // The matrix keeps only the lightest edge per pair up front; MSF
        // must match Kruskal on a multigraph-after-contraction scenario.
        let g = EdgeList::from_triples(
            4,
            vec![
                (0, 1, 1.0),
                (2, 3, 1.0),
                (0, 2, 9.0),
                (1, 3, 3.0),
                (1, 2, 7.0),
            ],
        );
        assert_eq!(msf(&g, &cfg(2)).edges, crate::seq::kruskal::msf(&g).edges);
    }

    #[test]
    fn disconnected_and_isolated() {
        let g = EdgeList::from_triples(6, vec![(0, 1, 1.0), (3, 4, 2.0)]);
        let r = msf(&g, &cfg(3));
        assert_eq!(r.edges, vec![0, 1]);
        assert_eq!(r.components, 4);
    }

    #[test]
    fn records_dense_iteration_costs() {
        let g = random_graph(&GeneratorConfig::with_seed(1), 200, 8000);
        let r = msf(&g, &cfg(2));
        assert!(!r.stats.iterations.is_empty());
        // Dense find-min is Θ(n²) regardless of m.
        assert!(r.stats.iterations[0].find_min.modeled_total >= (200 * 200) as u64);
    }
}
