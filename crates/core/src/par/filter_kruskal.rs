//! Filter-Kruskal: sampling pivot partition + concurrent-union-find
//! filtering (Osipov, Sanders & Singler, ALENEX 2009), built from the
//! suite's fused bandwidth kernels.
//!
//! Where the Borůvka family contracts the *graph*, filter-Kruskal prunes
//! the *edge list*: pick a pivot weight by sampling, split the edges into
//! light (≤ pivot under the `(weight, id)` total order) and heavy, recurse
//! on the light side first, then discard every heavy edge whose endpoints
//! the light recursion already connected — the cycle property again, but
//! applied through a union-find instead of path-max queries — and recurse
//! on the survivors. Small slices fall through to a sequential Kruskal
//! base case over the shared [`ConcurrentUnionFind`].
//!
//! Because all light keys precede all heavy keys and every base case sorts
//! ascending, edges are united in globally nondecreasing `(weight, id)`
//! order: the output is the suite-wide unique MSF, bit-identical at every
//! thread count and under `MSF_SEQUENTIAL`.
//!
//! The bandwidth story (DESIGN.md §15): the first partition reads straight
//! out of the input `EdgeList` — there is **no** setup copy at all — and
//! every subsequent slice is touched exactly once per recursion level by a
//! fused kernel: [`partition_compact`] for the pivot split (one read, two
//! compacted writes) and [`filter_relabel_compact`] for the heavy filter
//! (one read, survivors written back). `MSF_UNFUSED=1` swaps both for the
//! classic multi-pass staging path with identical output and identical
//! modeled cost.
//!
//! Determinism of the pivot: a stride-spread sample of at most
//! [`PIVOT_SAMPLE`] packed `(weight bits, id)` keys, median taken after a
//! sort. The sample positions depend only on the slice length, never on
//! thread count or timing, so the whole recursion tree — and therefore
//! every modeled-cost charge — is a pure function of the input.

use msf_graph::{Edge, EdgeList};
use msf_primitives::atomic::packed_edge_key;
use msf_primitives::connectivity::concurrent::ConcurrentUnionFind;
use msf_primitives::cost::{Stopwatch, WorkMeter};
use msf_primitives::fused::{filter_relabel_compact, partition_compact, record_traffic, unfused};
use rayon::prelude::*;

use crate::par::common::PHASE_OVERHEAD;
use crate::stats::{IterationStats, RunStats, StepKind, StepSpan, StepStats};
use crate::{MsfConfig, MsfResult};

/// Slices at or below this size go to the sequential Kruskal base case.
/// Matches the write-min contender's philosophy: below this the fork and
/// partition overhead cannot pay for itself.
const BASE_CASE_EDGES: usize = 2048;

/// Upper bound on pivot-sample size (stride-spread over the slice).
const PIVOT_SAMPLE: usize = 64;

/// Depth cap: a pathologically skewed pivot sequence falls back to the
/// base case rather than recursing toward stack exhaustion. With the
/// stride-median pivot this is never reached on real inputs.
const MAX_DEPTH: usize = 64;

/// Compute the MSF with filter-Kruskal.
pub fn msf(g: &EdgeList, cfg: &MsfConfig) -> MsfResult {
    let watch = Stopwatch::start();
    let p = cfg.threads.max(1);
    let n = g.num_vertices();
    let mut stats = RunStats::new("Filter-Kruskal", p);

    let uf = ConcurrentUnionFind::new(n);
    let mut out: Vec<u32> = Vec::with_capacity(n.saturating_sub(1));
    // Per-depth accumulated step stats: partition → compact column, heavy
    // filter → find-min column (both phases of one depth run under the
    // same recursion level even though the tree visits them many times).
    let mut levels: Vec<IterationStats> = Vec::new();
    let mut base_cost: u64 = 0;

    recurse(
        Slice::Input(g.edges()),
        0,
        n,
        p,
        &uf,
        &mut out,
        &mut levels,
        &mut base_cost,
    );

    for (depth, mut it) in levels.into_iter().enumerate() {
        it.vertices = n >> depth.min(63); // nominal frontier decay marker
        stats.push_iteration(it);
    }
    stats.add_flat_cost(base_cost);
    stats.total_seconds = watch.seconds();
    MsfResult::from_ids(g, out, stats)
}

/// A recursion slice: the root borrows the input edge list (no setup
/// copy); every split below owns its compacted half.
enum Slice<'a> {
    Input(&'a [Edge]),
    Owned(Vec<Edge>),
}

impl Slice<'_> {
    fn edges(&self) -> &[Edge] {
        match self {
            Slice::Input(e) => e,
            Slice::Owned(e) => e,
        }
    }
}

/// Accumulate `step` into the depth-`d` row of `levels` (growing it with
/// empty rows as the recursion deepens), into the column picked by `col`.
fn accumulate(
    levels: &mut Vec<IterationStats>,
    d: usize,
    edges_seen: usize,
    col: impl Fn(&mut IterationStats) -> &mut StepStats,
    step: StepStats,
) {
    while levels.len() <= d {
        levels.push(IterationStats::default());
    }
    let row = &mut levels[d];
    row.directed_edges += edges_seen;
    let cell = col(row);
    cell.seconds += step.seconds;
    cell.modeled_max += step.modeled_max;
    cell.modeled_total += step.modeled_total;
}

/// The stride-median pivot: deterministic, width-independent, O(1) space.
fn pick_pivot(edges: &[Edge]) -> u128 {
    let len = edges.len();
    let take = PIVOT_SAMPLE.min(len);
    let stride = len / take;
    let mut keys: Vec<u128> = (0..take)
        .map(|i| {
            let e = &edges[i * stride];
            packed_edge_key(e.w, e.id)
        })
        .collect();
    keys.sort_unstable();
    keys[take / 2]
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    slice: Slice<'_>,
    depth: usize,
    n: usize,
    p: usize,
    uf: &ConcurrentUnionFind,
    out: &mut Vec<u32>,
    levels: &mut Vec<IterationStats>,
    base_cost: &mut u64,
) {
    let edges = slice.edges();
    let m = edges.len();
    if m == 0 {
        return;
    }
    if m <= BASE_CASE_EDGES || depth >= MAX_DEPTH {
        *base_cost += base_case(edges, n, uf, out, depth);
        return;
    }

    // Partition around the sampled pivot — charged as this depth's
    // compact-graph analogue. The sample is a handful of scattered reads
    // plus a tiny sort (serial, so charged to one block); the split itself
    // is one read and one write per edge, block-partitioned.
    let step = StepSpan::begin(StepKind::Compact, depth);
    let mut meters = vec![WorkMeter::new(); p];
    let take = PIVOT_SAMPLE.min(m) as u64;
    meters[0].mem(take);
    meters[0].ops(take * (64 - take.max(2).leading_zeros()) as u64);
    for (t, meter) in meters.iter_mut().enumerate() {
        meter.mem(2 * msf_primitives::block_range(m, p, t).len() as u64);
    }
    let pivot = pick_pivot(edges);
    let classify = |_: usize, e: &Edge| packed_edge_key(e.w, e.id) <= pivot;
    let (light, heavy) = if unfused() {
        // Multi-pass path: per-block staging pairs, then a serial splice.
        let parts: Vec<(Vec<Edge>, Vec<Edge>)> = (0..p)
            .into_par_iter()
            .map(|t| {
                let r = msf_primitives::block_range(m, p, t);
                let mut light = Vec::with_capacity(r.len());
                let mut heavy = Vec::new();
                for i in r {
                    if classify(i, &edges[i]) {
                        light.push(edges[i]);
                    } else {
                        heavy.push(edges[i]);
                    }
                }
                (light, heavy)
            })
            .collect();
        let mut light = Vec::new();
        let mut heavy = Vec::new();
        for (l, h) in parts {
            light.extend_from_slice(&l);
            heavy.extend_from_slice(&h);
        }
        (light, heavy)
    } else {
        partition_compact(edges, p, classify)
    };
    accumulate(
        levels,
        depth,
        m,
        |it| &mut it.compact,
        step.finish(&meters, PHASE_OVERHEAD),
    );

    if light.len() == m {
        // Degenerate pivot (every key ≤ pivot): recursing would not shrink
        // the slice, so solve it directly.
        *base_cost += base_case(&light, n, uf, out, depth);
        return;
    }

    // Light side first: after it returns, `uf` holds the MSF of every edge
    // lighter than the pivot, which is exactly the state the cycle
    // property needs to prune the heavy side.
    recurse(
        Slice::Owned(light),
        depth + 1,
        n,
        p,
        uf,
        out,
        levels,
        base_cost,
    );

    // Heavy filter — this depth's find-min analogue: two union-find lookups
    // per edge (scattered, O(log n) expected hops each), survivors
    // compacted in one fused sweep.
    let step = StepSpan::begin(StepKind::FindMin, depth);
    let mut meters = vec![WorkMeter::new(); p];
    let log_n = (usize::BITS - n.max(2).leading_zeros()) as u64;
    let hm = heavy.len();
    for (t, meter) in meters.iter_mut().enumerate() {
        meter.mem(2 * log_n * msf_primitives::block_range(hm, p, t).len() as u64);
    }
    let survives = |_: usize, e: &Edge| (!uf.same_set(e.u, e.v)).then_some(*e);
    let kept: Vec<Edge> = if unfused() {
        let parts: Vec<Vec<Edge>> = (0..p)
            .into_par_iter()
            .map(|t| {
                let r = msf_primitives::block_range(hm, p, t);
                let mut keep = Vec::with_capacity(r.len());
                for i in r {
                    if let Some(e) = survives(i, &heavy[i]) {
                        keep.push(e);
                    }
                }
                keep
            })
            .collect();
        let mut kept = Vec::new();
        for part in parts {
            kept.extend_from_slice(&part);
        }
        kept
    } else {
        let kept = filter_relabel_compact(&heavy, p, Edge::new(0, 0, 0.0, 0), survives);
        // The union-find parent reads are side-band traffic the kernel
        // cannot see; the sweep itself is already recorded.
        record_traffic(8 * hm as u64);
        kept
    };
    accumulate(
        levels,
        depth,
        hm,
        |it| &mut it.find_min,
        step.finish(&meters, PHASE_OVERHEAD),
    );
    drop(heavy);

    recurse(
        Slice::Owned(kept),
        depth + 1,
        n,
        p,
        uf,
        out,
        levels,
        base_cost,
    );
}

/// Sequential Kruskal over one slice: sort ascending under the total
/// order, unite in order, emit the ids that linked. Returns the modeled
/// cost of the solve (sort plus scattered union-find traffic, serial).
fn base_case(
    edges: &[Edge],
    n: usize,
    uf: &ConcurrentUnionFind,
    out: &mut Vec<u32>,
    depth: usize,
) -> u64 {
    let m = edges.len();
    if m == 0 {
        return 0;
    }
    let step = StepSpan::begin(StepKind::BaseCase, depth);
    let mut order: Vec<u32> = (0..m as u32).collect();
    order.sort_unstable_by_key(|&i| edges[i as usize].key());
    for &i in &order {
        let e = &edges[i as usize];
        if uf.unite(e.u, e.v, e.id) {
            out.push(e.id);
        }
    }
    let mut meter = WorkMeter::new();
    let log_n = (usize::BITS - n.max(2).leading_zeros()) as u64;
    let log_m = (usize::BITS - m.max(2).leading_zeros()) as u64;
    meter.ops(m as u64 * log_m);
    meter.mem(m as u64 * (2 * log_n + 1));
    step.finish(&[meter], PHASE_OVERHEAD).modeled_max
}

#[cfg(test)]
mod tests {
    use super::*;
    use msf_graph::generators::{random_graph, GeneratorConfig};
    use msf_primitives::fused::with_unfused;

    fn cfg(p: usize) -> MsfConfig {
        MsfConfig::with_threads(p)
    }

    #[test]
    fn triangle() {
        let g = EdgeList::from_triples(3, vec![(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]);
        assert_eq!(msf(&g, &cfg(2)).edges, vec![0, 1]);
    }

    #[test]
    fn matches_kruskal_on_random_graphs() {
        for seed in 0..4u64 {
            let g = random_graph(&GeneratorConfig::with_seed(seed), 400, 2400);
            let expect = crate::seq::kruskal::msf(&g);
            for p in [1, 2, 4, 8] {
                let r = msf(&g, &cfg(p));
                assert_eq!(r.edges, expect.edges, "seed {seed} p {p}");
            }
        }
    }

    #[test]
    fn recursion_engages_above_the_base_case() {
        // Large enough that at least one partition + heavy filter happens.
        let g = random_graph(&GeneratorConfig::with_seed(7), 2000, 3 * BASE_CASE_EDGES);
        let expect = crate::seq::kruskal::msf(&g);
        let r = msf(&g, &cfg(3));
        assert_eq!(r.edges, expect.edges);
        assert!(
            !r.stats.iterations.is_empty(),
            "partition levels should be recorded"
        );
    }

    #[test]
    fn duplicate_weights_stay_deterministic() {
        // All-equal weights: the packed key degenerates to the id order and
        // the pivot still splits (ids are unique).
        let mut triples = Vec::new();
        for u in 0..60u32 {
            for v in u + 1..60 {
                triples.push((u, v, 1.0));
            }
        }
        let g = EdgeList::from_triples(60, triples);
        let expect = crate::seq::kruskal::msf(&g);
        for p in [1, 3] {
            assert_eq!(msf(&g, &cfg(p)).edges, expect.edges, "p {p}");
        }
    }

    #[test]
    fn disconnected_inputs() {
        let a = random_graph(&GeneratorConfig::with_seed(1), 300, 1800);
        let b = random_graph(&GeneratorConfig::with_seed(2), 300, 1800);
        let mut triples: Vec<(u32, u32, f64)> = a.edges().iter().map(|e| (e.u, e.v, e.w)).collect();
        triples.extend(b.edges().iter().map(|e| (e.u + 300, e.v + 300, e.w)));
        let g = EdgeList::from_triples(600, triples);
        let expect = crate::seq::kruskal::msf(&g);
        let r = msf(&g, &cfg(4));
        assert_eq!(r.edges, expect.edges);
        assert_eq!(r.components, expect.components);
    }

    #[test]
    fn fused_and_unfused_agree_in_forest_and_model() {
        let g = random_graph(&GeneratorConfig::with_seed(23), 3000, 18000);
        for p in [1, 3, 8] {
            let fused = with_unfused(false, || msf(&g, &cfg(p)));
            let plain = with_unfused(true, || msf(&g, &cfg(p)));
            assert_eq!(fused.edges, plain.edges, "p {p}");
            assert_eq!(
                fused.total_weight.to_bits(),
                plain.total_weight.to_bits(),
                "p {p}"
            );
            assert_eq!(
                fused.stats.modeled_cost, plain.stats.modeled_cost,
                "p {p} modeled cost must not depend on the kernel path"
            );
        }
    }

    #[test]
    fn sequential_escape_hatch_matches() {
        let g = random_graph(&GeneratorConfig::with_seed(11), 500, 3000);
        let expect = crate::seq::kruskal::msf(&g);
        msf_primitives::pool::with_sequential(|| {
            assert_eq!(msf(&g, &cfg(4)).edges, expect.edges);
        });
    }
}
