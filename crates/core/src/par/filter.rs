//! Cycle-property edge filtering in front of Bor-FAL (the extension the
//! paper's §3 analysis argues for).
//!
//! Table 1 shows that for random sparse graphs the Borůvka edge list
//! shrinks *slowly* for several iterations while "for a graph with
//! m/n ≥ 2, more than half of the edges are not in the MST". The paper
//! points at the sampling approach of Cole, Klein & Tarjan and the
//! cycle-property filter of Katriel, Sanders & Träff as the remedy. This
//! module implements that remedy on top of the suite's own substrate:
//!
//! 1. flip a fair coin per edge → sampled subgraph `G_s`;
//! 2. `F ← Bor-FAL MSF of G_s`;
//! 3. discard every edge heavier — under the exact `(weight, id)` total
//!    order — than the maximum edge on its endpoints' F-path
//!    (binary-lifting path-max queries, read-only and embarrassingly
//!    parallel): such edges are the unique maximum of a cycle and cannot be
//!    in the unique MSF;
//! 4. `Bor-FAL` on the surviving edges (expected O(n) of them).
//!
//! Both inner runs preserve relative input edge order, so `(weight, id)`
//! tie breaking survives the id remapping and the output is the suite-wide
//! unique MSF.

use msf_graph::pathmax::PathMaxForest;
use msf_graph::EdgeList;
use msf_primitives::cost::{Stopwatch, WorkMeter};
use msf_primitives::obs;
use rayon::prelude::*;

use crate::stats::RunStats;
use crate::{MsfConfig, MsfResult};

/// Below this density the filter cannot pay for itself (the paper's own
/// threshold intuition: with m/n < 2, fewer than half the edges can be
/// discarded at all).
const MIN_DENSITY: f64 = 2.0;

/// Compute the MSF with sampling + cycle-property filtering + Bor-FAL.
pub fn msf(g: &EdgeList, cfg: &MsfConfig) -> MsfResult {
    msf_with_inner(g, cfg, crate::Algorithm::BorFal)
}

/// The filter front-end over any inner MSF algorithm. The extension bench
/// compares `inner = Bor-FAL` (whose compact step is already O(n), so
/// filtering buys little) against `inner = Bor-AL` (whose per-iteration
/// cost scales with the surviving m, the case §3's analysis targets).
pub fn msf_with_inner(g: &EdgeList, cfg: &MsfConfig, inner: crate::Algorithm) -> MsfResult {
    let watch = Stopwatch::start();
    let n = g.num_vertices();
    if g.density() < MIN_DENSITY {
        let mut r = crate::minimum_spanning_forest(g, inner, cfg);
        r.stats.algorithm = "Bor-FAL+filter";
        return r;
    }
    let p = cfg.threads.max(1);
    let mut stats = RunStats::new("Bor-FAL+filter", p);

    // Step 1: coin-flip sample, preserving edge order (ids stay monotone).
    use rand::prelude::*;
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ 0xF117);
    let sampled_ids: Vec<u32> = (0..g.num_edges() as u32)
        .filter(|_| rng.gen::<bool>())
        .collect();
    let sample = EdgeList::from_triples(
        n,
        sampled_ids
            .iter()
            .map(|&id| {
                let e = g.edge(id);
                (e.u, e.v, e.w)
            })
            .collect::<Vec<_>>(),
    );

    // Step 2: forest of the sample.
    let f = crate::minimum_spanning_forest(&sample, inner, cfg);
    stats.add_flat_cost(f.stats.modeled_cost);

    // Step 3: filter F-heavy edges with parallel path-max queries. The
    // forest keys carry the ORIGINAL edge ids, so heaviness is exact under
    // the suite's total order (ties included).
    let forest_edges: Vec<(u32, u32, msf_graph::EdgeKey)> = f
        .edges
        .iter()
        .map(|&sid| {
            let e = sample.edge(sid);
            let orig = g.edge(sampled_ids[sid as usize]);
            (e.u, e.v, orig.key())
        })
        .collect();
    // Span arg a = edges examined; the END event carries (kept, dropped).
    let filter_span = obs::span(obs::SpanKind::Filter, g.num_edges() as u64, 0);
    let pm = PathMaxForest::build(n, &forest_edges);
    let mut filter_meters = vec![WorkMeter::new(); p];
    let m = g.num_edges();
    // The cycle-property keep-pass: O(log n) scattered path-max reads per
    // edge, charged identically on either path below.
    let query_mem = 2 * (usize::BITS - n.max(2).leading_zeros()) as u64;
    for (t, meter) in filter_meters.iter_mut().enumerate() {
        meter.mem(query_mem * msf_primitives::block_range(m, p, t).len() as u64);
    }
    let survives = |id: usize| {
        let e = g.edge(id as u32);
        let heavy = pm
            .path_max(e.u, e.v)
            .is_some_and(|path_max| e.key() > path_max);
        (!heavy).then_some(id as u32)
    };
    let kept_ids: Vec<u32> = if msf_primitives::fused::unfused() {
        // Multi-pass path: per-block staging vectors, then a serial splice.
        let keep_parts: Vec<Vec<u32>> = (0..p)
            .into_par_iter()
            .map(|t| {
                let r = msf_primitives::block_range(m, p, t);
                let mut keep = Vec::with_capacity(r.len());
                for id in r {
                    if let Some(kept) = survives(id) {
                        keep.push(kept);
                    }
                }
                keep
            })
            .collect();
        let mut kept_ids: Vec<u32> = Vec::new();
        for part in keep_parts {
            kept_ids.extend_from_slice(&part);
        }
        kept_ids
    } else {
        let kept = msf_primitives::fused::filter_compact_indexed(m, p, 0u32, survives);
        // One sweep over the edge array plus the survivor id write-back;
        // the path-max reads are side-band traffic the kernel cannot see.
        msf_primitives::fused::record_traffic((24 * m + 4 * kept.len()) as u64);
        kept
    };
    stats.add_flat_cost(msf_primitives::cost::modeled_time(&filter_meters));
    filter_span.end_with(
        kept_ids.len() as u64,
        (m - kept_ids.len()) as u64, // dropped by the cycle property
    );

    // Step 4: MSF of the survivors (order-preserving id remap).
    let kept = EdgeList::from_triples(
        n,
        kept_ids
            .iter()
            .map(|&id| {
                let e = g.edge(id);
                (e.u, e.v, e.w)
            })
            .collect::<Vec<_>>(),
    );
    let final_run = crate::minimum_spanning_forest(&kept, inner, cfg);
    stats.add_flat_cost(final_run.stats.modeled_cost);
    for it in final_run.stats.iterations {
        stats.iterations.push(it);
    }
    let out: Vec<u32> = final_run
        .edges
        .iter()
        .map(|&kid| kept_ids[kid as usize])
        .collect();

    stats.total_seconds = watch.seconds();
    MsfResult::from_ids(g, out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msf_graph::generators::{random_graph, GeneratorConfig};

    fn cfg(p: usize) -> MsfConfig {
        MsfConfig::with_threads(p)
    }

    #[test]
    fn matches_kruskal_on_random_graphs() {
        for seed in 0..4u64 {
            let g = random_graph(&GeneratorConfig::with_seed(seed), 400, 2400);
            let expect = crate::seq::kruskal::msf(&g);
            for p in [1, 2, 4] {
                assert_eq!(msf(&g, &cfg(p)).edges, expect.edges, "seed {seed} p {p}");
            }
        }
    }

    #[test]
    fn sparse_inputs_fall_back_to_plain_bor_fal() {
        let g = random_graph(&GeneratorConfig::with_seed(3), 300, 450); // m/n = 1.5
        let r = msf(&g, &cfg(2));
        assert_eq!(r.edges, crate::seq::kruskal::msf(&g).edges);
        assert_eq!(r.stats.algorithm, "Bor-FAL+filter");
    }

    #[test]
    fn filter_discards_a_large_fraction_on_dense_inputs() {
        // Indirect check through correctness at high density, where >80% of
        // edges are F-heavy and must be filterable without harming the MSF.
        let g = random_graph(&GeneratorConfig::with_seed(9), 200, 4000); // m/n = 20
        assert_eq!(msf(&g, &cfg(4)).edges, crate::seq::kruskal::msf(&g).edges);
    }

    #[test]
    fn disconnected_inputs() {
        let g = {
            use msf_graph::EdgeList;
            // Two dense blobs with no bridge.
            let a = random_graph(&GeneratorConfig::with_seed(1), 100, 600);
            let b = random_graph(&GeneratorConfig::with_seed(2), 100, 600);
            let mut triples: Vec<(u32, u32, f64)> =
                a.edges().iter().map(|e| (e.u, e.v, e.w)).collect();
            triples.extend(b.edges().iter().map(|e| (e.u + 100, e.v + 100, e.w)));
            EdgeList::from_triples(200, triples)
        };
        let expect = crate::seq::kruskal::msf(&g);
        assert_eq!(msf(&g, &cfg(3)).edges, expect.edges);
    }

    #[test]
    fn duplicate_weights_stay_deterministic() {
        use msf_graph::EdgeList;
        // Dense equal-weight graph: ties everywhere; strict filtering must
        // not discard any potential MSF edge.
        let n = 40u32;
        let mut triples = Vec::new();
        for u in 0..n {
            for v in u + 1..n {
                if (u + v) % 3 != 0 {
                    triples.push((u, v, 1.0));
                }
            }
        }
        let g = EdgeList::from_triples(n as usize, triples);
        let expect = crate::seq::kruskal::msf(&g);
        assert_eq!(msf(&g, &cfg(2)).edges, expect.edges);
    }
}
