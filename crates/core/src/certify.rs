//! Self-certifying MSF verification — no reference forest, no Kruskal.
//!
//! [`verify_msf`](crate::verify::verify_msf) proves a result correct by
//! recomputing the forest with Kruskal and comparing edge sets. That is a
//! strong check with one blind spot: a bug shared by the reference and the
//! algorithm under test (the `(weight, id)` tie-break conventions, the
//! dedup rules of the contract passes) self-certifies. This module closes
//! the gap with a certificate derived *only* from the optimality
//! characterizations of the MSF itself:
//!
//! * **structure** — every claimed edge id is valid and distinct, the edge
//!   set is acyclic, and it spans (tree count == component count, with the
//!   component count recomputed by union–find over the raw input);
//! * **cycle property** — every non-forest edge is strictly heavier (in the
//!   `(weight, id)` total order) than the maximum edge on the forest path
//!   between its endpoints, checked by O(log n) queries against a
//!   [`PathMaxForest`] built over the claimed forest;
//! * **cut property** — every forest edge is the minimum edge crossing the
//!   cut it defines: no non-forest edge whose forest cycle contains `f` may
//!   be lighter than `f`, checked by path-cover min-updates over the same
//!   rooted forest.
//!
//! Either optimality property alone (plus structure) already implies the
//! claimed forest is THE unique MSF; checking both from independently built
//! data structures means a single bugged traversal cannot vouch for itself.
//! Total cost is O((n + m) log n); the cycle-property queries are read-only
//! and run as `p` block-partitioned parallel tasks, each carrying a
//! [`WorkMeter`] so certification shows up in the modeled-cost accounting
//! like any other phase.

use msf_graph::pathmax::PathMaxForest;
use msf_graph::{EdgeKey, EdgeList};
use msf_primitives::cost::WorkMeter;
use msf_primitives::unionfind::UnionFind;
use rayon::prelude::*;

use crate::MsfResult;

const NONE: u32 = u32::MAX;

/// A named reason a claimed forest is not the minimum spanning forest.
#[derive(Debug, Clone, PartialEq)]
pub enum CertificateViolation {
    /// A claimed edge id does not exist in the input graph.
    EdgeIdOutOfRange {
        /// The offending id.
        id: u32,
        /// Number of edges in the input graph.
        num_edges: usize,
    },
    /// The same edge id appears twice in the claimed forest.
    DuplicateEdge {
        /// The duplicated id.
        id: u32,
    },
    /// The claimed edge set contains a cycle.
    CyclicForest {
        /// The first edge that closes a cycle (in claimed order).
        id: u32,
    },
    /// The claimed forest has more trees than the input has components.
    NotSpanning {
        /// Trees in the claimed forest.
        forest_trees: usize,
        /// Connected components of the input graph.
        graph_components: usize,
    },
    /// `MsfResult::total_weight` disagrees with the sum of claimed edges.
    InconsistentWeight {
        /// The reported total.
        reported: f64,
        /// The recomputed total.
        recomputed: f64,
    },
    /// `MsfResult::components` disagrees with the input's component count.
    InconsistentComponents {
        /// The reported count.
        reported: u32,
        /// The recomputed count.
        actual: usize,
    },
    /// Cycle property broken: a non-forest edge is not the heaviest edge of
    /// the cycle it closes, so swapping it in would produce a lighter (or
    /// total-order-smaller) spanning forest.
    CycleProperty {
        /// The offending non-forest edge.
        non_forest: u32,
        /// Its total-order key.
        non_forest_key: EdgeKey,
        /// The maximum key on the forest path between its endpoints.
        path_max: EdgeKey,
    },
    /// Cut property broken: a forest edge is not the minimum edge crossing
    /// the cut its removal defines.
    CutProperty {
        /// The offending forest edge.
        forest: u32,
        /// Its total-order key.
        forest_key: EdgeKey,
        /// A strictly lighter non-forest edge crossing the same cut.
        lighter_crossing: u32,
    },
}

impl std::fmt::Display for CertificateViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertificateViolation::EdgeIdOutOfRange { id, num_edges } => {
                write!(f, "edge id {id} out of range (m = {num_edges})")
            }
            CertificateViolation::DuplicateEdge { id } => write!(f, "edge id {id} used twice"),
            CertificateViolation::CyclicForest { id } => {
                write!(f, "edge id {id} closes a cycle in the claimed forest")
            }
            CertificateViolation::NotSpanning {
                forest_trees,
                graph_components,
            } => write!(
                f,
                "forest is not spanning: {forest_trees} trees but the graph has \
                 {graph_components} components"
            ),
            CertificateViolation::InconsistentWeight {
                reported,
                recomputed,
            } => write!(f, "reported weight {reported} != recomputed {recomputed}"),
            CertificateViolation::InconsistentComponents { reported, actual } => {
                write!(
                    f,
                    "result reports {reported} components, graph has {actual}"
                )
            }
            CertificateViolation::CycleProperty {
                non_forest,
                non_forest_key,
                path_max,
            } => write!(
                f,
                "cycle property violated: non-forest edge {non_forest} (key {non_forest_key:?}) \
                 is not the maximum of its cycle (path max {path_max:?}) — the forest is not \
                 minimum"
            ),
            CertificateViolation::CutProperty {
                forest,
                forest_key,
                lighter_crossing,
            } => write!(
                f,
                "cut property violated: forest edge {forest} (key {forest_key:?}) is not the \
                 minimum across its cut — non-forest edge {lighter_crossing} crosses it and is \
                 lighter"
            ),
        }
    }
}

impl std::error::Error for CertificateViolation {}

/// Evidence of a successful certification, with the work accounting of the
/// parallel query pass.
#[derive(Debug, Clone)]
pub struct Certificate {
    /// Edges in the certified forest.
    pub forest_edges: usize,
    /// Non-forest edges that passed the cycle-property query.
    pub cycle_queries: usize,
    /// Forest edges that passed the cut-property check.
    pub cut_checks: usize,
    /// Trees in the forest (== components of the input).
    pub trees: usize,
    /// Per-block meters of the parallel cycle-property pass.
    pub meters: Vec<WorkMeter>,
}

impl Certificate {
    /// Modeled time of the certification's parallel query pass (max over
    /// blocks, as barriers make a phase as slow as its slowest worker).
    pub fn modeled_time(&self) -> u64 {
        msf_primitives::cost::modeled_time(&self.meters)
    }
}

/// Certify `result` against `g` using [`rayon::current_num_threads`] blocks.
pub fn certify_msf(g: &EdgeList, result: &MsfResult) -> Result<Certificate, CertificateViolation> {
    certify_msf_with(g, result, rayon::current_num_threads().max(1))
}

/// Certify `result` against `g`, partitioning the cycle-property queries
/// into `threads` metered blocks. Never invokes Kruskal (or any other MSF
/// algorithm): acceptance is proved from the cut and cycle properties alone.
pub fn certify_msf_with(
    g: &EdgeList,
    result: &MsfResult,
    threads: usize,
) -> Result<Certificate, CertificateViolation> {
    let n = g.num_vertices();
    let m = g.num_edges();
    let p = threads.max(1);

    // --- Structure: ids valid and distinct, acyclic, spanning. ---
    let mut in_forest = vec![false; m];
    for &id in &result.edges {
        if id as usize >= m {
            return Err(CertificateViolation::EdgeIdOutOfRange { id, num_edges: m });
        }
        if in_forest[id as usize] {
            return Err(CertificateViolation::DuplicateEdge { id });
        }
        in_forest[id as usize] = true;
    }
    let mut uf = UnionFind::new(n);
    for &id in &result.edges {
        let e = g.edge(id);
        if !uf.union(e.u as usize, e.v as usize) {
            return Err(CertificateViolation::CyclicForest { id });
        }
    }
    let mut components = UnionFind::new(n);
    for e in g.edges() {
        components.union(e.u as usize, e.v as usize);
    }
    if uf.set_count() != components.set_count() {
        return Err(CertificateViolation::NotSpanning {
            forest_trees: uf.set_count(),
            graph_components: components.set_count(),
        });
    }
    if result.components as usize != components.set_count() {
        return Err(CertificateViolation::InconsistentComponents {
            reported: result.components,
            actual: components.set_count(),
        });
    }
    let weight: f64 = result.edges.iter().map(|&id| g.edge(id).w).sum();
    if (weight - result.total_weight).abs() > 1e-9 * weight.abs().max(1.0) {
        return Err(CertificateViolation::InconsistentWeight {
            reported: result.total_weight,
            recomputed: weight,
        });
    }

    // --- Cycle property: parallel block-partitioned path-max queries. ---
    let forest: Vec<(u32, u32, EdgeKey)> = result
        .edges
        .iter()
        .map(|&id| {
            let e = g.edge(id);
            (e.u, e.v, e.key())
        })
        .collect();
    let pm = PathMaxForest::build(n, &forest);
    let log_n = u64::from(usize::BITS - n.max(2).leading_zeros());
    let edges = g.edges();
    let blocks: Vec<(Option<CertificateViolation>, WorkMeter, usize)> = (0..p)
        .into_par_iter()
        .map(|t| {
            let r = msf_primitives::block_range(m, p, t);
            let mut meter = WorkMeter::new();
            let mut queries = 0usize;
            let mut worst: Option<CertificateViolation> = None;
            for e in &edges[r] {
                if in_forest[e.id as usize] || e.u == e.v {
                    continue;
                }
                queries += 1;
                // A path-max query walks two ancestor chains: ~2 log n
                // scattered reads and as many key comparisons.
                meter.mem(2 * log_n);
                meter.ops(2 * log_n);
                match pm.path_max(e.u, e.v) {
                    Some(path_max) if e.key() > path_max => {}
                    Some(path_max) => {
                        worst = pick_first(
                            worst,
                            e.id,
                            CertificateViolation::CycleProperty {
                                non_forest: e.id,
                                non_forest_key: e.key(),
                                path_max,
                            },
                        );
                    }
                    // Endpoints in different trees: the structural spanning
                    // check above already accepted exactly the input's
                    // component structure, so this cannot happen; defensive.
                    None => {
                        worst = pick_first(
                            worst,
                            e.id,
                            CertificateViolation::NotSpanning {
                                forest_trees: uf.set_count(),
                                graph_components: components.set_count(),
                            },
                        );
                    }
                }
            }
            (worst, meter, queries)
        })
        .collect();
    let mut meters = Vec::with_capacity(p);
    let mut cycle_queries = 0usize;
    let mut first: Option<(u32, CertificateViolation)> = None;
    for (worst, meter, queries) in blocks {
        meters.push(meter);
        cycle_queries += queries;
        if let Some(v) = worst {
            let id = violation_edge(&v);
            if first.as_ref().is_none_or(|(best, _)| id < *best) {
                first = Some((id, v));
            }
        }
    }
    if let Some((_, v)) = first {
        return Err(v);
    }

    // --- Cut property: path-cover min-updates over the same forest. ---
    let cover = CutCover::build(n, g, &in_forest);
    if let Some(v) = cover.check(g, &in_forest) {
        return Err(v);
    }

    Ok(Certificate {
        forest_edges: result.edges.len(),
        cycle_queries,
        cut_checks: result.edges.len(),
        trees: uf.set_count(),
        meters,
    })
}

/// Deterministic winner among block-local violations: lowest offending edge
/// id (so a fixed input yields a fixed error regardless of p).
fn pick_first(
    current: Option<CertificateViolation>,
    id: u32,
    candidate: CertificateViolation,
) -> Option<CertificateViolation> {
    match current {
        Some(cur) if violation_edge(&cur) <= id => Some(cur),
        _ => Some(candidate),
    }
}

fn violation_edge(v: &CertificateViolation) -> u32 {
    match v {
        CertificateViolation::CycleProperty { non_forest, .. } => *non_forest,
        CertificateViolation::CutProperty { forest, .. } => *forest,
        _ => 0,
    }
}

/// Rooted-forest scaffolding for the cut-property check, built directly from
/// the claimed forest (independently of [`PathMaxForest`], so the two
/// optimality certificates do not share a traversal).
///
/// `cover[k][v]` carries, as `(key, id)` of a non-forest edge, a pending
/// min-update over the 2^k parent edges starting at `v`; [`CutCover::check`]
/// pushes the updates down to the per-parent-edge level and compares each
/// forest edge against the lightest non-forest edge whose cycle contains it.
struct CutCover {
    up: Vec<Vec<u32>>,
    depth: Vec<u32>,
    comp: Vec<u32>,
    /// Key of the edge from v to its parent (EdgeKey::MAX at roots).
    pkey: Vec<EdgeKey>,
    /// Id of the edge from v to its parent (NONE at roots).
    pid: Vec<u32>,
    /// Pending min-covers, one level per lifting table.
    cover: Vec<Vec<(EdgeKey, u32)>>,
}

impl CutCover {
    fn build(n: usize, g: &EdgeList, in_forest: &[bool]) -> CutCover {
        let mut adj: Vec<Vec<(u32, EdgeKey)>> = vec![Vec::new(); n];
        for e in g.edges() {
            if in_forest[e.id as usize] {
                adj[e.u as usize].push((e.v, e.key()));
                adj[e.v as usize].push((e.u, e.key()));
            }
        }
        let mut parent = vec![NONE; n];
        let mut pkey = vec![EdgeKey::MAX; n];
        let mut pid = vec![NONE; n];
        let mut depth = vec![0u32; n];
        let mut comp = vec![NONE; n];
        let mut queue = std::collections::VecDeque::new();
        for root in 0..n as u32 {
            if comp[root as usize] != NONE {
                continue;
            }
            comp[root as usize] = root;
            queue.push_back(root);
            while let Some(x) = queue.pop_front() {
                for &(y, key) in &adj[x as usize] {
                    if comp[y as usize] != NONE {
                        continue;
                    }
                    comp[y as usize] = root;
                    parent[y as usize] = x;
                    pkey[y as usize] = key;
                    pid[y as usize] = key.id;
                    depth[y as usize] = depth[x as usize] + 1;
                    queue.push_back(y);
                }
            }
        }
        let levels = (usize::BITS - n.max(2).leading_zeros()) as usize;
        let mut up = vec![parent];
        for k in 1..levels {
            let prev = &up[k - 1];
            let mut next = vec![NONE; n];
            for v in 0..n {
                if prev[v] != NONE {
                    next[v] = prev[prev[v] as usize];
                }
            }
            up.push(next);
        }
        let cover = vec![vec![(EdgeKey::MAX, NONE); n]; up.len()];
        CutCover {
            up,
            depth,
            comp,
            pkey,
            pid,
            cover,
        }
    }

    /// Min-cover the path u..v with the non-forest edge `(key, id)`.
    fn apply(&mut self, mut u: u32, mut v: u32, key: EdgeKey, id: u32) {
        if u == v || self.comp[u as usize] != self.comp[v as usize] {
            return; // self-loop or cross-tree: covers no forest edge
        }
        if self.depth[u as usize] < self.depth[v as usize] {
            std::mem::swap(&mut u, &mut v);
        }
        let mut diff = self.depth[u as usize] - self.depth[v as usize];
        let mut k = 0;
        while diff > 0 {
            if diff & 1 == 1 {
                self.tag(k, u, key, id);
                u = self.up[k][u as usize];
            }
            diff >>= 1;
            k += 1;
        }
        if u == v {
            return;
        }
        for k in (0..self.up.len()).rev() {
            if self.up[k][u as usize] != self.up[k][v as usize] {
                self.tag(k, u, key, id);
                self.tag(k, v, key, id);
                u = self.up[k][u as usize];
                v = self.up[k][v as usize];
            }
        }
        self.tag(0, u, key, id);
        self.tag(0, v, key, id);
    }

    #[inline]
    fn tag(&mut self, k: usize, v: u32, key: EdgeKey, id: u32) {
        let slot = &mut self.cover[k][v as usize];
        if key < slot.0 {
            *slot = (key, id);
        }
    }

    /// Push covers down and compare every forest edge with its lightest
    /// crossing non-forest edge.
    fn check(mut self, g: &EdgeList, in_forest: &[bool]) -> Option<CertificateViolation> {
        for e in g.edges() {
            if !in_forest[e.id as usize] {
                self.apply(e.u, e.v, e.key(), e.id);
            }
        }
        // Level k covers split into two level k-1 covers: at v, and at v's
        // 2^(k-1)-th ancestor.
        for k in (1..self.up.len()).rev() {
            for v in 0..self.up[0].len() {
                let (key, id) = self.cover[k][v];
                if id == NONE {
                    continue;
                }
                let mid = self.up[k - 1][v];
                self.tag(k - 1, v as u32, key, id);
                if mid != NONE {
                    self.tag(k - 1, mid, key, id);
                }
            }
        }
        // cover[0][v] is now the lightest non-forest edge whose forest cycle
        // contains the parent edge of v. Cut property: the forest edge must
        // be strictly lighter (keys are distinct under the total order).
        let mut worst: Option<(u32, CertificateViolation)> = None;
        for v in 0..self.up[0].len() {
            if self.pid[v] == NONE {
                continue;
            }
            let (key, id) = self.cover[0][v];
            if id != NONE && key < self.pkey[v] {
                let fid = self.pid[v];
                if worst.as_ref().is_none_or(|(best, _)| fid < *best) {
                    worst = Some((
                        fid,
                        CertificateViolation::CutProperty {
                            forest: fid,
                            forest_key: self.pkey[v],
                            lighter_crossing: id,
                        },
                    ));
                }
            }
        }
        worst.map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RunStats;
    use crate::{minimum_spanning_forest, Algorithm, MsfConfig};
    use msf_graph::generators::{random_graph, GeneratorConfig};

    fn result_with(edges: Vec<u32>, g: &EdgeList) -> MsfResult {
        let total_weight = edges.iter().map(|&id| g.edge(id).w).sum();
        let mut uf = UnionFind::new(g.num_vertices());
        for e in g.edges() {
            uf.union(e.u as usize, e.v as usize);
        }
        MsfResult {
            edges,
            total_weight,
            components: uf.set_count() as u32,
            stats: RunStats::default(),
        }
    }

    #[test]
    fn accepts_every_algorithm_without_a_reference() {
        let g = random_graph(&GeneratorConfig::with_seed(11), 300, 1200);
        for algo in Algorithm::ALL {
            let r = minimum_spanning_forest(&g, algo, &MsfConfig::with_threads(3));
            let cert = certify_msf_with(&g, &r, 3).unwrap_or_else(|e| panic!("{algo}: {e}"));
            assert_eq!(cert.forest_edges, r.edges.len());
            assert!(cert.cycle_queries > 0);
            assert!(cert.modeled_time() > 0);
        }
    }

    #[test]
    fn rejects_swapped_edge_as_cut_or_cycle_violation() {
        // Triangle: MSF is {0, 1}; swapping in the heavy edge 2 for edge 1
        // keeps it spanning but breaks both optimality properties.
        let g = EdgeList::from_triples(3, vec![(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]);
        let bad = result_with(vec![0, 2], &g);
        match certify_msf_with(&g, &bad, 2).unwrap_err() {
            CertificateViolation::CycleProperty { non_forest, .. } => assert_eq!(non_forest, 1),
            v => panic!("expected CycleProperty, got {v}"),
        }
    }

    #[test]
    fn rejects_dropped_edge_as_not_spanning() {
        let g = EdgeList::from_triples(3, vec![(0, 1, 1.0), (1, 2, 2.0)]);
        let bad = result_with(vec![0], &g);
        match certify_msf_with(&g, &bad, 2).unwrap_err() {
            CertificateViolation::NotSpanning {
                forest_trees,
                graph_components,
            } => {
                assert_eq!(forest_trees, 2);
                assert_eq!(graph_components, 1);
            }
            v => panic!("expected NotSpanning, got {v}"),
        }
    }

    #[test]
    fn rejects_heavier_parallel_substitute() {
        // Two parallel (0,1) edges; the claimed forest takes the heavy one.
        let g = EdgeList::from_triples(2, vec![(0, 1, 1.0), (0, 1, 5.0)]);
        let bad = result_with(vec![1], &g);
        let err = certify_msf_with(&g, &bad, 1).unwrap_err();
        assert!(
            matches!(
                err,
                CertificateViolation::CycleProperty { non_forest: 0, .. }
                    | CertificateViolation::CutProperty { forest: 1, .. }
            ),
            "got {err}"
        );
    }

    #[test]
    fn rejects_cycle_duplicate_and_bad_ids() {
        let g = EdgeList::from_triples(3, vec![(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]);
        let cyc = result_with(vec![0, 1, 2], &g);
        assert!(matches!(
            certify_msf_with(&g, &cyc, 1).unwrap_err(),
            CertificateViolation::CyclicForest { id: 2 }
        ));
        let dup = result_with(vec![0, 0], &g);
        assert!(matches!(
            certify_msf_with(&g, &dup, 1).unwrap_err(),
            CertificateViolation::DuplicateEdge { id: 0 }
        ));
        let oob = MsfResult {
            edges: vec![9],
            total_weight: 0.0,
            components: 1,
            stats: RunStats::default(),
        };
        assert!(matches!(
            certify_msf_with(&g, &oob, 1).unwrap_err(),
            CertificateViolation::EdgeIdOutOfRange {
                id: 9,
                num_edges: 3
            }
        ));
    }

    #[test]
    fn rejects_inconsistent_weight_and_components() {
        let g = EdgeList::from_triples(3, vec![(0, 1, 1.0), (1, 2, 2.0)]);
        let mut r = result_with(vec![0, 1], &g);
        r.total_weight = 999.0;
        assert!(matches!(
            certify_msf_with(&g, &r, 1).unwrap_err(),
            CertificateViolation::InconsistentWeight { .. }
        ));
        let mut r = result_with(vec![0, 1], &g);
        r.components = 7;
        assert!(matches!(
            certify_msf_with(&g, &r, 1).unwrap_err(),
            CertificateViolation::InconsistentComponents { reported: 7, .. }
        ));
    }

    #[test]
    fn tie_heavy_wrong_tree_is_rejected() {
        // 4-cycle, all weights equal: only (weight, id) order decides. The
        // true MSF is {0, 1, 2}; {1, 2, 3} spans but is not THE forest.
        let g = EdgeList::from_triples(4, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]);
        let good = result_with(vec![0, 1, 2], &g);
        certify_msf_with(&g, &good, 2).unwrap();
        let bad = result_with(vec![1, 2, 3], &g);
        let err = certify_msf_with(&g, &bad, 2).unwrap_err();
        assert!(
            matches!(
                err,
                CertificateViolation::CycleProperty { non_forest: 0, .. }
            ),
            "id tie-break must flag edge 0, got {err}"
        );
    }

    #[test]
    fn violation_is_deterministic_across_thread_counts() {
        let g = random_graph(&GeneratorConfig::with_seed(21), 120, 480);
        let good = minimum_spanning_forest(&g, Algorithm::Boruvka, &MsfConfig::default());
        // Corrupt: drop the last forest edge, substitute the heaviest
        // non-forest edge (keeps the tree count, breaks minimality).
        let in_forest: std::collections::HashSet<u32> = good.edges.iter().copied().collect();
        let heavy = g
            .edges()
            .iter()
            .filter(|e| !in_forest.contains(&e.id))
            .max_by_key(|e| e.key())
            .unwrap();
        // Find a forest edge on the cycle heavy closes, to swap out.
        let forest: Vec<(u32, u32, EdgeKey)> = good
            .edges
            .iter()
            .map(|&id| {
                let e = g.edge(id);
                (e.u, e.v, e.key())
            })
            .collect();
        let pm = PathMaxForest::build(g.num_vertices(), &forest);
        let cycle_max = pm.path_max(heavy.u, heavy.v).unwrap();
        let mut edges: Vec<u32> = good
            .edges
            .iter()
            .copied()
            .filter(|&id| id != cycle_max.id)
            .collect();
        edges.push(heavy.id);
        edges.sort_unstable();
        let bad = result_with(edges, &g);
        let errs: Vec<CertificateViolation> = [1usize, 3, 7]
            .into_iter()
            .map(|p| certify_msf_with(&g, &bad, p).unwrap_err())
            .collect();
        assert_eq!(errs[0], errs[1]);
        assert_eq!(errs[1], errs[2]);
    }

    #[test]
    fn handles_empty_and_single_vertex_graphs() {
        for n in [0usize, 1, 2] {
            let g = EdgeList::from_triples(n, vec![]);
            let r = result_with(vec![], &g);
            let cert = certify_msf_with(&g, &r, 3).unwrap();
            assert_eq!(cert.forest_edges, 0);
            assert_eq!(cert.trees, n);
        }
    }
}
