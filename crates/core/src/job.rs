//! MSF computations as *jobs*: schedulable units with a work estimate, so a
//! serving layer can admission-control, batch, and account them instead of
//! treating every run as an opaque whole-process batch.
//!
//! Two pieces live here:
//!
//! - [`MsfJob`] — an algorithm + config pair with an explicit
//!   [`WorkEstimate`]. [`crate::minimum_spanning_forest`] is now a thin
//!   wrapper over [`MsfJob::run`], so the CLI, benches, and the daemon all
//!   go through the same entry point.
//! - [`boruvka_round`] / [`finish_from_round`] — the first Borůvka
//!   iteration factored out as a reusable, cacheable intermediate. A server
//!   holding a graph resident computes the round once and then serves every
//!   subsequent request from the (much smaller) contracted multigraph; the
//!   combined forest is **bit-identical** to a from-scratch run because the
//!   `(weight, edge id)` total order makes the MSF unique and the round
//!   selects only edges of that unique forest (cut property).

use msf_graph::{Edge, EdgeList};
use msf_primitives::unionfind::UnionFind;

use crate::{minimum_spanning_forest, Algorithm, MsfConfig, MsfResult};

/// How much work a job will do, in abstract *edge-work units*. The unit is
/// deliberately coarse — `m + n` — because admission control needs a stable
/// ordering of job sizes, not a cycle-accurate cost model (the modeled-cost
/// machinery in `stats` answers that after the fact).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkEstimate {
    /// Vertices of the input.
    pub vertices: usize,
    /// Edges of the input.
    pub edges: usize,
    /// Admission units: `m + n`.
    pub units: u64,
}

/// Estimate the work of one MSF computation over `g`.
pub fn estimate_work(g: &EdgeList) -> WorkEstimate {
    WorkEstimate {
        vertices: g.num_vertices(),
        edges: g.num_edges(),
        units: g.num_edges() as u64 + g.num_vertices() as u64,
    }
}

/// One schedulable MSF computation: an algorithm plus its configuration.
///
/// The job owns no graph — the same job value can run over many graphs
/// (that is exactly what a daemon multiplexing resident graphs does).
#[derive(Debug, Clone)]
pub struct MsfJob {
    /// Algorithm to run.
    pub algorithm: Algorithm,
    /// Run-time configuration (processor count, MST-BC knobs, ...).
    pub config: MsfConfig,
}

impl MsfJob {
    /// A job with the default configuration.
    pub fn new(algorithm: Algorithm) -> MsfJob {
        MsfJob {
            algorithm,
            config: MsfConfig::default(),
        }
    }

    /// A job with an explicit configuration.
    pub fn with_config(algorithm: Algorithm, config: MsfConfig) -> MsfJob {
        MsfJob { algorithm, config }
    }

    /// The job's admission-control work estimate over `g`.
    pub fn estimate(&self, g: &EdgeList) -> WorkEstimate {
        estimate_work(g)
    }

    /// Run the job over `g`. Equivalent to
    /// [`crate::minimum_spanning_forest`]`(g, self.algorithm, &self.config)`.
    pub fn run(&self, g: &EdgeList) -> MsfResult {
        minimum_spanning_forest(g, self.algorithm, &self.config)
    }

    /// Run the job over `g`, reusing a cached first-round contraction.
    /// Bit-identical to [`MsfJob::run`]; see [`finish_from_round`].
    pub fn run_from_round(&self, g: &EdgeList, round: &BoruvkaRound) -> MsfResult {
        finish_from_round(g, round, self.algorithm, &self.config)
    }
}

/// The cacheable intermediate of one Borůvka iteration over a graph: the
/// forest edges the round selected, the contracted supervertex multigraph
/// (self-loops removed, multi-edges kept), and the id map that translates
/// contracted edge ids back to input edge ids.
#[derive(Debug, Clone)]
pub struct BoruvkaRound {
    /// Input edge ids selected by the round (all in the unique MSF).
    pub forest: Vec<u32>,
    /// The contracted multigraph. Its edge ids are fresh (`0..m'`) but
    /// assigned in increasing input-id order, so the `(weight, id)` tie
    /// order of the contraction is isomorphic to the input's.
    pub contracted: EdgeList,
    /// Contracted edge id → input edge id.
    pub id_map: Vec<u32>,
    /// Vertex count of the input graph the round was computed from.
    pub orig_vertices: usize,
    /// Edge count of the input graph the round was computed from.
    pub orig_edges: usize,
}

impl BoruvkaRound {
    /// Approximate resident size in bytes (for cache accounting).
    pub fn bytes(&self) -> u64 {
        (self.forest.len() * std::mem::size_of::<u32>()
            + self.contracted.num_edges() * std::mem::size_of::<Edge>()
            + self.id_map.len() * std::mem::size_of::<u32>()) as u64
    }
}

/// Run one sequential Borůvka iteration over `g` and contract along the
/// selected edges.
///
/// Every selected edge is in the unique `(weight, edge id)` MSF (it is the
/// strict minimum over a cut, under a total order), and the MSF of the
/// contracted multigraph is exactly the rest of that forest — so any MSF
/// algorithm finished over the contraction yields, after id translation,
/// the same edge set a from-scratch run produces.
pub fn boruvka_round(g: &EdgeList) -> BoruvkaRound {
    const NONE: u32 = u32::MAX;
    let n = g.num_vertices();
    let edges = g.edges();

    // find-min: per vertex, the (weight, id)-minimum incident edge.
    let mut best: Vec<u32> = vec![NONE; n];
    for e in edges {
        let key = e.key();
        for v in [e.u as usize, e.v as usize] {
            if best[v] == NONE || key < edges[best[v] as usize].key() {
                best[v] = e.id;
            }
        }
    }

    // connect: union along the selected edges; dedup via union's return.
    let mut uf = UnionFind::new(n);
    let mut forest: Vec<u32> = Vec::new();
    for &id in best.iter().filter(|&&id| id != NONE) {
        let e = edges[id as usize];
        if uf.union(e.u as usize, e.v as usize) {
            forest.push(id);
        }
    }
    forest.sort_unstable();

    // compact: relabel roots to 0..n' and keep surviving edges in input-id
    // order (so fresh ids are monotone in input ids — tie-order preserving).
    let mut label: Vec<u32> = vec![NONE; n];
    let mut next = 0u32;
    let mut root_label = |uf: &mut UnionFind, v: usize, label: &mut Vec<u32>| -> u32 {
        let r = uf.find(v);
        if label[r] == NONE {
            label[r] = next;
            next += 1;
        }
        label[r]
    };
    let mut kept: Vec<(u32, u32, f64)> = Vec::new();
    let mut id_map: Vec<u32> = Vec::new();
    for e in edges {
        let lu = root_label(&mut uf, e.u as usize, &mut label);
        let lv = root_label(&mut uf, e.v as usize, &mut label);
        if lu != lv {
            kept.push((lu, lv, e.w));
            id_map.push(e.id);
        }
    }
    // Isolated input vertices never get a label; they contribute no edges
    // and the contracted vertex count only needs to cover labeled roots.
    let contracted = EdgeList::from_triples(next as usize, kept);
    BoruvkaRound {
        forest,
        contracted,
        id_map,
        orig_vertices: n,
        orig_edges: g.num_edges(),
    }
}

/// Finish an MSF computation from a cached [`BoruvkaRound`]: run
/// `algorithm` over the contracted multigraph, translate the selected ids
/// back to input ids, and merge with the round's forest.
///
/// # Panics
/// Panics if `round` was not computed from a graph with `g`'s shape (the
/// cache key must pin graph identity; this is the last-line guard).
pub fn finish_from_round(
    g: &EdgeList,
    round: &BoruvkaRound,
    algorithm: Algorithm,
    cfg: &MsfConfig,
) -> MsfResult {
    assert_eq!(
        (round.orig_vertices, round.orig_edges),
        (g.num_vertices(), g.num_edges()),
        "BoruvkaRound used with a different graph than it was computed from"
    );
    let mut ids = round.forest.clone();
    let mut stats = crate::stats::RunStats::new(algorithm.name(), cfg.threads);
    if round.contracted.num_edges() > 0 {
        let sub = minimum_spanning_forest(&round.contracted, algorithm, cfg);
        ids.extend(sub.edges.iter().map(|&cid| round.id_map[cid as usize]));
        stats = sub.stats;
    }
    MsfResult::from_ids(g, ids, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msf_graph::generators::{
        assign_weights, mesh2d, random_graph, GeneratorConfig, WeightScheme,
    };

    fn reference(g: &EdgeList) -> MsfResult {
        minimum_spanning_forest(g, Algorithm::Kruskal, &MsfConfig::default())
    }

    #[test]
    fn round_selects_only_msf_edges_and_shrinks() {
        let g = random_graph(&GeneratorConfig::with_seed(9), 500, 2_000);
        let round = boruvka_round(&g);
        let reference = reference(&g);
        for id in &round.forest {
            assert!(reference.edges.contains(id), "round picked a non-MSF edge");
        }
        assert!(round.contracted.num_vertices() <= g.num_vertices() / 2 + 1);
        assert_eq!(round.id_map.len(), round.contracted.num_edges());
    }

    #[test]
    fn finish_from_round_is_bit_identical_for_every_algorithm() {
        let base = random_graph(&GeneratorConfig::with_seed(3), 400, 1_600);
        // The heavy-tie scheme is the hard case for id-order isomorphism.
        for scheme in [
            WeightScheme::Uniform,
            WeightScheme::SmallIntegers { range: 4 },
        ] {
            let g = assign_weights(&base, scheme, 11);
            let round = boruvka_round(&g);
            let want = reference(&g);
            for algo in Algorithm::ALL {
                if algo == Algorithm::BorDense && g.num_vertices() > 2_000 {
                    continue;
                }
                let got = finish_from_round(&g, &round, algo, &MsfConfig::with_threads(4));
                assert_eq!(got.edges, want.edges, "{algo} diverged via the round cache");
                assert_eq!(got.components, want.components);
                assert!((got.total_weight - want.total_weight).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn finish_handles_single_round_and_disconnected_graphs() {
        // A path contracts fully in one round: the sub-run must be skipped.
        let g = EdgeList::from_triples(4, vec![(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]);
        let round = boruvka_round(&g);
        assert_eq!(round.contracted.num_edges(), 0);
        let r = finish_from_round(&g, &round, Algorithm::BorFal, &MsfConfig::default());
        assert_eq!(r.edges, vec![0, 1, 2]);
        // Disconnected with isolated vertices.
        let g = EdgeList::from_triples(7, vec![(0, 1, 1.0), (2, 3, 5.0), (3, 4, 4.0)]);
        let round = boruvka_round(&g);
        let r = finish_from_round(&g, &round, Algorithm::Kruskal, &MsfConfig::default());
        assert_eq!(r.edges, reference(&g).edges);
        assert_eq!(r.components, 4);
    }

    #[test]
    fn mesh_round_trip_matches() {
        let g = mesh2d(&GeneratorConfig::with_seed(5), 20, 20);
        let round = boruvka_round(&g);
        let r = finish_from_round(
            &g,
            &round,
            Algorithm::BorWriteMin,
            &MsfConfig::with_threads(3),
        );
        assert_eq!(r.edges, reference(&g).edges);
    }

    #[test]
    fn job_estimate_and_run() {
        let g = random_graph(&GeneratorConfig::with_seed(1), 100, 300);
        let job = MsfJob::new(Algorithm::BorFal);
        let est = job.estimate(&g);
        assert_eq!(est.units, 400);
        let r = job.run(&g);
        assert_eq!(r.edges, reference(&g).edges);
        let round = boruvka_round(&g);
        assert_eq!(job.run_from_round(&g, &round).edges, r.edges);
    }
}
