//! Always-on pool telemetry: relaxed monotone counters on the registry's
//! rare paths (steal probes, injector traffic, sleep/wake, deque overflow)
//! and the team-thread cache, snapshotted as a [`PoolStats`].
//!
//! Counters are deliberately *not* gated by `MSF_TRACE`: every increment
//! sits on a path that already paid a CAS, a mutex, or a condvar, so a
//! relaxed `fetch_add` is noise there. The hot local push/pop fast path has
//! no counter at all.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use msf_obs::metrics::LazyHistogram;

/// How long a successful steal scan hunted (nanoseconds from the first
/// victim probe to the hit). Gated with the rest of the metrics registry.
pub(crate) static STEAL_LATENCY_NS: LatencyHistogram =
    LatencyHistogram(LazyHistogram::new("pool.steal_latency_ns"));

/// How long `SmpTeam::run` waited to lease one team thread (nanoseconds;
/// cache hits are ~a mutex, spawns dominate the tail).
pub(crate) static LEASE_WAIT_NS: LatencyHistogram =
    LatencyHistogram(LazyHistogram::new("pool.lease_wait_ns"));

/// A histogram of elapsed nanoseconds with an explicit two-phase timer, so
/// the `Instant::now()` pair is only paid while metrics are enabled.
pub(crate) struct LatencyHistogram(LazyHistogram);

impl LatencyHistogram {
    /// Start timing if `enabled` (pass `msf_obs::metrics::enabled()` so the
    /// caller can share one gate check across several decisions).
    #[inline]
    pub(crate) fn timer_start(&self, enabled: bool) -> Option<Instant> {
        enabled.then(Instant::now)
    }

    /// Record the elapsed time of a timer started by
    /// [`LatencyHistogram::timer_start`]; `None` (disabled at start) is free.
    #[inline]
    pub(crate) fn timer_record(&self, start: Option<Instant>) {
        if let Some(start) = start {
            self.0.record(start.elapsed().as_nanos() as u64);
        }
    }
}

/// A relaxed monotone counter padded to its own cache-line pair so writers
/// of different counters never false-share.
#[repr(align(128))]
#[derive(Default)]
pub(crate) struct Counter(AtomicU64);

impl Counter {
    #[inline]
    pub(crate) fn bump(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// One stealing worker's counters. All three are written only by the owning
/// worker, so they share the worker's own padded line.
#[repr(align(128))]
#[derive(Default)]
pub(crate) struct WorkerCounters {
    pub(crate) steal_hits: AtomicU64,
    pub(crate) steal_misses: AtomicU64,
    pub(crate) parks: AtomicU64,
}

/// The registry-owned counter block.
pub(crate) struct RegistryCounters {
    pub(crate) workers: Box<[WorkerCounters]>,
    pub(crate) injector_pushes: Counter,
    pub(crate) injector_pops: Counter,
    pub(crate) wakes: Counter,
    pub(crate) overflows: Counter,
}

impl RegistryCounters {
    pub(crate) fn new(width: usize) -> RegistryCounters {
        RegistryCounters {
            workers: (0..width).map(|_| WorkerCounters::default()).collect(),
            injector_pushes: Counter::default(),
            injector_pops: Counter::default(),
            wakes: Counter::default(),
            overflows: Counter::default(),
        }
    }

    pub(crate) fn snapshot(&self) -> PoolStats {
        PoolStats {
            width: self.workers.len(),
            workers: self
                .workers
                .iter()
                .map(|w| PoolWorkerStats {
                    steal_hits: w.steal_hits.load(Ordering::Relaxed),
                    steal_misses: w.steal_misses.load(Ordering::Relaxed),
                    parks: w.parks.load(Ordering::Relaxed),
                })
                .collect(),
            injector_pushes: self.injector_pushes.get(),
            injector_pops: self.injector_pops.get(),
            wakes: self.wakes.get(),
            deque_overflows: self.overflows.get(),
            team_threads_spawned: crate::team::TEAM_SPAWNS.load(Ordering::Relaxed),
            team_leases: crate::team::TEAM_LEASES.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter. Test isolation only — see
    /// [`crate::reset_telemetry_for_test`] for the caveats.
    pub(crate) fn reset_for_test(&self) {
        for w in self.workers.iter() {
            w.steal_hits.store(0, Ordering::Relaxed);
            w.steal_misses.store(0, Ordering::Relaxed);
            w.parks.store(0, Ordering::Relaxed);
        }
        self.injector_pushes.reset();
        self.injector_pops.reset();
        self.wakes.reset();
        self.overflows.reset();
    }
}

/// Per-worker slice of a [`PoolStats`] snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolWorkerStats {
    /// Successful steals from another worker's deque.
    pub steal_hits: u64,
    /// Steal probes that found the victim's deque empty or contended.
    pub steal_misses: u64,
    /// Times this worker entered the condvar sleep protocol.
    pub parks: u64,
}

/// A monotone snapshot of the pool's lifetime telemetry. Taken with
/// [`crate::pool_stats`]; counters never reset, so rate over an interval is
/// the difference of two snapshots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Stealing-worker count (0 when the pool was never started).
    pub width: usize,
    /// Per-worker steal and park counters, indexed by worker id.
    pub workers: Vec<PoolWorkerStats>,
    /// Jobs submitted through the external-thread injector.
    pub injector_pushes: u64,
    /// Injected jobs claimed by workers (the rest were reclaimed by their
    /// submitters).
    pub injector_pops: u64,
    /// `notify_all` wakeups actually issued (publishers skip the condvar
    /// while no worker sleeps).
    pub wakes: u64,
    /// Fork attempts that found the worker's deque full and ran inline.
    pub deque_overflows: u64,
    /// Dedicated SPMD team threads ever created.
    pub team_threads_spawned: u64,
    /// Team-thread leases served (one per non-zero rank per `SmpTeam::run`).
    pub team_leases: u64,
}

/// Totals already pushed into the metrics registry, so republishing adds
/// only the delta (registry counters are add-only; pool counters are
/// monotone).
static PUBLISHED: std::sync::Mutex<[u64; 9]> = std::sync::Mutex::new([0; 9]);

/// Sync the pool's lifetime telemetry into the `msf-obs` metrics registry
/// as the nine `pool.*` counters, making the registry the single source of
/// truth for every consumer (`msf bench --json`, the daemon's scrape
/// endpoint). Idempotent and monotone: each call adds only what accrued
/// since the previous call. No-op while metrics are disabled.
///
/// Caveat for tests: `msf_obs::metrics::reset_for_test` zeroes the registry
/// but not the internal published-totals cache, so assert on snapshot
/// *deltas* around the work under test rather than absolute values (or call
/// [`crate::reset_telemetry_for_test`] too, which resets both sides).
pub fn publish_metrics() {
    use msf_obs::metrics::LazyCounter;
    static COUNTERS: [LazyCounter; 9] = [
        LazyCounter::new("pool.steal_hits"),
        LazyCounter::new("pool.steal_misses"),
        LazyCounter::new("pool.parks"),
        LazyCounter::new("pool.injector_pushes"),
        LazyCounter::new("pool.injector_pops"),
        LazyCounter::new("pool.wakes"),
        LazyCounter::new("pool.deque_overflows"),
        LazyCounter::new("pool.team_threads_spawned"),
        LazyCounter::new("pool.team_leases"),
    ];
    if !msf_obs::metrics::enabled() {
        return;
    }
    let s = crate::pool_stats();
    let now = [
        s.steal_hits(),
        s.steal_misses(),
        s.parks(),
        s.injector_pushes,
        s.injector_pops,
        s.wakes,
        s.deque_overflows,
        s.team_threads_spawned,
        s.team_leases,
    ];
    let mut last = PUBLISHED.lock().unwrap_or_else(|e| e.into_inner());
    for ((counter, &cur), prev) in COUNTERS.iter().zip(&now).zip(last.iter_mut()) {
        // saturating: reset_telemetry_for_test can move pool counters
        // backwards mid-process; never push a wrapped delta.
        counter.add(cur.saturating_sub(*prev));
        *prev = cur;
    }
}

/// Forget the published-totals cache (paired with zeroing the pool's own
/// counters). Test isolation only.
pub(crate) fn reset_published_for_test() {
    *PUBLISHED.lock().unwrap_or_else(|e| e.into_inner()) = [0; 9];
}

impl PoolStats {
    /// Total successful steals across workers.
    pub fn steal_hits(&self) -> u64 {
        self.workers.iter().map(|w| w.steal_hits).sum()
    }

    /// Total failed steal probes across workers.
    pub fn steal_misses(&self) -> u64 {
        self.workers.iter().map(|w| w.steal_misses).sum()
    }

    /// Total sleep-protocol entries across workers.
    pub fn parks(&self) -> u64 {
        self.workers.iter().map(|w| w.parks).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_over_workers() {
        let stats = PoolStats {
            width: 2,
            workers: vec![
                PoolWorkerStats {
                    steal_hits: 3,
                    steal_misses: 10,
                    parks: 1,
                },
                PoolWorkerStats {
                    steal_hits: 4,
                    steal_misses: 20,
                    parks: 2,
                },
            ],
            ..PoolStats::default()
        };
        assert_eq!(stats.steal_hits(), 7);
        assert_eq!(stats.steal_misses(), 30);
        assert_eq!(stats.parks(), 3);
    }

    #[test]
    fn publish_metrics_pushes_monotone_deltas_into_registry() {
        crate::force_width(4);
        msf_obs::metrics::set_enabled(true);
        publish_metrics(); // sync whatever ran before this test
        let before = msf_obs::metrics::snapshot()
            .counter("pool.team_leases")
            .unwrap_or(0);
        // One 4-rank team run leases exactly 3 non-zero-rank threads.
        crate::run_team(4, &|_rank| {});
        publish_metrics();
        let mid = msf_obs::metrics::snapshot()
            .counter("pool.team_leases")
            .expect("pool.team_leases must be registered after publish");
        assert!(mid >= before + 3, "leases {before} -> {mid}");
        // Republishing without new pool work never double-counts: the
        // registry value may only grow by what other tests' pool work
        // accrued, never shrink.
        publish_metrics();
        let after = msf_obs::metrics::snapshot()
            .counter("pool.team_leases")
            .unwrap();
        assert!(after >= mid);
        let snap = msf_obs::metrics::snapshot();
        for name in [
            "pool.steal_hits",
            "pool.steal_misses",
            "pool.parks",
            "pool.injector_pushes",
            "pool.injector_pops",
            "pool.wakes",
            "pool.deque_overflows",
            "pool.team_threads_spawned",
        ] {
            assert!(snap.counter(name).is_some(), "{name} missing from registry");
        }
    }

    #[test]
    fn pool_work_moves_the_counters() {
        crate::force_width(4);
        let before = crate::pool_stats();
        // A team run leases p-1 = 3 threads, deterministically.
        crate::run_team(4, &|_rank| {});
        // An external join always injects its b half.
        let (a, b) = crate::join(|| 1u32, || 2u32);
        assert_eq!((a, b), (1, 2));
        let after = crate::pool_stats();
        assert_eq!(after.width, 4);
        assert_eq!(after.workers.len(), 4);
        assert!(after.team_leases >= before.team_leases + 3);
        // At least one dedicated thread must ever have been created; exactly
        // how many is a race (a fast rank can re-idle its thread between
        // two leases of the same run, so one thread may serve all ranks).
        assert!(after.team_threads_spawned >= 1);
        assert!(after.injector_pushes > before.injector_pushes);
        // Monotonicity across the board.
        assert!(after.steal_hits() >= before.steal_hits());
        assert!(after.steal_misses() >= before.steal_misses());
        assert!(after.parks() >= before.parks());
        assert!(after.wakes >= before.wakes);
    }
}
