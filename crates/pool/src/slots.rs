//! Padded, lock-free per-rank publication slots for team reductions.
//!
//! Each rank owns exactly one slot; `put(rank, v)` is rank-exclusive by the
//! team contract, so no mutex is needed — a slot is a small state machine
//! (`EMPTY → WRITING → FULL`) published with a release store and consumed
//! with an acquire load. Slots are padded to 128 bytes so neighbouring
//! ranks' deposits never share a cache line (no false sharing on the hot
//! barrier path).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU8, Ordering};

const EMPTY: u8 = 0;
const WRITING: u8 = 1;
const FULL: u8 = 2;

/// One cache-line-padded slot. 128 bytes covers the common 64-byte line and
/// the 128-byte spatial prefetcher pairs on x86.
#[repr(align(128))]
struct Slot<T> {
    state: AtomicU8,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// `p` single-writer slots indexed by team rank.
///
/// The contract mirrors `TeamReducer`: at most one `put` per rank per phase
/// (concurrent puts to the *same* rank are a bug and panic), reads happen
/// after a barrier or latch so `Acquire`/`Release` on the slot state is the
/// only synchronization needed. `T: Copy` keeps reads non-destructive and
/// makes `reset` trivial (no drops owed).
pub struct RankSlots<T> {
    slots: Box<[Slot<T>]>,
}

// SAFETY: every value access is guarded by the slot's atomic state with
// release/acquire ordering, and the single-writer-per-rank contract (puts to
// the same rank are serialized by the caller; violations detected and
// panicked) makes the UnsafeCell accesses data-race-free. T: Send suffices
// because values cross threads by copy.
unsafe impl<T: Copy + Send> Sync for RankSlots<T> {}
unsafe impl<T: Copy + Send> Send for RankSlots<T> {}

impl<T: Copy + Send> RankSlots<T> {
    /// `p` empty slots (`p = 0` clamps to 1).
    pub fn new(p: usize) -> RankSlots<T> {
        let slots = (0..p.max(1))
            .map(|_| Slot {
                state: AtomicU8::new(EMPTY),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        RankSlots { slots }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when there are no slots (never: `new` clamps to 1).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Deposit `rank`'s value, overwriting any previous deposit. Panics if
    /// another `put` to the same rank is in flight (contract violation).
    pub fn put(&self, rank: usize, value: T) {
        let slot = &self.slots[rank];
        // Acquire pairs with the Release of a previous phase's put, so the
        // overwrite of the old value is ordered after its publication.
        let prev = slot.state.swap(WRITING, Ordering::Acquire);
        assert_ne!(prev, WRITING, "concurrent put() to team rank {rank}");
        // SAFETY: the swap above moved the slot to WRITING, and the
        // single-writer contract means no other thread writes this rank;
        // readers observing WRITING spin until FULL.
        unsafe { (*slot.value.get()).write(value) };
        slot.state.store(FULL, Ordering::Release);
    }

    /// Read `rank`'s deposit. Panics if the rank never deposited; spins out
    /// a concurrent `put` (the caller normally orders `get` after a barrier,
    /// making that window empty).
    pub fn get(&self, rank: usize) -> T {
        self.read(rank)
            .unwrap_or_else(|| panic!("team rank {rank} has not deposited a value"))
    }

    /// Fold the deposited values in rank order, skipping empty slots.
    pub fn fold<A>(&self, init: A, mut f: impl FnMut(A, T) -> A) -> A {
        let mut acc = init;
        for rank in 0..self.slots.len() {
            if let Some(value) = self.read(rank) {
                acc = f(acc, value);
            }
        }
        acc
    }

    /// Clear all slots for the next phase. Caller must ensure no concurrent
    /// puts/gets (normally: between team runs).
    pub fn reset(&self) {
        for slot in self.slots.iter() {
            // T: Copy means no destructor is owed for the stale value.
            slot.state.store(EMPTY, Ordering::Release);
        }
    }

    fn read(&self, rank: usize) -> Option<T> {
        let slot = &self.slots[rank];
        let mut spins = 0u32;
        loop {
            match slot.state.load(Ordering::Acquire) {
                // SAFETY: FULL was published with Release after the value
                // write, and T: Copy lets us read without taking ownership.
                FULL => return Some(unsafe { (*slot.value.get()).assume_init() }),
                EMPTY => return None,
                _ => {
                    // A put is mid-write; it finishes in a handful of
                    // instructions.
                    spins += 1;
                    if spins < 128 {
                        std::hint::spin_loop();
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
        }
    }
}
