//! A one-shot completion latch with a park/unpark slow path.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread::Thread;

const PENDING: usize = 0;
const SET: usize = 1;

/// One-shot latch: starts pending, is set exactly once, and wakes at most
/// one parked waiter. `set` is a release operation and `probe` an acquire,
/// so everything written before `set` is visible after a true `probe`.
pub(crate) struct Latch {
    state: AtomicUsize,
    waiter: Mutex<Option<Thread>>,
}

impl Latch {
    pub(crate) fn new() -> Latch {
        Latch {
            state: AtomicUsize::new(PENDING),
            waiter: Mutex::new(None),
        }
    }

    #[inline]
    pub(crate) fn probe(&self) -> bool {
        self.state.load(Ordering::Acquire) == SET
    }

    pub(crate) fn set(&self) {
        self.state.store(SET, Ordering::Release);
        let waiter = self.waiter.lock().expect("latch mutex poisoned").take();
        if let Some(thread) = waiter {
            thread.unpark();
        }
    }

    /// Block the calling thread until the latch is set. Used by threads that
    /// are not pool workers (workers steal work instead of parking; see
    /// `Registry::wait_latch_stealing`).
    pub(crate) fn wait_parked(&self) {
        for _ in 0..64 {
            if self.probe() {
                return;
            }
            std::hint::spin_loop();
        }
        *self.waiter.lock().expect("latch mutex poisoned") = Some(std::thread::current());
        loop {
            // Re-check after registering: `set` may have run in between and
            // missed the registration, but then this probe sees SET.
            if self.probe() {
                *self.waiter.lock().expect("latch mutex poisoned") = None;
                return;
            }
            std::thread::park();
        }
    }
}
