//! Leasable SPMD team threads: persistent dedicated threads that run one
//! rank of a team closure per lease, then return to an idle cache.
//!
//! Team ranks **cannot** run on the stealing workers: a rank blocks on
//! barriers until every sibling rank has arrived, and with `p` ranks
//! multiplexed onto fewer stealing workers under the deque's stack
//! discipline the team would deadlock (a worker cannot suspend rank i to go
//! run rank j). So SPMD leases draw from a separate, growable cache of
//! plain threads whose only job is running rank closures to completion.
//! They are as persistent as the stealing workers — a `SmpTeam::run` per
//! Borůvka phase reuses them instead of paying a spawn+join per phase.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crate::latch::Latch;

/// Dedicated team threads ever spawned (telemetry; see [`crate::PoolStats`]).
pub(crate) static TEAM_SPAWNS: AtomicU64 = AtomicU64::new(0);
/// Leases served, one per non-zero rank per team run (telemetry).
pub(crate) static TEAM_LEASES: AtomicU64 = AtomicU64::new(0);

/// A panic payload captured from one rank, tagged with the rank.
pub type RankPanic = (usize, Box<dyn std::any::Any + Send + 'static>);

/// Lifetime-erased shared reference to the rank closure. Sound because
/// `run_team` latch-joins every rank before returning, so the erased borrow
/// never outlives the real one.
#[derive(Clone, Copy)]
struct TeamFn(&'static (dyn Fn(usize) + Sync));

// SAFETY: the pointee is Sync (shared calls are safe) and the latch-join
// discipline keeps it alive for every use.
unsafe impl Send for TeamFn {}

/// Shared state for one team invocation.
struct TeamRun {
    f: TeamFn,
    /// Ranks still running on leased threads (rank 0 runs on the caller and
    /// is not counted).
    remaining: AtomicUsize,
    latch: Latch,
    panics: Mutex<Vec<RankPanic>>,
}

/// One leased thread's mailbox.
struct TeamThread {
    mailbox: Mutex<Option<(Arc<TeamRun>, usize)>>,
    cv: Condvar,
}

fn idle_threads() -> &'static Mutex<Vec<Arc<TeamThread>>> {
    static IDLE: OnceLock<Mutex<Vec<Arc<TeamThread>>>> = OnceLock::new();
    IDLE.get_or_init(|| Mutex::new(Vec::new()))
}

fn team_thread_main(me: Arc<TeamThread>) {
    // Pre-register with the sampling profiler under the team thread's name;
    // rank spans land on this thread, so its stack must be in the registry.
    msf_obs::profile::register_current_thread();
    loop {
        let (run, rank) = {
            let mut mailbox = me.mailbox.lock().expect("team mailbox poisoned");
            loop {
                if let Some(assignment) = mailbox.take() {
                    break assignment;
                }
                mailbox = me.cv.wait(mailbox).expect("team mailbox poisoned");
            }
        };
        let f = run.f;
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (f.0)(rank))) {
            run.panics
                .lock()
                .expect("team panic list poisoned")
                .push((rank, payload));
        }
        if run.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            run.latch.set();
        }
        drop(run);
        idle_threads()
            .lock()
            .expect("team idle list poisoned")
            .push(Arc::clone(&me));
    }
}

fn lease_thread() -> Arc<TeamThread> {
    let wait = crate::telemetry::LEASE_WAIT_NS.timer_start(msf_obs::metrics::enabled());
    TEAM_LEASES.fetch_add(1, Ordering::Relaxed);
    if let Some(thread) = idle_threads()
        .lock()
        .expect("team idle list poisoned")
        .pop()
    {
        crate::telemetry::LEASE_WAIT_NS.timer_record(wait);
        return thread;
    }
    TEAM_SPAWNS.fetch_add(1, Ordering::Relaxed);
    let thread = Arc::new(TeamThread {
        mailbox: Mutex::new(None),
        cv: Condvar::new(),
    });
    let clone = Arc::clone(&thread);
    std::thread::Builder::new()
        .name("msf-team".to_string())
        .spawn(move || team_thread_main(clone))
        .expect("failed to spawn team thread");
    crate::telemetry::LEASE_WAIT_NS.timer_record(wait);
    thread
}

fn assign(thread: &TeamThread, run: Arc<TeamRun>, rank: usize) {
    let mut mailbox = thread.mailbox.lock().expect("team mailbox poisoned");
    debug_assert!(mailbox.is_none(), "leased team thread already assigned");
    *mailbox = Some((run, rank));
    thread.cv.notify_one();
}

/// Run `f(rank)` for every `rank in 0..p`, rank 0 inline on the caller and
/// ranks `1..p` on leased team threads, returning once all ranks finish.
///
/// # Panic propagation
/// If any rank panics, the driver still waits for every other rank to
/// finish (they typically die quickly on a poisoned barrier), then rethrows
/// the **lowest-ranked non-[`BarrierPoisoned`]** payload — the original
/// casualty, not a secondary barrier abort. If every payload is
/// `BarrierPoisoned` (possible only if the caller poisoned the barrier
/// itself), the lowest-ranked one is rethrown.
pub fn run_team(p: usize, f: &(dyn Fn(usize) + Sync)) {
    if p <= 1 {
        f(0);
        return;
    }
    // SAFETY: lifetime erasure only; the latch-join below outlives every
    // dereference of the erased borrow.
    let erased: &'static (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(f) };
    let run = Arc::new(TeamRun {
        f: TeamFn(erased),
        remaining: AtomicUsize::new(p - 1),
        latch: Latch::new(),
        panics: Mutex::new(Vec::new()),
    });
    for rank in 1..p {
        assign(&lease_thread(), Arc::clone(&run), rank);
    }
    let rank0 = catch_unwind(AssertUnwindSafe(|| f(0)));
    // Always settle ranks 1..p before unwinding: they borrow `f` and
    // whatever the closure captures from this frame.
    run.latch.wait_parked();
    let mut panics = std::mem::take(&mut *run.panics.lock().expect("team panic list poisoned"));
    if let Err(payload) = rank0 {
        panics.push((0, payload));
    }
    if panics.is_empty() {
        return;
    }
    panics.sort_by_key(|(rank, _)| *rank);
    let original = panics
        .iter()
        .position(|(_, payload)| !payload.is::<crate::barrier::BarrierPoisoned>())
        .unwrap_or(0);
    let (_, payload) = panics.swap_remove(original);
    std::panic::resume_unwind(payload)
}

/// [`run_team`] with per-rank results: returns `results[rank] = f(rank)` in
/// rank order. Panics propagate per the `run_team` contract; on panic the
/// partial results are dropped correctly.
pub fn run_team_collect<R, F>(p: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let p = p.max(1);
    let mut results: Vec<Option<R>> = (0..p).map(|_| None).collect();
    {
        let slots = ResultSlots {
            ptr: results.as_mut_ptr(),
        };
        run_team(p, &move |rank| {
            let value = f(rank);
            // SAFETY: each rank writes only its own disjoint slot, and the
            // Vec outlives run_team's latch-join.
            unsafe { slots.write(rank, value) };
        });
    }
    results
        .into_iter()
        .map(|r| r.expect("team rank completed without a result"))
        .collect()
}

/// Raw pointer wrapper so the rank closure (which must be Sync) can carry
/// the result-slot base pointer.
#[derive(Clone, Copy)]
struct ResultSlots<R> {
    ptr: *mut Option<R>,
}

impl<R> ResultSlots<R> {
    /// # Safety
    /// `rank` must be this caller's exclusive in-bounds slot, and the
    /// owning `Vec` must outlive the write.
    unsafe fn write(&self, rank: usize, value: R) {
        // SAFETY: forwarded contract.
        unsafe { *self.ptr.add(rank) = Some(value) }
    }
}

// SAFETY: ranks write disjoint indices; the owning Vec outlives the team.
unsafe impl<R: Send> Send for ResultSlots<R> {}
unsafe impl<R: Send> Sync for ResultSlots<R> {}
