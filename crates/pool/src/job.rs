//! Type-erased job references and stack-allocated fork-join jobs.
//!
//! A [`JobRef`] is the unit the deques and the injector move around: a thin
//! `(data, exec)` pair pointing at a job object that lives on the stack of
//! the thread that created it. The creating thread never returns past the
//! job's lifetime: it either pops the job back and runs it inline, or blocks
//! on the job's latch until the thief that stole it has finished executing.

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::latch::Latch;

/// Erased pointer to an executable job. The pointee must outlive every use,
/// which the fork-join protocol guarantees by latch-joining before return.
#[derive(Clone, Copy)]
pub(crate) struct JobRef {
    data: *const (),
    exec: unsafe fn(*const ()),
}

// SAFETY: a JobRef is only ever executed once, and the job object it points
// at is Sync-compatible by construction (all mutation goes through
// UnsafeCells that the execute-once discipline keeps exclusive).
unsafe impl Send for JobRef {}

impl JobRef {
    pub(crate) fn new(data: *const (), exec: unsafe fn(*const ())) -> JobRef {
        JobRef { data, exec }
    }

    /// The erased data pointer, used as the job's identity.
    pub(crate) fn id(&self) -> usize {
        self.data as usize
    }

    /// Reassemble from the two words a deque slot stores.
    ///
    /// # Safety
    /// The words must have been produced by [`JobRef::into_raw`] of a live,
    /// not-yet-executed job.
    pub(crate) unsafe fn from_raw(data: usize, exec: usize) -> JobRef {
        JobRef {
            data: data as *const (),
            // SAFETY: `exec` was a fn pointer cast to usize by into_raw.
            exec: unsafe { std::mem::transmute::<usize, unsafe fn(*const ())>(exec) },
        }
    }

    /// Decompose into two plain words for a deque slot.
    pub(crate) fn into_raw(self) -> (usize, usize) {
        (self.data as usize, self.exec as usize)
    }

    /// Run the job.
    ///
    /// # Safety
    /// Must be called at most once, while the job object is still alive.
    pub(crate) unsafe fn execute(self) {
        // SAFETY: forwarded contract.
        unsafe { (self.exec)(self.data) }
    }
}

/// A fork-join job allocated on the forking thread's stack: the closure, a
/// slot for its (caught) result, and the latch the forker joins on.
pub(crate) struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    latch: Latch,
}

// SAFETY: the fork-join protocol makes all UnsafeCell accesses exclusive:
// the executing thread (forker or thief, never both — deque claims are
// linearizable) writes func/result, and the forker reads the result only
// after the latch's release/acquire edge.
unsafe impl<F: Send, R: Send> Sync for StackJob<F, R> {}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(f: F) -> StackJob<F, R> {
        StackJob {
            func: UnsafeCell::new(Some(f)),
            result: UnsafeCell::new(None),
            latch: Latch::new(),
        }
    }

    pub(crate) fn latch(&self) -> &Latch {
        &self.latch
    }

    pub(crate) fn as_job_ref(&self) -> JobRef {
        JobRef::new(self as *const Self as *const (), Self::execute_erased)
    }

    /// Entry point for a thief: run the closure, park the caught result, and
    /// release the latch.
    ///
    /// # Safety
    /// `ptr` must point at a live `StackJob` whose closure has not been
    /// taken, and no other thread may be executing it.
    unsafe fn execute_erased(ptr: *const ()) {
        // SAFETY: contract above; the deque hands out each JobRef once.
        let this = unsafe { &*(ptr as *const Self) };
        // SAFETY: exclusive access per the execute-once discipline.
        let func = unsafe { &mut *this.func.get() }
            .take()
            .expect("fork-join job executed twice");
        let result = catch_unwind(AssertUnwindSafe(func));
        // SAFETY: exclusive access; the forker reads only after latch.set().
        unsafe { *this.result.get() = Some(result) };
        this.latch.set();
    }

    /// Run the closure inline on the forking thread (after popping the job
    /// back unstolen). Panics propagate directly.
    pub(crate) fn run_inline(&self) -> R {
        // SAFETY: the job was popped back, so no thief holds a reference.
        let func = unsafe { &mut *self.func.get() }
            .take()
            .expect("fork-join job executed twice");
        func()
    }

    /// Take the result deposited by a thief. Call only after the latch is
    /// set (that edge makes the write visible).
    pub(crate) fn take_result(&self) -> std::thread::Result<R> {
        debug_assert!(self.latch.probe(), "result taken before latch was set");
        // SAFETY: the thief finished (latch release/acquire) and dropped its
        // reference; the forker is the only accessor now.
        unsafe { &mut *self.result.get() }
            .take()
            .expect("stolen job completed without a result")
    }
}
