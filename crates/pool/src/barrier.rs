//! Reusable sense-reversing barrier for SPMD teams, with panic poisoning.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Panic payload thrown out of [`SenseBarrier::wait`] after the barrier has
/// been poisoned by a sibling rank's panic. Team drivers treat it as a
/// secondary casualty: when choosing which payload to propagate to the
/// caller they prefer the original panic over this sentinel.
#[derive(Debug)]
pub struct BarrierPoisoned;

/// A reusable barrier for a fixed team of `p` participants.
///
/// Sense reversal is encoded as a monotonically increasing generation
/// counter: an arriver snapshots the generation, increments the arrival
/// count, and (unless it is the last arriver, which resets the count and
/// bumps the generation) waits for the generation to move. Waiting spins
/// briefly, yields, then falls back to a condvar — the condvar path matters
/// on hosts with fewer cores than ranks, where pure spinning would livelock
/// the rank that needs the CPU.
///
/// Unlike `std::sync::Barrier`, this one can be **poisoned**: when a rank
/// panics mid-phase it calls [`SenseBarrier::poison`], which wakes every
/// current and future waiter by making `wait` panic with [`BarrierPoisoned`]
/// instead of deadlocking on a rank that will never arrive.
pub struct SenseBarrier {
    participants: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
    poisoned: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

impl SenseBarrier {
    /// A barrier for `p` participants (`p = 0` is clamped to 1).
    pub fn new(p: usize) -> SenseBarrier {
        SenseBarrier {
            participants: p.max(1),
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Number of participants this barrier synchronizes.
    pub fn participants(&self) -> usize {
        self.participants
    }

    /// True once a rank has poisoned the barrier.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    #[cold]
    fn panic_poisoned(&self) -> ! {
        std::panic::panic_any(BarrierPoisoned)
    }

    /// Block until all `p` participants have called `wait` for the current
    /// phase. Panics with [`BarrierPoisoned`] if the barrier is or becomes
    /// poisoned.
    pub fn wait(&self) {
        if self.is_poisoned() {
            self.panic_poisoned();
        }
        if self.participants == 1 {
            return;
        }
        let generation = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.participants {
            // Last arriver: open the next phase. Reset the count before
            // publishing the new generation so early next-phase arrivers
            // start from zero.
            self.count.store(0, Ordering::Release);
            self.generation
                .store(generation.wrapping_add(1), Ordering::Release);
            let _guard = self.lock.lock().expect("barrier mutex poisoned");
            self.cv.notify_all();
            return;
        }
        let mut spins = 0u32;
        loop {
            if self.generation.load(Ordering::Acquire) != generation {
                return;
            }
            if self.is_poisoned() {
                self.panic_poisoned();
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else if spins < 128 {
                std::thread::yield_now();
            } else {
                let guard = self.lock.lock().expect("barrier mutex poisoned");
                if self.generation.load(Ordering::Acquire) != generation {
                    return;
                }
                if self.is_poisoned() {
                    drop(guard);
                    self.panic_poisoned();
                }
                // Timed wait: a notify sent between our generation check and
                // the wait would otherwise be lost for good.
                let _ = self
                    .cv
                    .wait_timeout(guard, Duration::from_millis(1))
                    .expect("barrier mutex poisoned");
            }
        }
    }

    /// Poison the barrier: every rank currently or subsequently blocked in
    /// [`SenseBarrier::wait`] panics with [`BarrierPoisoned`] instead of
    /// waiting forever for a rank that died. Called by team drivers from the
    /// unwind path of a rank closure.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        let _guard = self.lock.lock().expect("barrier mutex poisoned");
        self.cv.notify_all();
    }
}
