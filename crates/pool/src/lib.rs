//! `msf_pool`: the persistent work-stealing execution backend under the
//! workspace's `rayon` facade and `SmpTeam`.
//!
//! The pool is **lazily initialized** (first `join`/width query builds it),
//! **process-global** (one registry, leaked for `'static`), and
//! **persistent** (workers live for the process; SPMD leases reuse cached
//! dedicated threads). Two kinds of threads exist:
//!
//! - **Stealing workers** ([`registry`]): run fork-join jobs from per-worker
//!   chase-lev-style deques (packed-CAS cursors, the `steal.rs` idiom) plus
//!   an injector for external submissions. These power `rayon::join` and
//!   every `par_iter` chain.
//! - **Team threads** ([`team`]): dedicated threads leased per
//!   `SmpTeam::run` to host barrier-synchronized SPMD ranks, which must not
//!   share stealing workers (blocking a worker on a barrier under the deque
//!   stack discipline can deadlock when ranks outnumber cores).
//!
//! # Sequential escape hatch
//! Three independent switches force the exact pre-pool sequential behaviour
//! (same thread, same order, no pool threads touched):
//!
//! - `MSF_SEQUENTIAL=1` (or `true`/`yes`) in the environment,
//! - the `sequential` cargo feature,
//! - [`with_sequential`], a scoped, thread-local override for in-process
//!   A/B comparisons (used by the thread-count matrix tests).
//!
//! # Width
//! `MSF_POOL_THREADS` pins the worker count; otherwise the host's available
//! parallelism is used. The width is frozen at first pool touch.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod barrier;
mod deque;
mod job;
mod latch;
mod registry;
pub mod slots;
pub mod team;
mod telemetry;

use std::cell::Cell;
use std::sync::OnceLock;

pub use barrier::{BarrierPoisoned, SenseBarrier};
pub use slots::RankSlots;
pub use team::{run_team, run_team_collect};
pub use telemetry::{publish_metrics, PoolStats, PoolWorkerStats};

/// A monotone snapshot of the pool's lifetime telemetry counters (steals,
/// injector traffic, parks/wakes, deque overflows, team leases). Never
/// starts the pool: before first use all counters are zero and `width` is 0.
pub fn pool_stats() -> PoolStats {
    registry::stats_snapshot()
}

/// Zero the pool's lifetime telemetry counters (steals, injector traffic,
/// parks/wakes, overflows, team leases/spawns), so a test can assert on the
/// deltas of *its own* work rather than on whatever ran earlier in the
/// process. **Test isolation only**: counters are normally monotone for the
/// process lifetime, and racing workers may be mid-increment — call this
/// only at quiescence (no in-flight pool work).
pub fn reset_telemetry_for_test() {
    registry::reset_telemetry_for_test();
    telemetry::reset_published_for_test();
}

/// True when the process-wide sequential escape hatch is on: either the
/// `sequential` cargo feature or `MSF_SEQUENTIAL=1|true|yes` in the
/// environment (checked once, at first use).
pub fn sequential_env() -> bool {
    if cfg!(feature = "sequential") {
        return true;
    }
    static FROM_ENV: OnceLock<bool> = OnceLock::new();
    *FROM_ENV.get_or_init(|| {
        std::env::var("MSF_SEQUENTIAL")
            .map(|v| {
                let v = v.trim().to_ascii_lowercase();
                !v.is_empty() && v != "0" && v != "false" && v != "no"
            })
            .unwrap_or(false)
    })
}

thread_local! {
    static SEQ_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// True when the calling thread must execute sequentially: the process-wide
/// escape hatch is on, or the call is inside [`with_sequential`].
#[inline]
pub fn sequential_here() -> bool {
    SEQ_DEPTH.with(Cell::get) > 0 || sequential_env()
}

/// Run `f` with the sequential escape hatch forced on for the calling
/// thread (nesting-safe). Everything under `f` that consults the pool —
/// `join`, the rayon facade, `SmpTeam` — runs inline on this thread in
/// deterministic sequential order, exactly like `MSF_SEQUENTIAL=1`.
pub fn with_sequential<R>(f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            SEQ_DEPTH.with(|d| d.set(d.get() - 1));
        }
    }
    SEQ_DEPTH.with(|d| d.set(d.get() + 1));
    let _guard = Guard;
    f()
}

static WIDTH: OnceLock<usize> = OnceLock::new();

/// The pool width: `MSF_POOL_THREADS` if set (clamped to 1..=1024), else
/// the host's available parallelism. Frozen at first call.
pub fn width() -> usize {
    *WIDTH.get_or_init(|| {
        if let Ok(v) = std::env::var("MSF_POOL_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.clamp(1, 1024);
            }
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Pin the pool width before the pool's first use, for tests that need a
/// specific width regardless of the host (e.g. forcing real concurrency on
/// a 1-core CI runner). No-op if the width is already frozen; returns the
/// effective width.
#[doc(hidden)]
pub fn force_width(n: usize) -> usize {
    let _ = WIDTH.set(n.clamp(1, 1024));
    width()
}

/// Potentially-parallel `join`: runs `a` on the calling thread while `b` is
/// offered to the pool, returning both results.
///
/// Runs strictly sequentially as `(a(), b())` when [`sequential_here`] is
/// true or the pool width is 1 (the pool is then never even started).
///
/// # Panics
/// If both closures panic, `a`'s payload is propagated (matching the
/// sequential order of observation); either way the other closure is fully
/// settled before unwinding.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if sequential_here() || width() == 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    registry::join(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Tests share a process: pin the width before any pool touch so every
    /// test sees real concurrency even on a 1-core host.
    fn pool_width_4() {
        force_width(4);
    }

    #[test]
    fn join_returns_both_and_nests() {
        pool_width_4();
        fn sum(range: std::ops::Range<u64>) -> u64 {
            if range.end - range.start <= 64 {
                return range.sum();
            }
            let mid = range.start + (range.end - range.start) / 2;
            let (a, b) = join(|| sum(range.start..mid), || sum(mid..range.end));
            a + b
        }
        assert_eq!(sum(0..10_000), (0..10_000u64).sum());
    }

    #[test]
    fn join_runs_closures_exactly_once() {
        pool_width_4();
        for _ in 0..200 {
            let calls = Arc::new(AtomicUsize::new(0));
            let (ca, cb) = (Arc::clone(&calls), Arc::clone(&calls));
            let (ra, rb) = join(
                move || ca.fetch_add(1, Ordering::SeqCst),
                move || cb.fetch_add(1, Ordering::SeqCst),
            );
            assert_eq!(calls.load(Ordering::SeqCst), 2);
            // fetch_add returns the prior count: one side saw 0, the other 1.
            assert_eq!(ra + rb, 1);
        }
    }

    #[test]
    fn join_propagates_panic_from_either_side() {
        pool_width_4();
        let caught = std::panic::catch_unwind(|| join(|| -> u32 { panic!("side a") }, || 7u32));
        assert!(caught.is_err());
        let caught = std::panic::catch_unwind(|| join(|| 7u32, || -> u32 { panic!("side b") }));
        assert!(caught.is_err());
    }

    #[test]
    fn with_sequential_is_scoped_and_nested() {
        assert_eq!(SEQ_DEPTH.with(Cell::get), 0);
        with_sequential(|| {
            assert!(sequential_here());
            with_sequential(|| assert!(sequential_here()));
            assert!(sequential_here());
        });
        assert_eq!(SEQ_DEPTH.with(Cell::get), 0);
    }

    #[test]
    fn sequential_join_preserves_evaluation_order() {
        pool_width_4();
        with_sequential(|| {
            let order = AtomicUsize::new(0);
            let (a, b) = join(
                || {
                    assert_eq!(order.swap(1, Ordering::SeqCst), 0);
                    1
                },
                || {
                    assert_eq!(order.swap(2, Ordering::SeqCst), 1);
                    2
                },
            );
            assert_eq!((a, b), (1, 2));
        });
    }

    #[test]
    fn run_team_collect_returns_rank_order() {
        pool_width_4();
        for p in [1usize, 2, 3, 7, 8] {
            let out = run_team_collect(p, |rank| rank * 10);
            assert_eq!(out, (0..p).map(|r| r * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_team_ranks_run_concurrently_across_barrier() {
        pool_width_4();
        let p = 4;
        let barrier = SenseBarrier::new(p);
        let phase1 = AtomicUsize::new(0);
        let phase2 = AtomicUsize::new(0);
        run_team(p, &|_rank| {
            phase1.fetch_add(1, Ordering::SeqCst);
            barrier.wait();
            // Every rank must have finished phase 1 before any enters 2.
            assert_eq!(phase1.load(Ordering::SeqCst), p);
            phase2.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(phase2.load(Ordering::SeqCst), p);
    }

    #[test]
    fn run_team_propagates_original_panic_over_barrier_poison() {
        pool_width_4();
        let p = 3;
        let barrier = SenseBarrier::new(p);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_team(p, &|rank| {
                if rank == 1 {
                    barrier.poison();
                    panic!("rank 1 died");
                }
                barrier.wait(); // poisoned → BarrierPoisoned panic
            });
        }));
        let payload = caught.expect_err("team panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied();
        assert_eq!(msg, Some("rank 1 died"), "original panic must win");
        assert!(barrier.is_poisoned());
    }

    #[test]
    fn sense_barrier_is_reusable_across_phases() {
        pool_width_4();
        let p = 4;
        let barrier = SenseBarrier::new(p);
        let counter = AtomicUsize::new(0);
        run_team(p, &|_rank| {
            for phase in 0..50usize {
                counter.fetch_add(1, Ordering::SeqCst);
                barrier.wait();
                // All p increments of this phase (and no later ones — the
                // second wait below holds everyone) are in.
                assert_eq!(counter.load(Ordering::SeqCst), (phase + 1) * p);
                barrier.wait();
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 50 * p);
    }

    #[test]
    fn rank_slots_publish_and_fold_in_rank_order() {
        let slots: RankSlots<u64> = RankSlots::new(5);
        slots.put(3, 30);
        slots.put(1, 10);
        assert_eq!(slots.get(1), 10);
        assert_eq!(slots.get(3), 30);
        let folded = slots.fold(Vec::new(), |mut acc, v| {
            acc.push(v);
            acc
        });
        assert_eq!(folded, vec![10, 30]);
        slots.reset();
        assert_eq!(slots.fold(0u64, |a, v| a + v), 0);
    }

    /// Loom-style interleaving exercise: writer ranks publish multi-word
    /// values while rank 0 races `fold` against them, for many rounds (a
    /// scheduler fuzz — real loom is unavailable offline). Every value the
    /// reader observes must be internally consistent, i.e. publication is
    /// all-or-nothing, never torn.
    #[test]
    fn rank_slots_interleaved_publication_is_never_torn() {
        pool_width_4();
        let p = 4;
        for round in 0..200u64 {
            let slots: RankSlots<[u64; 3]> = RankSlots::new(p);
            let barrier = SenseBarrier::new(p);
            run_team(p, &|rank| {
                let base = round * 1_000 + rank as u64;
                barrier.wait(); // start gun
                if rank == 0 {
                    // Busy-poll until all writers are visible, checking
                    // consistency of everything seen along the way.
                    loop {
                        let seen = slots.fold(0usize, |acc, v| {
                            assert_eq!(v[0] + 1, v[1], "torn publication");
                            assert_eq!(v[0] + 2, v[2], "torn publication");
                            acc + 1
                        });
                        if seen == p - 1 {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                } else {
                    slots.put(rank, [base, base + 1, base + 2]);
                }
            });
            for writer in 1..p {
                assert_eq!(slots.get(writer)[0], round * 1_000 + writer as u64);
            }
        }
    }
}
