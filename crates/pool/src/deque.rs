//! Bounded work-stealing deque with both cursors packed into one `AtomicU64`.
//!
//! This reuses the packed-CAS idiom proven in `msf_primitives::steal`: the
//! `(head, tail)` cursor pair lives in a single 64-bit word (`head` in the
//! high 32 bits, `tail` in the low 32), so every ownership transfer is one
//! compare-exchange and there is no ABA window — `head` only ever grows, and
//! a thief's CAS embeds the exact `(head, tail)` snapshot it read.
//!
//! Protocol (chase-lev shape, packed-cursor implementation):
//! - the **owner** pushes and pops at `tail` (LIFO, keeps recursive splits
//!   cache-hot), **except** that popping the *last* element claims it by
//!   advancing `head` instead (racing thieves on the very same `(h, t)` →
//!   `(h+1, t)` transition, as in classic Chase-Lev),
//! - **thieves** steal at `head` (FIFO, takes the oldest and therefore
//!   biggest pending split first).
//!
//! The last-element rule is what keeps `head` strictly monotone and closes
//! the ABA hole a tail-decrementing pop would open: if popping the last
//! element merely moved `tail` back, an owner pop+push pair would restore
//! the exact cursor word a thief had snapshotted while recycling the same
//! slot, and the thief's CAS would succeed with stale (or torn) job words —
//! double-executing a consumed job and silently dropping the new one.
//! Because the only way the deque empties is a `head` bump, and `tail` never
//! descends to `head` by pops alone, a cursor word observed by a thief can
//! never recur.
//!
//! A slot stores a [`JobRef`] as two plain `AtomicUsize` words written with
//! `Relaxed` ordering; publication and consistency come from the packed CAS:
//!
//! - While `head == h`, the slot at `h & MASK` is never rewritten: pushes
//!   write at `tail & MASK` with `h < tail < h + CAPACITY` (a push at
//!   `tail == h` would mean the deque was empty, and emptying requires a
//!   `head` bump), and pops below size 2 go through the `head`-advance path.
//! - A thief reads the slot **before** its CAS and only keeps the value if
//!   the CAS succeeds with the same `head` it read under. If the slot could
//!   have been rewritten meanwhile, `head` must have advanced and the CAS
//!   fails. The successful CAS is a release-acquire RMW, so the slot reads
//!   cannot sink below it.
//!
//! Capacity is fixed; a full deque rejects the push and the caller runs the
//! job inline (a correct, merely less parallel, fallback).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::job::JobRef;

/// Pending-job capacity per worker. Recursive halving of an n-element range
/// enqueues O(log n) jobs per spine, so 1024 is far beyond realistic depth;
/// overflow degrades to inline execution, never to an error.
const CAPACITY: usize = 1024;
const MASK: u32 = (CAPACITY - 1) as u32;

#[inline]
fn pack(head: u32, tail: u32) -> u64 {
    (u64::from(head) << 32) | u64::from(tail)
}

#[inline]
fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

struct Slot {
    data: AtomicUsize,
    exec: AtomicUsize,
}

pub(crate) struct Deque {
    /// `(head, tail)` packed as described in the module docs. Both cursors
    /// increase monotonically and wrap mod 2^32; `tail - head` (wrapping) is
    /// the current size.
    cursors: AtomicU64,
    slots: Box<[Slot]>,
}

impl Deque {
    pub(crate) fn new() -> Deque {
        let slots = (0..CAPACITY)
            .map(|_| Slot {
                data: AtomicUsize::new(0),
                exec: AtomicUsize::new(0),
            })
            .collect();
        Deque {
            cursors: AtomicU64::new(0),
            slots,
        }
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        let (head, tail) = unpack(self.cursors.load(Ordering::Acquire));
        tail.wrapping_sub(head) == 0
    }

    /// Owner-only: push a job at the tail. Returns `false` when full (the
    /// caller should run the job inline).
    pub(crate) fn push(&self, job: JobRef) -> bool {
        let mut cur = self.cursors.load(Ordering::Acquire);
        let (mut head, tail) = unpack(cur);
        if tail.wrapping_sub(head) as usize >= CAPACITY {
            return false;
        }
        // Only this thread moves `tail`, so the slot index is fixed and can
        // be written before the publishing CAS (Relaxed is enough: the CAS
        // below is a release operation and orders these stores before it).
        let (data, exec) = job.into_raw();
        let slot = &self.slots[(tail & MASK) as usize];
        slot.data.store(data, Ordering::Relaxed);
        slot.exec.store(exec, Ordering::Relaxed);
        loop {
            match self.cursors.compare_exchange_weak(
                cur,
                pack(head, tail.wrapping_add(1)),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(actual) => {
                    // Only thieves race with the owner, and they only move
                    // `head` forward — the deque can have gotten emptier,
                    // never fuller, so the capacity check holds.
                    cur = actual;
                    let (new_head, new_tail) = unpack(actual);
                    debug_assert_eq!(new_tail, tail, "tail moved by a non-owner");
                    head = new_head;
                }
            }
        }
    }

    /// Owner-only: pop the most recently pushed job (LIFO end).
    pub(crate) fn pop(&self) -> Option<JobRef> {
        let mut cur = self.cursors.load(Ordering::Acquire);
        loop {
            let (head, tail) = unpack(cur);
            let size = tail.wrapping_sub(head);
            if size == 0 {
                return None;
            }
            // Popping the last element must advance `head`, not retreat
            // `tail`: it races thieves on the identical transition, and it
            // keeps `head` monotone so no thief can ever see a cursor word
            // recur (the ABA argument in the module docs).
            let new_cur = if size == 1 {
                pack(head.wrapping_add(1), tail)
            } else {
                pack(head, tail.wrapping_sub(1))
            };
            match self.cursors.compare_exchange_weak(
                cur,
                new_cur,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    // The claim succeeded, so the slot is exclusively ours;
                    // this thread also wrote it (owner pushes), so Relaxed
                    // reads see the values by program order. Both branches
                    // claim the slot at `tail - 1` (== `head` when size 1).
                    let slot = &self.slots[(tail.wrapping_sub(1) & MASK) as usize];
                    let data = slot.data.load(Ordering::Relaxed);
                    let exec = slot.exec.load(Ordering::Relaxed);
                    // SAFETY: the words were stored by `push` from a live
                    // JobRef, and the CAS transferred sole ownership to us.
                    return Some(unsafe { JobRef::from_raw(data, exec) });
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Thief: steal the oldest pending job (FIFO end). Callable from any
    /// thread.
    pub(crate) fn steal(&self) -> Option<JobRef> {
        let mut cur = self.cursors.load(Ordering::Acquire);
        loop {
            let (head, tail) = unpack(cur);
            if tail.wrapping_sub(head) == 0 {
                return None;
            }
            // Read the slot BEFORE attempting the claim; see module docs for
            // why a successful CAS proves these reads were not torn.
            let slot = &self.slots[(head & MASK) as usize];
            let data = slot.data.load(Ordering::Relaxed);
            let exec = slot.exec.load(Ordering::Relaxed);
            match self.cursors.compare_exchange_weak(
                cur,
                pack(head.wrapping_add(1), tail),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                // SAFETY: CAS success with the snapshot we read under means
                // the slot still held this job when we claimed it.
                Ok(_) => return Some(unsafe { JobRef::from_raw(data, exec) }),
                Err(actual) => cur = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A job whose data pointer is a counter to bump; executing it proves
    /// the deque handed it out.
    fn counter_job(counter: &AtomicUsize) -> JobRef {
        unsafe fn bump(ptr: *const ()) {
            // SAFETY: `ptr` came from a live &AtomicUsize below.
            let counter = unsafe { &*(ptr as *const AtomicUsize) };
            counter.fetch_add(1, Ordering::SeqCst);
        }
        JobRef::new(counter as *const AtomicUsize as *const (), bump)
    }

    #[test]
    fn owner_is_lifo_thieves_are_fifo() {
        let deque = Deque::new();
        let counters: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        for counter in &counters {
            assert!(deque.push(counter_job(counter)));
        }
        // Thief takes the oldest (index 0), owner the newest (index 3).
        let stolen = deque.steal().expect("non-empty");
        assert_eq!(stolen.id(), counters[0].as_ptr() as usize);
        let popped = deque.pop().expect("non-empty");
        assert_eq!(popped.id(), counters[3].as_ptr() as usize);
        // Remaining: 1, 2.
        assert_eq!(
            deque.steal().expect("non-empty").id(),
            counters[1].as_ptr() as usize
        );
        assert_eq!(
            deque.pop().expect("non-empty").id(),
            counters[2].as_ptr() as usize
        );
        assert!(deque.pop().is_none());
        assert!(deque.steal().is_none());
        assert!(deque.is_empty());
    }

    #[test]
    fn full_deque_rejects_push() {
        let deque = Deque::new();
        let counter = AtomicUsize::new(0);
        for _ in 0..CAPACITY {
            assert!(deque.push(counter_job(&counter)));
        }
        assert!(!deque.push(counter_job(&counter)));
        // Draining one slot re-admits pushes.
        assert!(deque.steal().is_some());
        assert!(deque.push(counter_job(&counter)));
    }

    /// Exactly-once delivery under contention: an owner pushing and popping
    /// races several thieves; every pushed job must be claimed by exactly
    /// one side, none lost, none duplicated.
    #[test]
    fn contended_claims_are_exactly_once() {
        const JOBS: usize = 20_000;
        const THIEVES: usize = 3;
        let deque = Deque::new();
        let executed = AtomicUsize::new(0);
        let counter = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..THIEVES {
                scope.spawn(|| {
                    while done.load(Ordering::SeqCst) == 0 || !deque.is_empty() {
                        if let Some(job) = deque.steal() {
                            // SAFETY: claims are exclusive; job data is the
                            // live counter above.
                            unsafe { job.execute() };
                            executed.fetch_add(1, Ordering::SeqCst);
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                });
            }
            let mut pushed = 0usize;
            while pushed < JOBS {
                if deque.push(counter_job(&counter)) {
                    pushed += 1;
                }
                // Interleave owner pops to exercise the tail CAS race.
                if pushed.is_multiple_of(7) {
                    if let Some(job) = deque.pop() {
                        // SAFETY: as above.
                        unsafe { job.execute() };
                        executed.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
            done.store(1, Ordering::SeqCst);
        });
        // Drain anything the thieves left behind after `done`.
        while let Some(job) = deque.pop() {
            // SAFETY: as above.
            unsafe { job.execute() };
            executed.fetch_add(1, Ordering::SeqCst);
        }
        assert_eq!(counter.load(Ordering::SeqCst), JOBS, "every job ran once");
        assert_eq!(executed.load(Ordering::SeqCst), JOBS, "claims were unique");
    }

    /// Regression stress for the last-element ABA hole: an owner that keeps
    /// the deque at size 0–2 maximizes pop-last + immediate-push pairs. With
    /// a tail-decrementing pop, such a pair restores the exact cursor word a
    /// thief snapshotted while recycling the slot, so a stale thief CAS
    /// could double-claim a consumed job and drop the fresh one; the
    /// `head`-advancing pop makes every such CAS fail. Exactly-once
    /// accounting catches both the duplicate and the loss.
    #[test]
    fn last_element_pop_push_churn_is_exactly_once() {
        const ROUNDS: usize = 50_000;
        const THIEVES: usize = 3;
        let deque = Deque::new();
        let executed = AtomicUsize::new(0);
        let counter = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let mut pushed = 0usize;
        std::thread::scope(|scope| {
            for _ in 0..THIEVES {
                scope.spawn(|| {
                    while done.load(Ordering::SeqCst) == 0 || !deque.is_empty() {
                        if let Some(job) = deque.steal() {
                            // SAFETY: claims are exclusive; job data is the
                            // live counter above.
                            unsafe { job.execute() };
                            executed.fetch_add(1, Ordering::SeqCst);
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                });
            }
            for round in 0..ROUNDS {
                // Mostly singletons (pop races thieves on the last element);
                // occasionally two, so both pop paths stay exercised.
                let burst = 1 + usize::from(round % 13 == 0);
                for _ in 0..burst {
                    if deque.push(counter_job(&counter)) {
                        pushed += 1;
                    }
                }
                while let Some(job) = deque.pop() {
                    // SAFETY: as above.
                    unsafe { job.execute() };
                    executed.fetch_add(1, Ordering::SeqCst);
                }
            }
            done.store(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), pushed, "every job ran once");
        assert_eq!(
            executed.load(Ordering::SeqCst),
            pushed,
            "claims were unique"
        );
    }
}
