//! The process-global worker registry: persistent stealing workers, the
//! external-submission injector, the sleep/wake protocol, and `join`.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Duration;

use crate::deque::Deque;
use crate::job::{JobRef, StackJob};
use crate::latch::Latch;
use crate::telemetry::{PoolStats, RegistryCounters};

/// One stealing worker's view of the pool.
pub(crate) struct Registry {
    deques: Box<[Deque]>,
    /// FIFO queue for jobs submitted by threads that are not pool workers
    /// (and for fork-join `b` halves forked from such threads).
    injector: Mutex<VecDeque<JobRef>>,
    /// Count of workers inside the sleep protocol; publishers skip the
    /// condvar entirely while it is zero (the common case under load).
    sleepers: AtomicUsize,
    sleep_lock: Mutex<()>,
    wake: Condvar,
    /// Lifetime telemetry; see [`crate::telemetry`]. Counters live on rare
    /// paths only, so they are always on.
    counters: RegistryCounters,
}

static REGISTRY: OnceLock<&'static Registry> = OnceLock::new();

thread_local! {
    /// This thread's worker index, or `usize::MAX` for non-pool threads.
    static WORKER_INDEX: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The calling thread's worker index, if it is a pool worker.
#[inline]
pub(crate) fn current_worker() -> Option<usize> {
    let idx = WORKER_INDEX.with(Cell::get);
    (idx != usize::MAX).then_some(idx)
}

/// Lazily create the global registry and spawn its workers. The width is
/// fixed at first touch (see [`crate::width`]).
pub(crate) fn global() -> &'static Registry {
    REGISTRY.get_or_init(|| {
        let width = crate::width();
        let deques = (0..width).map(|_| Deque::new()).collect();
        let registry: &'static Registry = Box::leak(Box::new(Registry {
            deques,
            injector: Mutex::new(VecDeque::new()),
            sleepers: AtomicUsize::new(0),
            sleep_lock: Mutex::new(()),
            wake: Condvar::new(),
            counters: RegistryCounters::new(width),
        }));
        for index in 0..width {
            std::thread::Builder::new()
                .name(format!("msf-pool-{index}"))
                .spawn(move || registry.worker_main(index))
                .expect("failed to spawn pool worker");
        }
        registry
    })
}

impl Registry {
    // ---- publication ---------------------------------------------------

    /// Push onto the calling worker's own deque, or run inline on overflow.
    /// Returns `true` if the job was enqueued.
    fn push_local(&self, worker: usize, job: JobRef) -> bool {
        if self.deques[worker].push(job) {
            self.wake_sleepers();
            true
        } else {
            self.counters.overflows.bump();
            false
        }
    }

    /// Submit a job from a non-pool thread.
    fn inject(&self, job: JobRef) {
        self.injector
            .lock()
            .expect("injector mutex poisoned")
            .push_back(job);
        self.counters.injector_pushes.bump();
        self.wake_sleepers();
    }

    /// Remove a not-yet-claimed injected job by identity. Used by external
    /// forkers to take their `b` half back and run it inline.
    fn try_remove_injected(&self, job_id: usize) -> bool {
        let mut queue = self.injector.lock().expect("injector mutex poisoned");
        if let Some(pos) = queue.iter().position(|j| j.id() == job_id) {
            queue.remove(pos);
            true
        } else {
            false
        }
    }

    fn wake_sleepers(&self) {
        // Dekker/store-buffer pattern with the sleep path: we published work
        // (deque CAS / injector unlock — neither SeqCst) and now load
        // `sleepers`; the sleeper increments `sleepers` and then loads the
        // work queues. SeqCst fences on both sides (here and in
        // `worker_main`) make the two pairs totally ordered, so either we
        // observe the sleeper (and notify under the lock) or the sleeper
        // observes our work — a wakeup can no longer fall between.
        std::sync::atomic::fence(Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            // Taking the lock pairs with the sleeper's locked re-check: the
            // sleeper either sees the published work or gets this notify.
            let _guard = self.sleep_lock.lock().expect("sleep mutex poisoned");
            self.wake.notify_all();
            self.counters.wakes.bump();
        }
    }

    // ---- work discovery ------------------------------------------------

    fn has_visible_work(&self) -> bool {
        !self
            .injector
            .lock()
            .expect("injector mutex poisoned")
            .is_empty()
            || self.deques.iter().any(|d| !d.is_empty())
    }

    fn pop_injected(&self) -> Option<JobRef> {
        let job = self
            .injector
            .lock()
            .expect("injector mutex poisoned")
            .pop_front();
        if job.is_some() {
            self.counters.injector_pops.bump();
        }
        job
    }

    /// One full scan: own deque, injector, then every other worker's deque
    /// starting from a rotating offset.
    fn find_work(&self, me: usize, rotor: &mut usize) -> Option<JobRef> {
        if let Some(job) = self.deques[me].pop() {
            return Some(job);
        }
        if let Some(job) = self.pop_injected() {
            return Some(job);
        }
        // Time the steal scan only while metrics are on (the gate is one
        // relaxed load); a hit records how long this worker hunted before
        // finding a victim with work.
        let scan_start =
            crate::telemetry::STEAL_LATENCY_NS.timer_start(msf_obs::metrics::enabled());
        let p = self.deques.len();
        *rotor = rotor.wrapping_add(1);
        for offset in 0..p {
            let victim = (*rotor + offset) % p;
            if victim == me {
                continue;
            }
            if let Some(job) = self.deques[victim].steal() {
                self.counters.workers[me]
                    .steal_hits
                    .fetch_add(1, Ordering::Relaxed);
                crate::telemetry::STEAL_LATENCY_NS.timer_record(scan_start);
                return Some(job);
            }
            self.counters.workers[me]
                .steal_misses
                .fetch_add(1, Ordering::Relaxed);
        }
        None
    }

    // ---- worker loop ---------------------------------------------------

    fn worker_main(&'static self, index: usize) {
        WORKER_INDEX.with(|cell| cell.set(index));
        // Pre-register this worker's span stack with the sampling profiler
        // so profiles carry the pool thread name even if the first profiled
        // span opens mid-run.
        msf_obs::profile::register_current_thread();
        let mut rotor = index;
        loop {
            if let Some(job) = self.find_work(index, &mut rotor) {
                // SAFETY: the deque/injector hand out each JobRef exactly
                // once, and its forker latch-joins before the job object
                // dies.
                unsafe { job.execute() };
                continue;
            }
            // Sleep protocol: register as a sleeper, fence (see
            // `wake_sleepers` for the pairing), re-check under the lock,
            // then wait. The timeout is a pure liveness backstop now, not a
            // correctness crutch for missed wakeups.
            let guard = self.sleep_lock.lock().expect("sleep mutex poisoned");
            self.sleepers.fetch_add(1, Ordering::SeqCst);
            std::sync::atomic::fence(Ordering::SeqCst);
            if !self.has_visible_work() {
                self.counters.workers[index]
                    .parks
                    .fetch_add(1, Ordering::Relaxed);
                let _ = self
                    .wake
                    .wait_timeout(guard, Duration::from_millis(2))
                    .expect("sleep mutex poisoned");
            }
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    // ---- latch waiting -------------------------------------------------

    /// Worker-side latch wait: keep executing other jobs (our own deque
    /// first — the stolen job may have forked children we must drain) until
    /// the latch is set. This is what makes nested `join` deadlock-free.
    fn wait_latch_stealing(&self, me: usize, latch: &Latch) {
        let mut rotor = me;
        let mut idle = 0u32;
        while !latch.probe() {
            if let Some(job) = self.find_work(me, &mut rotor) {
                // SAFETY: as in worker_main.
                unsafe { job.execute() };
                idle = 0;
                continue;
            }
            idle += 1;
            if idle < 32 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    // ---- fork-join -----------------------------------------------------

    /// `join` called from a pool worker: fork `b` onto our own deque, run
    /// `a` inline, then pop `b` back or steal-wait for the thief.
    fn join_worker<A, B, RA, RB>(&self, me: usize, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        let job_b = StackJob::new(b);
        if !self.push_local(me, job_b.as_job_ref()) {
            // Deque full: run both inline, in the documented sequential
            // order — `a` first, so `b` never runs when `a` panics.
            let ra = a();
            let rb = job_b.run_inline();
            return (ra, rb);
        }
        let ra = std::panic::catch_unwind(std::panic::AssertUnwindSafe(a));
        // Settle `b` before propagating any panic from `a`: the job object
        // references this stack frame and must not be left reachable.
        match self.deques[me].pop() {
            Some(job) if job.id() == job_b.as_job_ref().id() => {
                // Popped our own fork back, unstolen: run it inline.
                match ra {
                    Ok(ra) => (ra, job_b.run_inline()),
                    // `a` panicked: sequential `(a(), b())` would never
                    // reach `b`, so drop the unstolen fork and propagate.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            Some(other) => {
                // LIFO discipline means the only way our fork is not on top
                // is that a thief took it; `other` is a different job forked
                // by code `a` ran?? — impossible: `a`'s nested joins settle
                // their own forks before returning. Execute defensively and
                // fall through to waiting.
                // SAFETY: handed out exactly once by the pop above.
                unsafe { other.execute() };
                self.finish_stolen(me, &job_b, ra)
            }
            None => self.finish_stolen(me, &job_b, ra),
        }
    }

    /// Our fork was stolen: steal-wait on its latch, then combine results.
    fn finish_stolen<F, RA, RB>(
        &self,
        me: usize,
        job_b: &StackJob<F, RB>,
        ra: std::thread::Result<RA>,
    ) -> (RA, RB)
    where
        F: FnOnce() -> RB + Send,
        RB: Send,
    {
        self.wait_latch_stealing(me, job_b.latch());
        let rb = job_b.take_result();
        match (ra, rb) {
            (Ok(ra), Ok(rb)) => (ra, rb),
            // `a`'s panic wins when both sides panicked, matching the
            // sequential order of observation.
            (Err(payload), _) => std::panic::resume_unwind(payload),
            (Ok(_), Err(payload)) => std::panic::resume_unwind(payload),
        }
    }

    /// `join` called from outside the pool: inject `b`, run `a` inline, then
    /// claim `b` back from the injector (run inline) or park on its latch.
    fn join_external<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        let job_b = StackJob::new(b);
        let job_ref = job_b.as_job_ref();
        self.inject(job_ref);
        let ra = std::panic::catch_unwind(std::panic::AssertUnwindSafe(a));
        if self.try_remove_injected(job_ref.id()) {
            // No worker claimed it; it is exclusively ours again.
            match ra {
                Ok(ra) => (ra, job_b.run_inline()),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        } else {
            // A worker claimed it; wait for completion before touching the
            // result or letting the stack frame die.
            job_b.latch().wait_parked();
            let rb = job_b.take_result();
            match (ra, rb) {
                (Ok(ra), Ok(rb)) => (ra, rb),
                (Err(payload), _) => std::panic::resume_unwind(payload),
                (Ok(_), Err(payload)) => std::panic::resume_unwind(payload),
            }
        }
    }
}

/// Zero the registry counters and the team lease/spawn statics. Test
/// isolation only; see [`crate::reset_telemetry_for_test`].
pub(crate) fn reset_telemetry_for_test() {
    if let Some(registry) = REGISTRY.get() {
        registry.counters.reset_for_test();
    }
    crate::team::TEAM_LEASES.store(0, Ordering::Relaxed);
    crate::team::TEAM_SPAWNS.store(0, Ordering::Relaxed);
}

/// The current telemetry snapshot; zeros (width 0) when the pool was never
/// started, so the query itself does not force workers into existence.
pub(crate) fn stats_snapshot() -> PoolStats {
    match REGISTRY.get() {
        Some(registry) => registry.counters.snapshot(),
        None => PoolStats {
            team_threads_spawned: crate::team::TEAM_SPAWNS.load(Ordering::Relaxed),
            team_leases: crate::team::TEAM_LEASES.load(Ordering::Relaxed),
            ..PoolStats::default()
        },
    }
}

/// Potentially-parallel `join`: see [`crate::join`] for the public contract.
pub(crate) fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let registry = global();
    match current_worker() {
        Some(me) => registry.join_worker(me, a, b),
        None => registry.join_external(a, b),
    }
}
