//! The wire protocol: hand-rolled length-prefixed binary frames over a
//! stream socket (TCP or Unix). No serde, no HTTP — a frame is a `u32` LE
//! payload length followed by that many bytes, and payloads are flat
//! little-endian field sequences with `u32`-length-prefixed UTF-8 strings.
//!
//! One request frame yields exactly one response frame, in order, per
//! connection; clients may pipeline but the server replies sequentially.
//! Malformed frames (bad opcode, truncated fields, oversized length) are
//! protocol errors: the server answers with [`Response::Error`] when it can
//! still frame a reply, and drops the connection when it cannot.

use std::io::{self, Read, Write};

/// Hard cap on a frame payload, guarding both sides against a hostile or
/// corrupt length prefix (64 MiB — stats dumps and error strings are far
/// smaller; graphs never travel over the wire, only names and paths do).
pub const MAX_FRAME: u32 = 1 << 26;

/// Request the forest be re-certified (cut + cycle proof) before replying,
/// even if the server was not started `--paranoid`.
pub const FLAG_PARANOID: u32 = 1;
/// Skip the contracted-intermediate cache for this request (compute from
/// scratch; the cache is neither consulted nor populated).
pub const FLAG_NO_CACHE: u32 = 2;

/// Protocol operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    /// Load a graph file into the registry under a name.
    Load = 1,
    /// Compute the MSF of a resident graph.
    Compute = 2,
    /// Compute and certify (cut + cycle properties) the MSF.
    Certify = 3,
    /// Shape and residency information for a named graph.
    Info = 4,
    /// Drop a graph from the registry (in-flight jobs keep their reference).
    Evict = 5,
    /// Scrape the metrics registry as Prometheus-style plaintext.
    Stats = 6,
    /// Ask the daemon to drain and exit.
    Shutdown = 7,
    /// Liveness probe.
    Ping = 8,
    /// Control the in-daemon sampling profiler. The action travels in the
    /// `algorithm` field (`start`, `stop`, or `fetch`) and the sample rate
    /// in Hz in `threads` (0 = daemon default).
    Profile = 9,
}

impl Op {
    /// Inverse of `self as u8`.
    pub fn from_u8(v: u8) -> Option<Op> {
        Some(match v {
            1 => Op::Load,
            2 => Op::Compute,
            3 => Op::Certify,
            4 => Op::Info,
            5 => Op::Evict,
            6 => Op::Stats,
            7 => Op::Shutdown,
            8 => Op::Ping,
            9 => Op::Profile,
            _ => return None,
        })
    }
}

/// One client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The operation.
    pub op: Op,
    /// Graph name (registry key). Empty for ops that take none.
    pub graph: String,
    /// Algorithm slug (`bor-fal`, `bor-write-min`, ...); empty = server
    /// default.
    pub algorithm: String,
    /// Requested processor count; 0 = server default.
    pub threads: u32,
    /// [`FLAG_PARANOID`] | [`FLAG_NO_CACHE`].
    pub flags: u32,
    /// Filesystem path (Load only).
    pub path: String,
}

impl Request {
    /// A request with only the op set (the common shape for stats/ping).
    pub fn op(op: Op) -> Request {
        Request {
            op,
            graph: String::new(),
            algorithm: String::new(),
            threads: 0,
            flags: 0,
            path: String::new(),
        }
    }

    /// Serialize to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.graph.len() + self.path.len());
        out.push(self.op as u8);
        put_str(&mut out, &self.graph);
        put_str(&mut out, &self.algorithm);
        out.extend_from_slice(&self.threads.to_le_bytes());
        out.extend_from_slice(&self.flags.to_le_bytes());
        put_str(&mut out, &self.path);
        out
    }

    /// Parse a frame payload.
    pub fn decode(buf: &[u8]) -> io::Result<Request> {
        let mut c = Cursor::new(buf);
        let op =
            Op::from_u8(c.u8()?).ok_or_else(|| bad_data(format!("unknown opcode {}", buf[0])))?;
        let req = Request {
            op,
            graph: c.string()?,
            algorithm: c.string()?,
            threads: c.u32()?,
            flags: c.u32()?,
            path: c.string()?,
        };
        c.finish()?;
        Ok(req)
    }
}

/// The result body of a served compute.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeReply {
    /// Algorithm that ran (server-resolved slug).
    pub algorithm: String,
    /// Input vertices.
    pub vertices: u64,
    /// Input edges.
    pub edges: u64,
    /// Forest edges selected.
    pub forest_edges: u64,
    /// Trees in the forest.
    pub components: u32,
    /// Total forest weight.
    pub total_weight: f64,
    /// The unique `(weight, edge id)` forest checksum.
    pub checksum: u64,
    /// Server-side wall time of the request, nanoseconds.
    pub wall_ns: u64,
    /// True when the contracted-intermediate cache served the first round.
    pub round_cache_hit: bool,
    /// True when the forest was re-proved minimum before replying.
    pub certified: bool,
}

/// The result body of a served certification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertifyReply {
    /// Forest edges proved.
    pub forest_edges: u64,
    /// Trees in the forest.
    pub trees: u32,
    /// Cycle-property queries issued.
    pub cycle_queries: u64,
    /// Cut-property checks issued.
    pub cut_checks: u64,
    /// The forest checksum (matches the compute reply for the same graph).
    pub checksum: u64,
    /// Server-side wall time, nanoseconds.
    pub wall_ns: u64,
}

/// The result body of an info request.
#[derive(Debug, Clone, PartialEq)]
pub struct InfoReply {
    /// Vertices.
    pub vertices: u64,
    /// Edges.
    pub edges: u64,
    /// Density m/n.
    pub density: f64,
    /// True when the graph is currently resident.
    pub resident: bool,
    /// Estimated resident bytes (0 when not resident).
    pub resident_bytes: u64,
}

/// One server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request failed; human-readable reason.
    Error {
        /// What went wrong.
        message: String,
    },
    /// Admission control rejected the job (queue full).
    Overloaded {
        /// Jobs already waiting.
        queued: u32,
        /// Queue capacity.
        max: u32,
    },
    /// Load finished.
    Loaded {
        /// Vertices of the loaded graph.
        vertices: u64,
        /// Edges of the loaded graph.
        edges: u64,
        /// Estimated resident bytes.
        bytes: u64,
        /// True when the file was read; false when already resident.
        fresh: bool,
    },
    /// Compute finished.
    Computed(ComputeReply),
    /// Certification finished (acceptance; rejection is an `Error`).
    Certified(CertifyReply),
    /// Info body.
    Info(InfoReply),
    /// Evict finished.
    Evicted {
        /// True when the graph was resident and has been dropped.
        was_resident: bool,
    },
    /// Metrics scrape.
    Stats {
        /// Prometheus-style plaintext exposition.
        text: String,
    },
    /// The daemon acknowledged shutdown and is draining.
    ShuttingDown,
    /// Liveness reply.
    Pong,
    /// Profiler state after a profile op.
    Profile {
        /// True when the sampler thread is running after this op.
        running: bool,
        /// Collapsed-stack profile (empty for `start`, the accumulated
        /// profile for `stop`/`fetch`).
        folded: String,
        /// Non-empty stack samples recorded so far.
        samples: u64,
        /// Samples dropped to torn reads.
        dropped: u64,
        /// Sampler wakeups.
        wakeups: u64,
    },
}

const R_ERROR: u8 = 0;
const R_OVERLOADED: u8 = 1;
const R_LOADED: u8 = 2;
const R_COMPUTED: u8 = 3;
const R_CERTIFIED: u8 = 4;
const R_INFO: u8 = 5;
const R_EVICTED: u8 = 6;
const R_STATS: u8 = 7;
const R_SHUTDOWN: u8 = 8;
const R_PONG: u8 = 9;
const R_PROFILE: u8 = 10;

impl Response {
    /// Serialize to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Error { message } => {
                out.push(R_ERROR);
                put_str(&mut out, message);
            }
            Response::Overloaded { queued, max } => {
                out.push(R_OVERLOADED);
                out.extend_from_slice(&queued.to_le_bytes());
                out.extend_from_slice(&max.to_le_bytes());
            }
            Response::Loaded {
                vertices,
                edges,
                bytes,
                fresh,
            } => {
                out.push(R_LOADED);
                out.extend_from_slice(&vertices.to_le_bytes());
                out.extend_from_slice(&edges.to_le_bytes());
                out.extend_from_slice(&bytes.to_le_bytes());
                out.push(*fresh as u8);
            }
            Response::Computed(r) => {
                out.push(R_COMPUTED);
                put_str(&mut out, &r.algorithm);
                out.extend_from_slice(&r.vertices.to_le_bytes());
                out.extend_from_slice(&r.edges.to_le_bytes());
                out.extend_from_slice(&r.forest_edges.to_le_bytes());
                out.extend_from_slice(&r.components.to_le_bytes());
                out.extend_from_slice(&r.total_weight.to_bits().to_le_bytes());
                out.extend_from_slice(&r.checksum.to_le_bytes());
                out.extend_from_slice(&r.wall_ns.to_le_bytes());
                out.push(r.round_cache_hit as u8);
                out.push(r.certified as u8);
            }
            Response::Certified(r) => {
                out.push(R_CERTIFIED);
                out.extend_from_slice(&r.forest_edges.to_le_bytes());
                out.extend_from_slice(&r.trees.to_le_bytes());
                out.extend_from_slice(&r.cycle_queries.to_le_bytes());
                out.extend_from_slice(&r.cut_checks.to_le_bytes());
                out.extend_from_slice(&r.checksum.to_le_bytes());
                out.extend_from_slice(&r.wall_ns.to_le_bytes());
            }
            Response::Info(r) => {
                out.push(R_INFO);
                out.extend_from_slice(&r.vertices.to_le_bytes());
                out.extend_from_slice(&r.edges.to_le_bytes());
                out.extend_from_slice(&r.density.to_bits().to_le_bytes());
                out.push(r.resident as u8);
                out.extend_from_slice(&r.resident_bytes.to_le_bytes());
            }
            Response::Evicted { was_resident } => {
                out.push(R_EVICTED);
                out.push(*was_resident as u8);
            }
            Response::Stats { text } => {
                out.push(R_STATS);
                put_str(&mut out, text);
            }
            Response::ShuttingDown => out.push(R_SHUTDOWN),
            Response::Pong => out.push(R_PONG),
            Response::Profile {
                running,
                folded,
                samples,
                dropped,
                wakeups,
            } => {
                out.push(R_PROFILE);
                out.push(*running as u8);
                put_str(&mut out, folded);
                out.extend_from_slice(&samples.to_le_bytes());
                out.extend_from_slice(&dropped.to_le_bytes());
                out.extend_from_slice(&wakeups.to_le_bytes());
            }
        }
        out
    }

    /// Parse a frame payload.
    pub fn decode(buf: &[u8]) -> io::Result<Response> {
        let mut c = Cursor::new(buf);
        let tag = c.u8()?;
        let resp = match tag {
            R_ERROR => Response::Error {
                message: c.string()?,
            },
            R_OVERLOADED => Response::Overloaded {
                queued: c.u32()?,
                max: c.u32()?,
            },
            R_LOADED => Response::Loaded {
                vertices: c.u64()?,
                edges: c.u64()?,
                bytes: c.u64()?,
                fresh: c.u8()? != 0,
            },
            R_COMPUTED => Response::Computed(ComputeReply {
                algorithm: c.string()?,
                vertices: c.u64()?,
                edges: c.u64()?,
                forest_edges: c.u64()?,
                components: c.u32()?,
                total_weight: f64::from_bits(c.u64()?),
                checksum: c.u64()?,
                wall_ns: c.u64()?,
                round_cache_hit: c.u8()? != 0,
                certified: c.u8()? != 0,
            }),
            R_CERTIFIED => Response::Certified(CertifyReply {
                forest_edges: c.u64()?,
                trees: c.u32()?,
                cycle_queries: c.u64()?,
                cut_checks: c.u64()?,
                checksum: c.u64()?,
                wall_ns: c.u64()?,
            }),
            R_INFO => Response::Info(InfoReply {
                vertices: c.u64()?,
                edges: c.u64()?,
                density: f64::from_bits(c.u64()?),
                resident: c.u8()? != 0,
                resident_bytes: c.u64()?,
            }),
            R_EVICTED => Response::Evicted {
                was_resident: c.u8()? != 0,
            },
            R_STATS => Response::Stats { text: c.string()? },
            R_SHUTDOWN => Response::ShuttingDown,
            R_PONG => Response::Pong,
            R_PROFILE => Response::Profile {
                running: c.u8()? != 0,
                folded: c.string()?,
                samples: c.u64()?,
                dropped: c.u64()?,
                wakeups: c.u64()?,
            },
            _ => return Err(bad_data(format!("unknown response tag {tag}"))),
        };
        c.finish()?;
        Ok(resp)
    }
}

// ---- framing -----------------------------------------------------------

/// Write one frame: `u32` LE payload length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() as u64 <= MAX_FRAME as u64);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame payload. `Ok(None)` on clean EOF at a frame boundary
/// (the peer closed); errors on truncation mid-frame or an oversized
/// length prefix.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    if !read_exact_or_eof(r, &mut len)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(bad_data(format!(
            "frame length {len} exceeds the {MAX_FRAME}-byte cap"
        )));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    Ok(Some(buf))
}

/// `read_exact`, but a clean EOF before the first byte returns `Ok(false)`
/// instead of an error (so idle peers can hang up between frames).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

// ---- field encoding ----------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad_data("truncated payload".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> io::Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad_data("string is not UTF-8".into()))
    }

    /// Every byte must have been consumed — trailing garbage is a protocol
    /// error, not padding.
    fn finish(self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad_data(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let decoded = Request::decode(&req.encode()).expect("decode");
        assert_eq!(decoded, req);
    }

    fn round_trip_response(resp: Response) {
        let decoded = Response::decode(&resp.encode()).expect("decode");
        assert_eq!(decoded, resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request {
            op: Op::Load,
            graph: "rmat-20".into(),
            algorithm: String::new(),
            threads: 0,
            flags: 0,
            path: "/tmp/rmat.msfb".into(),
        });
        round_trip_request(Request {
            op: Op::Compute,
            graph: "g".into(),
            algorithm: "bor-write-min".into(),
            threads: 8,
            flags: FLAG_PARANOID | FLAG_NO_CACHE,
            path: String::new(),
        });
        for op in [Op::Stats, Op::Shutdown, Op::Ping, Op::Evict, Op::Info] {
            round_trip_request(Request::op(op));
        }
        // Profile ops carry the action in `algorithm` and the rate in
        // `threads`.
        round_trip_request(Request {
            op: Op::Profile,
            graph: String::new(),
            algorithm: "start".into(),
            threads: 997,
            flags: 0,
            path: String::new(),
        });
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Error {
            message: "no such graph".into(),
        });
        round_trip_response(Response::Overloaded { queued: 3, max: 2 });
        round_trip_response(Response::Loaded {
            vertices: 7,
            edges: 9,
            bytes: 216,
            fresh: true,
        });
        round_trip_response(Response::Computed(ComputeReply {
            algorithm: "bor-fal".into(),
            vertices: 100,
            edges: 400,
            forest_edges: 99,
            components: 1,
            total_weight: -0.0,
            checksum: 0xDEAD_BEEF,
            wall_ns: 12345,
            round_cache_hit: true,
            certified: false,
        }));
        round_trip_response(Response::Certified(CertifyReply {
            forest_edges: 99,
            trees: 1,
            cycle_queries: 301,
            cut_checks: 99,
            checksum: 1,
            wall_ns: 2,
        }));
        round_trip_response(Response::Info(InfoReply {
            vertices: 5,
            edges: 4,
            density: 0.8,
            resident: true,
            resident_bytes: 96,
        }));
        round_trip_response(Response::Evicted {
            was_resident: false,
        });
        round_trip_response(Response::Stats {
            text: "serve_requests 7\n".into(),
        });
        round_trip_response(Response::ShuttingDown);
        round_trip_response(Response::Pong);
        round_trip_response(Response::Profile {
            running: true,
            folded: "serve;run;find-min 42\n".into(),
            samples: 42,
            dropped: 1,
            wakeups: 100,
        });
    }

    #[test]
    fn malformed_payloads_are_clean_errors() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[99]).is_err(), "unknown opcode");
        // Truncated string length.
        assert!(Request::decode(&[1, 255, 255, 255, 255]).is_err());
        let mut ok = Request::op(Op::Ping).encode();
        ok.push(0); // trailing garbage
        assert!(Request::decode(&ok).is_err());
        assert!(Response::decode(&[200]).is_err(), "unknown tag");
    }

    #[test]
    fn framing_round_trips_and_guards_length() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
        // Oversized length prefix.
        let mut r = &[0xFF, 0xFF, 0xFF, 0xFF, 0][..];
        assert!(read_frame(&mut r).is_err());
        // Truncated mid-frame.
        let mut r = &[5, 0, 0, 0, b'h'][..];
        assert!(read_frame(&mut r).is_err());
    }
}
