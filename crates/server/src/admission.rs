//! Admission control: a budgeted gate in front of the shared pool.
//!
//! Every request is costed in *work units* (`m + n` of its graph, the
//! [`msf_core::job::WorkEstimate`] model). Small jobs — under the large-job
//! threshold — bypass the gate entirely and go to the epoch batcher, which
//! runs them back-to-back on one executor. Large jobs must acquire a
//! [`WorkPermit`]: the controller caps the total in-flight units, queues a
//! bounded number of waiters beyond that, and rejects with a protocol-level
//! `Overloaded` once the queue is full. Rejection over unbounded queueing
//! keeps tail latency honest — the client sees backpressure instead of a
//! timeout.
//!
//! The gate never starves an oversized job: a job larger than the whole
//! budget is admitted as soon as the gate is empty (`inflight == 0`).

use std::sync::{Condvar, Mutex};

use msf_obs::metrics::{LazyCounter, LazyGauge, LazyHistogram};

static ADMITTED: LazyCounter = LazyCounter::new("serve.admission.admitted");
static QUEUED: LazyCounter = LazyCounter::new("serve.admission.queued");
static REJECTED: LazyCounter = LazyCounter::new("serve.admission.rejected");
static INFLIGHT_UNITS: LazyGauge = LazyGauge::new("serve.admission.inflight_units");
static WAIT_NS: LazyHistogram = LazyHistogram::new("serve.admission.wait_ns");

/// Tuning knobs for the gate; [`Default`] matches the daemon's defaults.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Jobs at or above this many units are "large" and must hold a permit.
    pub large_threshold: u64,
    /// Cap on the summed units of concurrently admitted large jobs.
    pub max_inflight_units: u64,
    /// Large jobs allowed to wait for capacity before rejection.
    pub max_queued: u32,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            large_threshold: 1 << 17,
            max_inflight_units: 1 << 23,
            max_queued: 64,
        }
    }
}

struct Gate {
    inflight_units: u64,
    inflight_jobs: u32,
    waiting: u32,
}

/// The budgeted gate. Cheap to share behind an `Arc`.
pub struct Admission {
    cfg: AdmissionConfig,
    gate: Mutex<Gate>,
    freed: Condvar,
}

/// Outcome of an admission attempt.
pub enum Admitted<'a> {
    /// Under the large-job threshold: run on the small-job batcher, no
    /// permit needed.
    Small,
    /// Admitted (possibly after queueing); the permit returns the units on
    /// drop.
    Large(WorkPermit<'a>),
    /// Queue full — reply `Overloaded {queued, max}` and move on.
    Rejected {
        /// Waiters at rejection time.
        queued: u32,
        /// The queue bound.
        max: u32,
    },
}

impl Admission {
    /// A gate with the given knobs.
    pub fn new(cfg: AdmissionConfig) -> Admission {
        Admission {
            cfg,
            gate: Mutex::new(Gate {
                inflight_units: 0,
                inflight_jobs: 0,
                waiting: 0,
            }),
            freed: Condvar::new(),
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> AdmissionConfig {
        self.cfg
    }

    /// True when a job of `units` goes to the small-job batcher.
    pub fn is_small(&self, units: u64) -> bool {
        units < self.cfg.large_threshold
    }

    /// Cost `units` against the budget, blocking while the gate is full
    /// and the queue has room.
    pub fn admit(&self, units: u64) -> Admitted<'_> {
        if self.is_small(units) {
            return Admitted::Small;
        }
        let start = std::time::Instant::now();
        let mut gate = self.gate.lock().unwrap();
        let fits = |g: &Gate| {
            g.inflight_jobs == 0 || g.inflight_units + units <= self.cfg.max_inflight_units
        };
        if !fits(&gate) {
            if gate.waiting >= self.cfg.max_queued {
                REJECTED.inc();
                return Admitted::Rejected {
                    queued: gate.waiting,
                    max: self.cfg.max_queued,
                };
            }
            gate.waiting += 1;
            QUEUED.inc();
            while !fits(&gate) {
                gate = self.freed.wait(gate).unwrap();
            }
            gate.waiting -= 1;
        }
        gate.inflight_units += units;
        gate.inflight_jobs += 1;
        drop(gate);
        ADMITTED.inc();
        INFLIGHT_UNITS.add(units);
        WAIT_NS.record(start.elapsed().as_nanos() as u64);
        Admitted::Large(WorkPermit { gate: self, units })
    }

    /// Units currently admitted (tests/scrape).
    pub fn inflight_units(&self) -> u64 {
        self.gate.lock().unwrap().inflight_units
    }

    fn release(&self, units: u64) {
        let mut gate = self.gate.lock().unwrap();
        gate.inflight_units -= units;
        gate.inflight_jobs -= 1;
        drop(gate);
        INFLIGHT_UNITS.sub(units);
        self.freed.notify_all();
    }
}

/// RAII hold on admitted units; dropping returns them and wakes waiters.
pub struct WorkPermit<'a> {
    gate: &'a Admission,
    units: u64,
}

impl WorkPermit<'_> {
    /// Units this permit holds.
    pub fn units(&self) -> u64 {
        self.units
    }
}

impl Drop for WorkPermit<'_> {
    fn drop(&mut self) {
        self.gate.release(self.units);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    #[test]
    fn small_jobs_bypass_the_gate() {
        let gate = Admission::new(AdmissionConfig::default());
        assert!(matches!(gate.admit(10), Admitted::Small));
        assert_eq!(gate.inflight_units(), 0);
    }

    #[test]
    fn permits_account_units_and_release_on_drop() {
        let cfg = AdmissionConfig {
            large_threshold: 100,
            max_inflight_units: 1000,
            max_queued: 4,
        };
        let gate = Admission::new(cfg);
        let p1 = match gate.admit(600) {
            Admitted::Large(p) => p,
            _ => panic!("should admit"),
        };
        assert_eq!(gate.inflight_units(), 600);
        assert_eq!(p1.units(), 600);
        let p2 = match gate.admit(400) {
            Admitted::Large(p) => p,
            _ => panic!("600+400 fits exactly"),
        };
        drop(p1);
        assert_eq!(gate.inflight_units(), 400);
        drop(p2);
        assert_eq!(gate.inflight_units(), 0);
    }

    #[test]
    fn oversized_job_admits_when_gate_is_empty() {
        let cfg = AdmissionConfig {
            large_threshold: 100,
            max_inflight_units: 1000,
            max_queued: 4,
        };
        let gate = Admission::new(cfg);
        // 5000 > max_inflight_units, but nothing is in flight.
        match gate.admit(5000) {
            Admitted::Large(p) => assert_eq!(p.units(), 5000),
            _ => panic!("empty gate must admit oversized jobs"),
        };
    }

    #[test]
    fn full_queue_rejects_instead_of_blocking() {
        let cfg = AdmissionConfig {
            large_threshold: 100,
            max_inflight_units: 500,
            max_queued: 0,
        };
        let gate = Admission::new(cfg);
        let _hold = match gate.admit(500) {
            Admitted::Large(p) => p,
            _ => panic!(),
        };
        match gate.admit(500) {
            Admitted::Rejected { queued, max } => {
                assert_eq!(queued, 0);
                assert_eq!(max, 0);
            }
            _ => panic!("queue of 0 must reject immediately"),
        };
    }

    #[test]
    fn queued_job_runs_after_capacity_frees() {
        let cfg = AdmissionConfig {
            large_threshold: 100,
            max_inflight_units: 500,
            max_queued: 4,
        };
        let gate = Arc::new(Admission::new(cfg));
        let order = Arc::new(AtomicU32::new(0));
        let hold = match gate.admit(500) {
            Admitted::Large(p) => p,
            _ => panic!(),
        };
        let t = {
            let gate = Arc::clone(&gate);
            let order = Arc::clone(&order);
            std::thread::spawn(move || match gate.admit(300) {
                Admitted::Large(_p) => order.fetch_add(1, Ordering::SeqCst),
                _ => panic!("queued job must eventually admit"),
            })
        };
        // Give the waiter time to block, then free capacity.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(order.load(Ordering::SeqCst), 0, "waiter is blocked");
        drop(hold);
        t.join().unwrap();
        assert_eq!(order.load(Ordering::SeqCst), 1);
        assert_eq!(gate.inflight_units(), 0);
    }
}
