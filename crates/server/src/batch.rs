//! The small-job epoch batcher.
//!
//! Small requests (under the admission gate's large-job threshold) are not
//! worth a per-request team lease: the lease handshake and cache warm-up
//! dominate the actual Borůvka work. Instead, all small jobs funnel into
//! one executor thread that drains its queue in *epochs* — it blocks for
//! the first job, then greedily drains everything already queued and runs
//! the batch back-to-back. Consecutive jobs in an epoch reuse the shared
//! pool's already-woken workers (the lazy team lease stays warm between
//! `run_team` calls on one thread), so a burst of N small computes pays
//! roughly one wake-up, not N.
//!
//! Jobs are opaque closures; each handler thread submits a closure that
//! sends its result back over a private channel, so ordering across
//! clients is irrelevant and a slow small job only delays its own epoch.

use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Mutex;
use std::thread::JoinHandle;

use msf_obs::metrics::{LazyCounter, LazyHistogram};

static EPOCHS: LazyCounter = LazyCounter::new("serve.batch.epochs");
static JOBS: LazyCounter = LazyCounter::new("serve.batch.jobs");
static BATCH_SIZE: LazyHistogram = LazyHistogram::new("serve.batch.size");

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Handle to the executor thread; dropping (or [`Batcher::shutdown`])
/// drains outstanding jobs and joins.
pub struct Batcher {
    tx: Mutex<Option<Sender<Job>>>,
    executor: Mutex<Option<JoinHandle<()>>>,
}

impl Batcher {
    /// Spawn the executor thread.
    pub fn new() -> Batcher {
        let (tx, rx) = mpsc::channel::<Job>();
        let executor = std::thread::Builder::new()
            .name("msf-serve-batch".into())
            .spawn(move || run_epochs(rx))
            .expect("spawn batch executor");
        Batcher {
            tx: Mutex::new(Some(tx)),
            executor: Mutex::new(Some(executor)),
        }
    }

    /// Queue a job for the next epoch. Returns `false` after shutdown
    /// (the caller should run the job inline instead).
    pub fn submit(&self, job: Job) -> bool {
        match &*self.tx.lock().unwrap() {
            Some(tx) => tx.send(job).is_ok(),
            None => false,
        }
    }

    /// Run `f` on the batcher and wait for its result. `None` when the
    /// batcher has shut down (callers run inline instead).
    pub fn run<T: Send + 'static>(&self, f: impl FnOnce() -> T + Send + 'static) -> Option<T> {
        let (tx, rx): (Sender<T>, Receiver<T>) = mpsc::channel();
        {
            let guard = self.tx.lock().unwrap();
            let queue = guard.as_ref()?;
            let job: Job = Box::new(move || {
                let _ = tx.send(f());
            });
            queue.send(job).ok()?;
        }
        rx.recv().ok()
    }

    /// True while the executor accepts jobs.
    pub fn accepting(&self) -> bool {
        self.tx.lock().unwrap().is_some()
    }

    /// Stop accepting, drain queued jobs, and join the executor.
    pub fn shutdown(&self) {
        let tx = self.tx.lock().unwrap().take();
        drop(tx); // executor's recv() errors once the queue drains
        if let Some(handle) = self.executor.lock().unwrap().take() {
            let _ = handle.join();
        }
    }
}

impl Default for Batcher {
    fn default() -> Batcher {
        Batcher::new()
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn run_epochs(rx: Receiver<Job>) {
    // Block for the epoch's first job; a closed-and-empty queue ends the
    // executor.
    while let Ok(first) = rx.recv() {
        let mut batch = vec![first];
        while let Ok(job) = rx.try_recv() {
            batch.push(job);
        }
        EPOCHS.inc();
        JOBS.add(batch.len() as u64);
        BATCH_SIZE.record(batch.len() as u64);
        for job in batch.drain(..) {
            job();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    #[test]
    fn run_returns_results_from_the_executor_thread() {
        let batcher = Batcher::new();
        let main = std::thread::current().id();
        let (val, ran_on) = batcher
            .run(move || (21 * 2, std::thread::current().id()))
            .expect("batcher is accepting");
        assert_eq!(val, 42);
        assert_ne!(ran_on, main, "jobs run on the executor, not the caller");
        batcher.shutdown();
        assert!(!batcher.accepting());
        assert!(
            !batcher.submit(Box::new(|| {})),
            "submit after shutdown refuses"
        );
    }

    #[test]
    fn concurrent_submitters_all_complete() {
        let batcher = Arc::new(Batcher::new());
        let done = Arc::new(AtomicU32::new(0));
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let batcher = Arc::clone(&batcher);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let got = batcher.run(move || i * 10).expect("accepting");
                    assert_eq!(got, i * 10);
                    done.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(done.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let batcher = Batcher::new();
        let count = Arc::new(AtomicU32::new(0));
        for _ in 0..16 {
            let count = Arc::clone(&count);
            assert!(batcher.submit(Box::new(move || {
                count.fetch_add(1, Ordering::SeqCst);
            })));
        }
        batcher.shutdown();
        assert_eq!(count.load(Ordering::SeqCst), 16, "every queued job ran");
    }
}
