//! `msf-server`: the persistent MSF daemon.
//!
//! The offline CLI pays the whole pipeline on every invocation — process
//! start, graph parse, pool spin-up, first-round contraction — even when
//! the same graph is computed a hundred times with different algorithms.
//! The daemon amortizes all four: graphs load once into a capacity-bounded
//! [`registry`], the process-global work-stealing pool stays warm across
//! requests, and the first Borůvka round of each resident graph is cached
//! and shared by every algorithm (valid because the `(weight, edge id)`
//! total order makes the MSF — and hence every round-1 hook — unique).
//!
//! Layering, bottom-up:
//!
//! - [`proto`] — the length-prefixed binary wire format (framing, request
//!   and response bodies). No serde; flat little-endian fields.
//! - [`registry`] — named resident graphs, LRU eviction under a byte cap,
//!   refcount-safe unloading, per-graph contracted-round cache.
//! - [`admission`] — the work-unit budget gate for large jobs: cap, queue,
//!   reject.
//! - [`batch`] — the epoch batcher that runs small jobs back-to-back on
//!   one executor so a burst shares one pool wake-up.
//! - [`server`] — accept/dispatch/drain, signal handling, hard-failure
//!   accounting, the serve entry point.
//! - [`client`] — the synchronous client used by `msf client`, benches,
//!   and tests.

#![warn(missing_docs)]

pub mod admission;
pub mod batch;
pub mod client;
pub mod proto;
pub mod registry;
pub mod server;

pub use client::Client;
pub use server::{serve, Listen, Server, ServerConfig};
