//! A synchronous client for the daemon: connect, frame a request, block on
//! the reply. Used by `msf client`, the serve-mode bench entry, and the
//! integration tests; scripts can drive the same wire format from any
//! language that can write a length prefix.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::Duration;

use crate::proto::{read_frame, write_frame, Op, Request, Response, FLAG_NO_CACHE, FLAG_PARANOID};

enum Conn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// One connection to a daemon.
pub struct Client {
    conn: Conn,
}

impl Client {
    /// Connect to `unix:PATH` or `HOST:PORT`.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let conn = if let Some(path) = addr.strip_prefix("unix:") {
            Conn::Unix(UnixStream::connect(path)?)
        } else {
            Conn::Tcp(TcpStream::connect(addr)?)
        };
        Ok(Client { conn })
    }

    /// Bound how long a single reply may take (`None` = wait forever).
    pub fn set_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match &self.conn {
            Conn::Unix(s) => s.set_read_timeout(t),
            Conn::Tcp(s) => s.set_read_timeout(t),
        }
    }

    /// Send one request and block for its response.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.conn, &req.encode())?;
        match read_frame(&mut self.conn)? {
            Some(payload) => Response::decode(&payload),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            )),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<Response> {
        self.request(&Request::op(Op::Ping))
    }

    /// Load `path` as `graph`.
    pub fn load(&mut self, graph: &str, path: &str) -> io::Result<Response> {
        let mut req = Request::op(Op::Load);
        req.graph = graph.into();
        req.path = path.into();
        self.request(&req)
    }

    /// Compute the MSF of `graph`. Empty `algorithm` = server default;
    /// `threads` 0 = server default.
    pub fn compute(
        &mut self,
        graph: &str,
        algorithm: &str,
        threads: u32,
        paranoid: bool,
        no_cache: bool,
    ) -> io::Result<Response> {
        let mut req = Request::op(Op::Compute);
        req.graph = graph.into();
        req.algorithm = algorithm.into();
        req.threads = threads;
        req.flags =
            (if paranoid { FLAG_PARANOID } else { 0 }) | (if no_cache { FLAG_NO_CACHE } else { 0 });
        self.request(&req)
    }

    /// Compute and prove the MSF of `graph`.
    pub fn certify(&mut self, graph: &str, algorithm: &str, threads: u32) -> io::Result<Response> {
        let mut req = Request::op(Op::Certify);
        req.graph = graph.into();
        req.algorithm = algorithm.into();
        req.threads = threads;
        self.request(&req)
    }

    /// Shape and residency of `graph`.
    pub fn info(&mut self, graph: &str) -> io::Result<Response> {
        let mut req = Request::op(Op::Info);
        req.graph = graph.into();
        self.request(&req)
    }

    /// Drop `graph` from residency.
    pub fn evict(&mut self, graph: &str) -> io::Result<Response> {
        let mut req = Request::op(Op::Evict);
        req.graph = graph.into();
        self.request(&req)
    }

    /// Scrape the metrics registry.
    pub fn stats(&mut self) -> io::Result<Response> {
        self.request(&Request::op(Op::Stats))
    }

    /// Control the daemon's sampling profiler: `action` is `start`, `stop`,
    /// or `fetch`; `hz` is the sample rate for `start` (0 = daemon default).
    pub fn profile(&mut self, action: &str, hz: u32) -> io::Result<Response> {
        let mut req = Request::op(Op::Profile);
        req.algorithm = action.into();
        req.threads = hz;
        self.request(&req)
    }

    /// Ask the daemon to drain and exit.
    pub fn shutdown(&mut self) -> io::Result<Response> {
        self.request(&Request::op(Op::Shutdown))
    }
}
