//! The daemon: bind, accept, dispatch, drain.
//!
//! One OS thread per connection, synchronous request/response per frame —
//! the daemon's unit of concurrency is the *job*, not the socket, and jobs
//! are already multiplexed by the admission gate (large) and the epoch
//! batcher (small) onto the shared work-stealing pool. An async runtime
//! would add a dependency and buy nothing: connection counts are small
//! (clients are benchmark harnesses and scripts, not web traffic) and every
//! interesting wait happens inside a compute, where the pool owns the CPUs.
//!
//! Shutdown is cooperative: SIGTERM/SIGINT (or a `Shutdown` frame) sets one
//! atomic flag; the accept loop stops accepting, connection threads finish
//! the request in flight and hang up, the batcher drains, and the process
//! exits `0` — or `1` when any request suffered a *hard failure* (a handler
//! panic, or a paranoid certification that rejected a served forest). Soft
//! failures (unknown graph, bad path, malformed frame) are protocol errors
//! answered in-band and never affect the exit code.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use msf_core::certify::certify_msf_with;
use msf_core::job::MsfJob;
use msf_core::{Algorithm, MsfConfig};
use msf_obs::metrics::{LazyCounter, LazyHistogram};
use msf_obs::{self as obs, SpanKind};

use crate::admission::{Admission, AdmissionConfig, Admitted};
use crate::batch::Batcher;
use crate::proto::{
    read_frame, write_frame, CertifyReply, ComputeReply, InfoReply, Op, Request, Response,
    FLAG_NO_CACHE, FLAG_PARANOID,
};
use crate::registry::{Registry, ResidentGraph};

static REQUESTS: LazyCounter = LazyCounter::new("serve.requests");
static ERRORS: LazyCounter = LazyCounter::new("serve.errors");
static HARD_FAILURES: LazyCounter = LazyCounter::new("serve.hard_failures");
static CONNECTIONS: LazyCounter = LazyCounter::new("serve.connections");
static COMPUTE_NS: LazyHistogram = LazyHistogram::new("serve.compute_ns");
static SLOW_REQUESTS: LazyCounter = LazyCounter::new("serve.slow_requests");

/// The cache key prefix for first-round Borůvka intermediates. Valid for
/// every algorithm: under the `(weight, id)` total order the round's hooks
/// are in the unique MSF regardless of what finishes the job.
const ROUND_PREFIX: &str = "boruvka1";

/// Where to listen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// A Unix domain socket at this path (created on bind, removed on exit).
    Unix(PathBuf),
    /// A TCP address like `127.0.0.1:7070` (port 0 picks a free port; the
    /// resolved address is printed on the ready line).
    Tcp(String),
}

impl Listen {
    /// Parse `unix:PATH` or `HOST:PORT`.
    pub fn parse(s: &str) -> Result<Listen, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix: address needs a path".into());
            }
            Ok(Listen::Unix(PathBuf::from(path)))
        } else if s.contains(':') {
            Ok(Listen::Tcp(s.to_string()))
        } else {
            Err(format!(
                "bad address '{s}': expected unix:PATH or HOST:PORT"
            ))
        }
    }
}

/// Daemon configuration; [`Default`] matches the CLI defaults.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address.
    pub listen: Listen,
    /// Algorithm when a request leaves the slug empty.
    pub default_algorithm: Algorithm,
    /// Processor count when a request asks for 0.
    pub default_threads: usize,
    /// Registry capacity in estimated bytes.
    pub registry_bytes: u64,
    /// Admission gate knobs.
    pub admission: AdmissionConfig,
    /// Re-certify every served forest before replying, regardless of the
    /// request's flags.
    pub paranoid: bool,
    /// Slow-request threshold: requests taking longer than this get their
    /// sampled stacks (when the profiler is running) and metrics deltas
    /// dumped to stderr with the request id. `None` disables the log.
    pub slow_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            listen: Listen::Tcp("127.0.0.1:0".into()),
            default_algorithm: Algorithm::BorFal,
            default_threads: rayon::current_num_threads().max(1),
            registry_bytes: u64::MAX,
            admission: AdmissionConfig::default(),
            paranoid: false,
            slow_ms: None,
        }
    }
}

/// Shared daemon state: the registry, the gates, and the failure ledger.
pub struct Server {
    cfg: ServerConfig,
    /// The resident-graph registry.
    pub registry: Registry,
    /// The large-job admission gate.
    pub admission: Admission,
    batcher: Batcher,
    shutdown: AtomicBool,
    hard_failures: AtomicU64,
    next_request: AtomicU64,
}

impl Server {
    /// Build the daemon state (does not bind).
    pub fn new(cfg: ServerConfig) -> Server {
        Server {
            registry: Registry::new(cfg.registry_bytes),
            admission: Admission::new(cfg.admission),
            batcher: Batcher::new(),
            shutdown: AtomicBool::new(false),
            hard_failures: AtomicU64::new(0),
            next_request: AtomicU64::new(0),
            cfg,
        }
    }

    /// Ask the daemon to drain and exit.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// True once shutdown was requested (by signal or frame).
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signal_received()
    }

    /// Hard failures so far (drives the exit code).
    pub fn hard_failures(&self) -> u64 {
        self.hard_failures.load(Ordering::SeqCst)
    }

    fn note_hard_failure(&self) {
        self.hard_failures.fetch_add(1, Ordering::SeqCst);
        HARD_FAILURES.inc();
    }

    /// Handle one decoded request. Panics in algorithm code are caught by
    /// the connection loop, not here.
    pub fn handle(&self, req: &Request) -> Response {
        REQUESTS.inc();
        let req_id = self.next_request.fetch_add(1, Ordering::Relaxed) + 1;
        // The serve span's begin `a` is the request id: the sampling
        // profiler keys per-request sample attribution on it (the id rides
        // in the stack frame's tag bits), so a slow request's sampled
        // stacks can be pulled out by id after the span closes.
        let span = obs::span(SpanKind::Serve, req_id, req.op as u64);
        let slow_ms = self.cfg.slow_ms;
        let metrics_before = slow_ms
            .filter(|_| obs::metrics::enabled())
            .map(|_| obs::metrics::snapshot());
        let start = Instant::now();
        let resp = self.dispatch(req);
        let ok = !matches!(resp, Response::Error { .. });
        if !ok {
            ERRORS.inc();
        }
        let wall = start.elapsed();
        span.end_with(ok as u64, wall.as_nanos() as u64);
        if let Some(limit) = slow_ms {
            if wall.as_millis() as u64 > limit {
                SLOW_REQUESTS.inc();
                self.log_slow_request(req, req_id, wall, metrics_before.as_ref());
            } else {
                // Keep the profiler's per-request retention bounded: fast
                // requests discard their sampled stacks immediately.
                let _ = obs::profile::take_request(req_id);
            }
        }
        resp
    }

    /// Dump one slow request to stderr: id, op, wall time, the profiler's
    /// sampled stacks for the request (when the sampler is running), and
    /// the counters that moved while it ran.
    fn log_slow_request(
        &self,
        req: &Request,
        req_id: u64,
        wall: Duration,
        before: Option<&obs::metrics::MetricsSnapshot>,
    ) {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "msf-serve: slow request #{req_id}: op {:?} graph '{}' took {:.1}ms (limit {}ms)",
            req.op,
            req.graph,
            wall.as_secs_f64() * 1e3,
            self.cfg.slow_ms.unwrap_or(0)
        );
        match obs::profile::take_request(req_id) {
            Some(paths) => {
                let _ = writeln!(out, "  sampled stacks:");
                for line in obs::profile::render_folded(&paths).lines() {
                    let _ = writeln!(out, "    {line}");
                }
            }
            None => {
                let _ = writeln!(
                    out,
                    "  sampled stacks: none (profiler not running or no samples landed)"
                );
            }
        }
        if let Some(before) = before {
            let after = obs::metrics::snapshot();
            let mut any = false;
            for (name, v) in &after.counters {
                let was = before.counter(name).unwrap_or(0);
                if *v > was {
                    if !any {
                        let _ = writeln!(out, "  counter deltas:");
                        any = true;
                    }
                    let _ = writeln!(out, "    {name} +{}", v - was);
                }
            }
            if !any {
                let _ = writeln!(out, "  counter deltas: none");
            }
        }
        eprint!("{out}");
    }

    fn dispatch(&self, req: &Request) -> Response {
        match req.op {
            Op::Ping => Response::Pong,
            Op::Shutdown => {
                self.request_shutdown();
                Response::ShuttingDown
            }
            Op::Stats => {
                // One source of truth: fold the pool's native counters into
                // the registry, then render everything the registry knows.
                msf_pool::publish_metrics();
                Response::Stats {
                    text: obs::metrics::snapshot().prometheus_text(),
                }
            }
            Op::Load => {
                if req.graph.is_empty() || req.path.is_empty() {
                    return Response::Error {
                        message: "load needs both a graph name and a path".into(),
                    };
                }
                match self.registry.load(&req.graph, &req.path) {
                    Ok((g, fresh)) => Response::Loaded {
                        vertices: g.graph.num_vertices() as u64,
                        edges: g.graph.num_edges() as u64,
                        bytes: g.bytes(),
                        fresh,
                    },
                    Err(message) => Response::Error { message },
                }
            }
            Op::Evict => Response::Evicted {
                was_resident: self.registry.evict(&req.graph),
            },
            Op::Info => match self.registry.get(&req.graph) {
                Ok((g, _)) => Response::Info(InfoReply {
                    vertices: g.graph.num_vertices() as u64,
                    edges: g.graph.num_edges() as u64,
                    density: g.graph.density(),
                    resident: self.registry.resident_bytes_of(&req.graph).is_some(),
                    resident_bytes: g.bytes(),
                }),
                Err(message) => Response::Error { message },
            },
            Op::Compute => self.compute(req, false),
            Op::Certify => self.compute(req, true),
            Op::Profile => {
                // The action rides in `algorithm`, the rate in `threads`
                // (0 = a default gentle enough to leave running).
                let hz = if req.threads == 0 {
                    97
                } else {
                    req.threads as u64
                };
                match req.algorithm.as_str() {
                    "start" => match obs::profile::start(hz) {
                        Ok(()) => Response::Profile {
                            running: true,
                            folded: String::new(),
                            samples: 0,
                            dropped: 0,
                            wakeups: 0,
                        },
                        Err(message) => Response::Error { message },
                    },
                    "stop" => {
                        let report = obs::profile::stop();
                        Response::Profile {
                            running: false,
                            folded: report.folded(),
                            samples: report.samples,
                            dropped: report.dropped,
                            wakeups: report.wakeups,
                        }
                    }
                    "fetch" => {
                        let report = obs::profile::snapshot_report();
                        Response::Profile {
                            running: obs::profile::is_running(),
                            folded: report.folded(),
                            samples: report.samples,
                            dropped: report.dropped,
                            wakeups: report.wakeups,
                        }
                    }
                    other => Response::Error {
                        message: format!(
                            "unknown profile action '{other}' (expected start, stop, or fetch)"
                        ),
                    },
                }
            }
        }
    }

    /// The compute/certify path: resolve the graph, cost the job, pass the
    /// admission gate, run (batched or permitted), optionally certify.
    fn compute(&self, req: &Request, certify_op: bool) -> Response {
        let algorithm = if req.algorithm.is_empty() {
            self.cfg.default_algorithm
        } else {
            match Algorithm::parse(&req.algorithm) {
                Some(a) => a,
                None => {
                    return Response::Error {
                        message: format!("unknown algorithm '{}'", req.algorithm),
                    }
                }
            }
        };
        let threads = if req.threads == 0 {
            self.cfg.default_threads
        } else {
            req.threads as usize
        };
        let resident = match self.registry.get(&req.graph) {
            Ok((g, _)) => g,
            Err(message) => return Response::Error { message },
        };
        let job = MsfJob::with_config(algorithm, MsfConfig::with_threads(threads));
        let units = job.estimate(&resident.graph).units as u64;
        let paranoid = self.cfg.paranoid || req.flags & FLAG_PARANOID != 0;
        let no_cache = req.flags & FLAG_NO_CACHE != 0;

        let run = {
            let resident = Arc::clone(&resident);
            move || run_job(&resident, &job, no_cache)
        };
        let outcome = match self.admission.admit(units) {
            Admitted::Rejected { queued, max } => return Response::Overloaded { queued, max },
            Admitted::Small => self.batcher.run(run.clone()).unwrap_or_else(run),
            Admitted::Large(_permit) => run(),
        };
        let (mut result, round_cache_hit, wall_ns) = outcome;
        COMPUTE_NS.record(wall_ns);

        // Test-only fault injection (the `MSF_TEST_SLOW_PHASE_NS` idiom):
        // drop one forest edge so the paranoid certification path has a
        // lie to catch. CI uses this to prove the daemon exits nonzero
        // after serving — well, refusing to serve — a broken forest.
        if std::env::var_os("MSF_TEST_BREAK_FOREST").is_some() {
            result.edges.pop();
        }

        // certify ops always prove; compute ops prove under --paranoid or
        // the request flag.
        let want_proof = certify_op || paranoid;
        let certificate = if want_proof {
            let t0 = Instant::now();
            match certify_msf_with(&resident.graph, &result, threads) {
                Ok(cert) => Some((cert, t0.elapsed().as_nanos() as u64)),
                Err(violation) => {
                    // A served forest failed its own proof: the daemon is
                    // lying to clients. That is a hard failure.
                    self.note_hard_failure();
                    return Response::Error {
                        message: format!(
                            "paranoid certification rejected the served forest: {violation}"
                        ),
                    };
                }
            }
        } else {
            None
        };

        if certify_op {
            let (cert, cert_ns) = certificate.expect("certify ops always prove");
            Response::Certified(CertifyReply {
                forest_edges: cert.forest_edges as u64,
                trees: cert.trees as u32,
                cycle_queries: cert.cycle_queries as u64,
                cut_checks: cert.cut_checks as u64,
                checksum: result.checksum(),
                wall_ns: wall_ns + cert_ns,
            })
        } else {
            Response::Computed(ComputeReply {
                algorithm: algorithm.slug().to_string(),
                vertices: resident.graph.num_vertices() as u64,
                edges: resident.graph.num_edges() as u64,
                forest_edges: result.edges.len() as u64,
                components: result.components,
                total_weight: result.total_weight,
                checksum: result.checksum(),
                wall_ns,
                round_cache_hit,
                certified: certificate.is_some(),
            })
        }
    }
}

/// Run one job against a resident graph, serving the first Borůvka round
/// from the intermediate cache. Returns (result, cache hit, wall ns).
fn run_job(
    resident: &ResidentGraph,
    job: &MsfJob,
    no_cache: bool,
) -> (msf_core::MsfResult, bool, u64) {
    let t0 = Instant::now();
    let (round, hit) = resident.first_round(ROUND_PREFIX, no_cache);
    let result = job.run_from_round(&resident.graph, &round);
    (result, hit, t0.elapsed().as_nanos() as u64)
}

// ---- signal handling ---------------------------------------------------

static SIGNAL_FLAG: AtomicBool = AtomicBool::new(false);

/// True once SIGTERM or SIGINT arrived.
pub fn signal_received() -> bool {
    SIGNAL_FLAG.load(Ordering::SeqCst)
}

extern "C" fn on_signal(_sig: i32) {
    // Only an atomic store: the one async-signal-safe thing worth doing.
    SIGNAL_FLAG.store(true, Ordering::SeqCst);
}

/// Install SIGTERM/SIGINT handlers that set the drain flag. Uses libc's
/// `signal(2)` through a direct FFI declaration — std already links libc on
/// every unix target, so this adds no dependency.
pub fn install_signal_handlers() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

// ---- the accept/drain loop ---------------------------------------------

/// A bound listener in either domain.
enum Listener {
    Unix(UnixListener, PathBuf),
    Tcp(TcpListener),
}

/// A connected stream in either domain.
pub enum Stream {
    /// Unix domain.
    Unix(UnixStream),
    /// TCP.
    Tcp(TcpStream),
}

impl From<UnixStream> for Stream {
    fn from(s: UnixStream) -> Stream {
        Stream::Unix(s)
    }
}

impl From<TcpStream> for Stream {
    fn from(s: TcpStream) -> Stream {
        Stream::Tcp(s)
    }
}

impl Stream {
    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(t),
            Stream::Tcp(s) => s.set_read_timeout(t),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// Bind, announce readiness on stdout, serve until shutdown, drain, and
/// return the process exit code (0 clean, 1 after hard failures).
pub fn serve(cfg: ServerConfig) -> Result<i32, String> {
    serve_with(cfg, &[])
}

/// [`serve`], loading `(name, path)` graphs into the registry before the
/// ready line is printed — "listening" then implies "preloads resident".
pub fn serve_with(cfg: ServerConfig, preload: &[(String, String)]) -> Result<i32, String> {
    install_signal_handlers();
    obs::metrics::set_enabled(true);
    let server = Arc::new(Server::new(cfg));
    for (name, path) in preload {
        let (g, _) = server.registry.load(name, path)?;
        eprintln!(
            "preloaded {name}: {} vertices, {} edges",
            g.graph.num_vertices(),
            g.graph.num_edges()
        );
    }
    let cfg = &server.cfg;
    let listener = match &cfg.listen {
        Listen::Unix(path) => {
            // A stale socket file from a dead daemon refuses the bind.
            let _ = std::fs::remove_file(path);
            let l = UnixListener::bind(path)
                .map_err(|e| format!("cannot bind {}: {e}", path.display()))?;
            println!("msf-serve listening on unix:{}", path.display());
            Listener::Unix(l, path.clone())
        }
        Listen::Tcp(addr) => {
            let l = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
            let local = l.local_addr().map_err(|e| e.to_string())?;
            println!("msf-serve listening on tcp:{local}");
            Listener::Tcp(l)
        }
    };
    // Flush the ready line so scripts blocking on it wake immediately.
    let _ = io::stdout().flush();

    let workers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    match &listener {
        Listener::Unix(l, _) => l
            .set_nonblocking(true)
            .map_err(|e| format!("nonblocking: {e}"))?,
        Listener::Tcp(l) => l
            .set_nonblocking(true)
            .map_err(|e| format!("nonblocking: {e}"))?,
    }

    while !server.shutting_down() {
        let accepted = match &listener {
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        };
        match accepted {
            Ok(stream) => {
                CONNECTIONS.inc();
                let server = Arc::clone(&server);
                let handle = std::thread::Builder::new()
                    .name("msf-serve-conn".into())
                    .spawn(move || connection_loop(&server, stream))
                    .expect("spawn connection thread");
                let mut workers = workers.lock().unwrap();
                workers.push(handle);
                // Opportunistically reap finished threads so a long-lived
                // daemon doesn't accumulate handles.
                workers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                eprintln!("accept failed: {e}");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }

    // Drain: connection threads see the flag via their read timeouts,
    // finish the request in flight, and exit.
    for handle in workers.lock().unwrap().drain(..) {
        let _ = handle.join();
    }
    server.batcher.shutdown();
    if let Listener::Unix(_, path) = &listener {
        let _ = std::fs::remove_file(path);
    }

    let failures = server.hard_failures();
    if failures > 0 {
        eprintln!("msf-serve: {failures} hard failure(s) during this run");
        Ok(1)
    } else {
        Ok(0)
    }
}

/// Serve one already-accepted connection to completion (EOF, protocol
/// error, or drain). Public so embedders — tests, the serve-mode bench —
/// can drive the daemon over their own listener.
pub fn serve_connection(server: &Server, stream: impl Into<Stream>) {
    connection_loop(server, stream.into())
}

/// Per-connection loop: frame in, response out, until EOF, protocol error,
/// or drain.
fn connection_loop(server: &Server, mut stream: Stream) {
    // Short read timeouts let idle connections notice the drain flag.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    loop {
        match read_frame(&mut stream) {
            Ok(Some(payload)) => {
                let resp = match Request::decode(&payload) {
                    Ok(req) => {
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                server.handle(&req)
                            }));
                        match outcome {
                            Ok(resp) => resp,
                            Err(_) => {
                                server.note_hard_failure();
                                Response::Error {
                                    message: format!(
                                        "internal panic while handling {:?} — this is a server bug",
                                        req.op
                                    ),
                                }
                            }
                        }
                    }
                    Err(e) => Response::Error {
                        message: format!("malformed request: {e}"),
                    },
                };
                if write_frame(&mut stream, &resp.encode()).is_err() {
                    return; // peer hung up mid-reply
                }
            }
            Ok(None) => return, // clean EOF
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if server.shutting_down() {
                    return;
                }
            }
            Err(_) => return, // truncated frame or transport error
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_parses_both_domains() {
        assert_eq!(
            Listen::parse("unix:/tmp/msf.sock").unwrap(),
            Listen::Unix(PathBuf::from("/tmp/msf.sock"))
        );
        assert_eq!(
            Listen::parse("127.0.0.1:7070").unwrap(),
            Listen::Tcp("127.0.0.1:7070".into())
        );
        assert!(Listen::parse("unix:").is_err());
        assert!(Listen::parse("nonsense").is_err());
    }

    #[test]
    fn handle_answers_ping_stats_and_errors_inline() {
        obs::metrics::set_enabled(true);
        let server = Server::new(ServerConfig::default());
        assert_eq!(server.handle(&Request::op(Op::Ping)), Response::Pong);
        match server.handle(&Request::op(Op::Stats)) {
            Response::Stats { text } => {
                assert!(
                    text.contains("serve_requests"),
                    "scrape includes serve counters: {text}"
                )
            }
            other => panic!("expected stats, got {other:?}"),
        }
        let mut req = Request::op(Op::Compute);
        req.graph = "missing".into();
        match server.handle(&req) {
            Response::Error { message } => assert!(message.contains("unknown graph")),
            other => panic!("expected error, got {other:?}"),
        }
        assert_eq!(
            server.hard_failures(),
            0,
            "soft errors are not hard failures"
        );
    }

    #[test]
    fn shutdown_frame_sets_the_drain_flag() {
        let server = Server::new(ServerConfig::default());
        assert!(!server.shutting_down());
        assert_eq!(
            server.handle(&Request::op(Op::Shutdown)),
            Response::ShuttingDown
        );
        assert!(server.shutting_down());
    }
}
