//! The resident-graph registry: named graphs loaded once and shared across
//! clients, with a capacity bound enforced by least-recently-used eviction
//! and refcount-safe unloading.
//!
//! Entries hand out `Arc<ResidentGraph>`, so eviction never invalidates an
//! in-flight job: the registry drops *its* reference and the memory is
//! freed when the last job finishes. The registry also remembers the path
//! each name was loaded from even after eviction, so a later request for an
//! evicted graph transparently reloads it from disk (counted separately —
//! reloads are the price of a too-small capacity, and the scrape endpoint
//! makes that visible).
//!
//! Each resident graph owns its contracted-intermediate cache: the result
//! of the first Borůvka round, keyed by algorithm prefix. Under the
//! `(weight, edge id)` total order the round-1 hooks are in the unique MSF
//! of every algorithm, so a cached round is valid for all of them — the
//! prefix key exists so a future round-k or algorithm-specific intermediate
//! can live alongside without invalidating round-1 entries.

use std::collections::HashMap;
use std::fs::File;
use std::io::BufReader;
use std::sync::{Arc, Mutex};

use msf_core::job::{boruvka_round, BoruvkaRound};
use msf_graph::{binfmt, io, EdgeList};
use msf_obs::metrics::{LazyCounter, LazyGauge};

static REG_LOADS: LazyCounter = LazyCounter::new("serve.registry.loads");
static REG_HITS: LazyCounter = LazyCounter::new("serve.registry.hits");
static REG_MISSES: LazyCounter = LazyCounter::new("serve.registry.misses");
static REG_RELOADS: LazyCounter = LazyCounter::new("serve.registry.reloads");
static REG_EVICTIONS: LazyCounter = LazyCounter::new("serve.registry.evictions");
static REG_BYTES: LazyGauge = LazyGauge::new("serve.registry.resident_bytes");
static REG_GRAPHS: LazyGauge = LazyGauge::new("serve.registry.resident_graphs");
static ROUND_HITS: LazyCounter = LazyCounter::new("serve.cache.round_hits");
static ROUND_MISSES: LazyCounter = LazyCounter::new("serve.cache.round_misses");

/// Load a graph from either format, sniffing the binary magic — the same
/// dual-format entry the CLI uses, but errors are returned, not `exit(1)`:
/// the daemon answers a bad path with a protocol error and keeps serving.
pub fn load_graph_file(path: &str) -> Result<EdgeList, String> {
    let is_bin = binfmt::is_binary_file(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let parsed = if is_bin {
        binfmt::BinGraph::open(path).and_then(|bin| bin.to_edge_list())
    } else {
        File::open(path).and_then(|f| io::read_dimacs(BufReader::new(f)))
    };
    parsed.map_err(|e| format!("cannot parse {path}: {e}"))
}

/// A graph pinned in memory by the registry (and by any in-flight jobs),
/// together with its contracted-intermediate cache.
pub struct ResidentGraph {
    /// Registry key.
    pub name: String,
    /// The edge list the kernels consume.
    pub graph: EdgeList,
    /// Estimated resident footprint (edge array + round cache, bytes).
    bytes: u64,
    rounds: Mutex<HashMap<String, Arc<BoruvkaRound>>>,
}

impl ResidentGraph {
    fn new(name: String, graph: EdgeList) -> ResidentGraph {
        let bytes = estimate_bytes(&graph);
        ResidentGraph {
            name,
            graph,
            bytes,
            rounds: Mutex::new(HashMap::new()),
        }
    }

    /// Estimated bytes of the edge list alone (the round cache is bounded
    /// by the same order and accounted against the same capacity).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The first Borůvka round for `prefix`, computed on miss and cached.
    /// Returns the round and whether it was a cache hit. `bypass` computes
    /// fresh without touching the cache (the `--no-cache` request flag).
    pub fn first_round(&self, prefix: &str, bypass: bool) -> (Arc<BoruvkaRound>, bool) {
        if bypass {
            return (Arc::new(boruvka_round(&self.graph)), false);
        }
        if let Some(r) = self.rounds.lock().unwrap().get(prefix) {
            ROUND_HITS.inc();
            return (Arc::clone(r), true);
        }
        // Compute outside the lock: a second client missing concurrently
        // duplicates work once rather than serializing behind a long round.
        let fresh = Arc::new(boruvka_round(&self.graph));
        let mut rounds = self.rounds.lock().unwrap();
        let r = rounds
            .entry(prefix.to_string())
            .or_insert_with(|| Arc::clone(&fresh));
        ROUND_MISSES.inc();
        (Arc::clone(r), false)
    }

    /// Cached rounds currently held (for info/tests).
    pub fn cached_rounds(&self) -> usize {
        self.rounds.lock().unwrap().len()
    }
}

fn estimate_bytes(g: &EdgeList) -> u64 {
    // Edge = {u32, u32, f64, u32} → 24 bytes with alignment; vertices cost
    // nothing here (EdgeList stores no per-vertex array), but kernels build
    // adjacency on the fly, so charge a word per vertex as a safety margin.
    g.num_edges() as u64 * 24 + g.num_vertices() as u64 * 8
}

struct Entry {
    graph: Arc<ResidentGraph>,
    last_used: u64,
}

struct Inner {
    resident: HashMap<String, Entry>,
    /// name → path, retained across eviction so evicted graphs reload.
    paths: HashMap<String, String>,
    clock: u64,
    resident_bytes: u64,
}

/// The capacity-bounded name → graph map.
pub struct Registry {
    max_bytes: u64,
    inner: Mutex<Inner>,
}

impl Registry {
    /// A registry holding at most `max_bytes` of estimated graph memory
    /// (`u64::MAX` = unbounded). The most recent load is never evicted,
    /// so a single graph larger than the cap still serves.
    pub fn new(max_bytes: u64) -> Registry {
        Registry {
            max_bytes,
            inner: Mutex::new(Inner {
                resident: HashMap::new(),
                paths: HashMap::new(),
                clock: 0,
                resident_bytes: 0,
            }),
        }
    }

    /// Load `path` under `name`. Returns the resident graph and whether
    /// the file was actually read (`false` when already resident — loads
    /// are idempotent and a re-load just bumps recency).
    pub fn load(&self, name: &str, path: &str) -> Result<(Arc<ResidentGraph>, bool), String> {
        {
            let mut inner = self.inner.lock().unwrap();
            inner.clock += 1;
            let clock = inner.clock;
            if let Some(entry) = inner.resident.get_mut(name) {
                entry.last_used = clock;
                let arc = Arc::clone(&entry.graph);
                inner.paths.insert(name.to_string(), path.to_string());
                REG_HITS.inc();
                return Ok((arc, false));
            }
        }
        // Read the file outside the lock — loads can take seconds and must
        // not stall every other client's registry lookups.
        let graph = load_graph_file(path)?;
        let resident = Arc::new(ResidentGraph::new(name.to_string(), graph));
        self.insert(name, path, Arc::clone(&resident));
        REG_LOADS.inc();
        Ok((resident, true))
    }

    /// Insert an already-built graph under `name` (in-process embedding:
    /// the serve-mode bench entry and tests). No path is remembered, so an
    /// eviction is final — `get` after evict errors instead of reloading.
    pub fn put(&self, name: &str, graph: EdgeList) -> Arc<ResidentGraph> {
        let resident = Arc::new(ResidentGraph::new(name.to_string(), graph));
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let clock = inner.clock;
        let bytes = resident.bytes();
        if let Some(old) = inner.resident.insert(
            name.to_string(),
            Entry {
                graph: Arc::clone(&resident),
                last_used: clock,
            },
        ) {
            inner.resident_bytes -= old.graph.bytes();
            REG_BYTES.sub(old.graph.bytes());
        } else {
            REG_GRAPHS.add(1);
        }
        inner.resident_bytes += bytes;
        REG_BYTES.add(bytes);
        REG_LOADS.inc();
        resident
    }

    /// The resident graph for `name`, reloading from the remembered path
    /// if it was evicted. Returns the graph and whether a reload happened.
    pub fn get(&self, name: &str) -> Result<(Arc<ResidentGraph>, bool), String> {
        let path = {
            let mut inner = self.inner.lock().unwrap();
            inner.clock += 1;
            let clock = inner.clock;
            if let Some(entry) = inner.resident.get_mut(name) {
                entry.last_used = clock;
                REG_HITS.inc();
                return Ok((Arc::clone(&entry.graph), false));
            }
            REG_MISSES.inc();
            inner.paths.get(name).cloned().ok_or_else(|| {
                format!("unknown graph '{name}': load it first (op=load with a path)")
            })?
        };
        let graph = load_graph_file(&path)
            .map_err(|e| format!("graph '{name}' was evicted and its file is gone: {e}"))?;
        let resident = Arc::new(ResidentGraph::new(name.to_string(), graph));
        self.insert(name, &path, Arc::clone(&resident));
        REG_RELOADS.inc();
        Ok((resident, true))
    }

    fn insert(&self, name: &str, path: &str, resident: Arc<ResidentGraph>) {
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let clock = inner.clock;
        let bytes = resident.bytes();
        // A racing load of the same name: keep the incumbent's recency,
        // replace the graph (last writer wins; both Arcs stay valid).
        if let Some(old) = inner.resident.insert(
            name.to_string(),
            Entry {
                graph: resident,
                last_used: clock,
            },
        ) {
            inner.resident_bytes -= old.graph.bytes();
            REG_BYTES.sub(old.graph.bytes());
        } else {
            REG_GRAPHS.add(1);
        }
        inner.resident_bytes += bytes;
        REG_BYTES.add(bytes);
        inner.paths.insert(name.to_string(), path.to_string());
        // Evict least-recently-used graphs until under capacity. The entry
        // just inserted is the most recent, so it survives even when it is
        // alone over the cap.
        while inner.resident_bytes > self.max_bytes && inner.resident.len() > 1 {
            let victim = inner
                .resident
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("len > 1");
            let entry = inner.resident.remove(&victim).expect("present");
            inner.resident_bytes -= entry.graph.bytes();
            REG_BYTES.sub(entry.graph.bytes());
            REG_GRAPHS.sub(1);
            REG_EVICTIONS.inc();
        }
    }

    /// Drop `name` from residency (the path is remembered for reload).
    /// Returns whether it was resident. In-flight jobs holding the `Arc`
    /// are unaffected.
    pub fn evict(&self, name: &str) -> bool {
        let mut inner = self.inner.lock().unwrap();
        match inner.resident.remove(name) {
            Some(entry) => {
                inner.resident_bytes -= entry.graph.bytes();
                REG_BYTES.sub(entry.graph.bytes());
                REG_GRAPHS.sub(1);
                REG_EVICTIONS.inc();
                true
            }
            None => false,
        }
    }

    /// Residency peek without touching recency: `Some(bytes)` when
    /// resident.
    pub fn resident_bytes_of(&self, name: &str) -> Option<u64> {
        self.inner
            .lock()
            .unwrap()
            .resident
            .get(name)
            .map(|e| e.graph.bytes())
    }

    /// Graphs currently resident.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().resident.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total estimated resident bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.inner.lock().unwrap().resident_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn write_dimacs(
        dir: &std::path::Path,
        name: &str,
        n: usize,
        edges: &[(u32, u32, f64)],
    ) -> String {
        let path = dir.join(name);
        let mut f = File::create(&path).unwrap();
        writeln!(f, "p sp {} {}", n, edges.len()).unwrap();
        for &(u, v, w) in edges {
            writeln!(f, "a {} {} {}", u + 1, v + 1, w).unwrap();
        }
        path.to_str().unwrap().to_string()
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("msf-registry-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn load_is_idempotent_and_get_reloads_after_evict() {
        let dir = temp_dir("reload");
        let path = write_dimacs(&dir, "tri.gr", 3, &[(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]);
        let reg = Registry::new(u64::MAX);

        let (g1, fresh) = reg.load("tri", &path).unwrap();
        assert!(fresh);
        assert_eq!(g1.graph.num_edges(), 3);
        let (g2, fresh) = reg.load("tri", &path).unwrap();
        assert!(!fresh, "second load is a residency hit");
        assert!(Arc::ptr_eq(&g1, &g2));

        assert!(reg.evict("tri"));
        assert!(!reg.evict("tri"), "double evict is a no-op");
        assert_eq!(reg.len(), 0);
        // The Arc held above keeps the old instance alive and usable.
        assert_eq!(g1.graph.num_vertices(), 3);

        let (g3, reloaded) = reg.get("tri").unwrap();
        assert!(reloaded, "evicted graph reloads from the remembered path");
        assert!(!Arc::ptr_eq(&g1, &g3));
        assert!(reg.get("nope").is_err(), "never-loaded name is an error");
    }

    #[test]
    fn lru_eviction_keeps_recent_graphs_within_capacity() {
        let dir = temp_dir("lru");
        let edges: Vec<(u32, u32, f64)> = (0..9u32).map(|i| (i, i + 1, i as f64)).collect();
        let a = write_dimacs(&dir, "a.gr", 10, &edges);
        let b = write_dimacs(&dir, "b.gr", 10, &edges);
        let c = write_dimacs(&dir, "c.gr", 10, &edges);
        // Each graph estimates 9*24 + 10*8 = 296 bytes; cap fits two.
        let reg = Registry::new(600);

        reg.load("a", &a).unwrap();
        reg.load("b", &b).unwrap();
        assert_eq!(reg.len(), 2);
        // Touch a so b becomes the LRU victim.
        reg.get("a").unwrap();
        reg.load("c", &c).unwrap();
        assert_eq!(reg.len(), 2);
        assert!(reg.resident_bytes_of("a").is_some());
        assert!(reg.resident_bytes_of("b").is_none(), "b was evicted");
        assert!(reg.resident_bytes_of("c").is_some());
        assert!(reg.resident_bytes() <= 600);

        // b still serves via reload.
        let (gb, reloaded) = reg.get("b").unwrap();
        assert!(reloaded);
        assert_eq!(gb.graph.num_edges(), 9);
    }

    #[test]
    fn round_cache_hits_after_first_compute() {
        let dir = temp_dir("rounds");
        let path = write_dimacs(
            &dir,
            "sq.gr",
            4,
            &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (3, 0, 4.0)],
        );
        let reg = Registry::new(u64::MAX);
        let (g, _) = reg.load("sq", &path).unwrap();

        let (r1, hit) = g.first_round("boruvka1", false);
        assert!(!hit, "first request computes");
        let (r2, hit) = g.first_round("boruvka1", true);
        assert!(!hit, "bypass never hits");
        assert!(!Arc::ptr_eq(&r1, &r2));
        let (r3, hit) = g.first_round("boruvka1", false);
        assert!(hit, "second request hits");
        assert!(Arc::ptr_eq(&r1, &r3));
        assert_eq!(g.cached_rounds(), 1);
    }
}
