//! End-to-end daemon tests over a real Unix socket: concurrent clients,
//! bit-identity with the offline pipeline, admission rejection, paranoid
//! certification, and eviction under load.
//!
//! These run under all three CI harnesses (default, `RUST_TEST_THREADS=1`,
//! `MSF_SEQUENTIAL=1`); the daemon must serve the identical unique forest
//! in each, because the `(weight, edge id)` total order pins the MSF
//! regardless of the pool's width or schedule.

use std::fs::File;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use msf_core::{minimum_spanning_forest, Algorithm, MsfConfig};
use msf_graph::generators::{random_graph, GeneratorConfig};
use msf_graph::{io, EdgeList};
use msf_server::proto::{Op, Request, Response};
use msf_server::server::serve_with;
use msf_server::{Client, Listen, ServerConfig};

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("msf-serve-{tag}-{}", std::process::id()))
}

fn write_graph(path: &PathBuf, g: &EdgeList) {
    let f = File::create(path).expect("create graph file");
    io::write_dimacs(g, std::io::BufWriter::new(f)).expect("write graph");
}

/// Start a daemon on a fresh Unix socket; returns the address and the
/// thread that will yield the exit code after shutdown.
fn start_daemon(
    tag: &str,
    mut cfg: ServerConfig,
    preload: Vec<(String, String)>,
) -> (String, std::thread::JoinHandle<Result<i32, String>>) {
    let sock = temp_path(&format!("{tag}.sock"));
    let _ = std::fs::remove_file(&sock);
    cfg.listen = Listen::Unix(sock.clone());
    let handle = std::thread::spawn(move || serve_with(cfg, &preload));
    let addr = format!("unix:{}", sock.display());
    // Wait for the bind.
    for _ in 0..200 {
        if sock.exists() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(sock.exists(), "daemon failed to bind {addr}");
    (addr, handle)
}

fn shutdown(addr: &str, handle: std::thread::JoinHandle<Result<i32, String>>) -> i32 {
    let mut c = Client::connect(addr).expect("connect for shutdown");
    match c.shutdown().expect("shutdown request") {
        Response::ShuttingDown => {}
        other => panic!("unexpected shutdown reply: {other:?}"),
    }
    handle.join().expect("server thread").expect("serve ran")
}

#[test]
fn eight_concurrent_clients_get_the_offline_forest_bit_for_bit() {
    let g = random_graph(&GeneratorConfig::with_seed(42), 3000, 12000);
    let path = temp_path("concurrent.gr");
    write_graph(&path, &g);

    // The offline reference: same graph, default config — the unique
    // (weight, edge id) forest every served compute must reproduce.
    let offline = minimum_spanning_forest(&g, Algorithm::BorFal, &MsfConfig::default());
    let want = offline.checksum();

    let (addr, handle) = start_daemon(
        "concurrent",
        ServerConfig::default(),
        vec![("g".into(), path.display().to_string())],
    );

    // 8 clients, mixed compute/certify, mixed algorithms — every reply
    // must carry the same checksum.
    let algos = [
        "bor-fal",
        "bor-el",
        "kruskal",
        "bor-write-min",
        "filter-kruskal",
    ];
    let clients: Vec<_> = (0..8)
        .map(|i| {
            let addr = addr.clone();
            let algo = algos[i % algos.len()].to_string();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("connect");
                for round in 0..3 {
                    let certify = (i + round) % 2 == 0;
                    let got = if certify {
                        match c.certify("g", &algo, 0).expect("certify") {
                            Response::Certified(r) => r.checksum,
                            other => panic!("client {i}: unexpected certify reply {other:?}"),
                        }
                    } else {
                        match c.compute("g", &algo, 0, false, false).expect("compute") {
                            Response::Computed(r) => r.checksum,
                            other => panic!("client {i}: unexpected compute reply {other:?}"),
                        }
                    };
                    assert_eq!(
                        got, want,
                        "client {i} round {round} ({algo}, certify={certify}) diverged"
                    );
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }

    // The round cache must have served repeats: scrape and check.
    let mut c = Client::connect(&addr).expect("connect for stats");
    let text = match c.stats().expect("stats") {
        Response::Stats { text } => text,
        other => panic!("unexpected stats reply: {other:?}"),
    };
    let hits: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("serve_cache_round_hits_total "))
        .and_then(|v| v.trim().parse().ok())
        .expect("scrape carries serve_cache_round_hits_total");
    assert!(
        hits > 0,
        "24 computes of one resident graph must hit the round cache"
    );

    assert_eq!(shutdown(&addr, handle), 0, "no hard failures");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn eviction_under_load_reloads_or_fails_cleanly() {
    let cfg_a = GeneratorConfig::with_seed(7);
    let cfg_b = GeneratorConfig::with_seed(8);
    let ga = random_graph(&cfg_a, 1500, 6000);
    let gb = random_graph(&cfg_b, 1500, 6000);
    let pa = temp_path("evict-a.gr");
    let pb = temp_path("evict-b.gr");
    write_graph(&pa, &ga);
    write_graph(&pb, &gb);
    let want_a = minimum_spanning_forest(&ga, Algorithm::BorFal, &MsfConfig::default()).checksum();
    let want_b = minimum_spanning_forest(&gb, Algorithm::BorFal, &MsfConfig::default()).checksum();

    // A registry that can hold only one of the two graphs: every load of
    // one evicts the other, so computes constantly race eviction + reload.
    let cfg = ServerConfig {
        registry_bytes: 160_000, // each graph ≈ 6000*24 + 1500*8 = 156 KB
        ..ServerConfig::default()
    };
    let (addr, handle) = start_daemon(
        "evict",
        cfg,
        vec![
            ("a".into(), pa.display().to_string()),
            ("b".into(), pb.display().to_string()),
        ],
    );

    let workers: Vec<_> = (0..4)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("connect");
                for round in 0..6 {
                    let (name, want) = if (i + round) % 2 == 0 {
                        ("a", want_a)
                    } else {
                        ("b", want_b)
                    };
                    match c.compute(name, "", 0, false, false).expect("compute") {
                        Response::Computed(r) => assert_eq!(
                            r.checksum, want,
                            "worker {i} round {round}: graph {name} served a wrong forest"
                        ),
                        // A clean protocol error is acceptable only if the
                        // file vanished — it hasn't, so anything but a
                        // computed forest is a bug.
                        other => panic!("worker {i} round {round}: {other:?}"),
                    }
                }
            })
        })
        .collect();
    // Main thread hammers evictions while the workers compute.
    let mut evictor = Client::connect(&addr).expect("connect evictor");
    for round in 0..12 {
        let name = if round % 2 == 0 { "a" } else { "b" };
        match evictor.evict(name).expect("evict") {
            Response::Evicted { .. } => {}
            other => panic!("unexpected evict reply: {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    for w in workers {
        w.join().expect("worker thread");
    }
    assert_eq!(
        shutdown(&addr, handle),
        0,
        "eviction under load stays clean"
    );
    let _ = std::fs::remove_file(&pa);
    let _ = std::fs::remove_file(&pb);
}

#[test]
fn paranoid_mode_certifies_every_compute() {
    let g = random_graph(&GeneratorConfig::with_seed(12), 800, 3200);
    let path = temp_path("paranoid.gr");
    write_graph(&path, &g);
    let cfg = ServerConfig {
        paranoid: true,
        ..ServerConfig::default()
    };
    let (addr, handle) = start_daemon(
        "paranoid",
        cfg,
        vec![("g".into(), path.display().to_string())],
    );
    let mut c = Client::connect(&addr).expect("connect");
    match c.compute("g", "", 0, false, false).expect("compute") {
        Response::Computed(r) => assert!(r.certified, "--paranoid must certify every forest"),
        other => panic!("unexpected reply: {other:?}"),
    }
    assert_eq!(shutdown(&addr, handle), 0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn admission_gate_rejects_when_the_queue_is_full() {
    use msf_server::admission::{Admission, AdmissionConfig, Admitted};
    // Protocol-level behavior is covered by unit tests; here, prove the
    // served configuration threads the knobs through: a daemon whose queue
    // bound is zero still *serves* small jobs while a large one holds the
    // gate (small jobs bypass admission entirely).
    let gate = Admission::new(AdmissionConfig {
        large_threshold: 10,
        max_inflight_units: 10,
        max_queued: 0,
    });
    let _hold = match gate.admit(10) {
        Admitted::Large(p) => p,
        _ => panic!("must admit into an empty gate"),
    };
    assert!(matches!(gate.admit(5), Admitted::Small));
    assert!(matches!(gate.admit(10), Admitted::Rejected { .. }));
}

#[test]
fn malformed_frames_get_an_error_not_a_hangup() {
    let (addr, handle) = start_daemon("malformed", ServerConfig::default(), vec![]);
    // Hand-roll a frame with an unknown opcode.
    let sock = addr.strip_prefix("unix:").unwrap();
    let mut s = std::os::unix::net::UnixStream::connect(sock).expect("connect raw");
    let payload = [250u8]; // not a valid opcode
    s.write_all(&(payload.len() as u32).to_le_bytes()).unwrap();
    s.write_all(&payload).unwrap();
    let mut c = Client::connect(&addr).expect("connect");
    // The raw socket gets a framed error back.
    use std::io::Read as _;
    let mut len = [0u8; 4];
    s.read_exact(&mut len).expect("error frame length");
    let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
    s.read_exact(&mut body).expect("error frame body");
    match Response::decode(&body).expect("decodable") {
        Response::Error { message } => assert!(message.contains("malformed")),
        other => panic!("unexpected reply: {other:?}"),
    }
    // And the daemon is still healthy for everyone else.
    match c.ping().expect("ping") {
        Response::Pong => {}
        other => panic!("unexpected ping reply: {other:?}"),
    }
    assert_eq!(
        shutdown(&addr, handle),
        0,
        "malformed input is a soft error"
    );
}

#[test]
fn requests_round_trip_over_tcp_too() {
    let cfg = ServerConfig {
        listen: Listen::Tcp("127.0.0.1:0".into()),
        ..ServerConfig::default()
    };
    // TCP needs the resolved port; drive the server loop directly on a
    // pre-bound listener instead of parsing stdout.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap().to_string();
    let server = Arc::new(msf_server::Server::new(cfg));
    let g = random_graph(&GeneratorConfig::with_seed(3), 500, 2000);
    let want = minimum_spanning_forest(&g, Algorithm::BorFal, &MsfConfig::default()).checksum();
    server.registry.put("g", g);
    {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            // One-connection accept loop is all this test needs.
            if let Ok((stream, _)) = listener.accept() {
                msf_server::server::serve_connection(&server, stream);
            }
        });
    }
    let mut c = Client::connect(&addr).expect("connect tcp");
    match c.compute("g", "", 0, false, false).expect("compute") {
        Response::Computed(r) => assert_eq!(r.checksum, want),
        other => panic!("unexpected reply: {other:?}"),
    }
    // Exercise a raw Request too, proving the public proto API suffices
    // without the Client convenience wrappers.
    let mut req = Request::op(Op::Info);
    req.graph = "g".into();
    match c.request(&req).expect("info") {
        Response::Info(r) => {
            assert_eq!(r.vertices, 500);
            assert!(r.resident);
        }
        other => panic!("unexpected reply: {other:?}"),
    }
}

#[test]
fn profile_op_round_trips_and_slow_requests_are_counted() {
    // A graph big enough that certify requests reliably exceed the 0 ms
    // slow threshold, so the slow-request path runs without fault hooks.
    let g = random_graph(&GeneratorConfig::with_seed(5), 20_000, 80_000);
    let path = temp_path("profile.gr");
    write_graph(&path, &g);
    let cfg = ServerConfig {
        slow_ms: Some(0),
        ..ServerConfig::default()
    };
    let (addr, handle) = start_daemon(
        "profile",
        cfg,
        vec![("g".into(), path.display().to_string())],
    );

    let mut c = Client::connect(&addr).expect("connect");
    match c.profile("start", 997).expect("profile start") {
        Response::Profile { running, .. } => assert!(running, "start leaves the sampler running"),
        other => panic!("unexpected start reply: {other:?}"),
    }
    // A second start must refuse in-band, not kill the daemon.
    match c.profile("start", 997).expect("second start") {
        Response::Error { message } => assert!(message.contains("already running"), "{message}"),
        other => panic!("unexpected second-start reply: {other:?}"),
    }
    match c.profile("bogus", 0).expect("bad action") {
        Response::Error { message } => assert!(message.contains("bogus"), "{message}"),
        other => panic!("unexpected bad-action reply: {other:?}"),
    }

    for _ in 0..3 {
        match c.certify("g", "", 0).expect("certify") {
            Response::Certified(_) => {}
            other => panic!("unexpected certify reply: {other:?}"),
        }
    }

    match c.profile("fetch", 0).expect("fetch") {
        Response::Profile { running, .. } => assert!(running, "fetch must not stop the sampler"),
        other => panic!("unexpected fetch reply: {other:?}"),
    }
    match c.profile("stop", 0).expect("stop") {
        Response::Profile {
            running,
            folded,
            samples,
            ..
        } => {
            assert!(!running, "stop halts the sampler");
            // Sampling is statistical — only check structure when samples
            // actually landed: every folded line is `frame;frame... count`
            // and every frame is a known span-kind name. Connection threads
            // root at `serve`; the batcher and pool threads actually running
            // the computes root at `run`.
            if samples > 0 && !folded.is_empty() {
                let known = [
                    "run",
                    "setup",
                    "iteration",
                    "find-min",
                    "connect-components",
                    "compact-graph",
                    "base-case",
                    "team-run",
                    "rank",
                    "filter",
                    "serve",
                ];
                for line in folded.lines() {
                    let (stack, count) = line.rsplit_once(' ').expect("folded line shape");
                    assert!(count.parse::<u64>().is_ok(), "weight parses: {line}");
                    for frame in stack.split(';') {
                        assert!(known.contains(&frame), "unknown frame {frame} in {line}");
                    }
                }
            }
        }
        other => panic!("unexpected stop reply: {other:?}"),
    }

    // The 0 ms threshold makes every certify a slow request; the counter
    // must have moved (the stderr dump itself is exercised in CI).
    let text = match c.stats().expect("stats") {
        Response::Stats { text } => text,
        other => panic!("unexpected stats reply: {other:?}"),
    };
    let slow: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("serve_slow_requests_total "))
        .and_then(|v| v.trim().parse().ok())
        .expect("scrape carries serve_slow_requests_total");
    assert!(
        slow > 0,
        "certifies over a 0ms threshold must count as slow"
    );

    assert_eq!(shutdown(&addr, handle), 0, "no hard failures");
    let _ = std::fs::remove_file(&path);
}
