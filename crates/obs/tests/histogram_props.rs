//! Property tests for the metrics histogram: bucket geometry, shard-merge
//! equivalence, percentile monotonicity, and top-bucket saturation.
//!
//! The registry and its gate are process-global, so every test that records
//! serializes on one mutex and resets the registry before use.

use std::sync::Mutex;

use msf_obs::metrics::{self, bucket_of, bucket_upper_bound, histogram, HISTOGRAM_BUCKETS};
use proptest::prelude::*;

static METRICS_LOCK: Mutex<()> = Mutex::new(());

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every value lands in the unique bucket whose half-open range covers
    /// it: `upper(bucket-1) < v <= upper(bucket)`.
    #[test]
    fn bucket_boundaries_are_exact(v in any::<u64>()) {
        let b = bucket_of(v);
        prop_assert!(b < HISTOGRAM_BUCKETS);
        prop_assert!(v <= bucket_upper_bound(b), "v={v} above its bucket {b}");
        if b > 0 && b < HISTOGRAM_BUCKETS - 1 {
            prop_assert!(
                v > bucket_upper_bound(b - 1),
                "v={v} also fits bucket {}",
                b - 1
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Recording a sample set spread over several threads (several shards)
    /// merges to exactly the snapshot of recording it all on one thread.
    #[test]
    fn shard_merge_equals_single_shard(values in proptest::collection::vec(any::<u64>(), 1..120)) {
        let _guard = METRICS_LOCK.lock().unwrap();
        metrics::reset_for_test();
        metrics::set_enabled(true);

        let single = histogram("prop.single");
        for &v in &values {
            single.record(v);
        }

        let sharded = histogram("prop.sharded");
        std::thread::scope(|scope| {
            for chunk in values.chunks(values.len().div_ceil(4)) {
                scope.spawn(move || {
                    for &v in chunk {
                        sharded.record(v);
                    }
                });
            }
        });

        let a = single.snapshot();
        let b = sharded.snapshot();
        prop_assert_eq!(a.count, b.count);
        prop_assert_eq!(a.sum, b.sum);
        prop_assert_eq!(a.max, b.max);
        prop_assert_eq!(a.buckets, b.buckets);
        metrics::set_enabled(false);
    }

    /// Quantiles never decrease in q, and never exceed the recorded max.
    #[test]
    fn percentiles_are_monotone(values in proptest::collection::vec(0u64..1u64 << 40, 1..200)) {
        let _guard = METRICS_LOCK.lock().unwrap();
        metrics::reset_for_test();
        metrics::set_enabled(true);
        let h = histogram("prop.quantiles");
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        let p50 = s.p50();
        let p90 = s.p90();
        let p99 = s.p99();
        prop_assert!(p50 <= p90, "p50 {p50} > p90 {p90}");
        prop_assert!(p90 <= p99, "p90 {p90} > p99 {p99}");
        prop_assert!(p99 <= s.max, "p99 {p99} > max {}", s.max);
        prop_assert_eq!(s.max, *values.iter().max().unwrap());
        // A quantile is the upper bound of some bucket (clamped to max), so
        // it never undershoots the true quantile of the samples.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let true_p50 = sorted[(values.len() - 1) / 2];
        prop_assert!(p50 >= true_p50, "p50 {p50} < true median {true_p50}");
        metrics::set_enabled(false);
    }

    /// Values at and beyond the top bucket's lower edge saturate into the
    /// last bucket, and every quantile clamps to the recorded max.
    #[test]
    fn top_bucket_saturates(raw in any::<u64>()) {
        let v = raw | (1u64 << 62); // anything at or above the top bucket's edge
        prop_assert_eq!(bucket_of(v), HISTOGRAM_BUCKETS - 1);
        let _guard = METRICS_LOCK.lock().unwrap();
        metrics::reset_for_test();
        metrics::set_enabled(true);
        let h = histogram("prop.saturation");
        h.record(v);
        let s = h.snapshot();
        prop_assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 1);
        prop_assert_eq!(s.p50(), v, "quantile must clamp to the true max");
        prop_assert_eq!(s.p99(), v);
        metrics::set_enabled(false);
    }
}

#[test]
fn bucket_upper_bounds_are_strictly_increasing() {
    for i in 1..HISTOGRAM_BUCKETS {
        assert!(
            bucket_upper_bound(i) > bucket_upper_bound(i - 1),
            "bucket {i}"
        );
    }
    assert_eq!(bucket_upper_bound(0), 0);
    assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
}
