//! Drained traces and their exporters: structural validation, chrome-trace
//! JSON, and a compact text summary.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::{Phase, SpanKind};

/// One registered recording thread.
#[derive(Debug, Clone)]
pub struct TraceThread {
    /// Stable per-process trace thread id (registration order).
    pub tid: u32,
    /// The thread's OS name at registration time.
    pub name: String,
    /// Events overwritten in this thread's ring before the collector
    /// reached them, for this drain. `Trace::dropped` is the sum.
    pub dropped: u64,
}

/// One decoded event from a drained ring.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// Recording thread's trace id.
    pub tid: u32,
    /// Per-thread sequence number (program order on that thread).
    pub seq: u64,
    /// Nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Begin/End/Instant.
    pub phase: Phase,
    /// Raw span-kind id; decode with [`TraceEvent::span_kind`].
    pub kind: u16,
    /// First kind-specific argument.
    pub a: u64,
    /// Second kind-specific argument.
    pub b: u64,
}

impl TraceEvent {
    /// The event's kind, if it is in the known taxonomy.
    pub fn span_kind(&self) -> Option<SpanKind> {
        SpanKind::from_u16(self.kind)
    }

    fn kind_name(&self) -> String {
        match self.span_kind() {
            Some(k) => k.name().to_owned(),
            None => format!("kind-{}", self.kind),
        }
    }
}

/// The result of one [`crate::drain`]: all events published since the
/// previous drain, per-thread metadata, and the overwrite count.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Every thread that has registered a ring (even if idle this drain).
    pub threads: Vec<TraceThread>,
    /// Drained events; within one `tid` they are in program order.
    pub events: Vec<TraceEvent>,
    /// Events overwritten in some ring before the collector reached them.
    pub dropped: u64,
}

impl Trace {
    /// True when no events were drained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of `kind` in `phase`.
    pub fn count(&self, kind: SpanKind, phase: Phase) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == kind as u16 && e.phase == phase)
            .count()
    }

    /// Component-wise sums of the `(a, b)` args over all `End` events of
    /// `kind`. Step spans carry `(modeled_max, wall_ns)` there, so this is
    /// the bridge for exact trace↔stats consistency checks.
    pub fn sum_end_args(&self, kind: SpanKind) -> (u64, u64) {
        self.events
            .iter()
            .filter(|e| e.kind == kind as u16 && e.phase == Phase::End)
            .fold((0u64, 0u64), |(a, b), e| {
                (a.wrapping_add(e.a), b.wrapping_add(e.b))
            })
    }

    /// Check that on every thread Begin/End events pair up like brackets:
    /// each `End` matches the innermost open `Begin` of the same kind, and
    /// no span is left open. Returns a description of the first violation.
    pub fn validate_nesting(&self) -> Result<(), String> {
        let mut stacks: HashMap<u32, Vec<u16>> = HashMap::new();
        for e in self.per_thread_order() {
            let stack = stacks.entry(e.tid).or_default();
            match e.phase {
                Phase::Begin => stack.push(e.kind),
                Phase::End => match stack.pop() {
                    Some(open) if open == e.kind => {}
                    Some(open) => {
                        return Err(format!(
                            "tid {}: end of {:?} closes open {:?} (seq {})",
                            e.tid,
                            e.kind_name(),
                            SpanKind::from_u16(open)
                                .map(|k| k.name().to_owned())
                                .unwrap_or_else(|| format!("kind-{open}")),
                            e.seq
                        ));
                    }
                    None => {
                        return Err(format!(
                            "tid {}: end of {} with no open span (seq {})",
                            e.tid,
                            e.kind_name(),
                            e.seq
                        ));
                    }
                },
                Phase::Instant => {}
            }
        }
        for (tid, stack) in stacks {
            if let Some(open) = stack.last() {
                return Err(format!(
                    "tid {tid}: span {} still open at end of trace",
                    SpanKind::from_u16(*open)
                        .map(|k| k.name().to_owned())
                        .unwrap_or_else(|| format!("kind-{open}"))
                ));
            }
        }
        Ok(())
    }

    /// Per-kind `(completed span count, total wall nanoseconds)` from
    /// matched Begin/End pairs. Nested spans of the same kind are summed
    /// individually (so self-time is double counted — this is a span
    /// census, not a flame graph).
    pub fn span_durations(&self) -> HashMap<u16, (usize, u64)> {
        self.span_duration_lists()
            .into_iter()
            .map(|(kind, list)| (kind, (list.len(), list.iter().sum())))
            .collect()
    }

    /// Per-kind list of individual span wall durations (nanoseconds, in
    /// completion order) from matched Begin/End pairs — the raw material
    /// for the percentile columns in [`Trace::summary`].
    pub fn span_duration_lists(&self) -> HashMap<u16, Vec<u64>> {
        let mut stacks: HashMap<u32, Vec<(u16, u64)>> = HashMap::new();
        let mut out: HashMap<u16, Vec<u64>> = HashMap::new();
        for e in self.per_thread_order() {
            let stack = stacks.entry(e.tid).or_default();
            match e.phase {
                Phase::Begin => stack.push((e.kind, e.ts_ns)),
                Phase::End => {
                    if let Some((kind, began)) = stack.pop() {
                        if kind == e.kind {
                            out.entry(kind)
                                .or_default()
                                .push(e.ts_ns.saturating_sub(began));
                        }
                    }
                }
                Phase::Instant => {}
            }
        }
        out
    }

    fn per_thread_order(&self) -> Vec<&TraceEvent> {
        let mut evs: Vec<&TraceEvent> = self.events.iter().collect();
        evs.sort_by_key(|e| (e.tid, e.seq));
        evs
    }

    /// Serialize to chrome://tracing / Perfetto `traceEvents` JSON.
    /// Timestamps are microseconds with nanosecond precision.
    pub fn chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        for t in &self.threads {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":{}}}}}",
                t.tid,
                json_string(&t.name)
            );
        }
        for e in self.per_thread_order() {
            if !first {
                out.push(',');
            }
            first = false;
            let ph = match e.phase {
                Phase::Begin => "B",
                Phase::End => "E",
                Phase::Instant => "i",
            };
            let _ = write!(
                out,
                "{{\"ph\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{}.{:03},\
                 \"name\":{}",
                ph,
                e.tid,
                e.ts_ns / 1000,
                e.ts_ns % 1000,
                json_string(&e.kind_name())
            );
            if e.phase == Phase::Instant {
                out.push_str(",\"s\":\"t\"");
            }
            let _ = write!(out, ",\"args\":{{\"a\":{},\"b\":{}}}}}", e.a, e.b);
        }
        let _ = write!(
            out,
            "],\"displayTimeUnit\":\"ns\",\"otherData\":{{\"dropped\":{}}}}}",
            self.dropped
        );
        out
    }

    /// A compact text table: per-kind span counts, total wall time, and
    /// p50/p90/p99 duration percentiles, plus thread and drop bookkeeping.
    pub fn summary(&self) -> String {
        // Nearest-rank percentile over a sorted duration list.
        fn pct(sorted: &[u64], q: f64) -> u64 {
            if sorted.is_empty() {
                return 0;
            }
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1]
        }
        let mut rows: Vec<(u16, Vec<u64>)> = self
            .span_duration_lists()
            .into_iter()
            .map(|(kind, mut list)| {
                list.sort_unstable();
                (kind, list)
            })
            .collect();
        rows.sort_by_key(|(_, list)| std::cmp::Reverse(list.iter().sum::<u64>()));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} events on {} thread(s), {} dropped",
            self.events.len(),
            self.threads.len(),
            self.dropped
        );
        if self.dropped > 0 {
            let _ = writeln!(
                out,
                "WARNING: ring overflow — {} event(s) overwritten before collection; \
                 durations and counts below are lower bounds (raise MSF_TRACE_CAP)",
                self.dropped
            );
            for t in &self.threads {
                if t.dropped > 0 {
                    let _ = writeln!(out, "  tid {} ({}): {} dropped", t.tid, t.name, t.dropped);
                }
            }
        }
        let _ = writeln!(
            out,
            "{:<20} {:>8} {:>14} {:>12} {:>12} {:>12}",
            "span", "count", "total", "p50", "p90", "p99"
        );
        for (kind, list) in rows {
            let name = SpanKind::from_u16(kind)
                .map(|k| k.name().to_owned())
                .unwrap_or_else(|| format!("kind-{kind}"));
            let total_ns: u64 = list.iter().sum();
            let _ = writeln!(
                out,
                "{:<20} {:>8} {:>12.3}ms {:>10.3}ms {:>10.3}ms {:>10.3}ms",
                name,
                list.len(),
                total_ns as f64 / 1e6,
                pct(&list, 0.50) as f64 / 1e6,
                pct(&list, 0.90) as f64 / 1e6,
                pct(&list, 0.99) as f64 / 1e6
            );
        }
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON well-formedness checker (objects, arrays, strings, numbers,
/// booleans, null; UTF-8 input). Used by tests and the CLI to validate
/// exported traces without a JSON dependency. Returns the byte offset of
/// the first syntax error.
pub fn validate_json(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, b"true"),
        Some(b'f') => parse_lit(b, pos, b"false"),
        Some(b'n') => parse_lit(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos:?}", pos = *pos)),
        None => Err(format!("unexpected end of input at byte {}", *pos)),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if b.len() < *pos + 5
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at byte {}", *pos));
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
            }
            c if c < 0x20 => {
                return Err(format!("raw control byte in string at {}", *pos));
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_owned())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut digits = 0;
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
        digits += 1;
    }
    if digits == 0 {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let mut frac = 0;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
            frac += 1;
        }
        if frac == 0 {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let mut exp = 0;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
            exp += 1;
        }
        if exp == 0 {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tid: u32, seq: u64, ts: u64, phase: Phase, kind: SpanKind, a: u64, b: u64) -> TraceEvent {
        TraceEvent {
            tid,
            seq,
            ts_ns: ts,
            phase,
            kind: kind as u16,
            a,
            b,
        }
    }

    fn trace(events: Vec<TraceEvent>) -> Trace {
        Trace {
            threads: vec![
                TraceThread {
                    tid: 0,
                    name: "main".into(),
                    dropped: 0,
                },
                TraceThread {
                    tid: 1,
                    name: "msf-team".into(),
                    dropped: 0,
                },
            ],
            events,
            dropped: 0,
        }
    }

    #[test]
    fn nesting_accepts_bracketed_spans_across_threads() {
        let t = trace(vec![
            ev(0, 0, 10, Phase::Begin, SpanKind::Run, 0, 0),
            ev(1, 0, 11, Phase::Begin, SpanKind::Rank, 1, 2),
            ev(0, 1, 12, Phase::Begin, SpanKind::FindMin, 0, 0),
            ev(0, 2, 20, Phase::End, SpanKind::FindMin, 5, 6),
            ev(1, 1, 21, Phase::End, SpanKind::Rank, 0, 0),
            ev(0, 3, 30, Phase::End, SpanKind::Run, 0, 0),
        ]);
        t.validate_nesting().unwrap();
        assert_eq!(t.sum_end_args(SpanKind::FindMin), (5, 6));
        let d = t.span_durations();
        assert_eq!(d[&(SpanKind::FindMin as u16)], (1, 8));
        assert_eq!(d[&(SpanKind::Run as u16)], (1, 20));
    }

    #[test]
    fn nesting_rejects_crossed_and_unclosed_spans() {
        let crossed = trace(vec![
            ev(0, 0, 1, Phase::Begin, SpanKind::Run, 0, 0),
            ev(0, 1, 2, Phase::Begin, SpanKind::FindMin, 0, 0),
            ev(0, 2, 3, Phase::End, SpanKind::Run, 0, 0),
            ev(0, 3, 4, Phase::End, SpanKind::FindMin, 0, 0),
        ]);
        assert!(crossed.validate_nesting().is_err());

        let unclosed = trace(vec![ev(0, 0, 1, Phase::Begin, SpanKind::Run, 0, 0)]);
        assert!(unclosed.validate_nesting().is_err());

        let stray_end = trace(vec![ev(0, 0, 1, Phase::End, SpanKind::Compact, 0, 0)]);
        assert!(stray_end.validate_nesting().is_err());
    }

    #[test]
    fn chrome_json_is_valid_and_carries_names() {
        let t = trace(vec![
            ev(0, 0, 1500, Phase::Begin, SpanKind::Compact, 3, 0),
            ev(0, 1, 2500, Phase::End, SpanKind::Compact, 7, 9),
            ev(1, 0, 1700, Phase::Instant, SpanKind::Iteration, 1, 1),
        ]);
        let json = t.chrome_json();
        validate_json(&json).unwrap();
        assert!(json.contains("\"compact-graph\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"msf-team\""));
    }

    #[test]
    fn summary_lists_kinds_with_counts() {
        let t = trace(vec![
            ev(0, 0, 0, Phase::Begin, SpanKind::FindMin, 0, 0),
            ev(0, 1, 1000, Phase::End, SpanKind::FindMin, 0, 0),
        ]);
        let s = t.summary();
        assert!(s.contains("find-min"));
        assert!(s.contains("2 events"));
    }

    #[test]
    fn summary_reports_duration_percentiles() {
        // Ten sequential find-min spans of 1ms..10ms: nearest-rank
        // percentiles are p50 = 5ms, p90 = 9ms, p99 = 10ms.
        let mut evs = Vec::new();
        let mut ts = 0u64;
        for ms in 1..=10u64 {
            evs.push(ev(
                0,
                evs.len() as u64,
                ts,
                Phase::Begin,
                SpanKind::FindMin,
                0,
                0,
            ));
            ts += ms * 1_000_000;
            evs.push(ev(
                0,
                evs.len() as u64,
                ts,
                Phase::End,
                SpanKind::FindMin,
                0,
                0,
            ));
        }
        let t = trace(evs);
        let lists = t.span_duration_lists();
        assert_eq!(lists[&(SpanKind::FindMin as u16)].len(), 10);
        let s = t.summary();
        let row = s.lines().find(|l| l.contains("find-min")).expect("row");
        assert!(row.contains("5.000ms"), "p50 in {row:?}");
        assert!(row.contains("9.000ms"), "p90 in {row:?}");
        assert!(row.contains("10.000ms"), "p99 in {row:?}");
    }

    #[test]
    fn json_validator_accepts_and_rejects() {
        for ok in [
            "{}",
            "[]",
            "{\"a\":[1,2.5,-3,1e9,true,false,null,\"x\\n\\u00e9\"]}",
            " { \"k\" : { } } ",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
        for bad in [
            "",
            "{",
            "{]",
            "{\"a\":}",
            "[1,]",
            "[1 2]",
            "\"unterminated",
            "01abc",
            "{\"a\":1}x",
            "{\"a\":1.}",
        ] {
            assert!(validate_json(bad).is_err(), "accepted: {bad}");
        }
    }
}
