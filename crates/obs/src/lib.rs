//! `msf-obs`: the observability subsystem.
//!
//! Per-thread lock-free event rings plus a span/phase tracing API, designed so
//! that the *disabled* path costs one relaxed atomic load and a branch — cheap
//! enough to leave compiled into every Borůvka step loop and the pool's team
//! lifecycles permanently.
//!
//! Architecture:
//!
//! - Each thread that records an event lazily registers a fixed-capacity
//!   [`ring`] of POD [`Event`] records. The owning thread writes slots with
//!   plain (relaxed) stores and publishes them with a single release store of
//!   the ring cursor — no CAS, no locks on the hot path.
//! - A single collector ([`drain`]) walks all registered rings at run end and
//!   produces a [`Trace`]. Rings are flight recorders: on overflow the oldest
//!   events are overwritten and counted in [`Trace::dropped`].
//! - Spans are RAII guards ([`SpanGuard`]) emitting paired `Begin`/`End`
//!   events; [`Trace::validate_nesting`] checks the pairing per thread.
//! - Exporters ([`Trace::chrome_json`], [`Trace::summary`]) turn a trace into
//!   a chrome://tracing / Perfetto `traceEvents` JSON file or a compact text
//!   table.
//!
//! Gating: tracing starts disabled. The first call to [`enabled`] (or an
//! explicit [`init_from_env`]) consults the `MSF_TRACE` environment variable
//! (`1`/`true`/`on` enable); [`set_enabled`] and [`configure`] override it
//! programmatically. Ring capacity is `MSF_TRACE_CAP` events per thread
//! (default 16384), frozen once the first ring is allocated.

// `unsafe` is denied crate-wide; the single exception is the allocation
// counter in [`alloc`], which must implement `GlobalAlloc` (an unsafe trait)
// to wrap the system allocator. That module carries its own scoped allow.
#![deny(unsafe_code)]

pub mod alloc;
mod export;
pub mod metrics;
pub mod profile;
mod ring;

pub use export::{validate_json, Trace, TraceEvent, TraceThread};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// One trace record. 4 machine words, POD; `tsc_ns` is nanoseconds since the
/// process-local trace epoch (the first enable), `kind` packs a [`Phase`] and
/// a [`SpanKind`], and `a`/`b` are kind-specific arguments (see DESIGN §11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the trace epoch.
    pub tsc_ns: u64,
    /// `(phase as u32) << 16 | span kind id` — see [`Phase`] and [`SpanKind`].
    pub kind: u32,
    /// First kind-specific argument.
    pub a: u64,
    /// Second kind-specific argument.
    pub b: u64,
}

/// What an [`Event`] marks: the start or end of a span, or a point event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum Phase {
    /// Span start. Paired with a later [`Phase::End`] on the same thread.
    Begin = 1,
    /// Span end, matching the innermost open [`Phase::Begin`].
    End = 2,
    /// A point event with no duration.
    Instant = 3,
}

impl Phase {
    fn from_u16(v: u16) -> Option<Phase> {
        match v {
            1 => Some(Phase::Begin),
            2 => Some(Phase::End),
            3 => Some(Phase::Instant),
            _ => None,
        }
    }
}

/// The fixed span taxonomy. Kinds are stable u16 ids so events stay POD; the
/// exported names below are what chrome://tracing displays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum SpanKind {
    /// One whole `minimum_spanning_forest` call. begin: `a` = algorithm
    /// index, `b` = configured threads.
    Run = 1,
    /// One-time setup before the step loop (e.g. Bor-EL edge-list build).
    Setup = 2,
    /// One Borůvka iteration. begin: `a` = iteration index, `b` = live
    /// vertices entering it.
    Iteration = 3,
    /// The find-min step. end: `a` = modeled_max, `b` = wall nanoseconds.
    FindMin = 4,
    /// The connect-components step. end args as for [`SpanKind::FindMin`].
    Connect = 5,
    /// The compact-graph step. end args as for [`SpanKind::FindMin`].
    Compact = 6,
    /// A sequential base-case solve (MST-BC leaves, filter kernels).
    BaseCase = 7,
    /// One `SmpTeam::run` SPMD phase. begin: `a` = team width.
    TeamRun = 8,
    /// One rank's lifetime inside a team run. begin: `a` = rank, `b` = width.
    Rank = 9,
    /// The edge-filtering stage of Bor-FAL+filter. end: `a` = edges kept,
    /// `b` = edges dropped.
    Filter = 10,
    /// One served request in the `msf serve` daemon. begin: `a` = request
    /// id (the profiler keys per-request sample attribution on it), `b` =
    /// protocol opcode. end: `a` = 1 if the request succeeded, `b` = wall
    /// nanoseconds.
    Serve = 11,
}

impl SpanKind {
    /// Every kind, for iteration in tests and exporters.
    pub const ALL: [SpanKind; 11] = [
        SpanKind::Run,
        SpanKind::Setup,
        SpanKind::Iteration,
        SpanKind::FindMin,
        SpanKind::Connect,
        SpanKind::Compact,
        SpanKind::BaseCase,
        SpanKind::TeamRun,
        SpanKind::Rank,
        SpanKind::Filter,
        SpanKind::Serve,
    ];

    /// The display name used in chrome-trace output and summaries.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Run => "run",
            SpanKind::Setup => "setup",
            SpanKind::Iteration => "iteration",
            SpanKind::FindMin => "find-min",
            SpanKind::Connect => "connect-components",
            SpanKind::Compact => "compact-graph",
            SpanKind::BaseCase => "base-case",
            SpanKind::TeamRun => "team-run",
            SpanKind::Rank => "rank",
            SpanKind::Filter => "filter",
            SpanKind::Serve => "serve",
        }
    }

    /// Inverse of `self as u16`; `None` for ids outside the taxonomy.
    pub fn from_u16(v: u16) -> Option<SpanKind> {
        SpanKind::ALL.iter().copied().find(|k| *k as u16 == v)
    }
}

#[inline]
fn pack(phase: Phase, kind: SpanKind) -> u32 {
    ((phase as u32) << 16) | kind as u32
}

pub(crate) fn unpack(kind: u32) -> (Option<Phase>, u16) {
    (Phase::from_u16((kind >> 16) as u16), kind as u16)
}

// ---- enable gate -------------------------------------------------------

const STATE_UNKNOWN: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNKNOWN);

/// Is tracing currently enabled? In the steady state this is one relaxed
/// atomic load and a branch; the first call after process start (or after
/// nobody has configured tracing yet) lazily consults `MSF_TRACE`.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

/// Resolve the enable state from the environment (`MSF_TRACE`, with
/// `MSF_TRACE_CAP` for ring capacity) unless [`set_enabled`] or
/// [`configure`] already decided it. Returns the resulting state.
#[cold]
pub fn init_from_env() -> bool {
    if STATE.load(Ordering::Relaxed) == STATE_UNKNOWN {
        let cfg = ObsConfig::from_env();
        ring::set_default_capacity(cfg.ring_capacity);
        set_enabled(cfg.enabled);
    }
    STATE.load(Ordering::Relaxed) == STATE_ON
}

/// Turn tracing on or off for the whole process. Enabling also anchors the
/// trace epoch (timestamp zero) if this is the first enable.
pub fn set_enabled(on: bool) {
    if on {
        let _ = epoch();
    }
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Programmatic configuration for tracing; the struct equivalent of the
/// `MSF_TRACE` / `MSF_TRACE_CAP` environment variables.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Whether span recording is on.
    pub enabled: bool,
    /// Per-thread ring capacity in events. Frozen at first ring allocation;
    /// later changes are ignored.
    pub ring_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: false,
            ring_capacity: ring::DEFAULT_CAPACITY,
        }
    }
}

impl ObsConfig {
    /// Read `MSF_TRACE` and `MSF_TRACE_CAP` from the environment.
    pub fn from_env() -> ObsConfig {
        let enabled = std::env::var("MSF_TRACE")
            .map(|v| matches!(v.trim(), "1" | "true" | "on" | "TRUE" | "ON"))
            .unwrap_or(false);
        let ring_capacity = std::env::var("MSF_TRACE_CAP")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|c| c.clamp(16, 1 << 24))
            .unwrap_or(ring::DEFAULT_CAPACITY);
        ObsConfig {
            enabled,
            ring_capacity,
        }
    }
}

/// Apply an [`ObsConfig`]: sets the ring capacity (if no ring exists yet)
/// and the enable state.
pub fn configure(cfg: &ObsConfig) {
    ring::set_default_capacity(cfg.ring_capacity);
    set_enabled(cfg.enabled);
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

pub(crate) fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

// ---- span API ----------------------------------------------------------

/// RAII guard for an open span. Dropping it emits the matching `End` event
/// (with zero args); [`SpanGuard::end_with`] ends it with explicit args.
/// When both tracing and profiling are disabled the guard is inert and its
/// drop is a dead branch. The guard tracks the two subsystems separately:
/// tracing records Begin/End events into the ring, profiling pushes/pops a
/// frame on the thread's live span stack — either can be on without the
/// other.
#[must_use = "dropping the guard immediately ends the span"]
#[derive(Debug)]
pub struct SpanGuard {
    kind: SpanKind,
    armed: bool,
    profiled: bool,
}

impl SpanGuard {
    /// End the span now, attaching kind-specific arguments to the `End`
    /// event (e.g. modeled cost and wall nanoseconds for step spans).
    pub fn end_with(mut self, a: u64, b: u64) {
        if self.armed {
            self.armed = false;
            ring::record(pack(Phase::End, self.kind), a, b);
        }
        if self.profiled {
            self.profiled = false;
            profile::pop();
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            ring::record(pack(Phase::End, self.kind), 0, 0);
        }
        if self.profiled {
            profile::pop();
        }
    }
}

/// Open a span of the given kind. `a`/`b` are attached to the `Begin` event;
/// `a` is also the frame tag on the profiler's span stack (see
/// [`profile`]). Disabled path: two relaxed loads, two branches, and an
/// inert guard.
#[inline]
pub fn span(kind: SpanKind, a: u64, b: u64) -> SpanGuard {
    let armed = enabled();
    let profiled = profile::enabled();
    if armed {
        ring::record(pack(Phase::Begin, kind), a, b);
    }
    if profiled {
        profile::push(kind, a);
    }
    SpanGuard {
        kind,
        armed,
        profiled,
    }
}

/// Record a point event (no duration).
#[inline]
pub fn instant(kind: SpanKind, a: u64, b: u64) {
    if enabled() {
        ring::record(pack(Phase::Instant, kind), a, b);
    }
}

/// Open a span with 0, 1 or 2 arguments:
/// `span!(SpanKind::Compact, iter)` — non-u64 args are `as u64`-cast.
#[macro_export]
macro_rules! span {
    ($kind:expr) => {
        $crate::span($kind, 0, 0)
    };
    ($kind:expr, $a:expr) => {
        $crate::span($kind, $a as u64, 0)
    };
    ($kind:expr, $a:expr, $b:expr) => {
        $crate::span($kind, $a as u64, $b as u64)
    };
}

/// Drain every registered ring into a [`Trace`] and advance the collector's
/// bookmarks, so a second drain returns only newer events. Meant to run at
/// quiescence (after the traced run finishes); events recorded concurrently
/// with a drain may land in either trace.
pub fn drain() -> Trace {
    ring::drain_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enable flag, rings and epoch are process-global, so every test in
    // this crate that toggles tracing serializes on this lock.
    pub(crate) static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn kind_roundtrip_and_names_are_unique() {
        let mut names = std::collections::HashSet::new();
        for k in SpanKind::ALL {
            assert_eq!(SpanKind::from_u16(k as u16), Some(k));
            assert!(names.insert(k.name()), "duplicate name {}", k.name());
        }
        assert_eq!(SpanKind::from_u16(0), None);
        assert_eq!(SpanKind::from_u16(999), None);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for k in SpanKind::ALL {
            for p in [Phase::Begin, Phase::End, Phase::Instant] {
                let (phase, id) = unpack(pack(p, k));
                assert_eq!(phase, Some(p));
                assert_eq!(id, k as u16);
            }
        }
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = locked();
        set_enabled(false);
        let _ = drain();
        {
            let _s = span(SpanKind::Run, 1, 2);
            instant(SpanKind::Iteration, 3, 4);
        }
        let t = drain();
        assert!(t.events.is_empty());
        assert_eq!(t.dropped, 0);
    }

    #[test]
    fn spans_pair_up_and_carry_args() {
        let _g = locked();
        set_enabled(true);
        let _ = drain();
        {
            let outer = span(SpanKind::Run, 7, 2);
            {
                let _inner = span!(SpanKind::Iteration, 0u32, 100u32);
            }
            outer.end_with(42, 43);
        }
        set_enabled(false);
        let t = drain();
        assert_eq!(t.events.len(), 4);
        t.validate_nesting().expect("well nested");
        assert_eq!(t.count(SpanKind::Run, Phase::Begin), 1);
        assert_eq!(t.count(SpanKind::Iteration, Phase::End), 1);
        assert_eq!(t.sum_end_args(SpanKind::Run), (42, 43));
        // Events from one thread come back in program order.
        let kinds: Vec<_> = t.events.iter().map(|e| (e.kind, e.phase)).collect();
        assert_eq!(
            kinds,
            vec![
                (SpanKind::Run as u16, Phase::Begin),
                (SpanKind::Iteration as u16, Phase::Begin),
                (SpanKind::Iteration as u16, Phase::End),
                (SpanKind::Run as u16, Phase::End),
            ]
        );
    }

    #[test]
    fn threads_get_distinct_rings() {
        let _g = locked();
        set_enabled(true);
        let _ = drain();
        let _main = span(SpanKind::Run, 0, 0);
        std::thread::spawn(|| {
            let _s = span!(SpanKind::Rank, 1u32, 2u32);
        })
        .join()
        .unwrap();
        drop(_main);
        set_enabled(false);
        let t = drain();
        let tids: std::collections::HashSet<_> = t.events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 2);
        t.validate_nesting().expect("each thread well nested");
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let _g = locked();
        set_enabled(true);
        let _ = drain();
        let cap = ring::capacity_for_current_thread();
        for i in 0..(cap as u64 + 37) {
            instant(SpanKind::Iteration, i, 0);
        }
        set_enabled(false);
        let t = drain();
        let mine: Vec<_> = t
            .events
            .iter()
            .filter(|e| e.span_kind() == Some(SpanKind::Iteration))
            .collect();
        assert_eq!(mine.len(), cap);
        assert!(t.dropped >= 37);
        // The per-ring attribution sums to the total and names a culprit.
        let per_ring: u64 = t.threads.iter().map(|th| th.dropped).sum();
        assert_eq!(per_ring, t.dropped);
        assert!(t.threads.iter().any(|th| th.dropped >= 37));
        // The text summary surfaces the overflow loudly.
        let summary = t.summary();
        assert!(summary.contains("WARNING: ring overflow"), "{summary}");
        assert!(summary.contains("dropped"), "{summary}");
        // The survivors are the newest `cap` events, in order.
        assert_eq!(mine.first().unwrap().a, 37);
        assert_eq!(mine.last().unwrap().a, cap as u64 + 36);
    }

    #[test]
    fn env_value_parsing() {
        // ObsConfig::from_env is exercised indirectly; the value grammar is
        // what matters and must stay stable.
        for on in ["1", "true", "on", "TRUE", "ON"] {
            assert!(matches!(on.trim(), "1" | "true" | "on" | "TRUE" | "ON"));
        }
        for off in ["0", "false", "off", "", "yes"] {
            assert!(!matches!(off.trim(), "1" | "true" | "on" | "TRUE" | "ON"));
        }
    }
}
