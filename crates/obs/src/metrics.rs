//! The metrics registry: process-global named counters, gauges, and
//! log-bucketed histograms with per-worker sharded atomics.
//!
//! Where the event rings ([`crate::ring`]) answer *"what happened, in what
//! order"*, this module answers *"how is it distributed"*: per-phase wall
//! times, steal latencies, arena footprints, Borůvka shrink ratios. The two
//! share one design contract:
//!
//! - **Disabled path**: one relaxed atomic load and a branch per record
//!   call ([`enabled`], gated by `MSF_METRICS` / [`set_enabled`]).
//! - **Enabled record path**: no lock, no CAS loop, and no allocation —
//!   a shard lookup (cached thread-local index) plus relaxed `fetch_add`s
//!   on cache-line-padded atomics. Registration (first use of a name) may
//!   lock and allocate; recording never does.
//! - **Merge-on-read**: shards are summed only when a [`snapshot`] or value
//!   query runs, never on the record path.
//!
//! Histograms are base-2 log-bucketed with [`HISTOGRAM_BUCKETS`] = 64
//! buckets: bucket 0 holds the value 0, bucket `i` (1..63) holds values in
//! `[2^(i-1), 2^i)`, and the top bucket saturates (everything ≥ 2^62).
//! Quantile queries report the *upper bound* of the bucket containing the
//! requested rank, clamped to the exact recorded maximum — so `p99 ≤ max`
//! always holds and the error is bounded by one octave.
//!
//! The per-shard `max` cell uses a racy load-compare-store instead of
//! `fetch_max` to honor the no-CAS contract (x86 lowers `fetch_max` to a
//! CAS loop). Two same-shard racers can lose an update; each shard is
//! effectively single-writer in practice (threads are assigned shards
//! round-robin), and telemetry tolerates the residual race.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of buckets in every histogram (base-2, saturating top bucket).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Number of atomically independent shards per metric. Threads are assigned
/// shards round-robin at first record; two threads may share a shard, which
/// costs contention but never correctness (counters are commutative).
pub const SHARDS: usize = 16;

// ---- enable gate (same tri-state idiom as the event rings) -------------

const STATE_UNKNOWN: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNKNOWN);

/// Is metrics recording enabled? Steady state: one relaxed load + branch.
/// The first call lazily consults `MSF_METRICS` (`1`/`true`/`on`).
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

/// Resolve the enable state from `MSF_METRICS` unless [`set_enabled`]
/// already decided it. Returns the resulting state.
#[cold]
pub fn init_from_env() -> bool {
    if STATE.load(Ordering::Relaxed) == STATE_UNKNOWN {
        let on = std::env::var("MSF_METRICS")
            .map(|v| matches!(v.trim(), "1" | "true" | "on" | "TRUE" | "ON"))
            .unwrap_or(false);
        set_enabled(on);
    }
    STATE.load(Ordering::Relaxed) == STATE_ON
}

/// Turn metrics recording on or off for the whole process.
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

// ---- shard assignment --------------------------------------------------

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The calling thread's shard index. First call per thread pays one global
/// `fetch_add`; afterwards it is a thread-local read.
#[inline]
fn shard() -> usize {
    MY_SHARD.with(|cell| {
        let s = cell.get();
        if s != usize::MAX {
            return s;
        }
        let s = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
        cell.set(s);
        s
    })
}

/// One cache-line-padded relaxed atomic word.
#[repr(align(128))]
#[derive(Default)]
struct Padded(AtomicU64);

/// Racy monotone max update: relaxed load, compare, relaxed store. See the
/// module docs for why this is not `fetch_max`.
#[inline]
fn racy_max(cell: &AtomicU64, v: u64) {
    if v > cell.load(Ordering::Relaxed) {
        cell.store(v, Ordering::Relaxed);
    }
}

// ---- counters ----------------------------------------------------------

/// A monotone counter, sharded per worker.
pub struct Counter {
    name: &'static str,
    shards: [Padded; SHARDS],
}

impl Counter {
    fn new(name: &'static str) -> Counter {
        Counter {
            name,
            shards: Default::default(),
        }
    }

    /// The metric's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add `n`. Disabled path: one relaxed load and a branch.
    #[inline]
    pub fn add(&self, n: u64) {
        if !enabled() {
            return;
        }
        self.shards[shard()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Merge-on-read total across shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

// ---- gauges ------------------------------------------------------------

/// A signed up/down gauge, sharded per worker: each shard holds a two's
/// complement delta and the merged value is the wrapping sum — so `add` on
/// one thread and `sub` on another cancel without any cross-shard traffic.
pub struct Gauge {
    name: &'static str,
    shards: [Padded; SHARDS],
    /// Racy high-water mark of the merged value, updated on `add`.
    peak: AtomicU64,
}

impl Gauge {
    fn new(name: &'static str) -> Gauge {
        Gauge {
            name,
            shards: Default::default(),
            peak: AtomicU64::new(0),
        }
    }

    /// The metric's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Increase the gauge. Also advances the peak (merged read — a handful
    /// of relaxed loads; gauges sit on allocation-grade paths, not
    /// per-element loops).
    #[inline]
    pub fn add(&self, n: u64) {
        if !enabled() {
            return;
        }
        self.shards[shard()].0.fetch_add(n, Ordering::Relaxed);
        racy_max(&self.peak, self.value().max(0) as u64);
    }

    /// Decrease the gauge.
    #[inline]
    pub fn sub(&self, n: u64) {
        if !enabled() {
            return;
        }
        self.shards[shard()]
            .0
            .fetch_add((n as i64).wrapping_neg() as u64, Ordering::Relaxed);
    }

    /// Merged current value. Can be transiently negative mid-update when a
    /// sub lands before its matching add is visible.
    pub fn value(&self) -> i64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add) as i64
    }

    /// High-water mark of [`Gauge::value`] observed at `add` time.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
        self.peak.store(0, Ordering::Relaxed);
    }
}

// ---- histograms --------------------------------------------------------

/// One shard of a histogram: buckets plus count/sum/max.
#[repr(align(128))]
struct HistShard {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistShard {
    fn default() -> HistShard {
        HistShard {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket a value lands in: 0 for 0, else the value's bit length,
/// saturating at the top bucket. Bucket `i` (0 < i < 63) covers
/// `[2^(i-1), 2^i)`; bucket 63 covers everything from `2^62` up.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// The inclusive upper bound of values in bucket `i` (used as the quantile
/// report value). The saturating top bucket reports `u64::MAX`.
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        _ if i >= HISTOGRAM_BUCKETS - 1 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// A base-2 log-bucketed histogram, sharded per worker.
pub struct Histogram {
    name: &'static str,
    shards: [HistShard; SHARDS],
}

impl Histogram {
    fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            shards: std::array::from_fn(|_| HistShard::default()),
        }
    }

    /// The metric's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record one sample. Disabled path: one relaxed load and a branch.
    /// Enabled path: three relaxed `fetch_add`s and a racy max on the
    /// caller's shard — no lock, CAS loop, or allocation.
    #[inline]
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        let s = &self.shards[shard()];
        s.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        s.count.fetch_add(1, Ordering::Relaxed);
        s.sum.fetch_add(v, Ordering::Relaxed);
        racy_max(&s.max, v);
    }

    /// Merge every shard into an owned snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot {
            name: self.name.to_owned(),
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        };
        for s in &self.shards {
            out.count += s.count.load(Ordering::Relaxed);
            // Sums wrap by design (the shard `fetch_add` already does): a
            // histogram of near-u64::MAX samples must not abort the reader.
            out.sum = out.sum.wrapping_add(s.sum.load(Ordering::Relaxed));
            out.max = out.max.max(s.max.load(Ordering::Relaxed));
            for (b, cell) in out.buckets.iter_mut().zip(&s.buckets) {
                *b += cell.load(Ordering::Relaxed);
            }
        }
        out
    }

    fn reset(&self) {
        for s in &self.shards {
            s.count.store(0, Ordering::Relaxed);
            s.sum.store(0, Ordering::Relaxed);
            s.max.store(0, Ordering::Relaxed);
            for b in &s.buckets {
                b.store(0, Ordering::Relaxed);
            }
        }
    }
}

/// An owned, merged view of one histogram at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (wrapping on overflow).
    pub sum: u64,
    /// Largest sample recorded (racy: may miss a concurrent same-shard
    /// update; see module docs).
    pub max: u64,
    /// Per-bucket sample counts; see [`bucket_of`] for boundaries.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// The value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// containing the `ceil(q·count)`-th smallest sample, clamped to the
    /// recorded maximum. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (upper-bound estimate; see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Arithmetic mean of the samples (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

// ---- registry ----------------------------------------------------------

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

fn registry() -> &'static Mutex<Vec<Metric>> {
    static REGISTRY: OnceLock<Mutex<Vec<Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn with_registry<R>(f: impl FnOnce(&mut Vec<Metric>) -> R) -> R {
    f(&mut registry().lock().unwrap_or_else(|e| e.into_inner()))
}

/// Register (or look up) the counter named `name`. Takes a lock and may
/// allocate — call once and cache the handle (see [`LazyCounter`]).
pub fn counter(name: &'static str) -> &'static Counter {
    with_registry(|metrics| {
        for m in metrics.iter() {
            if let Metric::Counter(c) = m {
                if c.name == name {
                    return *c;
                }
            }
        }
        let c: &'static Counter = Box::leak(Box::new(Counter::new(name)));
        metrics.push(Metric::Counter(c));
        c
    })
}

/// Register (or look up) the gauge named `name`.
pub fn gauge(name: &'static str) -> &'static Gauge {
    with_registry(|metrics| {
        for m in metrics.iter() {
            if let Metric::Gauge(g) = m {
                if g.name == name {
                    return *g;
                }
            }
        }
        let g: &'static Gauge = Box::leak(Box::new(Gauge::new(name)));
        metrics.push(Metric::Gauge(g));
        g
    })
}

/// Register (or look up) the histogram named `name`.
pub fn histogram(name: &'static str) -> &'static Histogram {
    with_registry(|metrics| {
        for m in metrics.iter() {
            if let Metric::Histogram(h) = m {
                if h.name == name {
                    return *h;
                }
            }
        }
        let h: &'static Histogram = Box::leak(Box::new(Histogram::new(name)));
        metrics.push(Metric::Histogram(h));
        h
    })
}

/// A merged view of every registered metric at one instant.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, total)` for every registered counter, registration order.
    pub counters: Vec<(String, u64)>,
    /// `(name, value, peak)` for every registered gauge.
    pub gauges: Vec<(String, i64, u64)>,
    /// Every registered histogram, merged.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Look up a counter total by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Look up a gauge `(value, peak)` by name.
    pub fn gauge(&self, name: &str) -> Option<(i64, u64)> {
        self.gauges
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|&(_, v, p)| (v, p))
    }

    /// Look up a histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Compact text table of every metric with samples, for CLI summaries.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<32} {:>12} {:>12} {:>12} {:>12} {:>14}",
            "histogram", "count", "p50", "p90", "p99", "max"
        );
        for h in &self.histograms {
            if h.count == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<32} {:>12} {:>12} {:>12} {:>12} {:>14}",
                h.name,
                h.count,
                h.p50(),
                h.p90(),
                h.p99(),
                h.max
            );
        }
        for (name, v) in &self.counters {
            if *v > 0 {
                let _ = writeln!(out, "{name:<32} {v:>12}");
            }
        }
        for (name, v, peak) in &self.gauges {
            let _ = writeln!(out, "{name:<32} {v:>12} (peak {peak})");
        }
        out
    }
}

impl MetricsSnapshot {
    /// Render the snapshot as a conformant Prometheus plaintext exposition:
    /// every metric family gets `# HELP` and `# TYPE` lines, counters carry
    /// the conventional `_total` suffix, help text and label values are
    /// escaped per the exposition format, and families are emitted in
    /// deterministic sorted order. Dots in names are rewritten to
    /// underscores. Histograms are emitted as summaries (`_count`, `_sum`,
    /// and the three standard `quantile` samples) with the observed maximum
    /// as a separate `_max` gauge family — the log-bucketed internal
    /// representation is an implementation detail.
    pub fn prometheus_text(&self) -> String {
        use std::fmt::Write as _;
        fn sanitize(name: &str) -> String {
            let mut out: String = name
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect();
            if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                out.insert(0, '_');
            }
            out
        }
        // HELP text escaping: backslash and line feed.
        fn escape_help(s: &str) -> String {
            s.replace('\\', "\\\\").replace('\n', "\\n")
        }
        // Label value escaping: backslash, double quote, line feed.
        fn escape_label(s: &str) -> String {
            s.replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
        }
        // One block of lines per metric family, keyed by the exposed family
        // name so the output sorts deterministically regardless of
        // registration order.
        let mut blocks: Vec<(String, String)> = Vec::new();
        for (name, v) in &self.counters {
            let n = format!("{}_total", sanitize(name));
            let mut b = String::new();
            let _ = writeln!(
                b,
                "# HELP {n} {}",
                escape_help(&format!("msf counter `{name}`"))
            );
            let _ = writeln!(b, "# TYPE {n} counter");
            let _ = writeln!(b, "{n} {v}");
            blocks.push((n, b));
        }
        for (name, v, peak) in &self.gauges {
            let n = sanitize(name);
            let mut b = String::new();
            let _ = writeln!(
                b,
                "# HELP {n} {}",
                escape_help(&format!("msf gauge `{name}`"))
            );
            let _ = writeln!(b, "# TYPE {n} gauge");
            let _ = writeln!(b, "{n} {v}");
            blocks.push((n.clone(), b));
            let np = format!("{n}_peak");
            let mut b = String::new();
            let _ = writeln!(
                b,
                "# HELP {np} {}",
                escape_help(&format!("msf gauge `{name}` high-water mark"))
            );
            let _ = writeln!(b, "# TYPE {np} gauge");
            let _ = writeln!(b, "{np} {peak}");
            blocks.push((np, b));
        }
        for h in &self.histograms {
            let n = sanitize(&h.name);
            let mut b = String::new();
            let _ = writeln!(
                b,
                "# HELP {n} {}",
                escape_help(&format!("msf histogram `{}`", h.name))
            );
            let _ = writeln!(b, "# TYPE {n} summary");
            for (q, v) in [("0.5", h.p50()), ("0.9", h.p90()), ("0.99", h.p99())] {
                let _ = writeln!(b, "{n}{{quantile=\"{}\"}} {v}", escape_label(q));
            }
            let _ = writeln!(b, "{n}_sum {}", h.sum);
            let _ = writeln!(b, "{n}_count {}", h.count);
            blocks.push((n.clone(), b));
            let nm = format!("{n}_max");
            let mut b = String::new();
            let _ = writeln!(
                b,
                "# HELP {nm} {}",
                escape_help(&format!("msf histogram `{}` observed maximum", h.name))
            );
            let _ = writeln!(b, "# TYPE {nm} gauge");
            let _ = writeln!(b, "{nm} {}", h.max);
            blocks.push((nm, b));
        }
        blocks.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::new();
        for (_, b) in blocks {
            out.push_str(&b);
        }
        out
    }
}

/// Merge every registered metric into an owned snapshot.
pub fn snapshot() -> MetricsSnapshot {
    with_registry(|metrics| {
        let mut out = MetricsSnapshot::default();
        for m in metrics.iter() {
            match m {
                Metric::Counter(c) => out.counters.push((c.name.to_owned(), c.value())),
                Metric::Gauge(g) => out.gauges.push((g.name.to_owned(), g.value(), g.peak())),
                Metric::Histogram(h) => out.histograms.push(h.snapshot()),
            }
        }
        out
    })
}

/// Zero every registered metric. Test isolation only: the registry is
/// process-global, so tests that assert on absolute values must reset
/// first instead of depending on binary-wide execution order.
pub fn reset_for_test() {
    with_registry(|metrics| {
        for m in metrics.iter() {
            match m {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    })
}

// ---- lazy call-site handles --------------------------------------------

/// A `static`-friendly counter handle: registration is deferred to the
/// first enabled record, so instrumented code pays nothing until metrics
/// are actually on.
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<&'static Counter>,
}

impl LazyCounter {
    /// Const-constructible handle for the counter named `name`.
    pub const fn new(name: &'static str) -> LazyCounter {
        LazyCounter {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Add `n` (registering on first enabled use).
    #[inline]
    pub fn add(&self, n: u64) {
        if !enabled() {
            return;
        }
        self.cell.get_or_init(|| counter(self.name)).add(n);
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }
}

/// A `static`-friendly gauge handle; see [`LazyCounter`].
pub struct LazyGauge {
    name: &'static str,
    cell: OnceLock<&'static Gauge>,
}

impl LazyGauge {
    /// Const-constructible handle for the gauge named `name`.
    pub const fn new(name: &'static str) -> LazyGauge {
        LazyGauge {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Increase the gauge (registering on first enabled use).
    #[inline]
    pub fn add(&self, n: u64) {
        if !enabled() {
            return;
        }
        self.cell.get_or_init(|| gauge(self.name)).add(n);
    }

    /// Decrease the gauge.
    #[inline]
    pub fn sub(&self, n: u64) {
        if !enabled() {
            return;
        }
        self.cell.get_or_init(|| gauge(self.name)).sub(n);
    }
}

/// A `static`-friendly histogram handle; see [`LazyCounter`].
pub struct LazyHistogram {
    name: &'static str,
    cell: OnceLock<&'static Histogram>,
}

impl LazyHistogram {
    /// Const-constructible handle for the histogram named `name`.
    pub const fn new(name: &'static str) -> LazyHistogram {
        LazyHistogram {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Record one sample (registering on first enabled use).
    #[inline]
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.cell.get_or_init(|| histogram(self.name)).record(v);
    }

    /// Register the series now (when metrics are enabled) without recording
    /// a sample — pre-registration for reports that must always carry the
    /// histogram, without polluting it with a synthetic zero.
    pub fn touch(&self) {
        if !enabled() {
            return;
        }
        self.cell.get_or_init(|| histogram(self.name));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enable flag and registry are process-global; serialize tests that
    // toggle them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of((1 << 20) - 1), 20);
        assert_eq!(bucket_of(1 << 20), 21);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(5), 31);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = locked();
        set_enabled(false);
        let c = counter("test.disabled.counter");
        let h = histogram("test.disabled.histogram");
        c.reset();
        h.reset();
        c.add(5);
        h.record(123);
        assert_eq!(c.value(), 0);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn counter_and_gauge_merge_across_threads() {
        let _g = locked();
        set_enabled(true);
        let c = counter("test.merge.counter");
        let g = gauge("test.merge.gauge");
        c.reset();
        g.reset();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                        g.add(3);
                        g.sub(1);
                    }
                });
            }
        });
        set_enabled(false);
        assert_eq!(c.value(), 4000);
        assert_eq!(g.value(), 8000);
        assert!(g.peak() >= 2, "peak must have advanced");
    }

    #[test]
    fn histogram_quantiles_and_saturation() {
        let _g = locked();
        set_enabled(true);
        let h = histogram("test.quantiles");
        h.reset();
        for v in 1..=100u64 {
            h.record(v);
        }
        h.record(u64::MAX);
        let s = h.snapshot();
        set_enabled(false);
        assert_eq!(s.count, 101);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 1, "saturating bucket");
        let (p50, p90, p99) = (s.p50(), s.p90(), s.p99());
        assert!(p50 <= p90 && p90 <= p99 && p99 <= s.max);
        // p50 of 1..=100 is ~50 → bucket 6 upper bound 63.
        assert_eq!(p50, 63);
        assert_eq!(s.quantile(1.0), u64::MAX);
        // Rank clamps to the 1st sample (value 1, bucket upper bound 1).
        assert_eq!(s.quantile(0.0), 1);
    }

    #[test]
    fn registry_dedupes_by_name_and_snapshots() {
        let _g = locked();
        set_enabled(true);
        let a = counter("test.dedupe");
        let b = counter("test.dedupe");
        assert!(std::ptr::eq(a, b), "same name must yield one metric");
        a.reset();
        b.add(2);
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.counter("test.dedupe"), Some(2));
        assert!(snap.counter("test.no.such.metric").is_none());
    }

    #[test]
    fn reset_for_test_zeroes_everything() {
        let _g = locked();
        set_enabled(true);
        let c = counter("test.reset.counter");
        let h = histogram("test.reset.histogram");
        c.add(7);
        h.record(7);
        reset_for_test();
        set_enabled(false);
        assert_eq!(c.value(), 0);
        let s = h.snapshot();
        assert_eq!((s.count, s.sum, s.max), (0, 0, 0));
        assert!(s.buckets.iter().all(|&b| b == 0));
    }

    #[test]
    fn prometheus_text_renders_all_metric_kinds() {
        let _g = locked();
        set_enabled(true);
        let c = counter("test.prom.counter");
        let g = gauge("test.prom.gauge");
        let h = histogram("test.prom.hist");
        c.reset();
        g.reset();
        h.reset();
        c.add(3);
        g.add(5);
        h.record(7);
        let text = snapshot().prometheus_text();
        set_enabled(false);
        assert!(text.contains("# TYPE test_prom_counter_total counter"));
        assert!(text.contains("test_prom_counter_total 3"));
        assert!(text.contains("test_prom_gauge 5"));
        assert!(text.contains("test_prom_gauge_peak 5"));
        assert!(text.contains("# TYPE test_prom_hist summary"));
        assert!(text.contains("test_prom_hist_count 1"));
        assert!(text.contains("test_prom_hist{quantile=\"0.5\"} 7"));
        // No raw dots survive sanitization in metric names (quantile label
        // values like "0.5" are the only dots allowed).
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split(['{', ' ']).next().unwrap();
            assert!(!name.contains('.'), "unsanitized name in {line:?}");
        }
    }

    #[test]
    fn prometheus_text_is_conformant_exposition() {
        let _g = locked();
        set_enabled(true);
        let c = counter("test.conf.counter");
        let g = gauge("test.conf.gauge");
        let h = histogram("test.conf.hist");
        c.reset();
        g.reset();
        h.reset();
        c.add(2);
        g.add(9);
        h.record(4);
        let text = snapshot().prometheus_text();
        set_enabled(false);

        // Every sample line's family has HELP and TYPE lines that precede
        // it, and counters carry the `_total` suffix on both.
        assert!(text.contains("# HELP test_conf_counter_total "));
        assert!(text.contains("# TYPE test_conf_counter_total counter"));
        assert!(text.contains("test_conf_counter_total 2"));
        assert!(text.contains("# TYPE test_conf_gauge gauge"));
        assert!(text.contains("# TYPE test_conf_gauge_peak gauge"));
        assert!(text.contains("# TYPE test_conf_hist summary"));
        // `_max` is its own gauge family, not a summary sample.
        assert!(text.contains("# TYPE test_conf_hist_max gauge"));
        assert!(text.contains("test_conf_hist_max 4"));

        let lines: Vec<&str> = text.lines().collect();
        let mut current_family: Option<&str> = None;
        for (i, line) in lines.iter().enumerate() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let fam = rest.split(' ').next().unwrap();
                // HELP → TYPE → samples, in that order per family.
                assert!(
                    lines[i + 1].starts_with(&format!("# TYPE {fam} ")),
                    "HELP for {fam} not followed by its TYPE line"
                );
                current_family = Some(fam);
            } else if !line.starts_with('#') && !line.is_empty() {
                let name = line.split(['{', ' ']).next().unwrap();
                let fam = current_family.expect("sample before any HELP");
                assert!(
                    name == fam
                        || name
                            .strip_prefix(fam)
                            .is_some_and(|s| matches!(s, "_sum" | "_count")),
                    "sample {name} outside its family block {fam}"
                );
            }
        }

        // Families are sorted: exposed names appear in nondecreasing order.
        let families: Vec<&str> = lines
            .iter()
            .filter_map(|l| l.strip_prefix("# TYPE "))
            .map(|l| l.split(' ').next().unwrap())
            .collect();
        let mut sorted = families.clone();
        sorted.sort();
        assert_eq!(families, sorted, "families must be emitted in sorted order");
    }

    #[test]
    fn lazy_handles_register_on_first_enabled_use() {
        let _g = locked();
        static LAZY: LazyCounter = LazyCounter::new("test.lazy.counter");
        set_enabled(false);
        LAZY.add(10); // must not register while disabled
        set_enabled(true);
        LAZY.add(4);
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.counter("test.lazy.counter"), Some(4));
    }
}
